//! Facade crate re-exporting the whole Bruck all-to-all workspace.
//!
//! This crate ties together the four library crates of the reproduction of
//! Bruck, Ho, Kipnis, Upfal, Weathersby, *Efficient Algorithms for
//! All-to-All Communications in Multiport Message-Passing Systems*
//! (SPAA'94 / IEEE TPDS 8(11), 1997):
//!
//! * [`model`] — cost models, complexity measures, lower bounds, and the
//!   combinatorial substrates (radix decomposition, circulant graphs,
//!   k-port spanning trees, last-round table partitioning).
//! * [`net`] — the in-process multiport message-passing substrate: an SPMD
//!   cluster with one thread per simulated processor, virtual time, port
//!   enforcement, and metrics.
//! * [`sched`] — static communication schedules: building, validating,
//!   analyzing (C1 / C2 / predicted time), and replaying them on a cluster.
//! * [`collectives`] — the paper's contribution: the radix-r index
//!   (all-to-all personalized) algorithm family and the circulant
//!   concatenation (all-to-all broadcast) algorithm, with every baseline
//!   the paper compares against.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use bruck_collectives as collectives;
pub use bruck_model as model;
pub use bruck_net as net;
pub use bruck_sched as sched;

pub use bruck_collectives::prelude;

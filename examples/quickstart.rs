//! Quickstart: run the paper's two collectives on a simulated 8-processor
//! multiport message-passing system.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bruck::prelude::*;

fn main() {
    // A fully connected message-passing system with 8 processors, each
    // with one send and one receive port (the paper's k = 1 model),
    // costed with the paper's IBM SP-1 parameters (β = 29 µs start-up,
    // τ = 0.12 µs/byte).
    let n = 8;
    let cfg = ClusterConfig::new(n);
    let tuning = Tuning::builder().build();

    // --- Index (all-to-all personalized / MPI_Alltoall) -----------------
    // Every rank prepares one 32-byte block for every destination; the
    // auto-tuner picks the radix that minimizes predicted time.
    let block = 32;
    let out = Cluster::run(&cfg, |ep| {
        let rank = ep.rank() as u8;
        let mut sendbuf = vec![0u8; n * block];
        for dst in 0..n {
            sendbuf[dst * block..(dst + 1) * block].fill(rank * 16 + dst as u8);
        }
        // The `_into` variant writes into a caller-owned buffer — reuse it
        // across iterations and the steady state allocates nothing.
        let mut result = vec![0u8; n * block];
        alltoall_into(ep, &sendbuf, block, &tuning, &mut result)?;
        // Block j of the result came from rank j and was addressed to us.
        for src in 0..n {
            assert!(result[src * block..(src + 1) * block]
                .iter()
                .all(|&x| x == src as u8 * 16 + ep.rank() as u8));
        }
        Ok(ep.virtual_time())
    })
    .expect("index run failed");
    let choice = tuning.chosen_radix(n, block, 1);
    println!(
        "index     : n={n}, b={block} B  → auto radix {} ({}), virtual time {:.1} µs",
        choice.radix,
        choice.complexity,
        out.virtual_makespan() * 1e6
    );

    // --- Concatenation (all-to-all broadcast / MPI_Allgather) -----------
    let out = Cluster::run(&cfg, |ep| {
        let mine = vec![ep.rank() as u8; block];
        let all = allgather(ep, &mine, &tuning)?;
        for src in 0..n {
            assert!(all[src * block..(src + 1) * block]
                .iter()
                .all(|&x| x == src as u8));
        }
        Ok(())
    })
    .expect("concat run failed");
    let c = out.metrics.global_complexity().expect("aligned rounds");
    println!(
        "concat    : n={n}, b={block} B  → {c} (lower bounds: C1={}, C2={})",
        bruck::model::bounds::concat_bounds(n, 1, block).c1,
        bruck::model::bounds::concat_bounds(n, 1, block).c2
    );
    println!("virtual makespan {:.1} µs", out.virtual_makespan() * 1e6);
}

//! The §3.3/§3.5 tuning story, interactively: sweep the radix of the
//! index algorithm on a 64-node cluster for several message sizes, print
//! the `C1`/`C2` trade-off and predicted times, and show what the
//! auto-tuner picks.
//!
//! ```text
//! cargo run --release --example radix_tuning [block_bytes…]
//! ```

use std::sync::Arc;

use bruck::model::cost::{CostModel, Sp1Model};
use bruck::model::tuning::{all_radices, best_radix, index_complexity};
use bruck::prelude::*;

const N: usize = 64;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("block sizes must be integers"))
        .collect();
    let blocks = if args.is_empty() {
        vec![16, 64, 256, 4096]
    } else {
        args
    };
    let model = Sp1Model::calibrated();

    for &b in &blocks {
        println!("\nindex on n = {N}, block = {b} bytes (SP-1 model, γs=1.5, γc=2.0):");
        println!(
            "{:>6} {:>8} {:>12} {:>12}",
            "radix", "C1", "C2 (bytes)", "pred (ms)"
        );
        for r in [2usize, 3, 4, 8, 16, 32, 64] {
            let c = index_complexity(N, r, b);
            println!(
                "{:>6} {:>8} {:>12} {:>12.3}",
                r,
                c.c1,
                c.c2,
                model.estimate(c) * 1e3
            );
        }
        let choice = best_radix(N, b, 1, &model, all_radices(N));
        println!(
            "→ auto-tuner picks r = {} (predicted {:.3} ms)",
            choice.radix,
            choice.predicted_time * 1e3
        );

        // Confirm on the live cluster: the tuned radix beats both extremes
        // (or ties one of them).
        let measure = |r: usize| {
            let cfg = ClusterConfig::new(N).with_cost(Arc::new(model));
            Cluster::run(&cfg, |ep| {
                let buf = vec![0u8; N * b];
                bruck::collectives::index::bruck::run(ep, &buf, b, r)
            })
            .expect("run failed")
            .virtual_makespan()
        };
        let (t2, tn, tbest) = (measure(2), measure(N), measure(choice.radix));
        println!(
            "  measured: r=2 → {:.3} ms, r={N} → {:.3} ms, r={} → {:.3} ms",
            t2 * 1e3,
            tn * 1e3,
            choice.radix,
            tbest * 1e3
        );
        assert!(tbest <= t2 + 1e-12 && tbest <= tn + 1e-12);
    }
}

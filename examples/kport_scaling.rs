//! Multiport scaling (§3.4, §4): how the round count and transfer volume
//! of both operations fall as the port count `k` grows, on live clusters,
//! against the §2 lower bounds.
//!
//! ```text
//! cargo run --example kport_scaling
//! ```

use bruck::model::bounds::{concat_bounds, index_bounds};
use bruck::model::partition::Preference;
use bruck::prelude::*;

fn main() {
    let n = 25;
    let b = 64;

    println!("concat on n = {n}, b = {b} B (circulant algorithm):");
    println!(
        "{:>3} {:>6} {:>8} {:>10} {:>10}",
        "k", "C1", "C1 bound", "C2", "C2 bound"
    );
    for k in 1..=6 {
        let cfg = ClusterConfig::new(n).with_ports(k);
        let out = Cluster::run(&cfg, |ep| {
            let mine = vec![ep.rank() as u8; b];
            ConcatAlgorithm::Bruck(Preference::Rounds).run(ep, &mine)
        })
        .expect("concat failed");
        let c = out.metrics.global_complexity().expect("aligned");
        let lb = concat_bounds(n, k, b);
        println!("{k:>3} {:>6} {:>8} {:>10} {:>10}", c.c1, lb.c1, c.c2, lb.c2);
        assert!(lb.admits(c));
        assert_eq!(c.c1, lb.c1, "circulant concat must be round-optimal");
    }

    println!("\nindex on n = {n}, b = {b} B (radix r = k+1: the round-optimal choice):");
    println!(
        "{:>3} {:>6} {:>8} {:>10} {:>10}",
        "k", "C1", "C1 bound", "C2", "C2 bound"
    );
    for k in 1..=6 {
        let cfg = ClusterConfig::new(n).with_ports(k);
        let out = Cluster::run(&cfg, |ep| {
            let buf: Vec<u8> = (0..n * b).map(|i| i as u8).collect();
            IndexAlgorithm::BruckRadix(k + 1).run(ep, &buf, b)
        })
        .expect("index failed");
        let c = out.metrics.global_complexity().expect("aligned");
        let lb = index_bounds(n, k, b);
        println!("{k:>3} {:>6} {:>8} {:>10} {:>10}", c.c1, lb.c1, c.c2, lb.c2);
        assert_eq!(c.c1, lb.c1, "r = k+1 must be round-optimal");
    }
    println!("\n(r = k+1 meets the C1 bound; its C2 exceeds the standalone C2 bound,");
    println!(" as Theorem 2.5 proves any round-optimal index algorithm must.)");
}

//! HPF array redistribution via the index operation — §1.1: "the index
//! operation can be used to support the remapping of arrays in HPF
//! compilers, such as remapping the data layout of a two-dimensional
//! array from (block, *) to (cyclic, *)".
//!
//! A `R × C` array of `f32` is distributed over `n` processors by
//! **block** rows (processor `p` owns rows `[p·R/n, (p+1)·R/n)`); one
//! index operation redistributes it to **cyclic** rows (processor `p`
//! owns rows `{p, p+n, p+2n, …}`), and a second one maps it back.
//!
//! ```text
//! cargo run --example hpf_remap
//! ```

use bruck::prelude::*;

const N: usize = 8; // processors
const ROWS_PER: usize = 6; // rows per processor ⇒ R = 48
const COLS: usize = 10;

fn element(row: usize, col: usize) -> f32 {
    (row * 131 + col) as f32 * 0.25
}

fn encode(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn decode(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn main() {
    let r = N * ROWS_PER;
    let cfg = ClusterConfig::new(N);
    let tuning = Tuning::builder().build();

    let out = Cluster::run(&cfg, |ep| {
        let p = ep.rank();
        // (block, *): my rows are [p·ROWS_PER, (p+1)·ROWS_PER).
        // Under (cyclic, *), global row g belongs to processor g mod N and
        // is its (g / N)-th local row. Each of my ROWS_PER rows therefore
        // goes to a distinct destination slot; with ROWS_PER rows per
        // processor and N destinations, the block for destination q holds
        // my rows with (p·ROWS_PER + i) ≡ q (mod N), padded to the fixed
        // per-pair quota of ⌈ROWS_PER/N⌉ rows.
        let quota = ROWS_PER.div_ceil(N);
        let row_bytes = COLS * 4;
        let block = quota * (row_bytes + 8); // 8-byte global-row header per slot
        let mut sendbuf = vec![0u8; N * block];
        for i in 0..ROWS_PER {
            let g = p * ROWS_PER + i; // global row
            let dest = g % N;
            let slot = (g / N) % quota; // position within the quota
            let at = dest * block + slot * (row_bytes + 8);
            sendbuf[at..at + 8].copy_from_slice(&(g as u64 + 1).to_le_bytes());
            let row: Vec<f32> = (0..COLS).map(|c| element(g, c)).collect();
            sendbuf[at + 8..at + 8 + row_bytes].copy_from_slice(&encode(&row));
        }

        // One index operation performs the whole remap.
        let received = alltoall(ep, &sendbuf, block, &tuning)?;

        // Rebuild my cyclic panel: rows p, p+N, p+2N, … in order.
        let my_cyclic_rows: Vec<usize> = (p..r).step_by(N).collect();
        let mut panel = vec![0f32; my_cyclic_rows.len() * COLS];
        for src in 0..N {
            for slot in 0..quota {
                let at = src * block + slot * (row_bytes + 8);
                let header = u64::from_le_bytes(received[at..at + 8].try_into().unwrap());
                if header == 0 {
                    continue; // padding slot
                }
                let g = (header - 1) as usize;
                assert_eq!(g % N, p, "row {g} landed on the wrong processor");
                let local = g / N;
                let row = decode(&received[at + 8..at + 8 + row_bytes]);
                panel[local * COLS..(local + 1) * COLS].copy_from_slice(&row);
            }
        }
        // Verify the cyclic layout against the formula.
        for (local, &g) in my_cyclic_rows.iter().enumerate() {
            for c in 0..COLS {
                assert_eq!(panel[local * COLS + c], element(g, c), "row {g} col {c}");
            }
        }
        Ok(ep.virtual_time())
    })
    .expect("remap failed");

    let c = out.metrics.global_complexity().expect("aligned rounds");
    println!("remapped a {r}×{COLS} f32 array (block,*) → (cyclic,*) on {N} processors");
    println!("one index operation: {c}");
    println!(
        "virtual time under SP-1 model: {:.1} µs",
        out.virtual_makespan() * 1e6
    );
    println!("every processor verified its cyclic panel element-by-element ✓");
}

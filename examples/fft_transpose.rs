//! Distributed FFT via the index operation — §1.1: "The index operation
//! is also used in FFT algorithms".
//!
//! The classic transpose-based distributed FFT of a length-`R·C` signal:
//!
//! 1. view the signal as an `R × C` matrix (column-major), rows
//!    distributed over the processors;
//! 2. local length-`C` FFTs on each row;
//! 3. twiddle by `W_N^{r·c}`;
//! 4. **transpose via one index operation** (the only communication);
//! 5. local length-`R` FFTs on the transposed rows.
//!
//! The result is the DFT of the input (in a permuted order, which we
//! invert when verifying). Checked against a direct `O(N²)` DFT.
//!
//! ```text
//! cargo run --release --example fft_transpose
//! ```

use bruck::prelude::*;
use std::f64::consts::PI;

const P: usize = 4; // processors
const R: usize = 16; // rows  (R % P == 0)
const C: usize = 16; // cols  (C % P == 0)
const N: usize = R * C;

#[derive(Clone, Copy, PartialEq, Debug, Default)]
struct Cpx {
    re: f64,
    im: f64,
}

impl Cpx {
    fn mul(self, o: Cpx) -> Cpx {
        Cpx {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
    fn add(self, o: Cpx) -> Cpx {
        Cpx {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
    fn sub(self, o: Cpx) -> Cpx {
        Cpx {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

fn w(k: f64, n: f64) -> Cpx {
    let a = -2.0 * PI * k / n;
    Cpx {
        re: a.cos(),
        im: a.sin(),
    }
}

/// In-place radix-2 Cooley–Tukey (n a power of two).
fn fft(x: &mut [Cpx]) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two());
    // bit reversal
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        if (j as usize) > i {
            x.swap(i, j as usize);
        }
    }
    let mut len = 2;
    while len <= n {
        for start in (0..n).step_by(len) {
            for off in 0..len / 2 {
                let tw = w(off as f64, len as f64);
                let a = x[start + off];
                let b = x[start + off + len / 2].mul(tw);
                x[start + off] = a.add(b);
                x[start + off + len / 2] = a.sub(b);
            }
        }
        len *= 2;
    }
}

/// The input signal.
fn signal(t: usize) -> Cpx {
    let t = t as f64;
    Cpx {
        re: (2.0 * PI * 5.0 * t / N as f64).sin() + 0.25,
        im: 0.1 * (t / 17.0).cos(),
    }
}

fn encode(v: &[Cpx]) -> Vec<u8> {
    v.iter()
        .flat_map(|c| [c.re.to_le_bytes(), c.im.to_le_bytes()].concat())
        .collect()
}

fn decode(bytes: &[u8]) -> Vec<Cpx> {
    bytes
        .chunks_exact(16)
        .map(|ch| Cpx {
            re: f64::from_le_bytes(ch[..8].try_into().unwrap()),
            im: f64::from_le_bytes(ch[8..].try_into().unwrap()),
        })
        .collect()
}

fn main() {
    assert_eq!(R % P, 0);
    assert_eq!(C % P, 0);
    let rows_per = R / P;
    let cfg = ClusterConfig::new(P);
    let tuning = Tuning::builder().build();

    let out = Cluster::run(&cfg, |ep| {
        let p = ep.rank();
        // Step 1: my rows of the R×C view, column-major indexing:
        // element (r, c) is sample r + c·R.
        let mut rows: Vec<Vec<Cpx>> = (0..rows_per)
            .map(|lr| {
                let r = p * rows_per + lr;
                (0..C).map(|c| signal(r + c * R)).collect()
            })
            .collect();
        // Step 2: local C-point FFTs per row; Step 3: twiddle.
        for (lr, row) in rows.iter_mut().enumerate() {
            fft(row);
            let r = p * rows_per + lr;
            for (c, v) in row.iter_mut().enumerate() {
                *v = v.mul(w((r * c) as f64, N as f64));
            }
        }
        // Step 4: transpose via index. Block for processor q = my rows'
        // entries in q's column range, laid out (local row, col) —
        // exactly the matrix_transpose pattern.
        let cols_per = C / P;
        let block = rows_per * cols_per * 16;
        let mut sendbuf = Vec::with_capacity(P * block);
        for q in 0..P {
            for row in &rows {
                sendbuf.extend(encode(&row[q * cols_per..(q + 1) * cols_per]));
            }
        }
        let arrived = alltoall(ep, &sendbuf, block, &tuning)?;
        // Rebuild my transposed rows: transposed row = original column c
        // in [p·cols_per, (p+1)·cols_per); its entries come from all R
        // original rows.
        let mut trows: Vec<Vec<Cpx>> = vec![vec![Cpx::default(); R]; cols_per];
        for q in 0..P {
            let tile = decode(&arrived[q * block..(q + 1) * block]);
            for lr in 0..rows_per {
                for lc in 0..cols_per {
                    trows[lc][q * rows_per + lr] = tile[lr * cols_per + lc];
                }
            }
        }
        // Step 5: local R-point FFTs on transposed rows.
        for trow in &mut trows {
            fft(trow);
        }
        // Output element: X[c + k·C] = trows[c - p·cols_per][k] for my c.
        Ok((p, trows))
    })
    .expect("distributed FFT failed");

    // Sequential verification: direct DFT.
    let direct: Vec<Cpx> = (0..N)
        .map(|k| {
            (0..N).fold(Cpx::default(), |acc, t| {
                acc.add(signal(t).mul(w((k * t) as f64, N as f64)))
            })
        })
        .collect();
    let cols_per = C / P;
    let mut max_err = 0f64;
    for (p, trows) in &out.results {
        for (lc, trow) in trows.iter().enumerate() {
            let c = p * cols_per + lc;
            for (k, v) in trow.iter().enumerate() {
                // Four-step FFT output index mapping: X[c + k·C].
                let want = direct[c + k * C];
                max_err = max_err.max((v.re - want.re).abs().max((v.im - want.im).abs()));
            }
        }
    }
    assert!(max_err < 1e-8, "max error {max_err}");
    let c = out.metrics.global_complexity().expect("aligned rounds");
    println!("distributed {N}-point FFT over {P} processors (four-step, transpose via index)");
    println!("communication: {c} — one index operation total");
    println!("max |error| vs direct O(N²) DFT: {max_err:.2e} ✓");
    println!(
        "virtual time under SP-1 model: {:.1} µs",
        out.virtual_makespan() * 1e6
    );
}

//! Distributed matrix transpose via the index operation — the paper's
//! §1.1 flagship application ("the index operation can be used for
//! computing the transpose of a matrix, when the matrix is partitioned
//! into blocks of rows with different blocks residing on different
//! processors").
//!
//! A `(n·s) × (n·s)` matrix of `f64` is distributed block-row-wise over
//! `n` processors (`s` rows each). To transpose, each rank slices its row
//! panel into `n` column blocks (`s × s` tiles), runs one index
//! operation, and reassembles the arrived tiles — transposing each tile
//! locally.
//!
//! ```text
//! cargo run --example matrix_transpose
//! ```

use bruck::prelude::*;

const N: usize = 8; // processors
const S: usize = 16; // rows per processor ⇒ a 128×128 matrix

/// The matrix is defined by a formula so every rank can verify its result
/// slice without gathering anything.
fn element(row: usize, col: usize) -> f64 {
    (row * 1009 + col) as f64 * 0.5
}

fn encode(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn decode(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn main() {
    let dim = N * S;
    let cfg = ClusterConfig::new(N);
    let tuning = Tuning::builder().build();

    let out = Cluster::run(&cfg, |ep| {
        let rank = ep.rank();
        // My row panel: rows [rank·S, (rank+1)·S).
        // Block j = my S×S tile of columns [j·S, (j+1)·S), row-major.
        let mut sendbuf = Vec::with_capacity(N * S * S * 8);
        for j in 0..N {
            let mut tile = Vec::with_capacity(S * S);
            for r in 0..S {
                for c in 0..S {
                    tile.push(element(rank * S + r, j * S + c));
                }
            }
            sendbuf.extend(encode(&tile));
        }
        let block = S * S * 8;
        let result = alltoall(ep, &sendbuf, block, &tuning)?;

        // Reassemble: tile from rank j holds rows [j·S..) × my columns;
        // transposed, it is my rows of the transposed matrix.
        let mut panel = vec![0f64; S * dim];
        for j in 0..N {
            let tile = decode(&result[j * block..(j + 1) * block]);
            for r in 0..S {
                for c in 0..S {
                    // element (j·S + r, rank·S + c) of A becomes element
                    // (rank·S + c, j·S + r) of Aᵀ — row c of my panel.
                    panel[c * dim + j * S + r] = tile[r * S + c];
                }
            }
        }
        // Verify the whole panel against the formula.
        for r in 0..S {
            for c in 0..dim {
                let expected = element(c, rank * S + r); // Aᵀ[x][y] = A[y][x]
                assert_eq!(panel[r * dim + c], expected, "rank {rank} ({r},{c})");
            }
        }
        Ok(ep.virtual_time())
    })
    .expect("transpose failed");

    let c = out.metrics.global_complexity().expect("aligned rounds");
    println!("transposed a {dim}×{dim} f64 matrix across {N} processors");
    println!("communication: {c}");
    println!(
        "virtual time under SP-1 model: {:.2} ms",
        out.virtual_makespan() * 1e3
    );
    println!("every rank verified its slice of Aᵀ element-by-element ✓");
}

//! Power iteration with a row-distributed matrix, using the
//! concatenation operation each step — the paper's §1.1: "The
//! concatenation operation can be used in matrix multiplication and in
//! basic linear algebra operations."
//!
//! The matrix `A` (n·s × n·s) is row-distributed; the iterate `x` is
//! slice-distributed. Every matvec needs the full `x`, so each iteration
//! performs one allgather (concatenation) of the slices, then a local
//! row-panel multiply, then an allgather of partial squared norms to
//! normalize. Converges to the dominant eigenvalue.
//!
//! ```text
//! cargo run --example allgather_matmul
//! ```

use bruck::prelude::*;

const N: usize = 6; // processors
const S: usize = 8; // rows per processor ⇒ a 48×48 matrix
const ITERS: usize = 60;

/// A symmetric positive matrix with a known dominant structure:
/// diag-heavy plus smooth off-diagonal coupling.
fn a(row: usize, col: usize) -> f64 {
    let d = if row == col { 10.0 } else { 0.0 };
    d + 1.0 / (1.0 + (row as f64 - col as f64).abs())
}

fn encode(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn decode(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn main() {
    let dim = N * S;
    let cfg = ClusterConfig::new(N);
    let tuning = Tuning::builder().build();

    let out = Cluster::run(&cfg, |ep| {
        let rank = ep.rank();
        // My rows of A.
        let rows: Vec<f64> = (0..S)
            .flat_map(|r| (0..dim).map(move |c| a(rank * S + r, c)))
            .collect();
        // My slice of x, initialized to 1.
        let mut x_slice = vec![1.0f64; S];
        let mut lambda = 0.0f64;
        for _ in 0..ITERS {
            // Allgather the full iterate.
            let x = decode(&allgather(ep, &encode(&x_slice), &tuning)?);
            // Local panel multiply: y_slice = A_panel · x.
            let mut y_slice = vec![0.0f64; S];
            for r in 0..S {
                y_slice[r] = (0..dim).map(|c| rows[r * dim + c] * x[c]).sum();
            }
            // Rayleigh quotient pieces and norm via a second allgather.
            let partial = [
                y_slice
                    .iter()
                    .zip(&x_slice)
                    .map(|(y, x)| y * x)
                    .sum::<f64>(),
                x_slice.iter().map(|x| x * x).sum::<f64>(),
                y_slice.iter().map(|y| y * y).sum::<f64>(),
            ];
            let all = decode(&allgather(ep, &encode(&partial), &tuning)?);
            let yx: f64 = all.chunks(3).map(|c| c[0]).sum();
            let xx: f64 = all.chunks(3).map(|c| c[1]).sum();
            let yy: f64 = all.chunks(3).map(|c| c[2]).sum();
            lambda = yx / xx;
            let norm = yy.sqrt();
            for v in &mut y_slice {
                *v /= norm;
            }
            x_slice = y_slice;
        }
        Ok(lambda)
    })
    .expect("power iteration failed");

    let lambda = out.results[0];
    for &l in &out.results {
        assert!(
            (l - lambda).abs() < 1e-9,
            "ranks disagree on the eigenvalue"
        );
    }
    // Sequential verification on one node.
    let dense: Vec<f64> = (0..dim * dim).map(|i| a(i / dim, i % dim)).collect();
    let mut x = vec![1.0f64; dim];
    let mut lambda_seq = 0.0;
    for _ in 0..ITERS {
        let y: Vec<f64> = (0..dim)
            .map(|r| (0..dim).map(|c| dense[r * dim + c] * x[c]).sum())
            .collect();
        let yx: f64 = y.iter().zip(&x).map(|(a, b)| a * b).sum();
        let xx: f64 = x.iter().map(|v| v * v).sum();
        lambda_seq = yx / xx;
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        x = y.into_iter().map(|v| v / norm).collect();
    }
    assert!(
        (lambda - lambda_seq).abs() < 1e-9,
        "distributed {lambda} vs sequential {lambda_seq}"
    );
    let c = out.metrics.global_complexity().expect("aligned rounds");
    println!("power iteration on a {dim}×{dim} matrix over {N} processors");
    println!("dominant eigenvalue ≈ {lambda:.6} (sequential check: {lambda_seq:.6}) ✓");
    println!("total communication over {ITERS} iterations: {c}");
    println!(
        "virtual time under SP-1 model: {:.2} ms",
        out.virtual_makespan() * 1e3
    );
}

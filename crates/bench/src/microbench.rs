//! A minimal, self-contained micro-benchmark harness with a
//! Criterion-shaped API.
//!
//! The workspace builds fully offline, so the benches under `benches/`
//! link against this module instead of the external `criterion` crate.
//! The surface mirrors the subset the benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `measurement_time`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, and the
//! [`crate::criterion_group!`]/[`crate::criterion_main!`] macros — so a
//! bench file ports by swapping one import line.
//!
//! Each benchmark times whole invocations of the routine: one warmup
//! call, then up to `sample_size` samples bounded by `measurement_time`,
//! reporting min/median/mean wall-clock per call.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level driver handed to each bench group function.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Sample>,
}

#[derive(Debug)]
struct Sample {
    id: String,
    min: Duration,
    median: Duration,
    mean: Duration,
    samples: usize,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Print the accumulated one-line-per-benchmark summary table.
    pub fn final_summary(&self) {
        println!(
            "\n{:<48} {:>12} {:>12} {:>12} {:>8}",
            "benchmark", "min", "median", "mean", "n"
        );
        for s in &self.results {
            println!(
                "{:<48} {:>12} {:>12} {:>12} {:>8}",
                s.id,
                fmt_duration(s.min),
                fmt_duration(s.median),
                fmt_duration(s.mean),
                s.samples
            );
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named benchmark group with shared sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Cap the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a routine identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.record(&id, bencher.samples);
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        self.record(&id, bencher.samples);
    }

    /// Finish the group (summary printing happens at `final_summary`).
    pub fn finish(&mut self) {}

    fn record(&mut self, id: &BenchmarkId, mut samples: Vec<Duration>) {
        if samples.is_empty() {
            return;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let full = format!("{}/{}", self.name, id.0);
        println!(
            "{full}: min {} median {} mean {} ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            samples.len()
        );
        self.criterion.results.push(Sample {
            id: full,
            min,
            median,
            mean,
            samples: samples.len(),
        });
    }
}

/// Times calls of a routine; handed to the bench closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time whole invocations of `routine` (one untimed warmup first).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// A benchmark identifier, optionally `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// Group bench functions under one name (Criterion-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::microbench::Criterion) {
            $( $f(c); )+
        }
    };
}

/// Entry point running each group then printing the summary table.
///
/// Runs the repo's `ci/check.sh` lint gate first when the
/// `BRUCK_PRERUN_CHECK` environment variable is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::harness::prerun_check();
            let mut c = $crate::microbench::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_collects_samples() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).measurement_time(Duration::from_millis(50));
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &x| {
                b.iter(|| x * 2);
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|s| s.samples >= 1 && s.samples <= 4));
        assert_eq!(c.results[0].id, "g/noop");
        assert_eq!(c.results[1].id, "g/param/4");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 7).0, "a/7");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}

//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bruck-bench --bin figures -- <subcommand>
//! ```
//!
//! Absolute numbers come from the virtual-time engine calibrated with the
//! paper's SP-1 parameters (β = 29 µs, τ = 0.12 µs/B) plus the §3.5
//! congestion/system-noise factors; shapes (who wins, crossover points,
//! optimal-radix drift) are the reproduction targets. TSVs land in
//! `results/`.

use std::sync::Arc;

use bruck_bench::harness::{measure_concat, measure_index, ms, Measurement, TsvSink};
use bruck_collectives::concat::{bruck as concat_bruck, ConcatAlgorithm};
use bruck_collectives::index::IndexAlgorithm;
use bruck_model::bounds::{concat_bounds, index_bounds};
use bruck_model::cost::{CostModel, LinearModel, Sp1Model};
use bruck_model::partition::Preference;
use bruck_model::tuning::{best_radix, power_of_two_radices};
use bruck_sched::ScheduleStats;

const N: usize = 64; // the paper's 64-node SP-1

fn sp1() -> Arc<dyn CostModel> {
    Arc::new(Sp1Model::calibrated())
}

/// Fig. 4: index time vs message size for power-of-two radices on 64
/// nodes. The paper's observation: smaller radices win at small message
/// sizes and vice versa.
fn fig4() {
    println!("\n=== Fig. 4: index time vs message size, power-of-two radices, n = {N} ===");
    let radices: Vec<usize> = power_of_two_radices(N).collect();
    let mut sink = TsvSink::new("fig4");
    let header: Vec<String> = std::iter::once("bytes".to_string())
        .chain(radices.iter().map(|r| format!("r={r}_ms")))
        .collect();
    sink.row(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for exp in 0..=14u32 {
        let block = 1usize << exp; // 1 B .. 16 KiB
        let mut fields = vec![block.to_string()];
        for &r in &radices {
            let m = measure_index(IndexAlgorithm::BruckRadix(r), N, block, 1, sp1());
            fields.push(ms(m.virtual_time));
        }
        sink.row(&fields.iter().map(String::as_str).collect::<Vec<_>>());
    }
    sink.finish();
}

/// Fig. 5: r = 2 vs r = n vs the best power-of-two radix; the paper's
/// break-even between the two extremes sits at ~100–200 B.
fn fig5() {
    println!("\n=== Fig. 5: r=2 vs r={N} vs best power-of-two radix, n = {N} ===");
    let mut sink = TsvSink::new("fig5");
    sink.row(&["bytes", "r2_ms", "rn_ms", "best_pow2_ms", "best_r"]);
    let mut crossover: Option<(usize, usize)> = None;
    let mut prev: Option<(usize, f64, f64)> = None;
    for exp in 0..=14u32 {
        let block = 1usize << exp;
        let m2 = measure_index(IndexAlgorithm::BruckRadix(2), N, block, 1, sp1());
        let mn = measure_index(IndexAlgorithm::BruckRadix(N), N, block, 1, sp1());
        let choice = best_radix(N, block, 1, sp1().as_ref(), power_of_two_radices(N));
        let mb = measure_index(IndexAlgorithm::BruckRadix(choice.radix), N, block, 1, sp1());
        sink.row(&[
            &block.to_string(),
            &ms(m2.virtual_time),
            &ms(mn.virtual_time),
            &ms(mb.virtual_time),
            &choice.radix.to_string(),
        ]);
        if let Some((pb, p2, pn)) = prev {
            if (p2 <= pn) != (m2.virtual_time <= mn.virtual_time) {
                crossover = Some((pb, block));
            }
        }
        prev = Some((block, m2.virtual_time, mn.virtual_time));
    }
    if let Some((lo, hi)) = crossover {
        println!(
            "# break-even between r=2 and r={N}: between {lo} and {hi} bytes (paper: ~100–200 B)"
        );
    } else {
        println!("# no break-even found in sweep — unexpected");
    }
    sink.finish();
}

/// Fig. 6: index time vs radix for fixed message sizes 32/64/128 B; the
/// paper's observation: the minimum moves to larger radices as messages
/// grow.
fn fig6() {
    println!("\n=== Fig. 6: index time vs radix, message sizes 32/64/128 B (+512 B), n = {N} ===");
    // The paper's three sizes, plus 512 B to make the minimum's rightward
    // drift unmistakable at this model's granularity.
    let sizes = [32usize, 64, 128, 512];
    let mut sink = TsvSink::new("fig6");
    sink.row(&["radix", "b32_ms", "b64_ms", "b128_ms", "b512_ms"]);
    let mut minima = vec![(f64::INFINITY, 0usize); sizes.len()];
    for r in 2..=N {
        let mut fields = vec![r.to_string()];
        for (si, &b) in sizes.iter().enumerate() {
            let m = measure_index(IndexAlgorithm::BruckRadix(r), N, b, 1, sp1());
            if m.virtual_time < minima[si].0 {
                minima[si] = (m.virtual_time, r);
            }
            fields.push(ms(m.virtual_time));
        }
        sink.row(&fields.iter().map(String::as_str).collect::<Vec<_>>());
    }
    for (si, &b) in sizes.iter().enumerate() {
        println!("# minimum for {b} B at radix {}", minima[si].1);
    }
    sink.finish();
}

/// Table 1: the last-round partition for the paper's example geometry.
fn table1() {
    println!("\n=== Table 1: last-round table partitioning ===");
    println!("paper's standalone example (n1=3, n2=7, b=3, k=3):");
    let plan = bruck_model::partition::plan_last_round(3, 7, 3, 3, Preference::Rounds);
    print!("{}", plan.render());
    for (i, area) in plan.rounds[0].iter().enumerate() {
        println!(
            "# area A{}: offset {}, {} bytes (each node sends them to node i+{})",
            i + 1,
            area.offset,
            area.bytes(),
            area.offset
        );
    }
    println!("\nas produced inside concat for n=10, k=3, b=3 (n1=4):");
    if let Some(plan) = concat_bruck::last_round_plan(10, 3, 3, Preference::Rounds) {
        print!("{}", plan.render());
    }
}

/// Lower-bound sweep: both operations, several (n, k), algorithm vs bound.
fn bounds() {
    println!("\n=== Lower bounds (Props 2.1–2.4) vs algorithms ===");
    let mut sink = TsvSink::new("bounds");
    sink.row(&["op", "n", "k", "b", "algo", "C1", "C1_lb", "C2", "C2_lb"]);
    for &(n, k) in &[(16usize, 1usize), (64, 1), (60, 2), (64, 3), (100, 4)] {
        let b = 64usize;
        let ilb = index_bounds(n, k, b);
        for algo in [
            IndexAlgorithm::BruckRadix(k + 1),
            IndexAlgorithm::BruckRadix(n),
            IndexAlgorithm::Direct,
        ] {
            let c = ScheduleStats::of(&algo.plan(n, b, k)).complexity;
            sink.row(&[
                "index",
                &n.to_string(),
                &k.to_string(),
                &b.to_string(),
                &algo.name(),
                &c.c1.to_string(),
                &ilb.c1.to_string(),
                &c.c2.to_string(),
                &ilb.c2.to_string(),
            ]);
        }
        let clb = concat_bounds(n, k, b);
        let mut algos = vec![
            ConcatAlgorithm::Bruck(Preference::Rounds),
            ConcatAlgorithm::GatherBroadcast,
        ];
        if k == 1 {
            algos.push(ConcatAlgorithm::Ring);
            if n.is_power_of_two() {
                algos.push(ConcatAlgorithm::RecursiveDoubling);
            }
        }
        for algo in algos {
            let c = ScheduleStats::of(&algo.plan(n, b, k)).complexity;
            sink.row(&[
                "concat",
                &n.to_string(),
                &k.to_string(),
                &b.to_string(),
                &algo.name(),
                &c.c1.to_string(),
                &clb.c1.to_string(),
                &c.c2.to_string(),
                &clb.c2.to_string(),
            ]);
        }
    }
    sink.finish();
}

/// Concatenation algorithm comparison over n (one-port, live runs).
fn concat_compare() {
    println!("\n=== Concatenation algorithms, live virtual times (b = 256, k = 1) ===");
    let mut sink = TsvSink::new("concat");
    sink.row(&["n", "bruck_ms", "gather_bcast_ms", "ring_ms", "recdbl_ms"]);
    for n in [4usize, 8, 16, 32, 64, 17, 33] {
        let b = 256;
        let mb = measure_concat(ConcatAlgorithm::Bruck(Preference::Rounds), n, b, 1, sp1());
        let mg = measure_concat(ConcatAlgorithm::GatherBroadcast, n, b, 1, sp1());
        let mr = measure_concat(ConcatAlgorithm::Ring, n, b, 1, sp1());
        let md: Option<Measurement> = n
            .is_power_of_two()
            .then(|| measure_concat(ConcatAlgorithm::RecursiveDoubling, n, b, 1, sp1()));
        sink.row(&[
            &n.to_string(),
            &ms(mb.virtual_time),
            &ms(mg.virtual_time),
            &ms(mr.virtual_time),
            &md.map_or("-".into(), |m| ms(m.virtual_time)),
        ]);
    }
    sink.finish();
}

/// §3.5 model-gap study: linear prediction vs SP-1-factor prediction vs
/// live virtual measurement.
fn model_gap() {
    println!("\n=== §3.5: linear model vs γ-factored SP-1 model ===");
    let mut sink = TsvSink::new("model_gap");
    sink.row(&["bytes", "radix", "linear_ms", "sp1_ms", "measured_sp1_ms"]);
    let linear: Arc<dyn CostModel> = Arc::new(LinearModel::sp1());
    for &block in &[16usize, 256, 4096] {
        for &r in &[2usize, 8, 64] {
            let plan = IndexAlgorithm::BruckRadix(r).plan(N, block, 1);
            let stats = ScheduleStats::of(&plan);
            let m = measure_index(IndexAlgorithm::BruckRadix(r), N, block, 1, sp1());
            sink.row(&[
                &block.to_string(),
                &r.to_string(),
                &ms(stats.predicted_time(linear.as_ref())),
                &ms(m.predicted_time),
                &ms(m.virtual_time),
            ]);
        }
    }
    sink.finish();
}

/// §3.5 factor (2) ablation: how much of the index algorithm's time is
/// the pack/unpack/rotation copying the linear model omits — per radix.
/// Small radices pack many blocks per message and pay the most; the
/// direct algorithm packs nothing.
fn ablation() {
    println!("\n=== Ablation: copy-cost modelling (§3.5 factor 2), n = {N}, b = 256 ===");
    let block = 256usize;
    // SP-1-class memory: ~40 MB/s copy ⇒ 0.025 µs/B (same order as τ).
    let with_copy: Arc<dyn CostModel> =
        Arc::new(Sp1Model::calibrated().with_copy_per_byte(0.025e-6));
    let mut sink = TsvSink::new("ablation");
    sink.row(&["radix", "no_copy_ms", "with_copy_ms", "overhead_pct"]);
    for &r in &[2usize, 4, 8, 16, 32, 64] {
        let base = measure_index(IndexAlgorithm::BruckRadix(r), N, block, 1, sp1());
        let copy = measure_index(
            IndexAlgorithm::BruckRadix(r),
            N,
            block,
            1,
            Arc::clone(&with_copy),
        );
        let pct = (copy.virtual_time / base.virtual_time - 1.0) * 100.0;
        sink.row(&[
            &r.to_string(),
            &ms(base.virtual_time),
            &ms(copy.virtual_time),
            &format!("{pct:.1}"),
        ]);
    }
    println!("# direct exchange (no pack/unpack, only the payload handoff):");
    let base = measure_index(IndexAlgorithm::Direct, N, block, 1, sp1());
    let copy = measure_index(IndexAlgorithm::Direct, N, block, 1, with_copy);
    println!(
        "# direct: {} ms → {} ms (+{:.1}%)",
        ms(base.virtual_time),
        ms(copy.virtual_time),
        (copy.virtual_time / base.virtual_time - 1.0) * 100.0
    );
    sink.finish();
}

/// Calibrate a linear model for THIS host's channel substrate from real
/// wall-clock ping-pong measurements, then compare its predictions with
/// measured algorithm wall times — the §3.5 methodology applied to the
/// simulation substrate itself.
fn calibrate() {
    use bruck_model::calibrate::fit_linear;
    use bruck_net::{Cluster, ClusterConfig};
    use std::time::Instant;

    println!("\n=== Calibrating both substrates (wall clock, §3.5 methodology) ===");
    let measure = |socket: bool| {
        let mut samples = Vec::new();
        for &bytes in &[64usize, 1024, 16384, 262_144, 1_048_576] {
            let reps = 64;
            let cfg = ClusterConfig::new(2).with_cost(Arc::new(LinearModel::free()));
            let body = move |ep: &mut bruck_net::Endpoint| {
                let peer = 1 - ep.rank();
                let payload = vec![0u8; bytes];
                for i in 0..reps {
                    ep.send_and_recv(peer, &payload, peer, i)?;
                }
                Ok(())
            };
            let start = Instant::now();
            if socket {
                bruck_net::SocketCluster::run(&cfg, body).expect("uds ping-pong failed");
            } else {
                Cluster::run(&cfg, body).expect("ping-pong failed");
            }
            let per_round = start.elapsed().as_secs_f64() / reps as f64;
            samples.push((bytes as u64, per_round));
        }
        fit_linear(&samples)
    };
    let chan = measure(false);
    let uds = measure(true);
    println!(
        "# channels     : β = {:.2} µs, τ = {:.4} µs/KiB (R² = {:.4})",
        chan.model.startup * 1e6,
        chan.model.per_byte * 1e6 * 1024.0,
        chan.r_squared
    );
    println!(
        "# unix sockets : β = {:.2} µs, τ = {:.4} µs/KiB (R² = {:.4})",
        uds.model.startup * 1e6,
        uds.model.per_byte * 1e6 * 1024.0,
        uds.r_squared
    );
    let fit = chan;
    // Validate: predict the r=2 and r=n index wall times on n=8 and
    // compare with measurement.
    let mut sink = TsvSink::new("calibrate");
    sink.row(&["radix", "predicted_us", "measured_us"]);
    for &r in &[2usize, 8] {
        let n = 8;
        let block = 4096;
        let plan = IndexAlgorithm::BruckRadix(r).plan(n, block, 1);
        let predicted = ScheduleStats::of(&plan).predicted_time(&fit.model);
        let cfg = ClusterConfig::new(n).with_cost(Arc::new(LinearModel::free()));
        let reps = 20;
        let start = Instant::now();
        for _ in 0..reps {
            Cluster::run(&cfg, |ep| {
                let input = vec![0u8; n * block];
                IndexAlgorithm::BruckRadix(r).run(ep, &input, block)
            })
            .expect("index failed");
        }
        let measured = start.elapsed().as_secs_f64() / f64::from(reps);
        sink.row(&[
            &r.to_string(),
            &format!("{:.1}", predicted * 1e6),
            &format!("{:.1}", measured * 1e6),
        ]);
    }
    println!("# (measured includes cluster spawn/teardown — expect a constant offset)");
    sink.finish();
}

/// Mixed-radix extension: where non-uniform digit vectors beat every
/// uniform radix.
fn mixed() {
    use bruck_model::mixed_radix::best_radix_vector;
    use bruck_model::tuning::all_radices;

    println!("\n=== Mixed-radix tuning (extension beyond the paper) ===");
    let model = Sp1Model::calibrated();
    let mut sink = TsvSink::new("mixed");
    sink.row(&[
        "n",
        "bytes",
        "best_uniform",
        "uniform_ms",
        "best_vector",
        "vector_ms",
        "win_pct",
    ]);
    for &n in &[33usize, 34, 36, 48, 64] {
        for &b in &[4usize, 16, 64] {
            let uniform = best_radix(n, b, 1, &model, all_radices(n));
            let (vector, _, vt) = best_radix_vector(n, b, 1, &model);
            let win = (1.0 - vt / uniform.predicted_time) * 100.0;
            sink.row(&[
                &n.to_string(),
                &b.to_string(),
                &format!("r={}", uniform.radix),
                &ms(uniform.predicted_time),
                &format!("{vector:?}"),
                &ms(vt),
                &format!("{win:.2}"),
            ]);
        }
    }
    sink.finish();
}

/// Extension: what happens when the paper's equal-distance assumption
/// breaks — flat index vs the two-level composition on an SMP cluster
/// (8 nodes × 8 cores), all under the hierarchical cost model.
fn hierarchy() {
    use bruck_collectives::index::hierarchical;
    use bruck_collectives::verify;
    use bruck_model::cost::HierarchicalModel;
    use bruck_net::{Cluster, ClusterConfig};

    println!("\n=== Hierarchy extension: 8 nodes × 8 cores, fast local / SP-1 remote ===");
    let n = 64;
    let node_size = 8;
    let model: Arc<dyn CostModel> = Arc::new(HierarchicalModel::smp_cluster(node_size));
    let mut sink = TsvSink::new("hierarchy");
    sink.row(&[
        "bytes",
        "flat_r2_ms",
        "flat_r8_ms",
        "flat_r64_ms",
        "two_level_ms",
    ]);
    for &block in &[16usize, 256, 4096] {
        let measure_flat = |r: usize| {
            let cfg = ClusterConfig::new(n).with_cost(Arc::clone(&model));
            let out = Cluster::run(&cfg, |ep| {
                let input = verify::index_input(ep.rank(), n, block);
                IndexAlgorithm::BruckRadix(r).run(ep, &input, block)
            })
            .expect("flat index failed");
            out.virtual_makespan()
        };
        let cfg = ClusterConfig::new(n).with_cost(Arc::clone(&model));
        let two_level = Cluster::run(&cfg, |ep| {
            let input = verify::index_input(ep.rank(), n, block);
            let result = hierarchical::run(ep, &input, block, node_size, node_size, node_size)?;
            assert_eq!(result, verify::index_expected(ep.rank(), n, block));
            Ok(())
        })
        .expect("two-level index failed")
        .virtual_makespan();
        sink.row(&[
            &block.to_string(),
            &ms(measure_flat(2)),
            &ms(measure_flat(8)),
            &ms(measure_flat(64)),
            &ms(two_level),
        ]);
    }
    sink.finish();
}

/// The §2/§3 trade-off as a Pareto frontier: every radix's `(C1, C2)`
/// point vs the stand-alone lower bounds and the Theorem 2.5 compound
/// bound — the conceptual figure behind the whole paper.
fn pareto() {
    use bruck_model::bounds::{index_bounds, index_c2_bound_when_round_optimal};

    println!("\n=== (C1, C2) Pareto frontier of the index family, n = {N}, b = 1 ===");
    let lb = index_bounds(N, 1, 1);
    println!(
        "# stand-alone bounds: C1 ≥ {}, C2 ≥ {}; compound (round-optimal ⇒) C2 ≥ {}",
        lb.c1,
        lb.c2,
        index_c2_bound_when_round_optimal(N, 1, 1)
    );
    let mut sink = TsvSink::new("pareto");
    sink.row(&["radix", "C1", "C2", "on_frontier"]);
    let points: Vec<(usize, u64, u64)> = (2..=N)
        .map(|r| {
            let c = ScheduleStats::of(&IndexAlgorithm::BruckRadix(r).plan(N, 1, 1)).complexity;
            (r, c.c1, c.c2)
        })
        .collect();
    for &(r, c1, c2) in &points {
        let dominated = points
            .iter()
            .any(|&(_, o1, o2)| (o1 < c1 && o2 <= c2) || (o1 <= c1 && o2 < c2));
        sink.row(&[
            &r.to_string(),
            &c1.to_string(),
            &c2.to_string(),
            if dominated { "no" } else { "yes" },
        ]);
    }
    sink.finish();
}

/// Model sensitivity: the tuner's radix choice under the linear, postal,
/// and LogP models the paper cites — same machine constants, different
/// structural assumptions.
fn models() {
    use bruck_model::cost::{LogPModel, PostalModel};
    use bruck_model::tuning::all_radices;

    println!("\n=== Optimal radix under alternative cost models, n = {N} ===");
    let linear = LinearModel::sp1();
    let postal = PostalModel::new(LinearModel::sp1(), 4.0);
    let logp = LogPModel::new(10e-6, 14e-6, 14e-6, 0.12e-6);
    let models: [(&str, &dyn CostModel); 3] = [
        ("linear", &linear),
        ("postal λ=4", &postal),
        ("logp", &logp),
    ];
    let mut sink = TsvSink::new("models");
    sink.row(&["bytes", "linear_r", "postal_r", "logp_r"]);
    for &b in &[4usize, 32, 256, 2048, 16384] {
        let mut fields = vec![b.to_string()];
        for (_, m) in &models {
            let choice = best_radix(N, b, 1, *m, all_radices(N));
            fields.push(choice.radix.to_string());
        }
        sink.row(&fields.iter().map(String::as_str).collect::<Vec<_>>());
    }
    println!("# (postal latency and LogP overheads inflate every round's cost,");
    println!("#  shifting the trade-off toward fewer rounds — the switch to large");
    println!("#  radices happens at larger message sizes than under the pure");
    println!("#  linear model)");
    sink.finish();
}

/// Appendix-style schedule dump: the actual wire schedule of the r = 2
/// index and the circulant concat on a small instance, rendered.
fn schedules() {
    println!("\n=== Rendered schedules (n = 8, b = 4, k = 1) ===");
    let s = IndexAlgorithm::BruckRadix(2).plan(8, 4, 1);
    println!("index r=2: {}", bruck_sched::summarize(&s));
    print!("{}", bruck_sched::render_rounds(&s));
    print!("{}", bruck_sched::render_activity(&s));
    let s = ConcatAlgorithm::Bruck(Preference::Rounds).plan(10, 3, 3);
    println!("\nconcat n=10 k=3: {}", bruck_sched::summarize(&s));
    print!("{}", bruck_sched::render_rounds(&s));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    match what {
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "table1" => table1(),
        "bounds" => bounds(),
        "concat" => concat_compare(),
        "model-gap" => model_gap(),
        "ablation" => ablation(),
        "calibrate" => calibrate(),
        "mixed" => mixed(),
        "hierarchy" => hierarchy(),
        "pareto" => pareto(),
        "models" => models(),
        "schedules" => schedules(),
        "all" => {
            fig4();
            fig5();
            fig6();
            table1();
            bounds();
            concat_compare();
            model_gap();
            ablation();
            mixed();
            hierarchy();
            pareto();
            models();
            schedules();
            calibrate();
        }
        other => {
            eprintln!(
                "unknown figure `{other}`; expected fig4|fig5|fig6|table1|bounds|concat|model-gap|ablation|calibrate|mixed|hierarchy|pareto|models|schedules|all"
            );
            std::process::exit(2);
        }
    }
}

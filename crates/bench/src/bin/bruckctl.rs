//! `bruckctl` — run any collective from the command line and print its
//! complexity, predicted time, and virtual measurement.
//!
//! ```text
//! bruckctl index  --n 64 --block 256 --radix 8 [--ports 2] [--model sp1|linear|free] [--transport channel|uds]
//! bruckctl index  --n 64 --block 256            # auto-tuned radix
//! bruckctl concat --n 60 --block 64 --ports 3
//! bruckctl plan   --op index --n 16 --block 4 --radix 2   # print the schedule
//! bruckctl tune   --n 64 --block 128 [--ports 1]          # radix table
//! bruckctl chaos  --n 8 --block 64 --seed 2 --loss 0.05   # lossy-wire soak
//! bruckctl chaos  --n 8 --block 64 --kill 3               # shrink-and-retry
//! bruckctl chaos  --n 8 --partition 0,1@1 --deadline-ms 500   # partition + budget
//! bruckctl chaos  --n 8 --stall 3:40                      # straggler vs watchdog
//! bruckctl chaos  --replay repro.chaos.tsv                # rerun a persisted reproducer
//! bruckctl chaos  --transport tcp --n 128 --seed 7        # socket-level chaos on the TCP fabric
//! bruckctl chaos  --transport tcp --replay repro.tsv      # replay a connection-chaos reproducer
//! bruckctl bench  --n 8 --ports 2 --block 65536           # wire pipelining table + BENCH_pr3.json
//! bruckctl bench  --min-mbps 50                           # CI floor: exit 1 below it
//! bruckctl bench  --autotune --n 8 --ports 2              # planner vs fixed radices + BENCH_pr4.json
//! bruckctl bench  --liveness --n 8 --ports 2              # deadline+watchdog overhead + BENCH_pr5.json
//! bruckctl bench  --skew 0,0.5,1.0,1.5 --n 8 --ports 2    # Zipf v-op family sweep + BENCH_pr6.json
//! bruckctl bench  --recovery --n 8 --ports 2              # membership steady-state overhead + BENCH_pr7.json
//! bruckctl bench  --scale --ns 128,256,512,1024           # event-driven TCP sweep + BENCH_pr9.json
//! bruckctl bench  --recovery --transport tcp              # connection-healing A/B + BENCH_pr10.json
//! ```

use std::sync::Arc;

use bruck_collectives::api::{alltoall, Tuning};
use bruck_collectives::concat::ConcatAlgorithm;
use bruck_collectives::index::IndexAlgorithm;
use bruck_collectives::verify;
use bruck_model::bounds::{concat_bounds, index_bounds};
use bruck_model::cost::{CostModel, LinearModel, Sp1Model};
use bruck_model::partition::Preference;
use bruck_model::tuning::{all_radices, best_radix, index_complexity_kport};
use bruck_net::{Cluster, ClusterConfig, Endpoint, FaultPlan, NetError, Reliability};
use bruck_sched::{from_tsv, render_activity, render_rounds, summarize, to_tsv, ScheduleStats};

#[derive(Debug)]
struct Args {
    command: String,
    n: usize,
    block: usize,
    ports: usize,
    radix: Option<usize>,
    op: String,
    model: String,
    transport: String,
    save: Option<String>,
    load: Option<String>,
    seed: u64,
    loss: f64,
    dup: f64,
    corrupt: f64,
    reps: usize,
    kill: Option<usize>,
    partition: Option<(Vec<usize>, u64)>,
    stall: Option<(usize, u64)>,
    deadline_ms: Option<u64>,
    samples: usize,
    out: Option<String>,
    min_mbps: Option<f64>,
    autotune: bool,
    liveness: bool,
    skew: Option<Vec<f64>>,
    replay: Option<String>,
    recovery: bool,
    scale: bool,
    ns: Option<Vec<usize>>,
    node_size: Option<usize>,
    workers: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut raw = std::env::args().skip(1);
    let command = raw.next().ok_or("missing command")?;
    let mut args = Args {
        command,
        n: 8,
        block: 64,
        ports: 1,
        radix: None,
        op: "index".into(),
        model: "sp1".into(),
        transport: "channel".into(),
        save: None,
        load: None,
        seed: 0xB10C,
        loss: 0.0,
        dup: 0.0,
        corrupt: 0.0,
        reps: 4,
        kill: None,
        partition: None,
        stall: None,
        deadline_ms: None,
        samples: 3,
        out: None,
        min_mbps: None,
        autotune: false,
        liveness: false,
        skew: None,
        replay: None,
        recovery: false,
        scale: false,
        ns: None,
        node_size: None,
        workers: None,
    };
    while let Some(flag) = raw.next() {
        let mut value = || raw.next().ok_or(format!("flag {flag} needs a value"));
        match flag.as_str() {
            "--n" => args.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--block" => args.block = value()?.parse().map_err(|e| format!("--block: {e}"))?,
            "--ports" => args.ports = value()?.parse().map_err(|e| format!("--ports: {e}"))?,
            "--radix" => args.radix = Some(value()?.parse().map_err(|e| format!("--radix: {e}"))?),
            "--op" => args.op = value()?,
            "--model" => args.model = value()?,
            "--transport" => args.transport = value()?,
            "--save" => args.save = Some(value()?),
            "--load" => args.load = Some(value()?),
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--loss" => args.loss = value()?.parse().map_err(|e| format!("--loss: {e}"))?,
            "--dup" => args.dup = value()?.parse().map_err(|e| format!("--dup: {e}"))?,
            "--corrupt" => {
                args.corrupt = value()?.parse().map_err(|e| format!("--corrupt: {e}"))?;
            }
            "--reps" => args.reps = value()?.parse().map_err(|e| format!("--reps: {e}"))?,
            "--kill" => args.kill = Some(value()?.parse().map_err(|e| format!("--kill: {e}"))?),
            "--partition" => args.partition = Some(parse_partition(&value()?)?),
            "--stall" => args.stall = Some(parse_stall(&value()?)?),
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--samples" => {
                args.samples = value()?.parse().map_err(|e| format!("--samples: {e}"))?;
            }
            "--out" => args.out = Some(value()?),
            "--min-mbps" => {
                args.min_mbps = Some(value()?.parse().map_err(|e| format!("--min-mbps: {e}"))?);
            }
            "--autotune" => args.autotune = true,
            "--liveness" => args.liveness = true,
            "--recovery" => args.recovery = true,
            "--scale" => args.scale = true,
            "--ns" => {
                let list = value()?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("--ns {s}: {e}")))
                    .collect::<Result<Vec<usize>, String>>()?;
                if list.is_empty() {
                    return Err("--ns needs at least one rank count".into());
                }
                args.ns = Some(list);
            }
            "--node-size" => {
                args.node_size = Some(value()?.parse().map_err(|e| format!("--node-size: {e}"))?);
            }
            "--workers" => {
                args.workers = Some(value()?.parse().map_err(|e| format!("--workers: {e}"))?);
            }
            "--replay" => args.replay = Some(value()?),
            "--skew" => {
                let list = value()?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("--skew {s}: {e}")))
                    .collect::<Result<Vec<f64>, String>>()?;
                if list.is_empty() {
                    return Err("--skew needs at least one Zipf exponent".into());
                }
                args.skew = Some(list);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// `--partition 0,1@2`: sever the links between `{0, 1}` and everyone
/// else once the sender has completed round 2.
fn parse_partition(spec: &str) -> Result<(Vec<usize>, u64), String> {
    let (ranks, round) = spec
        .split_once('@')
        .ok_or_else(|| format!("--partition {spec}: expected <r1,r2,...>@<round>"))?;
    let side = ranks
        .split(',')
        .map(|r| r.parse().map_err(|e| format!("--partition rank {r}: {e}")))
        .collect::<Result<Vec<usize>, String>>()?;
    if side.is_empty() {
        return Err("--partition needs at least one rank".into());
    }
    let round = round
        .parse()
        .map_err(|e| format!("--partition round: {e}"))?;
    Ok((side, round))
}

/// `--stall 3:40`: pause rank 3 for 40 ms at its round-1 preflight (the
/// same round `--kill` uses), a SIGSTOP-style straggler that stops
/// pumping acks entirely.
fn parse_stall(spec: &str) -> Result<(usize, u64), String> {
    let (rank, ms) = spec
        .split_once(':')
        .ok_or_else(|| format!("--stall {spec}: expected <rank>:<ms>"))?;
    let rank = rank.parse().map_err(|e| format!("--stall rank: {e}"))?;
    let ms = ms.parse().map_err(|e| format!("--stall ms: {e}"))?;
    Ok((rank, ms))
}

fn model_from(name: &str) -> Result<Arc<dyn CostModel>, String> {
    match name {
        "sp1" => Ok(Arc::new(Sp1Model::calibrated())),
        "linear" => Ok(Arc::new(LinearModel::sp1())),
        "free" => Ok(Arc::new(LinearModel::free())),
        other => Err(format!("unknown model {other} (sp1|linear|free)")),
    }
}

fn run_cluster<T: Send>(
    args: &Args,
    cfg: &ClusterConfig,
    body: impl Fn(&mut Endpoint) -> Result<T, NetError> + Sync,
) -> Result<bruck_net::RunOutput<T>, String> {
    match args.transport.as_str() {
        "channel" => Cluster::run(cfg, body).map_err(|e| e.to_string()),
        #[cfg(unix)]
        "uds" => bruck_net::SocketCluster::run(cfg, body).map_err(|e| e.to_string()),
        other => Err(format!("unknown transport {other} (channel|uds)")),
    }
}

fn cmd_index(args: &Args) -> Result<(), String> {
    let model = model_from(&args.model)?;
    let radix = args.radix.unwrap_or_else(|| {
        best_radix(
            args.n,
            args.block,
            args.ports,
            model.as_ref(),
            all_radices(args.n),
        )
        .radix
    });
    let algo = IndexAlgorithm::BruckRadix(radix);
    let cfg = ClusterConfig::new(args.n)
        .with_ports(args.ports)
        .with_cost(Arc::clone(&model));
    let (n, block) = (args.n, args.block);
    let out = run_cluster(args, &cfg, move |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        let result = algo.run(ep, &input, block)?;
        if result != verify::index_expected(ep.rank(), n, block) {
            return Err(NetError::App("wrong result".into()));
        }
        Ok(())
    })?;
    let c = out.metrics.global_complexity().ok_or("misaligned rounds")?;
    let lb = index_bounds(args.n, args.ports, args.block);
    println!(
        "index: n={n} b={block} k={} radix={radix} ({})",
        args.ports, args.transport
    );
    println!("  complexity : {c}");
    println!("  bounds     : C1 ≥ {}, C2 ≥ {}", lb.c1, lb.c2);
    println!(
        "  predicted  : {:.3} ms ({})",
        model.estimate(c) * 1e3,
        model.name()
    );
    println!("  virtual    : {:.3} ms", out.virtual_makespan() * 1e3);
    println!("  verified   : all ranks hold the transposed blocks ✓");
    Ok(())
}

fn cmd_concat(args: &Args) -> Result<(), String> {
    let model = model_from(&args.model)?;
    let algo = ConcatAlgorithm::Bruck(Preference::Rounds);
    let cfg = ClusterConfig::new(args.n)
        .with_ports(args.ports)
        .with_cost(Arc::clone(&model));
    let (n, block) = (args.n, args.block);
    let out = run_cluster(args, &cfg, move |ep| {
        let input = verify::concat_input(ep.rank(), block);
        let result = algo.run(ep, &input)?;
        if result != verify::concat_expected(n, block) {
            return Err(NetError::App("wrong result".into()));
        }
        Ok(())
    })?;
    let c = out.metrics.global_complexity().ok_or("misaligned rounds")?;
    let lb = concat_bounds(args.n, args.ports, args.block);
    println!(
        "concat: n={n} b={block} k={} ({})",
        args.ports, args.transport
    );
    println!("  complexity : {c}");
    println!("  bounds     : C1 ≥ {}, C2 ≥ {}", lb.c1, lb.c2);
    println!(
        "  predicted  : {:.3} ms ({})",
        model.estimate(c) * 1e3,
        model.name()
    );
    println!("  virtual    : {:.3} ms", out.virtual_makespan() * 1e3);
    println!("  verified   : all ranks hold the concatenation ✓");
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let schedule = match args.op.as_str() {
        "index" => {
            IndexAlgorithm::BruckRadix(args.radix.unwrap_or(2)).plan(args.n, args.block, args.ports)
        }
        "concat" => ConcatAlgorithm::Bruck(Preference::Rounds).plan(args.n, args.block, args.ports),
        other => return Err(format!("unknown --op {other} (index|concat)")),
    };
    schedule
        .validate()
        .map_err(|e| format!("invalid schedule: {e}"))?;
    println!("{}", summarize(&schedule));
    print!("{}", render_rounds(&schedule));
    if args.n <= 32 {
        print!("{}", render_activity(&schedule));
    }
    if let Some(path) = &args.save {
        std::fs::write(path, to_tsv(&schedule)).map_err(|e| format!("write {path}: {e}"))?;
        println!("[schedule written to {path}]");
    }
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let path = args.load.as_ref().ok_or("analyze needs --load <path>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let schedule = from_tsv(&text)?;
    schedule
        .validate()
        .map_err(|e| format!("invalid schedule: {e}"))?;
    let model = model_from(&args.model)?;
    let stats = ScheduleStats::of(&schedule);
    println!("{}", summarize(&schedule));
    println!(
        "predicted time under {}: {:.4} ms (closed form), {:.4} ms (event simulation)",
        model.name(),
        stats.predicted_time(model.as_ref()) * 1e3,
        bruck_sched::analyze::simulate_time(&schedule, model.as_ref()) * 1e3
    );
    Ok(())
}

fn cmd_tune(args: &Args) -> Result<(), String> {
    let model = model_from(&args.model)?;
    println!(
        "radix table for n={} b={} k={} under the {} model:",
        args.n,
        args.block,
        args.ports,
        model.name()
    );
    println!(
        "{:>6} {:>8} {:>12} {:>12}",
        "radix", "C1", "C2", "pred (ms)"
    );
    for r in all_radices(args.n) {
        let c = index_complexity_kport(args.n, r, args.block, args.ports);
        println!(
            "{r:>6} {:>8} {:>12} {:>12.4}",
            c.c1,
            c.c2,
            model.estimate(c) * 1e3
        );
    }
    let choice = best_radix(
        args.n,
        args.block,
        args.ports,
        model.as_ref(),
        all_radices(args.n),
    );
    println!(
        "→ best radix: {} ({:.4} ms)",
        choice.radix,
        choice.predicted_time * 1e3
    );
    Ok(())
}

fn print_link_report(metrics: &bruck_net::RunMetrics) {
    let link = metrics.link_totals();
    println!("  retransmits  : {}", link.retransmits);
    println!("  acks sent    : {}", link.acks_sent);
    println!("  dups dropped : {}", link.dups_dropped);
    println!("  corrupt drop : {}", link.corrupt_dropped);
    println!(
        "  injected     : {} losses, {} dups, {} corruptions, {} delays, {} ack losses",
        link.injected_losses,
        link.injected_dups,
        link.injected_corruptions,
        link.injected_delays,
        link.injected_ack_losses
    );
    println!(
        "  watchdog     : {} probes, {} replies, {} stall escalations, {} partition cuts",
        link.probes_sent, link.probe_replies, link.stall_escalations, link.partition_cuts
    );
    println!(
        "  window       : {:.2} mean occupancy, {:.0}% acks piggybacked",
        metrics.avg_window_occupancy(),
        metrics.piggyback_ratio() * 100.0
    );
    let per_rank: Vec<u64> = metrics
        .per_rank
        .iter()
        .map(|m| m.link.retransmits)
        .collect();
    println!("  per-rank retransmits: {per_rank:?}");
}

fn print_fabric_report(fs: &bruck_net::FabricStats) {
    println!(
        "  fabric       : {} link failures, {} reconnects ({} failed), {} pairs evicted",
        fs.link_failures, fs.reconnects, fs.reconnect_failures, fs.pairs_evicted
    );
    println!(
        "  socket inj   : {} resets, {} stalls, {} handshake drops; {:.1} ms in backoff, {} B shed",
        fs.injected_resets,
        fs.injected_stalls,
        fs.injected_handshake_drops,
        fs.backoff_ns as f64 / 1e6,
        fs.outbox_shed_bytes
    );
}

/// `bruckctl chaos --transport tcp`: drive a socket-level chaos
/// schedule (connection resets, half-open stalls, handshake
/// blackholes, reconnect flaps, mild wire loss) against the
/// event-driven TCP fabric via the resilient scale driver, then print
/// the membership outcome and the fabric's healing counters.
fn cmd_chaos_tcp(
    args: &Args,
    schedule: bruck_net::ChaosSchedule,
    source: &str,
) -> Result<(), String> {
    use bruck_model::planner::IndexPlan;
    use bruck_net::{RecoveryPolicy, TcpScaleCluster};
    let n = schedule.n;
    println!(
        "chaos (tcp fabric): {source} (seed={:#x} n={n})",
        schedule.seed
    );
    for e in &schedule.events {
        println!("  event        : {e}");
    }
    let node_size = args.node_size.unwrap_or_else(|| {
        (1..=32.min(n))
            .rev()
            .find(|&d| n.is_multiple_of(d))
            .unwrap_or(1)
    });
    let block = args.block;
    let policy = if schedule.has_rejoin() {
        RecoveryPolicy::WaitForRejoin {
            budget: std::time::Duration::from_secs(2),
        }
    } else {
        RecoveryPolicy::ShrinkOnly
    };
    let mut cfg = ClusterConfig::new(n)
        .with_node_size(node_size)
        .with_faults(schedule.plan())
        .with_reliability(Reliability::default())
        .with_timeout(std::time::Duration::from_secs(20))
        .with_quarantine(std::time::Duration::from_millis(5))
        .with_recovery(policy);
    cfg = cfg.with_deadline(std::time::Duration::from_millis(
        args.deadline_ms.unwrap_or(30_000),
    ));
    let inputs: Vec<Vec<u8>> = (0..n).map(|r| verify::index_input(r, n, block)).collect();
    let res = TcpScaleCluster::run_resilient_with_workers(
        &cfg,
        &IndexPlan::Radix(2),
        block,
        &inputs,
        4,
        args.workers,
    )
    .map_err(|e| e.to_string())?;
    for (i, got) in res.output.results.iter().enumerate() {
        for (j, &src) in res.survivors.iter().enumerate() {
            let dst = res.survivors[i];
            if got[j * block..(j + 1) * block] != inputs[src][dst * block..(dst + 1) * block] {
                return Err(format!(
                    "survivor {dst}: wrong bytes from original rank {src}"
                ));
            }
        }
    }
    let ms = &res.output.metrics.membership;
    println!("  node size    : {node_size}");
    println!("  policy       : {policy:?}");
    println!("  survivors    : {} of {n}", res.survivors.len());
    println!("  rejoined     : {:?}", res.rejoined);
    println!("  attempts     : {}", res.attempts);
    println!("  final view   : {}", res.view_id);
    println!(
        "  view changes : {} ({} evictions, {} rejoins, {} quarantines)",
        ms.view_changes, ms.evictions, ms.rejoins, ms.quarantines
    );
    print_fabric_report(&res.output.metrics.fabric);
    println!("  result       : bit-correct on the final membership ✓");
    Ok(())
}

/// `bruckctl chaos --replay <file>`: load a persisted (typically soak-
/// minimized) [`bruck_net::ChaosSchedule`] and drive it through the
/// full recovery stack — `WaitForRejoin` when the schedule marks its
/// killed rank as restartable, `ShrinkOnly` otherwise — printing the
/// final membership, the per-view counters, and the verdict.
fn cmd_chaos_replay(args: &Args, path: &str) -> Result<(), String> {
    use bruck_net::RecoveryPolicy;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let schedule = bruck_sched::chaos_from_tsv(&text)?;
    if args.transport == "tcp" || schedule.plan().has_socket_faults() {
        return cmd_chaos_tcp(args, schedule, path);
    }
    println!(
        "chaos replay: {path} (seed={:#x} n={})",
        schedule.seed, schedule.n
    );
    for e in &schedule.events {
        println!("  event        : {e}");
    }
    let policy = if schedule.has_rejoin() {
        RecoveryPolicy::WaitForRejoin {
            budget: std::time::Duration::from_secs(2),
        }
    } else {
        RecoveryPolicy::ShrinkOnly
    };
    let model = model_from(&args.model)?;
    let mut cfg = ClusterConfig::new(schedule.n)
        .with_ports(args.ports)
        .with_cost(model)
        .with_faults(schedule.plan())
        .with_reliability(Reliability::default())
        .with_timeout(std::time::Duration::from_secs(2))
        .with_quarantine(std::time::Duration::from_millis(5))
        .with_recovery(policy);
    if let Some(ms) = args.deadline_ms {
        cfg = cfg.with_deadline(std::time::Duration::from_millis(ms));
    }
    let (block, reps) = (args.block, args.reps.max(1));
    let tuning = Tuning::default();
    let resilient = Cluster::run_resilient(&cfg, 4, move |ep, _view| {
        let m = ep.size();
        let input = verify::index_input(ep.rank(), m, block);
        let mut last = Vec::new();
        for _ in 0..reps {
            last = alltoall(ep, &input, block, &tuning)?;
        }
        if last != verify::index_expected(ep.rank(), m, block) {
            return Err(NetError::App("wrong result".into()));
        }
        Ok(())
    })
    .map_err(|e| e.to_string())?;
    let ms = &resilient.output.metrics.membership;
    println!("  policy       : {policy:?}");
    println!("  survivors    : {:?}", resilient.survivors);
    println!("  rejoined     : {:?}", resilient.rejoined);
    println!("  attempts     : {}", resilient.attempts);
    println!("  final view   : {}", resilient.view_id);
    println!(
        "  view changes : {} ({} evictions, {} rejoins, {} quarantines)",
        ms.view_changes, ms.evictions, ms.rejoins, ms.quarantines
    );
    println!("  result       : bit-correct on the final membership ✓");
    Ok(())
}

fn cmd_chaos(args: &Args) -> Result<(), String> {
    if let Some(path) = &args.replay {
        return cmd_chaos_replay(args, &path.clone());
    }
    if args.transport == "tcp" {
        let schedule = bruck_net::ChaosSchedule::generate_socket_chaos(args.seed, args.n);
        return cmd_chaos_tcp(args, schedule, "generated socket chaos");
    }
    let model = model_from(&args.model)?;
    let mut plan = FaultPlan::new()
        .with_seed(args.seed)
        .with_loss(args.loss)
        .with_duplication(args.dup)
        .with_corruption(args.corrupt);
    if let Some(victim) = args.kill {
        if victim >= args.n {
            return Err(format!("--kill {victim} out of range (n = {})", args.n));
        }
        plan = plan.kill_rank_after(victim, 1);
    }
    if let Some((side, round)) = &args.partition {
        if let Some(&bad) = side.iter().find(|&&r| r >= args.n) {
            return Err(format!(
                "--partition rank {bad} out of range (n = {})",
                args.n
            ));
        }
        plan = plan.with_partition(side.clone(), *round);
    }
    if let Some((rank, ms)) = args.stall {
        if rank >= args.n {
            return Err(format!("--stall rank {rank} out of range (n = {})", args.n));
        }
        plan = plan.stall_rank(rank, 1, std::time::Duration::from_millis(ms));
    }
    let mut cfg = ClusterConfig::new(args.n)
        .with_ports(args.ports)
        .with_cost(model)
        .with_faults(plan)
        .with_reliability(Reliability::default());
    if let Some(ms) = args.deadline_ms {
        cfg = cfg.with_deadline(std::time::Duration::from_millis(ms));
    }
    let (n, block, reps) = (args.n, args.block, args.reps.max(1));
    let tuning = Tuning::default();
    println!(
        "chaos: n={n} b={block} seed={:#x} loss={:.1}% dup={:.1}% corrupt={:.1}% reps={reps} ({})",
        args.seed,
        args.loss * 100.0,
        args.dup * 100.0,
        args.corrupt * 100.0,
        args.transport
    );
    if let Some(ms) = args.deadline_ms {
        println!("  deadline     : {ms} ms (structured abort past the budget)");
    }
    let disruptive = args.kill.is_some() || args.partition.is_some() || args.stall.is_some();
    if disruptive {
        if args.transport != "channel" {
            return Err(
                "--kill/--partition/--stall demo shrink-and-retry on the channel transport".into(),
            );
        }
        // Shrink-and-retry: the killed rank fails the first attempt, the
        // survivors re-plan for the smaller membership and complete.
        let resilient = Cluster::run_resilient(&cfg, 3, move |ep, view| {
            let m = ep.size();
            let input = verify::index_input(ep.rank(), m, block);
            let mut last = Vec::new();
            for _ in 0..reps {
                last = alltoall(ep, &input, block, &tuning)?;
            }
            if last != verify::index_expected(ep.rank(), m, block) {
                return Err(NetError::App("wrong result".into()));
            }
            Ok(view.attempt)
        })
        .map_err(|e| e.to_string())?;
        if let Some(victim) = args.kill {
            println!("  killed rank  : {victim} (after round 1)");
        }
        if let Some((side, round)) = &args.partition {
            println!("  partition    : {side:?} cut off at round {round}");
        }
        if let Some((rank, ms)) = args.stall {
            println!("  stalled rank : {rank} for {ms} ms at round 1");
        }
        println!("  survivors    : {:?}", resilient.survivors);
        println!("  attempts     : {}", resilient.attempts);
        println!("  result       : bit-correct on all survivors ✓");
        if resilient.attempts > 1 {
            println!(
                "  (counters below are the successful attempt's; faulted attempts are discarded)"
            );
        }
        print_link_report(&resilient.output.metrics);
    } else {
        let out = run_cluster(args, &cfg, move |ep| {
            let input = verify::index_input(ep.rank(), n, block);
            let mut last = Vec::new();
            for _ in 0..reps {
                last = alltoall(ep, &input, block, &tuning)?;
            }
            if last != verify::index_expected(ep.rank(), n, block) {
                return Err(NetError::App("wrong result".into()));
            }
            Ok(())
        })?;
        println!("  result       : bit-correct on all ranks ✓");
        print_link_report(&out.metrics);
    }
    Ok(())
}

/// `bruckctl bench`: the wire-pipelining matrix over real sockets —
/// the pipelined data plane against the pre-pipelining baseline for
/// alltoall and allgather — printed as a table and written as the
/// tracked JSON artifact.
#[cfg(unix)]
fn cmd_bench(args: &Args) -> Result<(), String> {
    use bruck_bench::wire;
    // An out-of-range radix is a hard error, not a silent fallback: a CI
    // job that typos `--radix 9` on an 8-rank bench must fail loudly
    // instead of publishing numbers for a different schedule.
    if let Some(r) = args.radix {
        if r < 2 || r > args.n {
            return Err(format!(
                "--radix {r} is invalid for n = {}: need 2 ≤ r ≤ n",
                args.n
            ));
        }
    }
    if args.scale {
        return cmd_bench_scale(args);
    }
    if args.autotune {
        return cmd_bench_autotune(args);
    }
    if args.liveness {
        return cmd_bench_liveness(args);
    }
    if args.recovery {
        return cmd_bench_recovery(args);
    }
    if args.skew.is_some() {
        return cmd_bench_skew(args);
    }
    let cfg = wire::WireBenchConfig {
        n: args.n,
        ports: args.ports,
        block: args.block,
        reps: args.reps.max(1),
        samples: args.samples.max(1),
        radix: args.radix,
        ..wire::WireBenchConfig::default()
    };
    println!(
        "wire bench: n={} k={} block={} reps={}x{} (uds)",
        cfg.n, cfg.ports, cfg.block, cfg.reps, cfg.samples
    );
    let rows = wire::run_matrix(&cfg)?;
    print!("{}", wire::render_table(&rows));
    let out_path = args.out.clone().unwrap_or_else(|| "BENCH_pr3.json".into());
    std::fs::write(&out_path, wire::render_json(&rows))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("[results written to {out_path}]");
    if let Some(floor) = args.min_mbps {
        let worst = rows
            .iter()
            .filter(|r| r.collective == "alltoall" && r.mode == "pipelined")
            .map(|r| r.mbps)
            .fold(f64::INFINITY, f64::min);
        if worst < floor {
            return Err(format!(
                "alltoall throughput {worst:.1} MB/s below the {floor:.1} MB/s floor"
            ));
        }
        println!("floor      : {worst:.1} MB/s ≥ {floor:.1} MB/s ✓");
    }
    Ok(())
}

/// `bruckctl bench --autotune`: calibrate the socket transport, race
/// planner dispatch against every fixed radix across block sizes, and
/// write the tracked `BENCH_pr4.json` artifact.
#[cfg(unix)]
fn cmd_bench_autotune(args: &Args) -> Result<(), String> {
    use bruck_bench::wire;
    let cfg = wire::AutotuneBenchConfig {
        n: args.n,
        ports: args.ports,
        reps: args.reps.max(1),
        samples: args.samples.max(1),
        ..wire::AutotuneBenchConfig::default()
    };
    println!(
        "autotune bench: n={} k={} blocks={:?} radices={:?} reps={}x{} (uds)",
        cfg.n, cfg.ports, cfg.blocks, cfg.radices, cfg.reps, cfg.samples
    );
    let (rows, fit) = wire::run_autotune_matrix(&cfg)?;
    if let Some(w) = wire::fit_warning(&fit) {
        eprintln!("bruckctl: warning: {w}");
    }
    print!("{}", wire::render_autotune_table(&rows, &fit));
    let out_path = args.out.clone().unwrap_or_else(|| "BENCH_pr4.json".into());
    std::fs::write(&out_path, wire::render_autotune_json(&rows, &fit))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("[results written to {out_path}]");
    Ok(())
}

/// `bruckctl bench --liveness`: the price of the liveness layer — the
/// same alltoall shape with a per-lap deadline armed and the watchdog
/// on vs both off, written as the tracked `BENCH_pr5.json` artifact.
#[cfg(unix)]
fn cmd_bench_liveness(args: &Args) -> Result<(), String> {
    use bruck_bench::wire;
    let cfg = wire::WireBenchConfig {
        n: args.n,
        ports: args.ports,
        block: args.block,
        reps: args.reps.max(1),
        samples: args.samples.max(1),
        radix: args.radix,
        ..wire::WireBenchConfig::default()
    };
    println!(
        "liveness bench: n={} k={} block={} reps={}x{} (uds)",
        cfg.n, cfg.ports, cfg.block, cfg.reps, cfg.samples
    );
    let rows = wire::run_liveness_overhead(&cfg)?;
    print!("{}", wire::render_liveness_table(&rows));
    let out_path = args.out.clone().unwrap_or_else(|| "BENCH_pr5.json".into());
    std::fs::write(&out_path, wire::render_liveness_json(&rows))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("[results written to {out_path}]");
    Ok(())
}

/// `bruckctl bench --recovery`: the steady-state price of the
/// membership layer — the same faultless alltoall shape under the
/// plain driver vs `run_resilient` with `WaitForRejoin` armed, written
/// as the tracked `BENCH_pr7.json` artifact.
#[cfg(unix)]
fn cmd_bench_recovery(args: &Args) -> Result<(), String> {
    use bruck_bench::wire;
    if args.transport == "tcp" {
        return cmd_bench_recovery_tcp(args);
    }
    let cfg = wire::WireBenchConfig {
        n: args.n,
        ports: args.ports,
        block: args.block,
        reps: args.reps.max(1),
        samples: args.samples.max(1),
        radix: args.radix,
        ..wire::WireBenchConfig::default()
    };
    println!(
        "recovery bench: n={} k={} block={} reps={}x{} (uds)",
        cfg.n, cfg.ports, cfg.block, cfg.reps, cfg.samples
    );
    let rows = wire::run_recovery_overhead(&cfg)?;
    print!("{}", wire::render_recovery_table(&rows));
    let out_path = args.out.clone().unwrap_or_else(|| "BENCH_pr7.json".into());
    std::fs::write(&out_path, wire::render_recovery_json(&rows))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("[results written to {out_path}]");
    Ok(())
}

/// `bruckctl bench --recovery --transport tcp`: the price of the TCP
/// fabric's connection-healing machinery — the same faultless
/// collective with healing forced off vs armed, plus one cell that
/// absorbs a mid-run connection reset — written as the tracked
/// `BENCH_pr10.json` artifact.
#[cfg(unix)]
fn cmd_bench_recovery_tcp(args: &Args) -> Result<(), String> {
    use bruck_bench::wire;
    let mut cfg = wire::TcpRecoveryBenchConfig {
        block: args.block,
        reps: args.reps.max(1),
        samples: args.samples.max(1),
        workers: args.workers,
        ..wire::TcpRecoveryBenchConfig::default()
    };
    // `--n 8` is the generic bruckctl default; the recovery A/B wants
    // scale, so only an explicit larger n overrides the config default.
    if args.n > 8 {
        cfg.n = args.n;
    }
    if let Some(s) = args.node_size {
        cfg.node_size = s;
    }
    println!(
        "tcp recovery bench: n={} node_size={} block={} reps={}x{} (tcp loopback)",
        cfg.n, cfg.node_size, cfg.block, cfg.reps, cfg.samples
    );
    let rows = wire::run_tcp_recovery(&cfg)?;
    print!("{}", wire::render_tcp_recovery_table(&rows));
    let out_path = args.out.clone().unwrap_or_else(|| "BENCH_pr10.json".into());
    std::fs::write(&out_path, wire::render_tcp_recovery_json(&rows))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("[results written to {out_path}]");
    Ok(())
}

/// `bruckctl bench --skew <s1,s2,...>`: seeded Zipf workloads through
/// the non-uniform family — forced direct/padded/two-phase vs
/// `alltoallv_auto` — written as the tracked `BENCH_pr6.json` artifact.
#[cfg(unix)]
fn cmd_bench_skew(args: &Args) -> Result<(), String> {
    use bruck_bench::wire;
    let cfg = wire::SkewBenchConfig {
        n: args.n,
        ports: args.ports,
        base: args.block,
        svals: args.skew.clone().expect("guarded by caller"),
        seed: args.seed,
        reps: args.reps.max(1),
        samples: args.samples.max(1),
        ..wire::SkewBenchConfig::default()
    };
    println!(
        "skew bench: n={} k={} base={} s={:?} reps={}x{} (uds)",
        cfg.n, cfg.ports, cfg.base, cfg.svals, cfg.reps, cfg.samples
    );
    let (rows, fit) = wire::run_skew_matrix(&cfg)?;
    if let Some(w) = wire::fit_warning(&fit) {
        eprintln!("bruckctl: warning: {w}");
    }
    print!("{}", wire::render_skew_table(&rows, &fit));
    let out_path = args.out.clone().unwrap_or_else(|| "BENCH_pr6.json".into());
    std::fs::write(&out_path, wire::render_skew_json(&rows, &fit))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("[results written to {out_path}]");
    Ok(())
}

/// `bruckctl bench --scale`: the event-driven TCP sweep — flat
/// single-level vs two-level hierarchical plans at n = 128–1024 over
/// one multiplexing fabric — written as the tracked `BENCH_pr9.json`
/// artifact. `BRUCK_SCALE_MAX_N` caps the sweep (CI keeps it at 128 so
/// the gate stays fast); `--ns`, `--node-size`, and `--workers`
/// override the defaults outright.
#[cfg(unix)]
fn cmd_bench_scale(args: &Args) -> Result<(), String> {
    use bruck_bench::wire;
    let mut cfg = wire::ScaleBenchConfig {
        block: args.block,
        reps: args.reps.max(1),
        workers: args.workers,
        ..wire::ScaleBenchConfig::default()
    };
    if let Some(ns) = &args.ns {
        cfg.ns.clone_from(ns);
    }
    if let Some(s) = args.node_size {
        cfg.node_size = s;
    }
    if let Ok(cap) = std::env::var("BRUCK_SCALE_MAX_N") {
        let cap: usize = cap.parse().map_err(|e| format!("BRUCK_SCALE_MAX_N: {e}"))?;
        cfg.ns.retain(|&n| n <= cap);
        if cfg.ns.is_empty() {
            return Err(format!(
                "BRUCK_SCALE_MAX_N={cap} leaves no rank counts to sweep"
            ));
        }
    }
    println!(
        "scale bench: ns={:?} node_size={} block={} reps={} (tcp)",
        cfg.ns, cfg.node_size, cfg.block, cfg.reps
    );
    let (rows, fit) = wire::run_scale_matrix(&cfg)?;
    if let Some(w) = fit.as_ref().and_then(wire::fit_warning) {
        eprintln!("bruckctl: warning: {w}");
    }
    print!("{}", wire::render_scale_table(&rows));
    let out_path = args.out.clone().unwrap_or_else(|| "BENCH_pr9.json".into());
    std::fs::write(&out_path, wire::render_scale_json(&rows, fit.as_ref()))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("[results written to {out_path}]");
    if rows.iter().any(|r| !r.bit_correct) {
        return Err("scale sweep produced bit-incorrect results".into());
    }
    Ok(())
}

#[cfg(not(unix))]
fn cmd_bench(_args: &Args) -> Result<(), String> {
    Err("bench needs the unix-socket transport".into())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bruckctl: {e}");
            eprintln!("usage: bruckctl <index|concat|plan|analyze|tune|chaos|bench> [--n N] [--block B] [--ports K] [--radix R] [--op index|concat] [--model sp1|linear|free] [--transport channel|uds] [--seed S] [--loss P] [--dup P] [--corrupt P] [--reps R] [--kill RANK] [--partition RANKS@ROUND] [--stall RANK:MS] [--deadline-ms MS] [--samples S] [--out PATH] [--min-mbps F] [--autotune] [--liveness] [--skew S1,S2,...] [--recovery] [--scale] [--ns N1,N2,...] [--node-size S] [--workers W] [--replay FILE]");
            std::process::exit(2);
        }
    };
    let result = match args.command.as_str() {
        "index" => cmd_index(&args),
        "concat" => cmd_concat(&args),
        "plan" => cmd_plan(&args),
        "analyze" => cmd_analyze(&args),
        "tune" => cmd_tune(&args),
        "chaos" => cmd_chaos(&args),
        "bench" => cmd_bench(&args),
        other => Err(format!("unknown command {other}")),
    };
    if let Err(e) = result {
        eprintln!("bruckctl: {e}");
        std::process::exit(1);
    }
}

//! Benchmark harness for the Bruck all-to-all reproduction.
//!
//! The [`harness`] module runs collectives on live clusters under the
//! §3.5 SP-1 cost model and reports `(C1, C2)`, predicted time, and the
//! virtual-time measurement — the machinery behind the `figures` binary
//! that regenerates every figure and table of the paper's evaluation.
//! The [`microbench`] module is the self-contained wall-clock harness
//! the `benches/` targets run on (the workspace builds offline, so no
//! external Criterion). The [`wire`] module benchmarks the executed
//! data plane — sliding-window pipelining against the stop-and-wait
//! baseline over real sockets — behind `bruckctl bench` and the
//! `BENCH_pr3.json` artifact CI tracks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod microbench;
pub mod skew;
#[cfg(unix)]
pub mod wire;

//! Benchmark harness for the Bruck all-to-all reproduction.
//!
//! The [`harness`] module runs collectives on live clusters under the
//! §3.5 SP-1 cost model and reports `(C1, C2)`, predicted time, and the
//! virtual-time measurement — the machinery behind the `figures` binary
//! that regenerates every figure and table of the paper's evaluation.
//! The [`microbench`] module is the self-contained wall-clock harness
//! the `benches/` targets run on (the workspace builds offline, so no
//! external Criterion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod microbench;

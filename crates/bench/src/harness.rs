//! Measurement machinery shared by the `figures` binary and the Criterion
//! benches.

use std::sync::Arc;

use bruck_collectives::concat::ConcatAlgorithm;
use bruck_collectives::index::IndexAlgorithm;
use bruck_collectives::verify;
use bruck_model::complexity::Complexity;
use bruck_model::cost::CostModel;
use bruck_net::{Cluster, ClusterConfig};
use bruck_sched::ScheduleStats;

/// One measured data point.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Algorithm display name.
    pub algo: String,
    /// Processors.
    pub n: usize,
    /// Ports.
    pub ports: usize,
    /// Block size in bytes.
    pub block: usize,
    /// Complexity measured from the live run's metrics.
    pub complexity: Complexity,
    /// Virtual makespan of the live run (seconds) under the cost model.
    pub virtual_time: f64,
    /// Closed-form prediction from the planner's schedule (seconds).
    pub predicted_time: f64,
}

/// Run an index algorithm on a live cluster under `model` and measure it.
///
/// # Panics
///
/// Panics if the run fails or produces a wrong result — a benchmark must
/// never time an incorrect algorithm.
#[must_use]
pub fn measure_index(
    algo: IndexAlgorithm,
    n: usize,
    block: usize,
    ports: usize,
    model: Arc<dyn CostModel>,
) -> Measurement {
    let cfg = ClusterConfig::new(n)
        .with_ports(ports)
        .with_cost(Arc::clone(&model));
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        let mut result = vec![0u8; n * block];
        algo.run_into(ep, &input, block, &mut result)?;
        Ok(result)
    })
    .unwrap_or_else(|e| panic!("{} failed on n={n} b={block} k={ports}: {e}", algo.name()));
    for (rank, result) in out.results.iter().enumerate() {
        assert_eq!(
            result,
            &verify::index_expected(rank, n, block),
            "{} produced wrong data at rank {rank}",
            algo.name()
        );
    }
    let plan = algo.plan(n, block, ports);
    Measurement {
        algo: algo.name(),
        n,
        ports,
        block,
        complexity: out.metrics.global_complexity().expect("aligned rounds"),
        virtual_time: out.virtual_makespan(),
        predicted_time: ScheduleStats::of(&plan).predicted_time(model.as_ref()),
    }
}

/// Run a concatenation algorithm on a live cluster and measure it.
///
/// # Panics
///
/// Panics on failure or wrong results.
#[must_use]
pub fn measure_concat(
    algo: ConcatAlgorithm,
    n: usize,
    block: usize,
    ports: usize,
    model: Arc<dyn CostModel>,
) -> Measurement {
    let cfg = ClusterConfig::new(n)
        .with_ports(ports)
        .with_cost(Arc::clone(&model));
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::concat_input(ep.rank(), block);
        let mut result = vec![0u8; n * block];
        algo.run_into(ep, &input, &mut result)?;
        Ok(result)
    })
    .unwrap_or_else(|e| panic!("{} failed on n={n} b={block} k={ports}: {e}", algo.name()));
    let expected = verify::concat_expected(n, block);
    for (rank, result) in out.results.iter().enumerate() {
        assert_eq!(result, &expected, "{} wrong at rank {rank}", algo.name());
    }
    let plan = algo.plan(n, block, ports);
    Measurement {
        algo: algo.name(),
        n,
        ports,
        block,
        complexity: out.metrics.global_complexity().expect("aligned rounds"),
        virtual_time: out.virtual_makespan(),
        predicted_time: ScheduleStats::of(&plan).predicted_time(model.as_ref()),
    }
}

/// Pre-run lint gate for the benchmark targets.
///
/// When `BRUCK_PRERUN_CHECK` is set, runs `ci/check.sh` (rustfmt +
/// clippy, offline-friendly) from the workspace root and refuses to
/// benchmark a tree that fails it. Unset, this is a no-op so plain
/// `cargo bench` never recompiles the workspace twice.
///
/// # Panics
///
/// Panics if the check script cannot be spawned or reports failure.
pub fn prerun_check() {
    if std::env::var_os("BRUCK_PRERUN_CHECK").is_none() {
        return;
    }
    let script = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/check.sh");
    eprintln!("[prerun] running {script}");
    let status = std::process::Command::new("sh")
        .arg(script)
        .status()
        .expect("failed to spawn ci/check.sh");
    assert!(
        status.success(),
        "ci/check.sh failed — fix lints before benchmarking"
    );
}

/// Format seconds as milliseconds with fixed precision (figures use ms).
#[must_use]
pub fn ms(seconds: f64) -> String {
    format!("{:.4}", seconds * 1e3)
}

/// A minimal TSV writer that also mirrors rows to stdout.
#[derive(Debug)]
pub struct TsvSink {
    path: Option<std::path::PathBuf>,
    rows: Vec<String>,
}

impl TsvSink {
    /// A sink writing `results/<name>.tsv` (best-effort) and stdout.
    #[must_use]
    pub fn new(name: &str) -> Self {
        let dir = std::path::Path::new("results");
        let path = std::fs::create_dir_all(dir)
            .ok()
            .map(|()| dir.join(format!("{name}.tsv")));
        Self {
            path,
            rows: Vec::new(),
        }
    }

    /// Append one row (tab-separated fields).
    pub fn row(&mut self, fields: &[&str]) {
        let line = fields.join("\t");
        println!("{line}");
        self.rows.push(line);
    }

    /// Flush to disk.
    pub fn finish(self) {
        if let Some(path) = self.path {
            let _ = std::fs::write(&path, self.rows.join("\n") + "\n");
            eprintln!("[written {}]", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_model::cost::LinearModel;

    #[test]
    fn measure_index_agrees_with_plan() {
        let m = measure_index(
            IndexAlgorithm::BruckRadix(2),
            8,
            16,
            1,
            Arc::new(LinearModel::sp1()),
        );
        // Synchronous schedule: live virtual time equals the closed form.
        assert!((m.virtual_time - m.predicted_time).abs() < 1e-9, "{m:?}");
        assert_eq!(m.complexity.c1, 3);
    }

    #[test]
    fn measure_concat_agrees_with_plan() {
        let m = measure_concat(
            ConcatAlgorithm::Bruck(Default::default()),
            9,
            8,
            2,
            Arc::new(LinearModel::sp1()),
        );
        assert!((m.virtual_time - m.predicted_time).abs() < 1e-9, "{m:?}");
        assert_eq!(m.complexity.c1, 2);
    }
}

//! Wire-pipelining microbench: alltoall/allgather throughput and
//! latency over the real-I/O Unix-socket transport, the pipelined data
//! plane against the seed baseline.
//!
//! The baseline row reconstructs the pre-pipelining data plane exactly:
//! stop-and-wait ARQ (`window = 1`, no piggybacking) over transports
//! that wait for frames by sleep-polling every 50µs — the discipline
//! the socket layer used before blocking reads. The pipelined row is
//! the current defaults. Everything else (shape, reps, verification) is
//! identical, so the speedup isolates the data-plane change.
//!
//! Each case spins up a [`SocketCluster`], runs one untimed warmup
//! collective (absorbs thread-spawn skew and pool warmup), then times
//! `reps` back-to-back collectives per rank. A rep's cluster-wide wall
//! clock is the *maximum* across ranks for that rep — the straggler
//! defines the collective. Percentiles pool every rep of every sample
//! run, so `p99` reflects cross-run variance too.
//!
//! The output is both a human table ([`render_table`]) and a
//! hand-rolled JSON artifact ([`render_json`], no external
//! serialization crates) that CI tracks as `BENCH_pr3.json`.

use std::time::{Duration, Instant};

use bruck_collectives::api::{allgather, alltoall, Tuning};
use bruck_collectives::verify;
use bruck_model::WireTuning;
use bruck_net::{ClusterConfig, NetError, Reliability};

/// One benchmark case: a collective at a fixed shape under one window.
#[derive(Debug, Clone, Copy)]
pub struct WireBenchConfig {
    /// Cluster size.
    pub n: usize,
    /// Ports per round (the paper's `k`).
    pub ports: usize,
    /// Block size in bytes (per source-destination pair).
    pub block: usize,
    /// Timed collectives per cluster run.
    pub reps: usize,
    /// Independent cluster runs pooled into one distribution.
    pub samples: usize,
    /// Per-run watchdog.
    pub timeout: Duration,
}

impl Default for WireBenchConfig {
    /// The tracked shape: `n = 8`, `k = 2`, 64 KiB blocks.
    fn default() -> Self {
        Self {
            n: 8,
            ports: 2,
            block: 64 * 1024,
            reps: 6,
            samples: 3,
            timeout: Duration::from_secs(60),
        }
    }
}

/// How a benchmark case drives the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// The current data plane: sliding-window ARQ over blocking reads.
    Pipelined,
    /// The seed data plane: stop-and-wait ARQ over 50µs sleep-polled
    /// socket waits.
    SeedBaseline,
}

impl WireMode {
    /// Short label for tables and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Pipelined => "pipelined",
            Self::SeedBaseline => "seed-baseline",
        }
    }

    fn tuning(self) -> WireTuning {
        match self {
            Self::Pipelined => WireTuning::default(),
            Self::SeedBaseline => WireTuning::stop_and_wait(),
        }
    }
}

/// One row of the benchmark table.
#[derive(Debug, Clone)]
pub struct WireBenchRow {
    /// `"alltoall"` or `"allgather"`.
    pub collective: &'static str,
    /// `"pipelined"` or `"seed-baseline"`.
    pub mode: &'static str,
    /// Sliding-window size (1 = stop-and-wait).
    pub window: usize,
    /// Cluster size.
    pub n: usize,
    /// Ports per round.
    pub k: usize,
    /// The radix the planner chose for this shape.
    pub radix: usize,
    /// Block size in bytes.
    pub block: usize,
    /// Executed communication rounds per collective.
    pub rounds: u64,
    /// Payload bytes the whole cluster moves per collective.
    pub bytes_moved: u64,
    /// Pooled rep count behind the percentiles.
    pub reps: usize,
    /// Median cluster-wide wall clock per collective (ns).
    pub p50_ns: u64,
    /// 99th-percentile wall clock (ns).
    pub p99_ns: u64,
    /// Mean wall clock (ns).
    pub mean_ns: u64,
    /// Cluster goodput: payload bytes moved per wall-clock second, MB/s.
    pub mbps: f64,
    /// Mean reliability-window occupancy observed at send time.
    pub avg_window_occupancy: f64,
    /// Fraction of acks that rode on reverse-path data frames.
    pub piggyback_ratio: f64,
    /// Reliability-layer retransmissions across the whole matrix cell —
    /// nonzero on a clean wire means the rto is losing to scheduling.
    pub retransmits: u64,
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// Run one collective shape under one wire mode over the socket
/// transport and fold the pooled timings into a row.
///
/// # Errors
///
/// Propagates cluster setup or collective failures as a message.
pub fn run_case(
    collective: &'static str,
    cfg: &WireBenchConfig,
    mode: WireMode,
) -> Result<WireBenchRow, String> {
    let wire = mode.tuning();
    let (n, block, reps) = (cfg.n, cfg.block, cfg.reps.max(1));
    let tuning = Tuning::default();
    let radix = tuning.chosen_radix(n, block, cfg.ports).radix;
    let cluster_cfg = ClusterConfig::new(n)
        .with_ports(cfg.ports)
        .with_timeout(cfg.timeout)
        .with_reliability(Reliability::default().with_wire(wire))
        .with_serial_rounds(mode == WireMode::SeedBaseline);

    let mut pooled: Vec<u64> = Vec::with_capacity(reps * cfg.samples);
    let mut bytes_moved = 0u64;
    let mut rounds = 0u64;
    let mut occupancy = 0.0f64;
    let mut piggyback = 0.0f64;
    let mut retransmits = 0u64;
    for _ in 0..cfg.samples.max(1) {
        let body = |ep: &mut bruck_net::Endpoint| {
            // Test vectors are generated once per cluster run, outside
            // the timed laps: the bench measures the data plane, not
            // pattern generation.
            let (input, expected) = match collective {
                "alltoall" => (
                    verify::index_input(ep.rank(), n, block),
                    verify::index_expected(ep.rank(), n, block),
                ),
                _ => (
                    verify::concat_input(ep.rank(), block),
                    verify::concat_expected(n, block),
                ),
            };
            let run_one = |ep: &mut bruck_net::Endpoint| -> Result<(), NetError> {
                let got = match collective {
                    "alltoall" => alltoall(ep, &input, block, &tuning)?,
                    _ => allgather(ep, &input, &tuning)?,
                };
                if got != expected {
                    return Err(NetError::App(format!("{collective} bytes wrong")));
                }
                Ok(())
            };
            run_one(ep)?; // warmup, untimed
            let mut laps = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t0 = Instant::now();
                run_one(ep)?;
                laps.push(t0.elapsed().as_nanos() as u64);
            }
            Ok(laps)
        };
        let out = match mode {
            WireMode::Pipelined => bruck_net::SocketCluster::run(&cluster_cfg, body),
            WireMode::SeedBaseline => bruck_net::SocketCluster::run_legacy(&cluster_cfg, body),
        }
        .map_err(|e| format!("{collective} ({}): {e}", mode.label()))?;
        // Cluster-wide wall clock for rep j = the straggler rank's lap.
        for j in 0..reps {
            pooled.push(
                out.results
                    .iter()
                    .map(|laps| laps[j])
                    .max()
                    .unwrap_or_default(),
            );
        }
        let per_collective = (reps + 1) as u64; // warmup included in metrics
        bytes_moved = out.metrics.total_bytes() / per_collective;
        rounds = out
            .metrics
            .per_rank
            .iter()
            .map(bruck_net::RankMetrics::rounds)
            .max()
            .unwrap_or(0)
            / per_collective;
        occupancy = out.metrics.avg_window_occupancy();
        piggyback = out.metrics.piggyback_ratio();
        retransmits += out.metrics.total_retransmits();
    }
    pooled.sort_unstable();
    let mean_ns = (pooled.iter().sum::<u64>() / pooled.len().max(1) as u64).max(1);
    Ok(WireBenchRow {
        collective,
        mode: mode.label(),
        window: wire.window,
        n,
        k: cfg.ports,
        radix,
        block,
        rounds,
        bytes_moved,
        reps: pooled.len(),
        p50_ns: percentile(&pooled, 50),
        p99_ns: percentile(&pooled, 99),
        mean_ns,
        mbps: bytes_moved as f64 / (mean_ns as f64 / 1e9) / 1e6,
        avg_window_occupancy: occupancy,
        piggyback_ratio: piggyback,
        retransmits,
    })
}

/// Run the full matrix: both collectives, the pipelined data plane and
/// the seed baseline.
///
/// # Errors
///
/// Propagates the first failing case.
pub fn run_matrix(cfg: &WireBenchConfig) -> Result<Vec<WireBenchRow>, String> {
    let mut rows = Vec::new();
    for collective in ["alltoall", "allgather"] {
        for mode in [WireMode::Pipelined, WireMode::SeedBaseline] {
            rows.push(run_case(collective, cfg, mode)?);
        }
    }
    Ok(rows)
}

/// Wall-clock speedup of the pipelined data plane over the seed
/// baseline for `collective`, when both rows are present.
#[must_use]
pub fn speedup(rows: &[WireBenchRow], collective: &str) -> Option<f64> {
    let of = |mode: &str| {
        rows.iter()
            .filter(|r| r.collective == collective)
            .find(|r| r.mode == mode)
            .map(|r| r.mean_ns as f64)
    };
    let base = of("seed-baseline")?;
    let piped = of("pipelined")?;
    Some(base / piped)
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// Render the human table: one row per (collective, window).
#[must_use]
pub fn render_table(rows: &[WireBenchRow]) -> String {
    let mut out =
        format!(
        "{:<10} {:<13} {:>6} {:>4} {:>3} {:>3} {:>8} {:>6} {:>9} {:>9} {:>9} {:>6} {:>5} {:>5}\n",
        "collective", "mode", "window", "n", "k", "r", "bytes", "rounds", "MB/s", "p50", "p99",
        "occ", "pig", "rexmt"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<13} {:>6} {:>4} {:>3} {:>3} {:>8} {:>6} {:>9.1} {:>9} {:>9} {:>6.2} {:>5.2} {:>5}\n",
            r.collective,
            r.mode,
            r.window,
            r.n,
            r.k,
            r.radix,
            r.block,
            r.rounds,
            r.mbps,
            fmt_ns(r.p50_ns),
            fmt_ns(r.p99_ns),
            r.avg_window_occupancy,
            r.piggyback_ratio,
            r.retransmits,
        ));
    }
    for collective in ["alltoall", "allgather"] {
        if let Some(s) = speedup(rows, collective) {
            out.push_str(&format!(
                "{collective}: pipelined data plane speedup {s:.2}x over seed baseline\n"
            ));
        }
    }
    out
}

/// Render the machine-tracked JSON artifact (hand-rolled; the workspace
/// has no serialization dependency).
#[must_use]
pub fn render_json(rows: &[WireBenchRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"pr3-wire-pipelining\",\n");
    out.push_str("  \"transport\": \"uds\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"collective\": \"{}\", \"mode\": \"{}\", \"window\": {}, \"n\": {}, \
             \"k\": {}, \"radix\": {}, \
             \"block\": {}, \"rounds\": {}, \"bytes_moved\": {}, \"reps\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \"mbps\": {:.2}, \
             \"avg_window_occupancy\": {:.3}, \"piggyback_ratio\": {:.3}, \
             \"retransmits\": {}}}{}\n",
            r.collective,
            r.mode,
            r.window,
            r.n,
            r.k,
            r.radix,
            r.block,
            r.rounds,
            r.bytes_moved,
            r.reps,
            r.p50_ns,
            r.p99_ns,
            r.mean_ns,
            r.mbps,
            r.avg_window_occupancy,
            r.piggyback_ratio,
            r.retransmits,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let a2a = speedup(rows, "alltoall").unwrap_or(0.0);
    let ag = speedup(rows, "allgather").unwrap_or(0.0);
    out.push_str(&format!(
        "  \"speedup\": {{\"alltoall\": {a2a:.3}, \"allgather\": {ag:.3}}}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(collective: &'static str, window: usize, mean_ns: u64) -> WireBenchRow {
        WireBenchRow {
            collective,
            mode: if window == 1 {
                "seed-baseline"
            } else {
                "pipelined"
            },
            window,
            n: 8,
            k: 2,
            radix: 4,
            block: 65536,
            rounds: 4,
            bytes_moved: 1 << 22,
            reps: 12,
            p50_ns: mean_ns,
            p99_ns: mean_ns * 2,
            mean_ns,
            mbps: 100.0,
            avg_window_occupancy: 1.5,
            piggyback_ratio: 0.5,
            retransmits: 0,
        }
    }

    #[test]
    fn speedup_is_base_over_piped() {
        let rows = vec![row("alltoall", 8, 1_000_000), row("alltoall", 1, 3_000_000)];
        assert!((speedup(&rows, "alltoall").unwrap() - 3.0).abs() < 1e-9);
        assert!(speedup(&rows, "allgather").is_none());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = vec![row("alltoall", 8, 1_000_000), row("alltoall", 1, 2_000_000)];
        let json = render_json(&rows);
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"alltoall\": 2.000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn table_lists_every_row() {
        let rows = vec![row("alltoall", 8, 1_000), row("allgather", 1, 2_000)];
        let t = render_table(&rows);
        assert!(t.contains("alltoall") && t.contains("allgather"));
        assert!(t.lines().count() >= 3);
    }

    #[test]
    fn percentiles_clamp() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[5], 99), 5);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 51);
        assert_eq!(percentile(&v, 99), 100);
    }

    /// The real thing, scaled down so the suite stays fast: a tiny
    /// matrix over the socket transport still produces sane rows.
    #[cfg(unix)]
    #[test]
    fn small_matrix_runs_end_to_end() {
        let cfg = WireBenchConfig {
            n: 4,
            ports: 1,
            block: 2048,
            reps: 2,
            samples: 1,
            timeout: Duration::from_secs(30),
        };
        let row = run_case("alltoall", &cfg, WireMode::Pipelined).unwrap();
        assert_eq!((row.n, row.k, row.block), (4, 1, 2048));
        assert!(row.p50_ns > 0 && row.p99_ns >= row.p50_ns);
        assert!(row.mbps > 0.0);
        assert!(row.bytes_moved > 0);
        let base = run_case("alltoall", &cfg, WireMode::SeedBaseline).unwrap();
        assert_eq!(base.window, 1);
        assert_eq!(base.mode, "seed-baseline");
    }
}

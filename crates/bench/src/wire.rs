//! Wire-pipelining microbench: alltoall/allgather throughput and
//! latency over the real-I/O Unix-socket transport, the pipelined data
//! plane against the seed baseline.
//!
//! The baseline row reconstructs the pre-pipelining data plane exactly:
//! stop-and-wait ARQ (`window = 1`, no piggybacking) over transports
//! that wait for frames by sleep-polling every 50µs — the discipline
//! the socket layer used before blocking reads. The pipelined row is
//! the current defaults. Everything else (shape, reps, verification) is
//! identical, so the speedup isolates the data-plane change.
//!
//! Each case spins up a [`SocketCluster`], runs one untimed warmup
//! collective (absorbs thread-spawn skew and pool warmup), then times
//! `reps` back-to-back collectives per rank. A rep's cluster-wide wall
//! clock is the *maximum* across ranks for that rep — the straggler
//! defines the collective. Percentiles pool every rep of every sample
//! run, so `p99` reflects cross-run variance too.
//!
//! The output is both a human table ([`render_table`]) and a
//! hand-rolled JSON artifact ([`render_json`], no external
//! serialization crates) that CI tracks as `BENCH_pr3.json`.

use std::time::{Duration, Instant};

use bruck_collectives::api::{allgather, alltoall, alltoall_auto, alltoall_deadline, Tuning};
use bruck_collectives::autotune::calibrated_fit;
use bruck_collectives::primitives::barrier_dissemination;
use bruck_collectives::verify;
use bruck_collectives::vops::{alltoallv_auto_into, alltoallv_into, VLayout, VMethod};
use bruck_model::calibrate::LinearFit;
use bruck_model::cost::CostModel;
use bruck_model::planner::{IndexPlan, Planner, VIndexPlan};
use bruck_model::WireTuning;
use bruck_net::{ClusterConfig, FaultPlan, NetError, Reliability, TcpScaleCluster};

// ---------------------------------------------------------------------
// Environment metadata and calibration quality — shared by every
// BENCH_*.json artifact.
// ---------------------------------------------------------------------

/// Environment metadata stamped into every tracked `BENCH_*.json` so
/// n-sweep numbers stay comparable across machines and PRs: a 1-core CI
/// runner and an 8-core laptop produce very different walls for the
/// same shape, and without the capture the artifact can't say which it
/// was.
#[derive(Debug, Clone)]
pub struct EnvMeta {
    /// Logical CPUs available to this process.
    pub cpus: usize,
    /// Transport the bench drove (`"uds"`, `"tcp"`, `"channel"`).
    pub transport: String,
    /// Short git commit of the tree that produced the numbers
    /// (`"unknown"` outside a git checkout).
    pub git_commit: String,
    /// Wire fragment payload size the transports ran with.
    pub frag_payload: usize,
}

impl EnvMeta {
    /// Capture the current environment for `transport`.
    #[must_use]
    pub fn capture(transport: &str) -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let git_commit = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map_or_else(|| "unknown".into(), |s| s.trim().to_string());
        Self {
            cpus,
            transport: transport.into(),
            git_commit,
            frag_payload: bruck_net::frame::FRAG_PAYLOAD,
        }
    }

    /// The `"env"` line of a JSON artifact (trailing comma included).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        format!(
            "  \"env\": {{\"cpus\": {}, \"transport\": \"{}\", \"git_commit\": \"{}\", \
             \"frag_payload\": {}}},\n",
            self.cpus, self.transport, self.git_commit, self.frag_payload
        )
    }
}

/// Fit quality below which planner dispatch is a guess, not a
/// prediction: R² = 0.5 means the linear model explains half the
/// measured variance. BENCH_pr4 recorded R² = 0.19 on the live UDS
/// wire, and nothing surfaced it.
pub const FIT_R2_FLOOR: f64 = 0.5;

/// A human-readable warning when the calibration fit is below
/// [`FIT_R2_FLOOR`], or `None` when the fit is trustworthy.
#[must_use]
pub fn fit_warning(fit: &LinearFit) -> Option<String> {
    (fit.r_squared < FIT_R2_FLOOR).then(|| {
        format!(
            "calibration fit R² = {:.2} is below {FIT_R2_FLOOR}: the linear cost model explains \
             little of the measured variance, so planner dispatch and predicted times are \
             best-effort on this wire",
            fit.r_squared
        )
    })
}

/// One benchmark case: a collective at a fixed shape under one window.
#[derive(Debug, Clone, Copy)]
pub struct WireBenchConfig {
    /// Cluster size.
    pub n: usize,
    /// Ports per round (the paper's `k`).
    pub ports: usize,
    /// Block size in bytes (per source-destination pair).
    pub block: usize,
    /// Timed collectives per cluster run.
    pub reps: usize,
    /// Independent cluster runs pooled into one distribution.
    pub samples: usize,
    /// Per-run watchdog.
    pub timeout: Duration,
    /// Force this index radix instead of planner dispatch.
    pub radix: Option<usize>,
}

impl Default for WireBenchConfig {
    /// The tracked shape: `n = 8`, `k = 2`, 64 KiB blocks.
    fn default() -> Self {
        Self {
            n: 8,
            ports: 2,
            block: 64 * 1024,
            reps: 6,
            samples: 3,
            timeout: Duration::from_secs(60),
            radix: None,
        }
    }
}

/// How a benchmark case drives the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// The current data plane: sliding-window ARQ over blocking reads.
    Pipelined,
    /// The seed data plane: stop-and-wait ARQ over 50µs sleep-polled
    /// socket waits.
    SeedBaseline,
}

impl WireMode {
    /// Short label for tables and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Pipelined => "pipelined",
            Self::SeedBaseline => "seed-baseline",
        }
    }

    fn tuning(self) -> WireTuning {
        match self {
            Self::Pipelined => WireTuning::default(),
            Self::SeedBaseline => WireTuning::stop_and_wait(),
        }
    }
}

/// One row of the benchmark table.
#[derive(Debug, Clone)]
pub struct WireBenchRow {
    /// `"alltoall"` or `"allgather"`.
    pub collective: &'static str,
    /// `"pipelined"` or `"seed-baseline"`.
    pub mode: &'static str,
    /// Sliding-window size (1 = stop-and-wait).
    pub window: usize,
    /// Cluster size.
    pub n: usize,
    /// Ports per round.
    pub k: usize,
    /// The radix the planner chose for this shape.
    pub radix: usize,
    /// Block size in bytes.
    pub block: usize,
    /// Executed communication rounds per collective.
    pub rounds: u64,
    /// Payload bytes the whole cluster moves per collective.
    pub bytes_moved: u64,
    /// Pooled rep count behind the percentiles.
    pub reps: usize,
    /// Median cluster-wide wall clock per collective (ns).
    pub p50_ns: u64,
    /// 99th-percentile wall clock (ns).
    pub p99_ns: u64,
    /// Mean wall clock (ns).
    pub mean_ns: u64,
    /// Cluster goodput: payload bytes moved per wall-clock second, MB/s.
    pub mbps: f64,
    /// Mean reliability-window occupancy observed at send time.
    pub avg_window_occupancy: f64,
    /// Fraction of acks that rode on reverse-path data frames.
    pub piggyback_ratio: f64,
    /// Reliability-layer retransmissions across the whole matrix cell —
    /// nonzero on a clean wire means the rto is losing to scheduling.
    pub retransmits: u64,
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// Run one collective shape under one wire mode over the socket
/// transport and fold the pooled timings into a row.
///
/// # Errors
///
/// Propagates cluster setup or collective failures as a message.
pub fn run_case(
    collective: &'static str,
    cfg: &WireBenchConfig,
    mode: WireMode,
) -> Result<WireBenchRow, String> {
    let wire = mode.tuning();
    let (n, block, reps) = (cfg.n, cfg.block, cfg.reps.max(1));
    let tuning = match cfg.radix {
        Some(r) => Tuning::builder().radix(r).build(),
        None => Tuning::builder().planner(true).build(),
    };
    // Report the effective radix of the plan actually dispatched (the
    // planner's pick unless one was forced); 0 marks a mixed-radix plan.
    let choice = tuning.chosen_plan(n, block, cfg.ports);
    let radix = choice.plan.radix(n).unwrap_or(0);
    let cluster_cfg = ClusterConfig::new(n)
        .with_ports(cfg.ports)
        .with_timeout(cfg.timeout)
        .with_reliability(Reliability::default().with_wire(wire))
        .with_serial_rounds(mode == WireMode::SeedBaseline);

    let mut pooled: Vec<u64> = Vec::with_capacity(reps * cfg.samples);
    let mut bytes_moved = 0u64;
    let mut rounds = 0u64;
    let mut occupancy = 0.0f64;
    let mut piggyback = 0.0f64;
    let mut retransmits = 0u64;
    for _ in 0..cfg.samples.max(1) {
        let body = |ep: &mut bruck_net::Endpoint| {
            // Test vectors are generated once per cluster run, outside
            // the timed laps: the bench measures the data plane, not
            // pattern generation.
            let (input, expected) = match collective {
                "alltoall" => (
                    verify::index_input(ep.rank(), n, block),
                    verify::index_expected(ep.rank(), n, block),
                ),
                _ => (
                    verify::concat_input(ep.rank(), block),
                    verify::concat_expected(n, block),
                ),
            };
            let run_one = |ep: &mut bruck_net::Endpoint| -> Result<(), NetError> {
                let got = match collective {
                    "alltoall" => alltoall(ep, &input, block, &tuning)?,
                    _ => allgather(ep, &input, &tuning)?,
                };
                if got != expected {
                    return Err(NetError::App(format!("{collective} bytes wrong")));
                }
                Ok(())
            };
            run_one(ep)?; // warmup, untimed
            let mut laps = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t0 = Instant::now();
                run_one(ep)?;
                laps.push(t0.elapsed().as_nanos() as u64);
            }
            Ok(laps)
        };
        let out = match mode {
            WireMode::Pipelined => bruck_net::SocketCluster::run(&cluster_cfg, body),
            WireMode::SeedBaseline => bruck_net::SocketCluster::run_legacy(&cluster_cfg, body),
        }
        .map_err(|e| format!("{collective} ({}): {e}", mode.label()))?;
        // Cluster-wide wall clock for rep j = the straggler rank's lap.
        for j in 0..reps {
            pooled.push(
                out.results
                    .iter()
                    .map(|laps| laps[j])
                    .max()
                    .unwrap_or_default(),
            );
        }
        let per_collective = (reps + 1) as u64; // warmup included in metrics
        bytes_moved = out.metrics.total_bytes() / per_collective;
        rounds = out
            .metrics
            .per_rank
            .iter()
            .map(bruck_net::RankMetrics::rounds)
            .max()
            .unwrap_or(0)
            / per_collective;
        occupancy = out.metrics.avg_window_occupancy();
        piggyback = out.metrics.piggyback_ratio();
        retransmits += out.metrics.total_retransmits();
    }
    pooled.sort_unstable();
    let mean_ns = (pooled.iter().sum::<u64>() / pooled.len().max(1) as u64).max(1);
    Ok(WireBenchRow {
        collective,
        mode: mode.label(),
        window: wire.window,
        n,
        k: cfg.ports,
        radix,
        block,
        rounds,
        bytes_moved,
        reps: pooled.len(),
        p50_ns: percentile(&pooled, 50),
        p99_ns: percentile(&pooled, 99),
        mean_ns,
        mbps: bytes_moved as f64 / (mean_ns as f64 / 1e9) / 1e6,
        avg_window_occupancy: occupancy,
        piggyback_ratio: piggyback,
        retransmits,
    })
}

/// Run the full matrix: both collectives, the pipelined data plane and
/// the seed baseline.
///
/// # Errors
///
/// Propagates the first failing case.
pub fn run_matrix(cfg: &WireBenchConfig) -> Result<Vec<WireBenchRow>, String> {
    let mut rows = Vec::new();
    for collective in ["alltoall", "allgather"] {
        for mode in [WireMode::Pipelined, WireMode::SeedBaseline] {
            rows.push(run_case(collective, cfg, mode)?);
        }
    }
    Ok(rows)
}

/// Wall-clock speedup of the pipelined data plane over the seed
/// baseline for `collective`, when both rows are present.
#[must_use]
pub fn speedup(rows: &[WireBenchRow], collective: &str) -> Option<f64> {
    let of = |mode: &str| {
        rows.iter()
            .filter(|r| r.collective == collective)
            .find(|r| r.mode == mode)
            .map(|r| r.mean_ns as f64)
    };
    let base = of("seed-baseline")?;
    let piped = of("pipelined")?;
    Some(base / piped)
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// Render the human table: one row per (collective, window).
#[must_use]
pub fn render_table(rows: &[WireBenchRow]) -> String {
    let mut out =
        format!(
        "{:<10} {:<13} {:>6} {:>4} {:>3} {:>3} {:>8} {:>6} {:>9} {:>9} {:>9} {:>6} {:>5} {:>5}\n",
        "collective", "mode", "window", "n", "k", "r", "bytes", "rounds", "MB/s", "p50", "p99",
        "occ", "pig", "rexmt"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<13} {:>6} {:>4} {:>3} {:>3} {:>8} {:>6} {:>9.1} {:>9} {:>9} {:>6.2} {:>5.2} {:>5}\n",
            r.collective,
            r.mode,
            r.window,
            r.n,
            r.k,
            r.radix,
            r.block,
            r.rounds,
            r.mbps,
            fmt_ns(r.p50_ns),
            fmt_ns(r.p99_ns),
            r.avg_window_occupancy,
            r.piggyback_ratio,
            r.retransmits,
        ));
    }
    for collective in ["alltoall", "allgather"] {
        if let Some(s) = speedup(rows, collective) {
            out.push_str(&format!(
                "{collective}: pipelined data plane speedup {s:.2}x over seed baseline\n"
            ));
        }
    }
    out
}

/// Render the machine-tracked JSON artifact (hand-rolled; the workspace
/// has no serialization dependency).
#[must_use]
pub fn render_json(rows: &[WireBenchRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"pr3-wire-pipelining\",\n");
    out.push_str(&EnvMeta::capture("uds").to_json_line());
    out.push_str("  \"transport\": \"uds\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"collective\": \"{}\", \"mode\": \"{}\", \"window\": {}, \"n\": {}, \
             \"k\": {}, \"radix\": {}, \
             \"block\": {}, \"rounds\": {}, \"bytes_moved\": {}, \"reps\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \"mbps\": {:.2}, \
             \"avg_window_occupancy\": {:.3}, \"piggyback_ratio\": {:.3}, \
             \"retransmits\": {}}}{}\n",
            r.collective,
            r.mode,
            r.window,
            r.n,
            r.k,
            r.radix,
            r.block,
            r.rounds,
            r.bytes_moved,
            r.reps,
            r.p50_ns,
            r.p99_ns,
            r.mean_ns,
            r.mbps,
            r.avg_window_occupancy,
            r.piggyback_ratio,
            r.retransmits,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let a2a = speedup(rows, "alltoall").unwrap_or(0.0);
    let ag = speedup(rows, "allgather").unwrap_or(0.0);
    out.push_str(&format!(
        "  \"speedup\": {{\"alltoall\": {a2a:.3}, \"allgather\": {ag:.3}}}\n}}\n"
    ));
    out
}

// ---------------------------------------------------------------------
// Autotune bench: planner dispatch vs every fixed radix.
// ---------------------------------------------------------------------

/// The planner-vs-fixed-radix matrix: each block size runs once per
/// fixed radix plus once under full planner dispatch with a live
/// [`calibrated_fit`] of the socket transport.
#[derive(Debug, Clone)]
pub struct AutotuneBenchConfig {
    /// Cluster size.
    pub n: usize,
    /// Ports per round.
    pub ports: usize,
    /// Block sizes to sweep.
    pub blocks: Vec<usize>,
    /// Fixed radices to race the planner against.
    pub radices: Vec<usize>,
    /// Timed collectives per cluster run.
    pub reps: usize,
    /// Independent cluster runs pooled per cell.
    pub samples: usize,
    /// Per-run watchdog.
    pub timeout: Duration,
}

impl Default for AutotuneBenchConfig {
    /// The tracked shape (same cluster as the pr3 wire bench): `n = 8`,
    /// `k = 2`, blocks from start-up-bound to bandwidth-bound.
    fn default() -> Self {
        Self {
            n: 8,
            ports: 2,
            blocks: vec![256, 4096, 65536],
            radices: vec![2, 3, 4, 8],
            reps: 6,
            samples: 3,
            timeout: Duration::from_secs(60),
        }
    }
}

/// One cell of the autotune matrix.
#[derive(Debug, Clone)]
pub struct AutotuneRow {
    /// `"fixed-r<r>"` or `"auto"`.
    pub scheme: String,
    /// Label of the plan actually executed (e.g. `"bruck-r3"`,
    /// `"direct"`).
    pub plan: String,
    /// Cluster size.
    pub n: usize,
    /// Ports per round.
    pub k: usize,
    /// Block size in bytes.
    pub block: usize,
    /// Executed communication rounds per collective.
    pub rounds: u64,
    /// Payload bytes the cluster moves per collective.
    pub bytes_moved: u64,
    /// Pooled rep count behind the percentiles.
    pub reps: usize,
    /// Fastest cluster-wide lap (ns) — the schedule's cost with the
    /// least scheduler interference, the statistic the summary compares.
    pub min_ns: u64,
    /// Median cluster-wide wall clock per collective (ns).
    pub p50_ns: u64,
    /// 99th-percentile wall clock (ns).
    pub p99_ns: u64,
    /// Mean wall clock (ns).
    pub mean_ns: u64,
    /// Cluster goodput in MB/s.
    pub mbps: f64,
    /// Wall time the fitted model predicted for this plan (ns).
    pub predicted_ns: u64,
}

/// Probe the socket transport once and return the fit every subsequent
/// cluster run will reuse from the calibration cache.
///
/// # Errors
///
/// Propagates cluster setup or probe failures as a message.
pub fn probe_socket_fit(cfg: &AutotuneBenchConfig) -> Result<LinearFit, String> {
    let cluster_cfg = ClusterConfig::new(cfg.n)
        .with_ports(cfg.ports)
        .with_timeout(cfg.timeout)
        .with_reliability(Reliability::default());
    let out = bruck_net::SocketCluster::run(&cluster_cfg, calibrated_fit)
        .map_err(|e| format!("calibration probe: {e}"))?;
    Ok(out.results[0])
}

/// Run every scheme at one block size, **interleaved in one cluster
/// run**: each timed rep cycles through all fixed radices and the auto
/// path back to back, so every scheme's laps sample the same instant of
/// host-scheduler weather. Separate cells would let a noisy minute make
/// one radix look slow; pairing removes that.
///
/// # Errors
///
/// Propagates cluster setup or collective failures as a message.
pub fn run_autotune_block(
    cfg: &AutotuneBenchConfig,
    block: usize,
    fit: &LinearFit,
) -> Result<Vec<AutotuneRow>, String> {
    let (n, reps) = (cfg.n, cfg.reps.max(1));
    // `Some(r)` = forced radix, `None` = planner dispatch.
    let schemes: Vec<Option<usize>> = cfg
        .radices
        .iter()
        .map(|&r| Some(r))
        .chain(std::iter::once(None))
        .collect();
    let tunings: Vec<Tuning> = schemes
        .iter()
        .filter_map(|s| s.map(|r| Tuning::builder().radix(r).build()))
        .collect();
    let cluster_cfg = ClusterConfig::new(n)
        .with_ports(cfg.ports)
        .with_timeout(cfg.timeout)
        .with_reliability(Reliability::default());

    // pooled[scheme] = cluster-wide lap times across all samples.
    let mut pooled: Vec<Vec<u64>> = vec![Vec::with_capacity(reps * cfg.samples); schemes.len()];
    for _ in 0..cfg.samples.max(1) {
        let schemes_ref = &schemes;
        let tunings_ref = &tunings;
        let body = |ep: &mut bruck_net::Endpoint| {
            let input = verify::index_input(ep.rank(), n, block);
            let expected = verify::index_expected(ep.rank(), n, block);
            // The fit is cached process-globally under the transport
            // kind, so this is a cheap broadcast, not a re-probe. Doing
            // it inside the body keeps the auto path honest: it pays
            // for its own model lookup.
            let model = calibrated_fit(ep)?.model;
            let run_one =
                |ep: &mut bruck_net::Endpoint, scheme: &Option<usize>| -> Result<(), NetError> {
                    let got = match scheme {
                        Some(r) => {
                            let idx = schemes_ref
                                .iter()
                                .position(|s| s.as_ref() == Some(r))
                                .expect("scheme came from this list");
                            alltoall(ep, &input, block, &tunings_ref[idx])?
                        }
                        None => alltoall_auto(ep, &input, block, &model)?.0,
                    };
                    if got != expected {
                        return Err(NetError::App("alltoall bytes wrong".into()));
                    }
                    Ok(())
                };
            for scheme in schemes_ref {
                run_one(ep, scheme)?; // warmup, untimed
            }
            let mut laps = vec![Vec::with_capacity(reps); schemes_ref.len()];
            for rep in 0..reps {
                // Rotate the cycle's starting scheme each rep so no
                // scheme systematically inherits a fixed position's
                // cache/scheduler state (the last slot in a cycle
                // otherwise measures hot).
                for pos in 0..schemes_ref.len() {
                    let si = (rep + pos) % schemes_ref.len();
                    // Re-synchronise before every timed lap: without
                    // this, a straggler rank in one collective skews the
                    // measured start of the next, and the skew lands on
                    // whichever scheme happens to run next in the cycle.
                    barrier_dissemination(ep)?;
                    let t0 = Instant::now();
                    run_one(ep, &schemes_ref[si])?;
                    laps[si].push(t0.elapsed().as_nanos() as u64);
                }
            }
            Ok(laps)
        };
        let mut out = bruck_net::SocketCluster::run(&cluster_cfg, body)
            .map_err(|e| format!("autotune b={block}: {e}"))?;
        // Persist the calibration the schedules were planned under, so
        // the run's metrics can answer "was the model trustworthy?"
        // (BENCH_pr4 shipped with R² = 0.19 and nothing said so).
        out.metrics.fit = Some(*fit);
        // Cluster-wide lap for (scheme, rep) = the straggler rank's lap.
        for (si, bucket) in pooled.iter_mut().enumerate() {
            for j in 0..reps {
                bucket.push(
                    out.results
                        .iter()
                        .map(|laps| laps[si][j])
                        .max()
                        .unwrap_or_default(),
                );
            }
        }
    }

    let rows = schemes
        .iter()
        .zip(&mut pooled)
        .map(|(scheme, laps)| {
            let choice = match scheme {
                Some(r) => Tuning::builder()
                    .radix(*r)
                    .build()
                    .chosen_plan(n, block, cfg.ports),
                None => Planner::new(&fit.model).plan_index(n, cfg.ports, block),
            };
            laps.sort_unstable();
            let mean_ns = (laps.iter().sum::<u64>() / laps.len().max(1) as u64).max(1);
            // Goodput basis: the useful bytes an alltoall delivers are
            // n·(n−1)·b no matter which schedule carried them.
            let bytes_moved = (n * (n - 1) * block) as u64;
            AutotuneRow {
                scheme: scheme.map_or_else(|| "auto".into(), |r| format!("fixed-r{r}")),
                plan: choice.plan.label(),
                n,
                k: cfg.ports,
                block,
                rounds: choice.complexity.c1,
                bytes_moved,
                reps: laps.len(),
                min_ns: laps.first().copied().unwrap_or(0).max(1),
                p50_ns: percentile(laps, 50),
                p99_ns: percentile(laps, 99),
                mean_ns,
                mbps: bytes_moved as f64 / (mean_ns as f64 / 1e9) / 1e6,
                predicted_ns: (choice.predicted_time * 1e9) as u64,
            }
        })
        .collect();
    Ok(rows)
}

/// Run the full planner-vs-fixed matrix and return the rows plus the
/// fitted model they were planned under.
///
/// # Errors
///
/// Propagates the first failing cell.
pub fn run_autotune_matrix(
    cfg: &AutotuneBenchConfig,
) -> Result<(Vec<AutotuneRow>, LinearFit), String> {
    let fit = probe_socket_fit(cfg)?;
    let mut rows = Vec::new();
    for &block in &cfg.blocks {
        rows.extend(run_autotune_block(cfg, block, &fit)?);
    }
    Ok((rows, fit))
}

/// Per-block-size verdict: the auto row against the best and worst fixed
/// radix, on the **mean lap**. The schemes interleave inside one cluster
/// run with a barrier before every timed lap and a rotated cycle order
/// (see [`run_autotune_block`]) — a randomized block design — so every
/// scheme's laps sample the same host-scheduler noise and the paired
/// mean is the estimator that uses all of that pairing. The min is an
/// extreme order statistic of a heavy-tailed distribution and wanders
/// run to run; the paired means reproduce.
#[derive(Debug, Clone)]
pub struct AutotuneSummary {
    /// Block size in bytes.
    pub block: usize,
    /// Scheme label of the fastest fixed radix.
    pub best_fixed: String,
    /// Its mean lap (ns).
    pub best_fixed_ns: u64,
    /// Scheme label of the slowest fixed radix.
    pub worst_fixed: String,
    /// Its mean lap (ns).
    pub worst_fixed_ns: u64,
    /// Plan label the planner dispatched.
    pub auto_plan: String,
    /// The auto row's mean lap (ns).
    pub auto_ns: u64,
    /// `auto / best_fixed` — ≤ 1.05 means within 5% of the best.
    pub auto_vs_best: f64,
    /// `worst_fixed / auto` — ≥ 1.3 means the planner dodged a bad radix.
    pub worst_vs_auto: f64,
}

/// Fold the matrix rows into one [`AutotuneSummary`] per block size.
#[must_use]
pub fn summarize_autotune(rows: &[AutotuneRow]) -> Vec<AutotuneSummary> {
    let mut blocks: Vec<usize> = rows.iter().map(|r| r.block).collect();
    blocks.sort_unstable();
    blocks.dedup();
    blocks
        .iter()
        .filter_map(|&block| {
            let fixed: Vec<&AutotuneRow> = rows
                .iter()
                .filter(|r| r.block == block && r.scheme != "auto")
                .collect();
            let auto = rows
                .iter()
                .find(|r| r.block == block && r.scheme == "auto")?;
            let best = fixed.iter().min_by_key(|r| r.mean_ns)?;
            let worst = fixed.iter().max_by_key(|r| r.mean_ns)?;
            Some(AutotuneSummary {
                block,
                best_fixed: best.scheme.clone(),
                best_fixed_ns: best.mean_ns,
                worst_fixed: worst.scheme.clone(),
                worst_fixed_ns: worst.mean_ns,
                auto_plan: auto.plan.clone(),
                auto_ns: auto.mean_ns,
                auto_vs_best: auto.mean_ns as f64 / best.mean_ns.max(1) as f64,
                worst_vs_auto: worst.mean_ns as f64 / auto.mean_ns.max(1) as f64,
            })
        })
        .collect()
}

/// Render the autotune matrix as a human table.
#[must_use]
pub fn render_autotune_table(rows: &[AutotuneRow], fit: &LinearFit) -> String {
    let mut out = format!(
        "calibrated fit: β = {:.2}µs, τ = {:.4}µs/B, R² = {:.3} ({} samples)\n",
        fit.model.startup * 1e6,
        fit.model.per_byte * 1e6,
        fit.r_squared,
        fit.samples,
    );
    out.push_str(&format!(
        "{:<10} {:<12} {:>8} {:>4} {:>3} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "scheme", "plan", "block", "n", "k", "rounds", "MB/s", "min", "p50", "p99", "mean", "pred"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<12} {:>8} {:>4} {:>3} {:>6} {:>9.1} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            r.scheme,
            r.plan,
            r.block,
            r.n,
            r.k,
            r.rounds,
            r.mbps,
            fmt_ns(r.min_ns),
            fmt_ns(r.p50_ns),
            fmt_ns(r.p99_ns),
            fmt_ns(r.mean_ns),
            fmt_ns(r.predicted_ns),
        ));
    }
    for s in summarize_autotune(rows) {
        out.push_str(&format!(
            "b={}: auto ({}) {} vs best {} {} ({:.2}x) vs worst {} {} ({:.2}x)\n",
            s.block,
            s.auto_plan,
            fmt_ns(s.auto_ns),
            s.best_fixed,
            fmt_ns(s.best_fixed_ns),
            s.auto_vs_best,
            s.worst_fixed,
            fmt_ns(s.worst_fixed_ns),
            s.worst_vs_auto,
        ));
    }
    out
}

/// Render the tracked `BENCH_pr4.json` artifact (hand-rolled JSON).
#[must_use]
pub fn render_autotune_json(rows: &[AutotuneRow], fit: &LinearFit) -> String {
    let mut out = String::from("{\n  \"bench\": \"pr4-autotune\",\n");
    out.push_str(&EnvMeta::capture("uds").to_json_line());
    out.push_str("  \"transport\": \"uds\",\n");
    out.push_str(&format!(
        "  \"fit\": {{\"startup_s\": {:.9e}, \"per_byte_s\": {:.9e}, \"r_squared\": {:.4}, \"samples\": {}}},\n",
        fit.model.startup, fit.model.per_byte, fit.r_squared, fit.samples
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"plan\": \"{}\", \"n\": {}, \"k\": {}, \"block\": {}, \
             \"rounds\": {}, \"bytes_moved\": {}, \"reps\": {}, \"min_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"mean_ns\": {}, \"mbps\": {:.2}, \"predicted_ns\": {}}}{}\n",
            r.scheme,
            r.plan,
            r.n,
            r.k,
            r.block,
            r.rounds,
            r.bytes_moved,
            r.reps,
            r.min_ns,
            r.p50_ns,
            r.p99_ns,
            r.mean_ns,
            r.mbps,
            r.predicted_ns,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"summary\": [\n");
    let summaries = summarize_autotune(rows);
    for (i, s) in summaries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"block\": {}, \"auto_plan\": \"{}\", \"auto_mean_ns\": {}, \
             \"best_fixed\": \"{}\", \"best_fixed_mean_ns\": {}, \
             \"worst_fixed\": \"{}\", \"worst_fixed_mean_ns\": {}, \
             \"auto_vs_best\": {:.3}, \"worst_vs_auto\": {:.3}}}{}\n",
            s.block,
            s.auto_plan,
            s.auto_ns,
            s.best_fixed,
            s.best_fixed_ns,
            s.worst_fixed,
            s.worst_fixed_ns,
            s.auto_vs_best,
            s.worst_vs_auto,
            if i + 1 < summaries.len() { "," } else { "" },
        ));
    }
    let max_vs_best = summaries
        .iter()
        .map(|s| s.auto_vs_best)
        .fold(0.0f64, f64::max);
    let max_vs_worst = summaries
        .iter()
        .map(|s| s.worst_vs_auto)
        .fold(0.0f64, f64::max);
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"criteria\": {{\"max_auto_vs_best\": {:.3}, \"within_5pct_of_best_everywhere\": {}, \
         \"max_worst_vs_auto\": {:.3}, \"beats_worst_by_1_3x_somewhere\": {}}}\n}}\n",
        max_vs_best,
        max_vs_best <= 1.05,
        max_vs_worst,
        max_vs_worst >= 1.3,
    ));
    out
}

// ---------------------------------------------------------------------
// Liveness bench: the wall-clock price of the guard stack.
// ---------------------------------------------------------------------

/// One row of the liveness-overhead comparison. The deadline rows come
/// from **one** cluster run with plain and budgeted laps interleaved
/// (paired design, see [`run_liveness_overhead`]); the watchdog rows
/// are whole-cluster A/B runs because probing is a cluster-config knob.
#[derive(Debug, Clone)]
pub struct LivenessRow {
    /// `"deadline-off"` / `"deadline-on"` (paired, in-run) or
    /// `"watchdog-off"` / `"watchdog-on"` (alternating cluster runs).
    pub mode: &'static str,
    /// Cluster size.
    pub n: usize,
    /// Ports per round.
    pub k: usize,
    /// Block size in bytes.
    pub block: usize,
    /// Pooled rep count behind the percentiles.
    pub reps: usize,
    /// Median cluster-wide wall clock per collective (ns).
    pub p50_ns: u64,
    /// 99th-percentile wall clock (ns).
    pub p99_ns: u64,
    /// Mean wall clock (ns).
    pub mean_ns: u64,
    /// Cluster goodput in MB/s.
    pub mbps: f64,
    /// Watchdog probes the cluster sent — ordinary traffic is the
    /// heartbeat, so on a busy healthy wire this stays near zero.
    pub probes_sent: u64,
    /// Reliability-layer retransmissions across the run.
    pub retransmits: u64,
}

/// Per-lap budget the deadline-on laps arm. Generous: the point is to
/// pay the arm/feasibility/clamped-wait bookkeeping on every lap, not
/// to ever trip it on a healthy wire.
const LIVENESS_LAP_BUDGET: Duration = Duration::from_secs(10);

/// Straggler-max laps and wire counters accumulated toward one row.
#[derive(Default)]
struct LivenessAccum {
    laps: Vec<u64>,
    bytes_per_collective: u64,
    probes_sent: u64,
    retransmits: u64,
}

impl LivenessAccum {
    fn fold(&self, cfg: &WireBenchConfig, mode: &'static str) -> LivenessRow {
        let mut pooled = self.laps.clone();
        pooled.sort_unstable();
        let mean_ns = (pooled.iter().sum::<u64>() / pooled.len().max(1) as u64).max(1);
        LivenessRow {
            mode,
            n: cfg.n,
            k: cfg.ports,
            block: cfg.block,
            reps: pooled.len(),
            p50_ns: percentile(&pooled, 50),
            p99_ns: percentile(&pooled, 99),
            mean_ns,
            mbps: self.bytes_per_collective as f64 / (mean_ns as f64 / 1e9) / 1e6,
            probes_sent: self.probes_sent,
            retransmits: self.retransmits,
        }
    }
}

/// One cluster run measuring the **deadline** layer with a paired
/// design: every rep runs one plain [`alltoall`] lap and one
/// [`alltoall_deadline`] lap back to back behind a re-synchronising
/// barrier, with the in-pair order rotating each rep (the
/// [`run_autotune_block`] discipline). Both lap kinds sample the same
/// instant of host-scheduler weather, so their mean difference isolates
/// the arm/feasibility/clamped-wait bookkeeping — a separate-runs A/B
/// at this shape drifts by ±15% on a busy box, an order of magnitude
/// above the effect being measured.
fn liveness_deadline_sample(
    cfg: &WireBenchConfig,
    plain: &mut LivenessAccum,
    armed: &mut LivenessAccum,
) -> Result<(), String> {
    let (n, block, reps) = (cfg.n, cfg.block, cfg.reps.max(1));
    let tuning = Tuning::builder().planner(true).build();
    let cluster_cfg = ClusterConfig::new(n)
        .with_ports(cfg.ports)
        .with_timeout(cfg.timeout)
        .with_reliability(Reliability::default());
    let body = |ep: &mut bruck_net::Endpoint| {
        let input = verify::index_input(ep.rank(), n, block);
        let expected = verify::index_expected(ep.rank(), n, block);
        let run_one = |ep: &mut bruck_net::Endpoint, armed: bool| -> Result<(), NetError> {
            let got = if armed {
                alltoall_deadline(ep, &input, block, &tuning, LIVENESS_LAP_BUDGET)?
            } else {
                alltoall(ep, &input, block, &tuning)?
            };
            if got != expected {
                return Err(NetError::App("alltoall bytes wrong".into()));
            }
            Ok(())
        };
        run_one(ep, false)?; // warmup, untimed
        run_one(ep, true)?;
        let mut laps: Vec<Vec<u64>> = (0..2).map(|_| Vec::with_capacity(reps)).collect();
        for rep in 0..reps {
            for pos in 0..2 {
                let deadline_lap = (rep + pos) % 2 == 1;
                barrier_dissemination(ep)?;
                let t0 = Instant::now();
                run_one(ep, deadline_lap)?;
                laps[usize::from(deadline_lap)].push(t0.elapsed().as_nanos() as u64);
            }
        }
        Ok(laps)
    };
    let out = bruck_net::SocketCluster::run(&cluster_cfg, body)
        .map_err(|e| format!("liveness (deadline pair): {e}"))?;
    // Cluster-wide wall clock for (kind, rep) = the straggler's lap.
    for (kind, accum) in [&mut *plain, armed].into_iter().enumerate() {
        for j in 0..reps {
            accum.laps.push(
                out.results
                    .iter()
                    .map(|laps| laps[kind][j])
                    .max()
                    .unwrap_or_default(),
            );
        }
        // 2 timed laps + 2 warmups per rep-pair, half of each kind.
        accum.bytes_per_collective = out.metrics.total_bytes() / (2 * (reps + 1)) as u64;
    }
    let link = out.metrics.link_totals();
    armed.probes_sent += link.probes_sent;
    armed.retransmits += link.retransmits;
    Ok(())
}

/// One cluster run measuring the **watchdog** layer: plain laps only,
/// probing either at the [`Reliability`] default or disabled
/// (`probe_retries = 0` — the watchdog never scans, probes, or
/// escalates). Config-level, so this leg cannot be lap-paired.
fn liveness_watchdog_sample(
    cfg: &WireBenchConfig,
    probing: bool,
    accum: &mut LivenessAccum,
) -> Result<(), String> {
    let (n, block, reps) = (cfg.n, cfg.block, cfg.reps.max(1));
    let tuning = Tuning::builder().planner(true).build();
    let reliability = if probing {
        Reliability::default()
    } else {
        Reliability::default().with_probing(Duration::from_millis(25), 0)
    };
    let cluster_cfg = ClusterConfig::new(n)
        .with_ports(cfg.ports)
        .with_timeout(cfg.timeout)
        .with_reliability(reliability);
    let body = |ep: &mut bruck_net::Endpoint| {
        let input = verify::index_input(ep.rank(), n, block);
        let expected = verify::index_expected(ep.rank(), n, block);
        let run_one = |ep: &mut bruck_net::Endpoint| -> Result<(), NetError> {
            if alltoall(ep, &input, block, &tuning)? != expected {
                return Err(NetError::App("alltoall bytes wrong".into()));
            }
            Ok(())
        };
        run_one(ep)?; // warmup, untimed
        let mut laps = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            run_one(ep)?;
            laps.push(t0.elapsed().as_nanos() as u64);
        }
        Ok(laps)
    };
    let out = bruck_net::SocketCluster::run(&cluster_cfg, body).map_err(|e| {
        format!(
            "liveness (watchdog {}): {e}",
            if probing { "on" } else { "off" }
        )
    })?;
    for j in 0..reps {
        accum.laps.push(
            out.results
                .iter()
                .map(|laps| laps[j])
                .max()
                .unwrap_or_default(),
        );
    }
    accum.bytes_per_collective = out.metrics.total_bytes() / (reps + 1) as u64;
    let link = out.metrics.link_totals();
    accum.probes_sent += link.probes_sent;
    accum.retransmits += link.retransmits;
    Ok(())
}

/// Measure both liveness layers at one shape.
///
/// The deadline leg pairs plain and budgeted laps inside each cluster
/// run. The watchdog leg alternates whole cluster runs, flipping the
/// in-pair order every sample so neither config systematically
/// inherits the warmer machine the second run of a pair sees.
///
/// # Errors
///
/// Propagates the first failing cluster run.
pub fn run_liveness_overhead(cfg: &WireBenchConfig) -> Result<Vec<LivenessRow>, String> {
    let mut plain = LivenessAccum::default();
    let mut armed = LivenessAccum::default();
    let mut wd_off = LivenessAccum::default();
    let mut wd_on = LivenessAccum::default();
    for s in 0..cfg.samples.max(1) {
        liveness_deadline_sample(cfg, &mut plain, &mut armed)?;
        let first_on = s % 2 == 1;
        liveness_watchdog_sample(
            cfg,
            first_on,
            if first_on { &mut wd_on } else { &mut wd_off },
        )?;
        liveness_watchdog_sample(
            cfg,
            !first_on,
            if first_on { &mut wd_off } else { &mut wd_on },
        )?;
    }
    Ok(vec![
        plain.fold(cfg, "deadline-off"),
        armed.fold(cfg, "deadline-on"),
        wd_off.fold(cfg, "watchdog-off"),
        wd_on.fold(cfg, "watchdog-on"),
    ])
}

fn overhead_between(rows: &[LivenessRow], on: &str, off: &str) -> Option<f64> {
    let of = |mode: &str| {
        rows.iter()
            .find(|r| r.mode == mode)
            .map(|r| r.mean_ns as f64)
    };
    Some(of(on)? / of(off)? - 1.0)
}

/// Fractional mean-lap cost of arming a per-collective deadline
/// (`0.03` = 3% slower armed), from the lap-paired rows.
#[must_use]
pub fn deadline_overhead(rows: &[LivenessRow]) -> Option<f64> {
    overhead_between(rows, "deadline-on", "deadline-off")
}

/// Fractional mean-lap cost of the straggler watchdog, from the
/// alternating A/B rows.
#[must_use]
pub fn watchdog_overhead(rows: &[LivenessRow]) -> Option<f64> {
    overhead_between(rows, "watchdog-on", "watchdog-off")
}

/// Render the liveness comparison as a human table.
#[must_use]
pub fn render_liveness_table(rows: &[LivenessRow]) -> String {
    let mut out = format!(
        "{:<13} {:>4} {:>3} {:>8} {:>9} {:>9} {:>9} {:>9} {:>6} {:>5}\n",
        "mode", "n", "k", "block", "MB/s", "p50", "p99", "mean", "probes", "rexmt"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<13} {:>4} {:>3} {:>8} {:>9.1} {:>9} {:>9} {:>9} {:>6} {:>5}\n",
            r.mode,
            r.n,
            r.k,
            r.block,
            r.mbps,
            fmt_ns(r.p50_ns),
            fmt_ns(r.p99_ns),
            fmt_ns(r.mean_ns),
            r.probes_sent,
            r.retransmits,
        ));
    }
    if let Some(o) = deadline_overhead(rows) {
        out.push_str(&format!(
            "deadline overhead: {:+.2}% mean lap (paired in-run)\n",
            o * 100.0
        ));
    }
    if let Some(o) = watchdog_overhead(rows) {
        out.push_str(&format!(
            "watchdog overhead: {:+.2}% mean lap (alternating A/B runs)\n",
            o * 100.0
        ));
    }
    out
}

/// Render the tracked `BENCH_pr5.json` artifact (hand-rolled JSON).
#[must_use]
pub fn render_liveness_json(rows: &[LivenessRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"pr5-liveness-overhead\",\n");
    out.push_str(&EnvMeta::capture("uds").to_json_line());
    out.push_str("  \"transport\": \"uds\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"n\": {}, \"k\": {}, \"block\": {}, \"reps\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \"mbps\": {:.2}, \
             \"probes_sent\": {}, \"retransmits\": {}}}{}\n",
            r.mode,
            r.n,
            r.k,
            r.block,
            r.reps,
            r.p50_ns,
            r.p99_ns,
            r.mean_ns,
            r.mbps,
            r.probes_sent,
            r.retransmits,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    let dl = deadline_overhead(rows).unwrap_or(0.0);
    let wd = watchdog_overhead(rows).unwrap_or(0.0);
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"criteria\": {{\"deadline_overhead\": {:.4}, \"watchdog_overhead\": {:.4}, \
         \"under_5pct\": {}}}\n}}\n",
        dl,
        wd,
        dl < 0.05 && wd < 0.05,
    ));
    out
}

// ---------------------------------------------------------------------
// Recovery bench: the steady-state price of the membership layer.
// ---------------------------------------------------------------------

/// One faultless cluster run toward the recovery A/B: the same plain
/// alltoall laps either under [`SocketCluster::run`] (no membership
/// machinery) or under [`SocketCluster::run_resilient`] with a
/// rejoin-capable policy armed (view registry allocated, recovery loop
/// wrapping the run, per-attempt socket incarnations). Driver-level, so
/// this leg cannot be lap-paired — samples alternate whole runs like
/// the watchdog leg.
fn recovery_sample(
    cfg: &WireBenchConfig,
    resilient: bool,
    accum: &mut LivenessAccum,
) -> Result<(), String> {
    use bruck_net::{RecoveryPolicy, SocketCluster};
    let (n, block, reps) = (cfg.n, cfg.block, cfg.reps.max(1));
    let tuning = Tuning::builder().planner(true).build();
    let cluster_cfg = ClusterConfig::new(n)
        .with_ports(cfg.ports)
        .with_timeout(cfg.timeout)
        .with_reliability(Reliability::default())
        .with_recovery(RecoveryPolicy::WaitForRejoin {
            budget: Duration::from_millis(100),
        });
    let body = |ep: &mut bruck_net::Endpoint| {
        let input = verify::index_input(ep.rank(), n, block);
        let expected = verify::index_expected(ep.rank(), n, block);
        let run_one = |ep: &mut bruck_net::Endpoint| -> Result<(), NetError> {
            if alltoall(ep, &input, block, &tuning)? != expected {
                return Err(NetError::App("alltoall bytes wrong".into()));
            }
            Ok(())
        };
        run_one(ep)?; // warmup, untimed
        let mut laps = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            run_one(ep)?;
            laps.push(t0.elapsed().as_nanos() as u64);
        }
        Ok(laps)
    };
    let out = if resilient {
        let res = SocketCluster::run_resilient(&cluster_cfg, 2, |ep, _view| body(ep))
            .map_err(|e| format!("recovery (resilient): {e}"))?;
        res.output
    } else {
        SocketCluster::run(&cluster_cfg, body).map_err(|e| format!("recovery (plain): {e}"))?
    };
    for j in 0..reps {
        accum.laps.push(
            out.results
                .iter()
                .map(|laps| laps[j])
                .max()
                .unwrap_or_default(),
        );
    }
    accum.bytes_per_collective = out.metrics.total_bytes() / (reps + 1) as u64;
    let link = out.metrics.link_totals();
    accum.probes_sent += link.probes_sent;
    accum.retransmits += link.retransmits;
    Ok(())
}

/// Measure the steady-state membership overhead at one shape: the same
/// faultless alltoall under the plain driver vs the resilient driver
/// with `WaitForRejoin` armed. In-pair order flips every sample so
/// neither driver systematically inherits the warmer machine.
///
/// # Errors
///
/// Propagates the first failing cluster run.
pub fn run_recovery_overhead(cfg: &WireBenchConfig) -> Result<Vec<LivenessRow>, String> {
    let mut plain = LivenessAccum::default();
    let mut armed = LivenessAccum::default();
    for s in 0..cfg.samples.max(1) {
        let first_on = s % 2 == 1;
        recovery_sample(
            cfg,
            first_on,
            if first_on { &mut armed } else { &mut plain },
        )?;
        recovery_sample(
            cfg,
            !first_on,
            if first_on { &mut plain } else { &mut armed },
        )?;
    }
    Ok(vec![
        plain.fold(cfg, "recovery-off"),
        armed.fold(cfg, "recovery-on"),
    ])
}

/// Fractional mean-lap cost of arming the membership/recovery layer on
/// a healthy cluster, from the alternating A/B rows.
#[must_use]
pub fn recovery_overhead(rows: &[LivenessRow]) -> Option<f64> {
    overhead_between(rows, "recovery-on", "recovery-off")
}

/// Render the recovery comparison as a human table.
#[must_use]
pub fn render_recovery_table(rows: &[LivenessRow]) -> String {
    let mut out = format!(
        "{:<13} {:>4} {:>3} {:>8} {:>9} {:>9} {:>9} {:>9} {:>6} {:>5}\n",
        "mode", "n", "k", "block", "MB/s", "p50", "p99", "mean", "probes", "rexmt"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<13} {:>4} {:>3} {:>8} {:>9.1} {:>9} {:>9} {:>9} {:>6} {:>5}\n",
            r.mode,
            r.n,
            r.k,
            r.block,
            r.mbps,
            fmt_ns(r.p50_ns),
            fmt_ns(r.p99_ns),
            fmt_ns(r.mean_ns),
            r.probes_sent,
            r.retransmits,
        ));
    }
    if let Some(o) = recovery_overhead(rows) {
        out.push_str(&format!(
            "recovery overhead: {:+.2}% mean lap (alternating A/B runs)\n",
            o * 100.0
        ));
    }
    out
}

/// Render the tracked `BENCH_pr7.json` artifact (hand-rolled JSON).
#[must_use]
pub fn render_recovery_json(rows: &[LivenessRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"pr7-recovery-overhead\",\n");
    out.push_str(&EnvMeta::capture("uds").to_json_line());
    out.push_str("  \"transport\": \"uds\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"n\": {}, \"k\": {}, \"block\": {}, \"reps\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \"mbps\": {:.2}, \
             \"probes_sent\": {}, \"retransmits\": {}}}{}\n",
            r.mode,
            r.n,
            r.k,
            r.block,
            r.reps,
            r.p50_ns,
            r.p99_ns,
            r.mean_ns,
            r.mbps,
            r.probes_sent,
            r.retransmits,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    let ov = recovery_overhead(rows).unwrap_or(0.0);
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"criteria\": {{\"recovery_overhead\": {ov:.4}, \"under_5pct\": {}}}\n}}\n",
        ov < 0.05,
    ));
    out
}

// ---------------------------------------------------------------------
// Skew bench: the non-uniform Bruck family over Zipf workloads.
// ---------------------------------------------------------------------

/// The non-uniform family sweep: at each Zipf `s`, race the forced
/// direct, padded, and two-phase members against `alltoallv_auto`'s
/// skew-driven dispatch on the same seeded workload.
#[derive(Debug, Clone)]
pub struct SkewBenchConfig {
    /// Cluster size.
    pub n: usize,
    /// Ports per round.
    pub ports: usize,
    /// Mean per-pair bytes (each source sends `base · n` total).
    pub base: usize,
    /// Zipf exponents to sweep.
    pub svals: Vec<f64>,
    /// Workload seed.
    pub seed: u64,
    /// Timed collectives per cluster run.
    pub reps: usize,
    /// Independent cluster runs pooled per point.
    pub samples: usize,
    /// Per-run watchdog.
    pub timeout: Duration,
}

impl Default for SkewBenchConfig {
    /// The tracked shape: `n = 8`, `k = 2`, 8 KiB mean blocks,
    /// `s ∈ {0, 0.5, 1.0, 1.5}`.
    fn default() -> Self {
        Self {
            n: 8,
            ports: 2,
            base: 8 * 1024,
            svals: vec![0.0, 0.5, 1.0, 1.5],
            seed: 6,
            reps: 6,
            samples: 3,
            timeout: Duration::from_secs(60),
        }
    }
}

/// One cell of the skew matrix.
#[derive(Debug, Clone)]
pub struct SkewRow {
    /// `"direct"`, `"padded"`, `"twophase"`, or `"auto"`.
    pub scheme: &'static str,
    /// Label of the family member actually executed.
    pub plan: String,
    /// Zipf exponent of the workload.
    pub s: f64,
    /// Measured max/mean skew of the size matrix.
    pub skew_ratio: f64,
    /// Cluster size.
    pub n: usize,
    /// Ports per round.
    pub k: usize,
    /// Payload bytes the cluster moves per collective (off-diagonal sum).
    pub bytes_moved: u64,
    /// Pooled rep count behind the percentiles.
    pub reps: usize,
    /// Fastest cluster-wide lap (ns).
    pub min_ns: u64,
    /// Median cluster-wide wall clock (ns).
    pub p50_ns: u64,
    /// 99th-percentile wall clock (ns).
    pub p99_ns: u64,
    /// Mean wall clock (ns).
    pub mean_ns: u64,
    /// Cluster goodput in MB/s.
    pub mbps: f64,
    /// Wall time the fitted model predicts for this member (ns).
    pub predicted_ns: u64,
}

/// Pick the cheapest padded radix and the cheapest two-phase
/// `(radix, quota)` for a size matrix under a model — the forced
/// schemes the sweep races, so "padded" always means *the best padded
/// member*, not an arbitrary radix.
fn best_family_members(
    n: usize,
    k: usize,
    matrix: &[u64],
    model: &dyn bruck_model::cost::CostModel,
) -> (VMethod, VIndexPlan, VMethod, VIndexPlan) {
    let planner = Planner::new(model);
    let pick = |plans: Vec<VIndexPlan>| -> VIndexPlan {
        plans
            .into_iter()
            .min_by(|a, b| {
                let ta = model.estimate(planner.vindex_complexity(a, n, k, matrix));
                let tb = model.estimate(planner.vindex_complexity(b, n, k, matrix));
                ta.partial_cmp(&tb).expect("finite estimates")
            })
            .expect("non-empty candidate list")
    };
    let padded = pick((2..=n).map(|radix| VIndexPlan::Padded { radix }).collect());
    let quotas = bruck_model::planner::quota_candidates(n, matrix);
    let two_candidates: Vec<VIndexPlan> = if quotas.is_empty() {
        // Degenerate (uniform) workload: any quota ≥ max reduces to
        // padded; race that so the scheme still exists in the table.
        (2..=n)
            .map(|radix| VIndexPlan::TwoPhase {
                radix,
                quota: usize::MAX,
            })
            .collect()
    } else {
        quotas
            .iter()
            .flat_map(|&quota| (2..=n).map(move |radix| VIndexPlan::TwoPhase { radix, quota }))
            .collect()
    };
    let two = pick(two_candidates);
    let (pm, tm) = match (padded, two) {
        (VIndexPlan::Padded { radix: pr }, VIndexPlan::TwoPhase { radix: tr, quota }) => (
            VMethod::Padded { radix: pr },
            VMethod::TwoPhase {
                radix: tr,
                quota: Some(quota),
            },
        ),
        _ => unreachable!("candidates are padded / two-phase by construction"),
    };
    (pm, padded, tm, two)
}

/// Run every family member at one Zipf point, interleaved in one
/// cluster run with the same pairing discipline as
/// [`run_autotune_block`]: untimed warmup cycle, a dissemination
/// barrier before every timed lap, and a rotated cycle order so no
/// scheme inherits a fixed slot's cache state.
///
/// # Errors
///
/// Propagates cluster setup or collective failures as a message.
pub fn run_skew_point(
    cfg: &SkewBenchConfig,
    s: f64,
    fit: &LinearFit,
) -> Result<Vec<SkewRow>, String> {
    let (n, k, reps) = (cfg.n, cfg.ports, cfg.reps.max(1));
    let matrix = crate::skew::zipf_matrix(n, cfg.base, s, cfg.seed);
    let matrix_u64: Vec<u64> = matrix.iter().map(|&c| c as u64).collect();
    let skew_ratio = bruck_model::planner::skew_ratio(n, &matrix_u64);
    let (padded_m, padded_plan, two_m, two_plan) =
        best_family_members(n, k, &matrix_u64, &fit.model);
    let auto_choice = Planner::new(&fit.model).plan_vindex(n, k, &matrix_u64);
    // (label, forced member or None = planner dispatch, plan that runs).
    let schemes: Vec<(&'static str, Option<VMethod>, VIndexPlan)> = vec![
        ("direct", Some(VMethod::Direct), VIndexPlan::Direct),
        ("padded", Some(padded_m), padded_plan),
        ("twophase", Some(two_m), two_plan),
        ("auto", None, auto_choice.plan),
    ];
    let cluster_cfg = ClusterConfig::new(n)
        .with_ports(k)
        .with_timeout(cfg.timeout)
        .with_reliability(Reliability::default());

    let mut pooled: Vec<Vec<u64>> = vec![Vec::with_capacity(reps * cfg.samples); schemes.len()];
    for _ in 0..cfg.samples.max(1) {
        let schemes_ref = &schemes;
        let matrix_ref = &matrix;
        let body = |ep: &mut bruck_net::Endpoint| {
            let rank = bruck_net::Endpoint::rank(ep);
            let counts: Vec<usize> = matrix_ref[rank * n..(rank + 1) * n].to_vec();
            let layout = VLayout::from_counts(&counts);
            let mut input = vec![0u8; layout.total()];
            for j in 0..n {
                for (t, byte) in input[layout.range(j)].iter_mut().enumerate() {
                    *byte = verify::content_byte(rank, j, t);
                }
            }
            let mut expected = Vec::new();
            for src in 0..n {
                let len = matrix_ref[src * n + rank];
                expected.extend((0..len).map(|t| verify::content_byte(src, rank, t)));
            }
            let model = calibrated_fit(ep)?.model;
            let mut got = Vec::new();
            let run_one = |ep: &mut bruck_net::Endpoint,
                           got: &mut Vec<u8>,
                           forced: &Option<VMethod>|
             -> Result<(), NetError> {
                match forced {
                    Some(m) => {
                        let tuning = Tuning::builder().vmethod(*m).build();
                        alltoallv_into(ep, &input, &layout, &tuning, got)?;
                    }
                    None => {
                        alltoallv_auto_into(ep, &input, &layout, &model, got)?;
                    }
                }
                if *got != expected {
                    return Err(NetError::App("alltoallv bytes wrong".into()));
                }
                Ok(())
            };
            for (_, forced, _) in schemes_ref {
                run_one(ep, &mut got, forced)?; // warmup, untimed
            }
            let mut laps = vec![Vec::with_capacity(reps); schemes_ref.len()];
            for rep in 0..reps {
                for pos in 0..schemes_ref.len() {
                    // Rotate the starting scheme per rep AND flip the
                    // cycle direction on odd reps: rotation alone keeps
                    // the cyclic successor order fixed, so every scheme
                    // would always run right after the same predecessor
                    // and inherit its transport debt (owed acks,
                    // in-flight retransmit state) systematically.
                    let m = schemes_ref.len();
                    let si = if rep % 2 == 0 {
                        (rep + pos) % m
                    } else {
                        (rep + m - pos) % m
                    };
                    barrier_dissemination(ep)?;
                    let t0 = Instant::now();
                    run_one(ep, &mut got, &schemes_ref[si].1)?;
                    laps[si].push(t0.elapsed().as_nanos() as u64);
                }
            }
            Ok(laps)
        };
        let mut out = bruck_net::SocketCluster::run(&cluster_cfg, body)
            .map_err(|e| format!("skew s={s}: {e}"))?;
        out.metrics.fit = Some(*fit);
        for (si, bucket) in pooled.iter_mut().enumerate() {
            for j in 0..reps {
                bucket.push(
                    out.results
                        .iter()
                        .map(|laps| laps[si][j])
                        .max()
                        .unwrap_or_default(),
                );
            }
        }
    }

    let bytes_moved: u64 = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j)
        .map(|(i, j)| matrix_u64[i * n + j])
        .sum();
    let planner = Planner::new(&fit.model);
    let rows = schemes
        .iter()
        .zip(&mut pooled)
        .map(|((label, _, plan), laps)| {
            laps.sort_unstable();
            let mean_ns = (laps.iter().sum::<u64>() / laps.len().max(1) as u64).max(1);
            let predicted = fit
                .model
                .estimate(planner.vindex_complexity(plan, n, k, &matrix_u64));
            SkewRow {
                scheme: label,
                plan: plan.label(),
                s,
                skew_ratio,
                n,
                k,
                bytes_moved,
                reps: laps.len(),
                min_ns: laps.first().copied().unwrap_or(0).max(1),
                p50_ns: percentile(laps, 50),
                p99_ns: percentile(laps, 99),
                mean_ns,
                mbps: bytes_moved as f64 / (mean_ns as f64 / 1e9) / 1e6,
                predicted_ns: (predicted * 1e9) as u64,
            }
        })
        .collect();
    Ok(rows)
}

/// Run the full skew sweep and return the rows plus the fitted model
/// the forced members were selected under.
///
/// # Errors
///
/// Propagates the first failing point.
pub fn run_skew_matrix(cfg: &SkewBenchConfig) -> Result<(Vec<SkewRow>, LinearFit), String> {
    let fit = probe_socket_fit(&AutotuneBenchConfig {
        n: cfg.n,
        ports: cfg.ports,
        timeout: cfg.timeout,
        ..AutotuneBenchConfig::default()
    })?;
    let mut rows = Vec::new();
    for &s in &cfg.svals {
        rows.extend(run_skew_point(cfg, s, &fit)?);
    }
    Ok((rows, fit))
}

/// Per-skew-point verdict on the paired means: auto against the best
/// forced member, and the best of {padded, two-phase} against direct.
#[derive(Debug, Clone)]
pub struct SkewSummary {
    /// Zipf exponent.
    pub s: f64,
    /// Measured max/mean skew of the matrix.
    pub skew_ratio: f64,
    /// Scheme label of the fastest forced member.
    pub best_scheme: &'static str,
    /// Its median lap (ns). Medians, not means, rank the schemes: the
    /// cluster-wide lap is a straggler max, so a single scheduling
    /// spike on a loaded host shifts a mean by tens of percent while
    /// the p50 stays put.
    pub best_ns: u64,
    /// Direct's median lap (ns).
    pub direct_ns: u64,
    /// Best of padded/two-phase median lap (ns).
    pub family_ns: u64,
    /// Plan the auto path dispatched.
    pub auto_plan: String,
    /// Auto's median lap (ns).
    pub auto_ns: u64,
    /// `auto / best_forced` — ≤ 1.10 meets the PR criterion.
    pub auto_vs_best: f64,
    /// `direct / best_of(padded, two-phase)` — > 1.0 means the family
    /// beat the direct exchange at this point.
    pub direct_vs_family: f64,
}

/// Fold the sweep rows into one [`SkewSummary`] per Zipf point.
#[must_use]
pub fn summarize_skew(rows: &[SkewRow]) -> Vec<SkewSummary> {
    let mut svals: Vec<u64> = rows.iter().map(|r| r.s.to_bits()).collect();
    svals.dedup();
    svals
        .iter()
        .filter_map(|&bits| {
            let s = f64::from_bits(bits);
            let at = |scheme: &str| {
                rows.iter()
                    .find(|r| r.s.to_bits() == bits && r.scheme == scheme)
            };
            let direct = at("direct")?;
            let padded = at("padded")?;
            let two = at("twophase")?;
            let auto = at("auto")?;
            let forced = [direct, padded, two];
            let best = forced.iter().min_by_key(|r| r.p50_ns)?;
            let family_ns = padded.p50_ns.min(two.p50_ns);
            Some(SkewSummary {
                s,
                skew_ratio: direct.skew_ratio,
                best_scheme: best.scheme,
                best_ns: best.p50_ns,
                direct_ns: direct.p50_ns,
                family_ns,
                auto_plan: auto.plan.clone(),
                auto_ns: auto.p50_ns,
                auto_vs_best: auto.p50_ns as f64 / best.p50_ns.max(1) as f64,
                direct_vs_family: direct.p50_ns as f64 / family_ns.max(1) as f64,
            })
        })
        .collect()
}

/// Render the skew sweep as a human table.
#[must_use]
pub fn render_skew_table(rows: &[SkewRow], fit: &LinearFit) -> String {
    let mut out = format!(
        "calibrated fit: β = {:.2}µs, τ = {:.4}µs/B, R² = {:.3} ({} samples)\n",
        fit.model.startup * 1e6,
        fit.model.per_byte * 1e6,
        fit.r_squared,
        fit.samples,
    );
    out.push_str(&format!(
        "{:<9} {:<18} {:>5} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "scheme", "plan", "s", "skew", "MB/s", "min", "p50", "p99", "mean", "pred"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<18} {:>5.2} {:>6.2} {:>9.1} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            r.scheme,
            r.plan,
            r.s,
            r.skew_ratio,
            r.mbps,
            fmt_ns(r.min_ns),
            fmt_ns(r.p50_ns),
            fmt_ns(r.p99_ns),
            fmt_ns(r.mean_ns),
            fmt_ns(r.predicted_ns),
        ));
    }
    for s in summarize_skew(rows) {
        out.push_str(&format!(
            "s={:.2}: auto ({}) {} vs best {} {} ({:.2}x); direct/family {:.2}x\n",
            s.s,
            s.auto_plan,
            fmt_ns(s.auto_ns),
            s.best_scheme,
            fmt_ns(s.best_ns),
            s.auto_vs_best,
            s.direct_vs_family,
        ));
    }
    out
}

/// Render the tracked `BENCH_pr6.json` artifact (hand-rolled JSON).
#[must_use]
pub fn render_skew_json(rows: &[SkewRow], fit: &LinearFit) -> String {
    let mut out = String::from("{\n  \"bench\": \"pr6-skew\",\n");
    out.push_str(&EnvMeta::capture("uds").to_json_line());
    out.push_str("  \"transport\": \"uds\",\n");
    out.push_str(&format!(
        "  \"fit\": {{\"startup_s\": {:.9e}, \"per_byte_s\": {:.9e}, \"r_squared\": {:.4}, \"samples\": {}}},\n",
        fit.model.startup, fit.model.per_byte, fit.r_squared, fit.samples
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"plan\": \"{}\", \"s\": {:.2}, \"skew_ratio\": {:.3}, \
             \"n\": {}, \"k\": {}, \"bytes_moved\": {}, \"reps\": {}, \"min_ns\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \"mbps\": {:.2}, \"predicted_ns\": {}}}{}\n",
            r.scheme,
            r.plan,
            r.s,
            r.skew_ratio,
            r.n,
            r.k,
            r.bytes_moved,
            r.reps,
            r.min_ns,
            r.p50_ns,
            r.p99_ns,
            r.mean_ns,
            r.mbps,
            r.predicted_ns,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"summary\": [\n");
    let summaries = summarize_skew(rows);
    for (i, s) in summaries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"s\": {:.2}, \"skew_ratio\": {:.3}, \"best_scheme\": \"{}\", \"best_p50_ns\": {}, \
             \"direct_p50_ns\": {}, \"family_p50_ns\": {}, \"auto_plan\": \"{}\", \
             \"auto_p50_ns\": {}, \"auto_vs_best\": {:.3}, \"direct_vs_family\": {:.3}}}{}\n",
            s.s,
            s.skew_ratio,
            s.best_scheme,
            s.best_ns,
            s.direct_ns,
            s.family_ns,
            s.auto_plan,
            s.auto_ns,
            s.auto_vs_best,
            s.direct_vs_family,
            if i + 1 < summaries.len() { "," } else { "" },
        ));
    }
    let max_vs_best = summaries
        .iter()
        .map(|s| s.auto_vs_best)
        .fold(0.0f64, f64::max);
    let family_wins_low_skew = summaries
        .iter()
        .any(|s| s.s <= 0.75 && s.direct_vs_family > 1.0);
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"criteria\": {{\"max_auto_vs_best\": {:.3}, \"within_10pct_of_best_everywhere\": {}, \
         \"family_beats_direct_at_low_skew\": {}}}\n}}\n",
        max_vs_best,
        max_vs_best <= 1.10,
        family_wins_low_skew,
    ));
    out
}

// ---------------------------------------------------------------------
// Scale bench: event-driven TCP at n = 128–1024 (BENCH_pr9.json).
// ---------------------------------------------------------------------

/// Configuration for the TCP scale sweep: at each `n`, the flat
/// single-level plan against the two-level hierarchical plan, over the
/// same event-driven fabric and the same topology.
#[derive(Debug, Clone)]
pub struct ScaleBenchConfig {
    /// Rank counts to sweep (each must be divisible by `node_size`).
    pub ns: Vec<usize>,
    /// Ranks per simulated node (intra-node traffic stays on channels;
    /// inter-node traffic crosses the TCP streams).
    pub node_size: usize,
    /// Block size in bytes (each rank holds `n·block` send bytes).
    pub block: usize,
    /// Timed repetitions per `(n, plan)` cell.
    pub reps: usize,
    /// Worker threads driving the ranks (`None` = available
    /// parallelism, capped at 8).
    pub workers: Option<usize>,
    /// Per-operation patience.
    pub timeout: Duration,
    /// Whole-run deadline budget (arms the deadline layer, as the
    /// acceptance criteria require the guard stack live at scale).
    pub deadline: Duration,
}

impl Default for ScaleBenchConfig {
    fn default() -> Self {
        Self {
            ns: vec![128, 256, 512, 1024],
            node_size: 32,
            block: 64,
            reps: 3,
            workers: None,
            timeout: Duration::from_secs(60),
            deadline: Duration::from_secs(600),
        }
    }
}

/// One `(n, plan)` cell of the scale sweep.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// `"flat"` (single-level over all n ranks) or `"two-level"`.
    pub topology: &'static str,
    /// Plan label (e.g. `bruck-r2`, `hier-s32-r2x2`).
    pub plan: String,
    /// Number of ranks.
    pub n: usize,
    /// Ranks per node.
    pub node_size: usize,
    /// Block size in bytes.
    pub block: usize,
    /// Communication rounds the lowered program executed.
    pub rounds: usize,
    /// Worker threads that drove the ranks.
    pub workers: usize,
    /// Total OS threads the run held (workers + reactor) — the
    /// multiplexing claim is `threads = O(workers)`, not `O(n)`.
    pub threads: usize,
    /// Useful payload bytes an index all-to-all delivers:
    /// `n·(n−1)·block`.
    pub bytes_moved: u64,
    /// Timed repetitions.
    pub reps: usize,
    /// Fastest end-to-end wall (ns), fabric setup included.
    pub min_ns: u64,
    /// Median end-to-end wall (ns).
    pub p50_ns: u64,
    /// Mean end-to-end wall (ns).
    pub mean_ns: u64,
    /// Goodput on the mean lap, MB/s.
    pub mbps: f64,
    /// ARQ retransmits summed over ranks and reps.
    pub retransmits: u64,
    /// Watchdog probes sent, summed over ranks and reps — nonzero
    /// probes prove the guard stack was armed, not bypassed, at scale.
    pub probes: u64,
    /// Every rank's output matched the oracle on every rep.
    pub bit_correct: bool,
}

/// Run the flat-vs-two-level sweep over [`TcpScaleCluster`] and fit a
/// TCP-wire cost model from the measured `(complexity, wall)` samples.
/// The returned fit (when the design matrix allows one) is what gets
/// persisted into `BENCH_pr9.json`; its R² says whether the linear
/// model describes the TCP substrate.
///
/// # Errors
///
/// Configuration errors (`n` not divisible by `node_size`) and the
/// first failing cell.
pub fn run_scale_matrix(
    cfg: &ScaleBenchConfig,
) -> Result<(Vec<ScaleRow>, Option<LinearFit>), String> {
    let mut cal = bruck_model::calibrate::Calibrator::new();
    let mut rows = Vec::new();
    for &n in &cfg.ns {
        if cfg.node_size == 0 || n % cfg.node_size != 0 {
            return Err(format!(
                "node_size {} must evenly partition n={n}",
                cfg.node_size
            ));
        }
        let schemes: [(&'static str, IndexPlan); 2] = [
            ("flat", IndexPlan::Radix(2)),
            (
                "two-level",
                IndexPlan::Hierarchical {
                    node_size: cfg.node_size,
                    radix_local: 2,
                    radix_remote: 2,
                },
            ),
        ];
        let inputs: Vec<Vec<u8>> = (0..n)
            .map(|r| verify::index_input(r, n, cfg.block))
            .collect();
        let cluster_cfg = ClusterConfig::new(n)
            .with_node_size(cfg.node_size)
            .with_timeout(cfg.timeout)
            .with_deadline(cfg.deadline)
            .with_reliability(Reliability::default());
        for (topology, plan) in schemes {
            let mut laps = Vec::with_capacity(cfg.reps.max(1));
            let mut bit_correct = true;
            let (mut retransmits, mut probes) = (0u64, 0u64);
            let (mut rounds, mut workers, mut threads) = (0usize, 0usize, 0usize);
            for _ in 0..cfg.reps.max(1) {
                let t0 = Instant::now();
                let out = TcpScaleCluster::run_with_workers(
                    &cluster_cfg,
                    &plan,
                    cfg.block,
                    &inputs,
                    cfg.workers,
                )
                .map_err(|e| format!("scale n={n} {topology}: {e}"))?;
                let lap = t0.elapsed().as_nanos() as u64;
                laps.push(lap);
                for (rank, got) in out.results.iter().enumerate() {
                    if got != &verify::index_expected(rank, n, cfg.block) {
                        bit_correct = false;
                    }
                }
                let link = out.metrics.link_totals();
                retransmits += link.retransmits;
                probes += link.probes_sent;
                rounds = out.rounds;
                workers = out.workers;
                threads = out.threads;
                if let Some(c) = out.metrics.global_complexity() {
                    cal.record_run(c, lap as f64 / 1e9);
                }
            }
            laps.sort_unstable();
            let mean_ns = (laps.iter().sum::<u64>() / laps.len().max(1) as u64).max(1);
            let bytes_moved = (n * (n - 1) * cfg.block) as u64;
            rows.push(ScaleRow {
                topology,
                plan: plan.label(),
                n,
                node_size: cfg.node_size,
                block: cfg.block,
                rounds,
                workers,
                threads,
                bytes_moved,
                reps: laps.len(),
                min_ns: laps.first().copied().unwrap_or(0).max(1),
                p50_ns: percentile(&laps, 50),
                mean_ns,
                mbps: bytes_moved as f64 / (mean_ns as f64 / 1e9) / 1e6,
                retransmits,
                probes,
                bit_correct,
            });
        }
    }
    Ok((rows, cal.try_fit()))
}

/// Per-`n` verdict: did the two-level plan beat the flat plan on the
/// mean end-to-end wall, and by how much?
#[derive(Debug, Clone)]
pub struct ScaleSummary {
    /// Number of ranks.
    pub n: usize,
    /// Flat plan's mean wall (ns).
    pub flat_ns: u64,
    /// Two-level plan's mean wall (ns).
    pub two_level_ns: u64,
    /// `flat / two-level` — above 1.0 means the hierarchy won.
    pub speedup: f64,
}

/// Pair up flat and two-level rows per `n`.
#[must_use]
pub fn summarize_scale(rows: &[ScaleRow]) -> Vec<ScaleSummary> {
    let mut ns: Vec<usize> = rows.iter().map(|r| r.n).collect();
    ns.dedup();
    ns.iter()
        .filter_map(|&n| {
            let find = |t: &str| {
                rows.iter()
                    .find(|r| r.n == n && r.topology == t)
                    .map(|r| r.mean_ns)
            };
            let (flat, two) = (find("flat")?, find("two-level")?);
            Some(ScaleSummary {
                n,
                flat_ns: flat,
                two_level_ns: two,
                speedup: flat as f64 / two.max(1) as f64,
            })
        })
        .collect()
}

/// Render the scale sweep as an aligned text table plus the per-`n`
/// verdict lines.
#[must_use]
pub fn render_scale_table(rows: &[ScaleRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>6} {:<16} {:>7} {:>8} {:>8} {:>11} {:>11} {:>9} {:>7} {:>7} {:>8}\n",
        "topology",
        "n",
        "plan",
        "rounds",
        "workers",
        "threads",
        "p50",
        "mean",
        "MB/s",
        "rexmit",
        "probes",
        "correct"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>6} {:<16} {:>7} {:>8} {:>8} {:>11} {:>11} {:>9.1} {:>7} {:>7} {:>8}\n",
            r.topology,
            r.n,
            r.plan,
            r.rounds,
            r.workers,
            r.threads,
            fmt_ns(r.p50_ns),
            fmt_ns(r.mean_ns),
            r.mbps,
            r.retransmits,
            r.probes,
            if r.bit_correct { "yes" } else { "NO" },
        ));
    }
    for s in summarize_scale(rows) {
        out.push_str(&format!(
            "n={}: flat {} vs two-level {} ({:.2}x)\n",
            s.n,
            fmt_ns(s.flat_ns),
            fmt_ns(s.two_level_ns),
            s.speedup,
        ));
    }
    out
}

/// Render the tracked `BENCH_pr9.json` artifact (hand-rolled JSON).
#[must_use]
pub fn render_scale_json(rows: &[ScaleRow], fit: Option<&LinearFit>) -> String {
    let mut out = String::from("{\n  \"bench\": \"pr9-tcp-scale\",\n");
    out.push_str(&EnvMeta::capture("tcp").to_json_line());
    out.push_str("  \"transport\": \"tcp\",\n");
    if let Some(fit) = fit {
        out.push_str(&format!(
            "  \"fit\": {{\"startup_s\": {:.9e}, \"per_byte_s\": {:.9e}, \"r_squared\": {:.4}, \"samples\": {}}},\n",
            fit.model.startup, fit.model.per_byte, fit.r_squared, fit.samples
        ));
    }
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"topology\": \"{}\", \"plan\": \"{}\", \"n\": {}, \"node_size\": {}, \
             \"block\": {}, \"rounds\": {}, \"workers\": {}, \"threads\": {}, \
             \"bytes_moved\": {}, \"reps\": {}, \"min_ns\": {}, \"p50_ns\": {}, \"mean_ns\": {}, \
             \"mbps\": {:.2}, \"retransmits\": {}, \"probes\": {}, \"bit_correct\": {}}}{}\n",
            r.topology,
            r.plan,
            r.n,
            r.node_size,
            r.block,
            r.rounds,
            r.workers,
            r.threads,
            r.bytes_moved,
            r.reps,
            r.min_ns,
            r.p50_ns,
            r.mean_ns,
            r.mbps,
            r.retransmits,
            r.probes,
            r.bit_correct,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"summary\": [\n");
    let summaries = summarize_scale(rows);
    for (i, s) in summaries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"flat_mean_ns\": {}, \"two_level_mean_ns\": {}, \"speedup\": {:.3}}}{}\n",
            s.n,
            s.flat_ns,
            s.two_level_ns,
            s.speedup,
            if i + 1 < summaries.len() { "," } else { "" },
        ));
    }
    let all_correct = rows.iter().all(|r| r.bit_correct);
    let guards_armed = rows.iter().all(|r| r.probes > 0);
    let threads_bounded = rows
        .iter()
        .all(|r| r.threads <= r.workers + 1 && r.threads < r.n);
    let two_level_wins = summaries
        .iter()
        .filter(|s| s.n >= 128)
        .all(|s| s.speedup > 1.0)
        && summaries.iter().any(|s| s.n >= 128);
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"criteria\": {{\"all_bit_correct\": {all_correct}, \"watchdog_armed_everywhere\": {guards_armed}, \
         \"threads_o_workers_not_o_n\": {threads_bounded}, \"two_level_beats_flat_at_128_plus\": {two_level_wins}}}\n}}\n",
    ));
    out
}

// ---------------------------------------------------------------------
// TCP recovery bench: the price of connection healing (BENCH_pr10.json).
// ---------------------------------------------------------------------

/// Configuration for the TCP recovery A/B: the same faultless
/// collective with the fabric's connection-healing machinery forced
/// off vs armed, plus one cell that injects a connection reset mid-run
/// and heals through it.
#[derive(Debug, Clone)]
pub struct TcpRecoveryBenchConfig {
    /// Cluster size (must be divisible by `node_size`).
    pub n: usize,
    /// Ranks per simulated node.
    pub node_size: usize,
    /// Block size in bytes.
    pub block: usize,
    /// Timed repetitions per sample (each rep is a full run, fabric
    /// setup included — healing's listener retention is part of the
    /// price being measured).
    pub reps: usize,
    /// A/B sample pairs; in-pair order flips every sample so neither
    /// leg systematically inherits the warmer machine.
    pub samples: usize,
    /// Worker threads driving the ranks.
    pub workers: Option<usize>,
    /// Per-operation patience.
    pub timeout: Duration,
    /// Whole-run deadline budget.
    pub deadline: Duration,
}

impl Default for TcpRecoveryBenchConfig {
    fn default() -> Self {
        Self {
            n: 128,
            node_size: 32,
            block: 64,
            reps: 3,
            samples: 3,
            workers: None,
            timeout: Duration::from_secs(60),
            deadline: Duration::from_secs(600),
        }
    }
}

/// One mode of the TCP recovery bench.
#[derive(Debug, Clone)]
pub struct TcpRecoveryRow {
    /// `"heal-off"`, `"heal-on"`, or `"mid-run-reconnect"`.
    pub mode: &'static str,
    /// Number of ranks.
    pub n: usize,
    /// Ranks per node.
    pub node_size: usize,
    /// Block size in bytes.
    pub block: usize,
    /// Total timed runs folded into this row.
    pub reps: usize,
    /// Fastest end-to-end wall (ns).
    pub min_ns: u64,
    /// Median end-to-end wall (ns).
    pub p50_ns: u64,
    /// Mean end-to-end wall (ns).
    pub mean_ns: u64,
    /// Goodput on the mean lap, MB/s.
    pub mbps: f64,
    /// Stream teardowns the fabric observed, summed over runs.
    pub link_failures: u64,
    /// Successful re-handshakes, summed over runs.
    pub reconnects: u64,
    /// Every rank matched the oracle on every run.
    pub bit_correct: bool,
}

/// One timed full run of a mode; folds the lap and the fabric's
/// healing counters into the accumulators.
fn tcp_recovery_run(
    cluster_cfg: &ClusterConfig,
    bench_cfg: &TcpRecoveryBenchConfig,
    inputs: &[Vec<u8>],
    laps: &mut Vec<u64>,
    link_failures: &mut u64,
    reconnects: &mut u64,
    bit_correct: &mut bool,
) -> Result<(), String> {
    let plan = IndexPlan::Hierarchical {
        node_size: bench_cfg.node_size,
        radix_local: 2,
        radix_remote: 2,
    };
    let t0 = Instant::now();
    let out = TcpScaleCluster::run_with_workers(
        cluster_cfg,
        &plan,
        bench_cfg.block,
        inputs,
        bench_cfg.workers,
    )
    .map_err(|e| format!("tcp recovery n={}: {e}", bench_cfg.n))?;
    laps.push(t0.elapsed().as_nanos() as u64);
    for (rank, got) in out.results.iter().enumerate() {
        if got != &verify::index_expected(rank, bench_cfg.n, bench_cfg.block) {
            *bit_correct = false;
        }
    }
    *link_failures += out.metrics.fabric.link_failures;
    *reconnects += out.metrics.fabric.reconnects;
    Ok(())
}

fn tcp_recovery_fold(
    cfg: &TcpRecoveryBenchConfig,
    mode: &'static str,
    mut laps: Vec<u64>,
    link_failures: u64,
    reconnects: u64,
    bit_correct: bool,
) -> TcpRecoveryRow {
    laps.sort_unstable();
    let mean_ns = (laps.iter().sum::<u64>() / laps.len().max(1) as u64).max(1);
    let bytes_moved = (cfg.n * (cfg.n - 1) * cfg.block) as u64;
    TcpRecoveryRow {
        mode,
        n: cfg.n,
        node_size: cfg.node_size,
        block: cfg.block,
        reps: laps.len(),
        min_ns: laps.first().copied().unwrap_or(0).max(1),
        p50_ns: percentile(&laps, 50),
        mean_ns,
        mbps: bytes_moved as f64 / (mean_ns as f64 / 1e9) / 1e6,
        link_failures,
        reconnects,
        bit_correct,
    }
}

/// Run the TCP recovery A/B plus the mid-run reconnect cell.
///
/// The A/B legs are both *faultless*: `heal-off` forces the legacy
/// fail-fast reactor ([`ClusterConfig::with_healing`]`(false)`),
/// `heal-on` arms reconnect/backoff/eviction machinery — the delta is
/// the steady-state price of the retained listener and the per-pair
/// healing state. The third cell injects one connection reset mid-run
/// with healing armed: its lap absorbs a real teardown + re-handshake
/// and must still end bit-correct with `reconnects > 0`.
///
/// # Errors
///
/// Configuration errors and the first failing run.
pub fn run_tcp_recovery(cfg: &TcpRecoveryBenchConfig) -> Result<Vec<TcpRecoveryRow>, String> {
    if cfg.node_size == 0 || !cfg.n.is_multiple_of(cfg.node_size) {
        return Err(format!(
            "node_size {} must evenly partition n={}",
            cfg.node_size, cfg.n
        ));
    }
    if cfg.n / cfg.node_size < 2 {
        return Err("the reconnect cell needs at least two nodes".into());
    }
    let inputs: Vec<Vec<u8>> = (0..cfg.n)
        .map(|r| verify::index_input(r, cfg.n, cfg.block))
        .collect();
    let base = ClusterConfig::new(cfg.n)
        .with_node_size(cfg.node_size)
        .with_timeout(cfg.timeout)
        .with_deadline(cfg.deadline)
        .with_reliability(Reliability::default());
    let off_cfg = base.clone().with_healing(false);
    let on_cfg = base.clone().with_healing(true);

    let (mut off_laps, mut on_laps) = (Vec::new(), Vec::new());
    let (mut off_lf, mut off_rc, mut off_ok) = (0u64, 0u64, true);
    let (mut on_lf, mut on_rc, mut on_ok) = (0u64, 0u64, true);
    for s in 0..cfg.samples.max(1) {
        let order: [bool; 2] = if s % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for on in order {
            for _ in 0..cfg.reps.max(1) {
                if on {
                    tcp_recovery_run(
                        &on_cfg,
                        cfg,
                        &inputs,
                        &mut on_laps,
                        &mut on_lf,
                        &mut on_rc,
                        &mut on_ok,
                    )?;
                } else {
                    tcp_recovery_run(
                        &off_cfg,
                        cfg,
                        &inputs,
                        &mut off_laps,
                        &mut off_lf,
                        &mut off_rc,
                        &mut off_ok,
                    )?;
                }
            }
        }
    }

    // The reconnect cell: reset the stream between the first two nodes
    // after round 1; healing must re-handshake and the ARQ re-drive the
    // preserved outbox, ending bit-correct.
    let reset_cfg = base
        .with_faults(FaultPlan::new().with_conn_reset(0, cfg.node_size, 1))
        .with_healing(true);
    let (mut rs_laps, mut rs_lf, mut rs_rc, mut rs_ok) = (Vec::new(), 0u64, 0u64, true);
    for _ in 0..cfg.reps.max(1) {
        tcp_recovery_run(
            &reset_cfg,
            cfg,
            &inputs,
            &mut rs_laps,
            &mut rs_lf,
            &mut rs_rc,
            &mut rs_ok,
        )?;
    }

    Ok(vec![
        tcp_recovery_fold(cfg, "heal-off", off_laps, off_lf, off_rc, off_ok),
        tcp_recovery_fold(cfg, "heal-on", on_laps, on_lf, on_rc, on_ok),
        tcp_recovery_fold(cfg, "mid-run-reconnect", rs_laps, rs_lf, rs_rc, rs_ok),
    ])
}

/// Fractional mean-lap cost of arming connection healing on a
/// faultless TCP run, from the A/B rows.
#[must_use]
pub fn tcp_recovery_overhead(rows: &[TcpRecoveryRow]) -> Option<f64> {
    let mean = |mode: &str| {
        rows.iter()
            .find(|r| r.mode == mode)
            .map(|r| r.mean_ns as f64)
    };
    let (on, off) = (mean("heal-on")?, mean("heal-off")?);
    (off > 0.0).then_some(on / off - 1.0)
}

/// Render the TCP recovery comparison as a human table.
#[must_use]
pub fn render_tcp_recovery_table(rows: &[TcpRecoveryRow]) -> String {
    let mut out = format!(
        "{:<18} {:>5} {:>5} {:>7} {:>9} {:>11} {:>11} {:>11} {:>6} {:>7} {:>8}\n",
        "mode", "n", "node", "block", "MB/s", "min", "p50", "mean", "fails", "reconn", "correct"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>5} {:>5} {:>7} {:>9.1} {:>11} {:>11} {:>11} {:>6} {:>7} {:>8}\n",
            r.mode,
            r.n,
            r.node_size,
            r.block,
            r.mbps,
            fmt_ns(r.min_ns),
            fmt_ns(r.p50_ns),
            fmt_ns(r.mean_ns),
            r.link_failures,
            r.reconnects,
            r.bit_correct,
        ));
    }
    if let Some(o) = tcp_recovery_overhead(rows) {
        out.push_str(&format!(
            "healing overhead: {:+.2}% mean lap (alternating A/B runs, both faultless)\n",
            o * 100.0
        ));
    }
    out
}

/// Render the tracked `BENCH_pr10.json` artifact (hand-rolled JSON).
#[must_use]
pub fn render_tcp_recovery_json(rows: &[TcpRecoveryRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"pr10-tcp-recovery\",\n");
    out.push_str(&EnvMeta::capture("tcp").to_json_line());
    out.push_str("  \"transport\": \"tcp\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"n\": {}, \"node_size\": {}, \"block\": {}, \
             \"reps\": {}, \"min_ns\": {}, \"p50_ns\": {}, \"mean_ns\": {}, \"mbps\": {:.2}, \
             \"link_failures\": {}, \"reconnects\": {}, \"bit_correct\": {}}}{}\n",
            r.mode,
            r.n,
            r.node_size,
            r.block,
            r.reps,
            r.min_ns,
            r.p50_ns,
            r.mean_ns,
            r.mbps,
            r.link_failures,
            r.reconnects,
            r.bit_correct,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    let ov = tcp_recovery_overhead(rows).unwrap_or(0.0);
    let healed = rows
        .iter()
        .find(|r| r.mode == "mid-run-reconnect")
        .is_some_and(|r| r.bit_correct && r.reconnects > 0);
    let all_correct = rows.iter().all(|r| r.bit_correct);
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"criteria\": {{\"healing_overhead\": {ov:.4}, \"under_5pct\": {}, \
         \"reconnect_healed_bit_correct\": {healed}, \"all_bit_correct\": {all_correct}}}\n}}\n",
        ov < 0.05,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(collective: &'static str, window: usize, mean_ns: u64) -> WireBenchRow {
        WireBenchRow {
            collective,
            mode: if window == 1 {
                "seed-baseline"
            } else {
                "pipelined"
            },
            window,
            n: 8,
            k: 2,
            radix: 4,
            block: 65536,
            rounds: 4,
            bytes_moved: 1 << 22,
            reps: 12,
            p50_ns: mean_ns,
            p99_ns: mean_ns * 2,
            mean_ns,
            mbps: 100.0,
            avg_window_occupancy: 1.5,
            piggyback_ratio: 0.5,
            retransmits: 0,
        }
    }

    #[test]
    fn speedup_is_base_over_piped() {
        let rows = vec![row("alltoall", 8, 1_000_000), row("alltoall", 1, 3_000_000)];
        assert!((speedup(&rows, "alltoall").unwrap() - 3.0).abs() < 1e-9);
        assert!(speedup(&rows, "allgather").is_none());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = vec![row("alltoall", 8, 1_000_000), row("alltoall", 1, 2_000_000)];
        let json = render_json(&rows);
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"alltoall\": 2.000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn table_lists_every_row() {
        let rows = vec![row("alltoall", 8, 1_000), row("allgather", 1, 2_000)];
        let t = render_table(&rows);
        assert!(t.contains("alltoall") && t.contains("allgather"));
        assert!(t.lines().count() >= 3);
    }

    #[test]
    fn percentiles_clamp() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[5], 99), 5);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 51);
        assert_eq!(percentile(&v, 99), 100);
    }

    fn arow(scheme: &str, block: usize, p50_ns: u64) -> AutotuneRow {
        AutotuneRow {
            scheme: scheme.into(),
            plan: if scheme == "auto" {
                "bruck-r3".into()
            } else {
                scheme.replace("fixed-", "bruck-")
            },
            n: 8,
            k: 2,
            block,
            rounds: 2,
            bytes_moved: 1 << 20,
            reps: 18,
            min_ns: p50_ns,
            p50_ns,
            p99_ns: p50_ns * 2,
            mean_ns: p50_ns,
            mbps: 50.0,
            predicted_ns: p50_ns,
        }
    }

    #[test]
    fn autotune_summary_ratios() {
        let rows = vec![
            arow("fixed-r2", 256, 3_000),
            arow("fixed-r3", 256, 1_000),
            arow("auto", 256, 1_010),
        ];
        let s = summarize_autotune(&rows);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].best_fixed, "fixed-r3");
        assert_eq!(s[0].worst_fixed, "fixed-r2");
        assert!((s[0].auto_vs_best - 1.01).abs() < 1e-9);
        assert!((s[0].worst_vs_auto - 3_000.0 / 1_010.0).abs() < 1e-9);
    }

    #[test]
    fn autotune_json_is_well_formed_enough() {
        let fit = LinearFit {
            model: bruck_model::cost::LinearModel::new(20e-6, 0.01e-6),
            r_squared: 0.999,
            samples: 30,
        };
        let rows = vec![
            arow("fixed-r2", 256, 3_000),
            arow("fixed-r3", 256, 1_000),
            arow("auto", 256, 1_000),
        ];
        let json = render_autotune_json(&rows, &fit);
        assert!(json.contains("\"bench\": \"pr4-autotune\""));
        assert!(json.contains("\"criteria\""));
        assert!(json.contains("\"within_5pct_of_best_everywhere\": true"));
        assert!(json.contains("\"beats_worst_by_1_3x_somewhere\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    /// Scaled-down end-to-end autotune matrix over real sockets.
    #[cfg(unix)]
    #[test]
    fn small_autotune_matrix_runs_end_to_end() {
        let cfg = AutotuneBenchConfig {
            n: 4,
            ports: 1,
            blocks: vec![512],
            radices: vec![2, 4],
            reps: 2,
            samples: 1,
            timeout: Duration::from_secs(30),
        };
        let (rows, fit) = run_autotune_matrix(&cfg).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(fit.samples > 0);
        assert!(rows.iter().all(|r| r.p50_ns > 0 && r.bytes_moved > 0));
        let auto = rows.iter().find(|r| r.scheme == "auto").unwrap();
        assert!(!auto.plan.is_empty());
        let table = render_autotune_table(&rows, &fit);
        assert!(table.contains("auto") && table.contains("fixed-r2"));
    }

    fn liveness_row(mode: &'static str, mean_ns: u64) -> LivenessRow {
        LivenessRow {
            mode,
            n: 8,
            k: 2,
            block: 65536,
            reps: 12,
            p50_ns: mean_ns,
            p99_ns: mean_ns * 2,
            mean_ns,
            mbps: 100.0,
            probes_sent: 0,
            retransmits: 0,
        }
    }

    #[test]
    fn liveness_overheads_are_on_over_off() {
        let rows = vec![
            liveness_row("deadline-off", 1_000_000),
            liveness_row("deadline-on", 1_030_000),
            liveness_row("watchdog-off", 2_000_000),
            liveness_row("watchdog-on", 2_020_000),
        ];
        assert!((deadline_overhead(&rows).unwrap() - 0.03).abs() < 1e-9);
        assert!((watchdog_overhead(&rows).unwrap() - 0.01).abs() < 1e-9);
        assert!(deadline_overhead(&rows[2..]).is_none());
        assert!(watchdog_overhead(&rows[..2]).is_none());
    }

    #[test]
    fn liveness_json_is_well_formed_enough() {
        let rows = vec![
            liveness_row("deadline-off", 1_000_000),
            liveness_row("deadline-on", 1_100_000),
            liveness_row("watchdog-off", 1_000_000),
            liveness_row("watchdog-on", 1_010_000),
        ];
        let json = render_liveness_json(&rows);
        assert!(json.contains("\"bench\": \"pr5-liveness-overhead\""));
        assert!(json.contains("\"deadline_overhead\": 0.1000"));
        assert!(json.contains("\"watchdog_overhead\": 0.0100"));
        assert!(json.contains("\"under_5pct\": false"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = render_liveness_table(&rows);
        assert!(table.contains("deadline-on") && table.contains("+10.00%"));
    }

    /// Scaled-down liveness comparison over real sockets.
    #[cfg(unix)]
    #[test]
    fn small_liveness_comparison_runs_end_to_end() {
        let cfg = WireBenchConfig {
            n: 4,
            ports: 1,
            block: 2048,
            reps: 2,
            samples: 1,
            timeout: Duration::from_secs(30),
            radix: None,
        };
        let rows = run_liveness_overhead(&cfg).unwrap();
        let modes: Vec<&str> = rows.iter().map(|r| r.mode).collect();
        assert_eq!(
            modes,
            ["deadline-off", "deadline-on", "watchdog-off", "watchdog-on"]
        );
        assert!(rows.iter().all(|r| r.p50_ns > 0 && r.mbps > 0.0));
        assert!(deadline_overhead(&rows).is_some() && watchdog_overhead(&rows).is_some());
    }

    /// The real thing, scaled down so the suite stays fast: a tiny
    /// matrix over the socket transport still produces sane rows.
    #[cfg(unix)]
    #[test]
    fn small_matrix_runs_end_to_end() {
        let cfg = WireBenchConfig {
            n: 4,
            ports: 1,
            block: 2048,
            reps: 2,
            samples: 1,
            timeout: Duration::from_secs(30),
            radix: None,
        };
        let row = run_case("alltoall", &cfg, WireMode::Pipelined).unwrap();
        assert_eq!((row.n, row.k, row.block), (4, 1, 2048));
        assert!(row.p50_ns > 0 && row.p99_ns >= row.p50_ns);
        assert!(row.mbps > 0.0);
        assert!(row.bytes_moved > 0);
        let base = run_case("alltoall", &cfg, WireMode::SeedBaseline).unwrap();
        assert_eq!(base.window, 1);
        assert_eq!(base.mode, "seed-baseline");
    }

    #[test]
    fn env_meta_is_sane_and_renders() {
        let env = EnvMeta::capture("tcp");
        assert!(env.cpus >= 1);
        assert_eq!(env.frag_payload, bruck_net::frame::FRAG_PAYLOAD);
        let line = env.to_json_line();
        assert!(line.contains("\"env\": {"));
        assert!(line.contains("\"transport\": \"tcp\""));
        assert!(line.ends_with(",\n"));
    }

    #[test]
    fn fit_warning_fires_only_below_floor() {
        let fit = |r2| LinearFit {
            model: bruck_model::cost::LinearModel::new(20e-6, 0.01e-6),
            r_squared: r2,
            samples: 10,
        };
        assert!(fit_warning(&fit(0.19)).unwrap().contains("0.19"));
        assert!(fit_warning(&fit(0.5)).is_none());
        assert!(fit_warning(&fit(0.97)).is_none());
    }

    fn srow(topology: &'static str, n: usize, mean_ns: u64) -> ScaleRow {
        ScaleRow {
            topology,
            plan: if topology == "flat" {
                "bruck-r2".into()
            } else {
                "hier-s32-r2x2".into()
            },
            n,
            node_size: 32,
            block: 64,
            rounds: 10,
            workers: 4,
            threads: 5,
            bytes_moved: (n * (n - 1) * 64) as u64,
            reps: 3,
            min_ns: mean_ns,
            p50_ns: mean_ns,
            mean_ns,
            mbps: 80.0,
            retransmits: 0,
            probes: 12,
            bit_correct: true,
        }
    }

    #[test]
    fn scale_summary_pairs_flat_with_two_level() {
        let rows = vec![
            srow("flat", 128, 3_000_000),
            srow("two-level", 128, 2_000_000),
            srow("flat", 256, 9_000_000),
            srow("two-level", 256, 4_500_000),
        ];
        let s = summarize_scale(&rows);
        assert_eq!(s.len(), 2);
        assert!((s[0].speedup - 1.5).abs() < 1e-9);
        assert!((s[1].speedup - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scale_json_is_well_formed_enough() {
        let rows = vec![
            srow("flat", 128, 3_000_000),
            srow("two-level", 128, 2_000_000),
        ];
        let fit = LinearFit {
            model: bruck_model::cost::LinearModel::new(20e-6, 0.01e-6),
            r_squared: 0.9,
            samples: 6,
        };
        let json = render_scale_json(&rows, Some(&fit));
        assert!(json.contains("\"bench\": \"pr9-tcp-scale\""));
        assert!(json.contains("\"transport\": \"tcp\""));
        assert!(json.contains("\"env\": {"));
        assert!(json.contains("\"r_squared\": 0.9000"));
        assert!(json.contains("\"all_bit_correct\": true"));
        assert!(json.contains("\"watchdog_armed_everywhere\": true"));
        assert!(json.contains("\"threads_o_workers_not_o_n\": true"));
        assert!(json.contains("\"two_level_beats_flat_at_128_plus\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Fit-less artifacts stay valid (a degenerate design matrix at
        // one sweep point must not block the bench).
        let bare = render_scale_json(&rows, None);
        assert!(!bare.contains("\"fit\""));
        assert_eq!(bare.matches('{').count(), bare.matches('}').count());
        let table = render_scale_table(&rows);
        assert!(table.contains("two-level") && table.contains("1.50x"));
    }

    /// Scaled-down end-to-end scale sweep over the real TCP fabric.
    #[test]
    fn small_scale_matrix_runs_end_to_end() {
        let cfg = ScaleBenchConfig {
            ns: vec![16],
            node_size: 4,
            block: 32,
            reps: 1,
            workers: Some(2),
            timeout: Duration::from_secs(30),
            deadline: Duration::from_secs(120),
        };
        let (rows, _fit) = run_scale_matrix(&cfg).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.bit_correct));
        assert!(rows.iter().all(|r| r.threads <= r.workers + 1));
        assert!(rows.iter().all(|r| r.mean_ns > 0 && r.mbps > 0.0));
        assert_eq!(rows[0].topology, "flat");
        assert_eq!(rows[1].topology, "two-level");
    }
}

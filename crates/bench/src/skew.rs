//! Seeded Zipf skewed-workload generator for the non-uniform v-ops.
//!
//! Production all-to-all traffic is rarely uniform: a few destinations
//! receive most of the bytes. The standard synthetic stand-in is a
//! Zipf popularity law — destination at popularity position `p`
//! (0-based) gets weight `1/(p+1)^s`. `s = 0` degenerates to the
//! uniform workload, `s ≈ 1` is classic web/storage skew, and
//! `s ≥ 1.5` concentrates almost everything on one hot destination.
//!
//! Two deterministic decorrelation steps keep the sweep honest:
//!
//! * popularity positions are assigned through a seeded permutation,
//!   so "the hot destination" is not always rank 0;
//! * each source rotates the permutation by its own rank, so hot spots
//!   are spread across destinations (no synthetic incast) and the
//!   aggregate load stays balanced while every *row* is skewed.
//!
//! Rows are normalized so every source sends `base · n` bytes in total
//! (up to rounding), which makes points of a skew sweep comparable:
//! only the *distribution* changes with `s`, not the volume.

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A seeded permutation of `0..n` (Fisher–Yates).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = Rng::new(seed);
    for i in (1..n).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Per-destination byte counts for one source rank under Zipf
/// parameter `s`, normalized so the row sums to ~`base * n`.
///
/// Deterministic in `(n, base, s, seed, source)`; `s = 0.0` yields the
/// uniform row `[base; n]` exactly.
#[must_use]
pub fn zipf_row(n: usize, base: usize, s: f64, seed: u64, source: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let perm = permutation(n, seed);
    let weights: Vec<f64> = (0..n)
        .map(|j| {
            // Source-rotated popularity position of destination j.
            let pos = perm[(j + source) % n];
            1.0 / ((pos + 1) as f64).powf(s)
        })
        .collect();
    let sum: f64 = weights.iter().sum();
    let budget = (base * n) as f64;
    weights
        .iter()
        .map(|w| (budget * w / sum).round() as usize)
        .collect()
}

/// The full `n × n` row-major size matrix (`matrix[i * n + j]` = bytes
/// source `i` sends destination `j`) for a Zipf-`s` workload.
#[must_use]
pub fn zipf_matrix(n: usize, base: usize, s: f64, seed: u64) -> Vec<usize> {
    let mut m = Vec::with_capacity(n * n);
    for i in 0..n {
        m.extend(zipf_row(n, base, s, seed, i));
    }
    m
}

/// Max/mean skew ratio of a row — 1.0 means uniform.
#[must_use]
pub fn row_skew(row: &[usize]) -> f64 {
    if row.is_empty() {
        return 1.0;
    }
    let max = *row.iter().max().expect("non-empty") as f64;
    let mean = row.iter().sum::<usize>() as f64 / row.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_skew_is_uniform() {
        for src in 0..8 {
            assert_eq!(zipf_row(8, 512, 0.0, 42, src), vec![512; 8]);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(zipf_row(16, 256, 1.0, 7, 3), zipf_row(16, 256, 1.0, 7, 3));
        assert_ne!(zipf_row(16, 256, 1.0, 7, 3), zipf_row(16, 256, 1.0, 8, 3));
    }

    #[test]
    fn volume_is_preserved_up_to_rounding() {
        for &s in &[0.0, 0.5, 1.0, 1.5] {
            let row = zipf_row(8, 1024, s, 3, 2);
            let total: usize = row.iter().sum();
            let budget = 1024 * 8;
            assert!(
                total.abs_diff(budget) <= 8,
                "s={s}: total {total} vs budget {budget}"
            );
        }
    }

    #[test]
    fn skew_ratio_grows_with_s() {
        let flat = row_skew(&zipf_row(8, 1024, 0.0, 11, 0));
        let mid = row_skew(&zipf_row(8, 1024, 1.0, 11, 0));
        let hot = row_skew(&zipf_row(8, 1024, 1.5, 11, 0));
        assert!((flat - 1.0).abs() < 1e-9);
        assert!(mid > flat && hot > mid, "flat={flat} mid={mid} hot={hot}");
    }

    #[test]
    fn rotation_balances_column_load() {
        // With source rotation, aggregate per-destination load is within
        // 2x of the mean even at strong skew.
        let n = 8;
        let m = zipf_matrix(n, 1024, 1.0, 5);
        let col: Vec<usize> = (0..n).map(|j| (0..n).map(|i| m[i * n + j]).sum()).collect();
        let mean = col.iter().sum::<usize>() / n;
        for (j, &c) in col.iter().enumerate() {
            assert!(
                c < 2 * mean,
                "destination {j} overloaded: {c} vs mean {mean}"
            );
        }
    }
}

//! Wall-clock Criterion benches for the concatenation algorithms.

use std::sync::Arc;
use std::time::Duration;

use bruck_bench::microbench::{BenchmarkId, Criterion};
use bruck_bench::{criterion_group, criterion_main};
use bruck_collectives::concat::ConcatAlgorithm;
use bruck_collectives::verify;
use bruck_model::cost::LinearModel;
use bruck_model::partition::Preference;
use bruck_net::{Cluster, ClusterConfig};

fn run_concat(algo: ConcatAlgorithm, n: usize, block: usize, ports: usize) {
    let cfg = ClusterConfig::new(n)
        .with_ports(ports)
        .with_cost(Arc::new(LinearModel::free()));
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::concat_input(ep.rank(), block);
        let mut result = vec![0u8; n * block];
        algo.run_into(ep, &input, &mut result)?;
        Ok(result)
    })
    .expect("concat run failed");
    std::hint::black_box(out.results);
}

fn bench_concat(c: &mut Criterion) {
    let n = 16;
    let mut group = c.benchmark_group("concat_wallclock_n16");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &block in &[64usize, 4096] {
        for algo in [
            ConcatAlgorithm::Bruck(Preference::Rounds),
            ConcatAlgorithm::GatherBroadcast,
            ConcatAlgorithm::RecursiveDoubling,
            ConcatAlgorithm::Ring,
        ] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), block),
                &block,
                |bencher, &block| bencher.iter(|| run_concat(algo, n, block, 1)),
            );
        }
    }
    group.finish();
}

fn bench_concat_multiport(c: &mut Criterion) {
    // The k-port scaling the paper's §4 is about: same n and b, rising k.
    let n = 27;
    let block = 1024;
    let mut group = c.benchmark_group("concat_ports_n27_b1k");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for k in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bencher, &k| {
            bencher.iter(|| run_concat(ConcatAlgorithm::Bruck(Preference::Rounds), n, block, k));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_concat, bench_concat_multiport);
criterion_main!(benches);

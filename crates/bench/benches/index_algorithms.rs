//! Wall-clock Criterion benches for the index algorithms on the live
//! threaded cluster (real memcpy + channel costs, zero-cost virtual
//! model). Complements the `figures` binary, which measures *virtual*
//! (SP-1-calibrated) time: here the radix trade-off shows up against the
//! real per-message overhead of the channel substrate.

use std::sync::Arc;
use std::time::Duration;

use bruck_bench::microbench::{BenchmarkId, Criterion};
use bruck_bench::{criterion_group, criterion_main};
use bruck_collectives::index::IndexAlgorithm;
use bruck_collectives::verify;
use bruck_model::cost::LinearModel;
use bruck_net::{Cluster, ClusterConfig};

fn run_index(algo: IndexAlgorithm, n: usize, block: usize) {
    let cfg = ClusterConfig::new(n).with_cost(Arc::new(LinearModel::free()));
    let out = Cluster::run(&cfg, |ep| {
        let input = verify::index_input(ep.rank(), n, block);
        // Zero-copy path: output is caller-owned and the phase scratch is
        // pooled, so the bench measures the algorithm, not the allocator.
        let mut result = vec![0u8; n * block];
        algo.run_into(ep, &input, block, &mut result)?;
        Ok(result)
    })
    .expect("index run failed");
    std::hint::black_box(out.results);
}

fn bench_index(c: &mut Criterion) {
    let n = 16;
    let mut group = c.benchmark_group("index_wallclock_n16");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &block in &[16usize, 1024, 16384] {
        for algo in [
            IndexAlgorithm::BruckRadix(2),
            IndexAlgorithm::BruckRadix(4),
            IndexAlgorithm::BruckRadix(n),
            IndexAlgorithm::Direct,
            IndexAlgorithm::Pairwise,
            IndexAlgorithm::Hypercube,
        ] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), block),
                &block,
                |bencher, &block| bencher.iter(|| run_index(algo, n, block)),
            );
        }
    }
    group.finish();
}

fn bench_radix_sweep(c: &mut Criterion) {
    // Fig. 6's wall-clock cousin: time vs radix at a fixed message size.
    let n = 16;
    let block = 256;
    let mut group = c.benchmark_group("index_radix_sweep_b256");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for r in [2usize, 3, 4, 6, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |bencher, &r| {
            bencher.iter(|| run_index(IndexAlgorithm::BruckRadix(r), n, block));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index, bench_radix_sweep);
criterion_main!(benches);

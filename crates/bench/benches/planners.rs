//! Criterion benches for the pure planning/analysis layer: schedule
//! generation, the last-round partitioner, and radix tuning. These are
//! the costs a runtime library pays *per collective call* before any
//! byte moves, so they must stay microseconds-cheap.

use std::time::Duration;

use bruck_bench::microbench::{BenchmarkId, Criterion};
use bruck_bench::{criterion_group, criterion_main};
use bruck_collectives::concat::ConcatAlgorithm;
use bruck_collectives::index::IndexAlgorithm;
use bruck_model::cost::LinearModel;
use bruck_model::partition::{plan_last_round, Preference};
use bruck_model::tuning::{all_radices, best_radix};
use bruck_sched::ScheduleStats;

fn bench_partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_last_round");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    for &(n1, n2, b, k) in &[
        (4usize, 6usize, 3usize, 3usize),
        (125, 500, 64, 4),
        (1024, 1023, 256, 1),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n1{n1}_n2{n2}_b{b}_k{k}")),
            &(n1, n2, b, k),
            |bencher, &(n1, n2, b, k)| {
                bencher.iter(|| {
                    std::hint::black_box(plan_last_round(n1, n2, b, k, Preference::Rounds))
                });
            },
        );
    }
    group.finish();
}

fn bench_planners(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_planning");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    for &n in &[64usize, 256] {
        group.bench_with_input(BenchmarkId::new("index_bruck_r2", n), &n, |bencher, &n| {
            bencher.iter(|| {
                let s = IndexAlgorithm::BruckRadix(2).plan(n, 64, 1);
                std::hint::black_box(ScheduleStats::of(&s))
            });
        });
        group.bench_with_input(BenchmarkId::new("concat_bruck", n), &n, |bencher, &n| {
            bencher.iter(|| {
                let s = ConcatAlgorithm::Bruck(Preference::Rounds).plan(n, 64, 2);
                std::hint::black_box(ScheduleStats::of(&s))
            });
        });
    }
    group.finish();
}

fn bench_tuning(c: &mut Criterion) {
    let mut group = c.benchmark_group("radix_tuning");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    let model = LinearModel::sp1();
    for &n in &[64usize, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, &n| {
            bencher.iter(|| std::hint::black_box(best_radix(n, 256, 1, &model, all_radices(n))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioner, bench_planners, bench_tuning);
criterion_main!(benches);

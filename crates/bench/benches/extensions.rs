//! Wall-clock Criterion benches for the extension operations: v-variants,
//! reductions, scans, the hierarchical alltoall, and the appendix-faithful
//! ports (vs their idiomatic twins).

use std::sync::Arc;
use std::time::Duration;

use bruck_bench::microbench::{BenchmarkId, Criterion};
use bruck_bench::{criterion_group, criterion_main};
use bruck_collectives::api::Tuning;
use bruck_collectives::appendix::index_appendix_a;
use bruck_collectives::index::{bruck, hierarchical};
use bruck_collectives::reduce::{allreduce_halving_doubling, allreduce_via_concat, ReduceOp};
use bruck_collectives::scan::scan;
use bruck_collectives::verify;
use bruck_collectives::vops::{allgatherv_into, alltoallv_into, VLayout};
use bruck_model::cost::LinearModel;
use bruck_net::{Cluster, ClusterConfig};

fn free_cfg(n: usize) -> ClusterConfig {
    ClusterConfig::new(n).with_cost(Arc::new(LinearModel::free()))
}

fn bench_vops(c: &mut Criterion) {
    let n = 12;
    let mut group = c.benchmark_group("vops_n12");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("alltoallv_skewed", |bencher| {
        bencher.iter(|| {
            let out = Cluster::run(&free_cfg(n), |ep| {
                let counts: Vec<usize> = (0..n).map(|j| (ep.rank() * j * 37) % 4096).collect();
                let layout = VLayout::from_counts(&counts);
                let flat = vec![0u8; layout.total()];
                let mut got = Vec::new();
                alltoallv_into(ep, &flat, &layout, &Tuning::default(), &mut got)?;
                Ok(got)
            })
            .expect("alltoallv failed");
            std::hint::black_box(out.results);
        });
    });
    group.bench_function("allgatherv_skewed", |bencher| {
        bencher.iter(|| {
            let out = Cluster::run(&free_cfg(n), |ep| {
                let mine = vec![0u8; (ep.rank() * 331) % 4096];
                let mut got = Vec::new();
                allgatherv_into(ep, &mine, &mut got)?;
                Ok(got)
            })
            .expect("allgatherv failed");
            std::hint::black_box(out.results);
        });
    });
    group.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let n = 16;
    let mut group = c.benchmark_group("allreduce_n16");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &m in &[64usize, 4096] {
        group.bench_with_input(BenchmarkId::new("via_concat", m), &m, |bencher, &m| {
            bencher.iter(|| {
                let out = Cluster::run(&free_cfg(n), |ep| {
                    let mine = vec![ep.rank() as f64; m];
                    allreduce_via_concat(ep, &mine, ReduceOp::Sum)
                })
                .expect("allreduce failed");
                std::hint::black_box(out.results);
            });
        });
        group.bench_with_input(
            BenchmarkId::new("halving_doubling", m),
            &m,
            |bencher, &m| {
                bencher.iter(|| {
                    let out = Cluster::run(&free_cfg(n), |ep| {
                        let mine = vec![ep.rank() as f64; m];
                        allreduce_halving_doubling(ep, &mine, ReduceOp::Sum)
                    })
                    .expect("allreduce failed");
                    std::hint::black_box(out.results);
                });
            },
        );
    }
    group.bench_function("scan_m256", |bencher| {
        bencher.iter(|| {
            let out = Cluster::run(&free_cfg(n), |ep| {
                let mine = vec![ep.rank() as f64; 256];
                scan(ep, &mine, ReduceOp::Sum)
            })
            .expect("scan failed");
            std::hint::black_box(out.results);
        });
    });
    group.finish();
}

fn bench_hierarchical(c: &mut Criterion) {
    let n = 16;
    let node_size = 4;
    let block = 1024;
    let mut group = c.benchmark_group("hierarchical_vs_flat_n16");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("flat_r2", |bencher| {
        bencher.iter(|| {
            let out = Cluster::run(&free_cfg(n), |ep| {
                let input = verify::index_input(ep.rank(), n, block);
                bruck::run(ep, &input, block, 2)
            })
            .expect("flat failed");
            std::hint::black_box(out.results);
        });
    });
    group.bench_function("two_level", |bencher| {
        bencher.iter(|| {
            let out = Cluster::run(&free_cfg(n), |ep| {
                let input = verify::index_input(ep.rank(), n, block);
                hierarchical::run(ep, &input, block, node_size, node_size, node_size)
            })
            .expect("two-level failed");
            std::hint::black_box(out.results);
        });
    });
    group.finish();
}

fn bench_appendix_vs_idiomatic(c: &mut Criterion) {
    let n = 13;
    let block = 512;
    let a: Vec<usize> = (0..n).collect();
    let mut group = c.benchmark_group("appendix_vs_idiomatic_n13");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("appendix_a_r3", |bencher| {
        bencher.iter(|| {
            let out = Cluster::run(&free_cfg(n), |ep| {
                let input = verify::index_input(ep.rank(), n, block);
                index_appendix_a(ep, &input, block, &a, 3)
            })
            .expect("appendix failed");
            std::hint::black_box(out.results);
        });
    });
    group.bench_function("idiomatic_r3", |bencher| {
        bencher.iter(|| {
            let out = Cluster::run(&free_cfg(n), |ep| {
                let input = verify::index_input(ep.rank(), n, block);
                bruck::run(ep, &input, block, 3)
            })
            .expect("idiomatic failed");
            std::hint::black_box(out.results);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_vops,
    bench_reductions,
    bench_hierarchical,
    bench_appendix_vs_idiomatic
);
criterion_main!(benches);

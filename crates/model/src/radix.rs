//! Radix-`r` positional decomposition of block indices (§3.2).
//!
//! The communication phase of the index algorithm encodes every block id
//! `j ∈ [0, n)` in radix-`r` using `w = ⌈log_r n⌉` digits. Subphase `x`
//! handles digit `x` (least significant first); step `z` of subphase `x`
//! moves every block whose digit `x` equals `z` by `z·r^x` processors.

use crate::complexity::Complexity;

/// Smallest `w ≥ 0` such that `base^w ≥ n`, i.e. `⌈log_base n⌉`.
///
/// This is the number of radix-`base` digits needed to express every value
/// in `[0, n)` — and therefore the number of subphases of the index
/// algorithm and the round count of the concatenation algorithm
/// (`d = ⌈log_{k+1} n⌉`).
///
/// # Panics
///
/// Panics if `base < 2` or `n == 0`.
///
/// # Examples
///
/// ```
/// use bruck_model::ceil_log;
/// assert_eq!(ceil_log(2, 64), 6);
/// assert_eq!(ceil_log(2, 65), 7);
/// assert_eq!(ceil_log(4, 10), 2); // 4^2 = 16 ≥ 10
/// assert_eq!(ceil_log(5, 1), 0);
/// ```
#[must_use]
pub fn ceil_log(base: usize, n: usize) -> u32 {
    assert!(base >= 2, "ceil_log: base must be at least 2, got {base}");
    assert!(n >= 1, "ceil_log: n must be at least 1");
    let mut w = 0u32;
    let mut pow = 1usize;
    while pow < n {
        // The multiplication can overflow only when n > usize::MAX / base;
        // at that point one more digit is certainly enough.
        pow = match pow.checked_mul(base) {
            Some(p) => p,
            None => return w + 1,
        };
        w += 1;
    }
    w
}

/// `base^exp` with a panic on overflow (inputs in this crate are processor
/// counts, far below overflow in practice).
#[must_use]
pub fn pow(base: usize, exp: u32) -> usize {
    base.checked_pow(exp)
        .unwrap_or_else(|| panic!("pow overflow: {base}^{exp}"))
}

/// The radix-`r` digit at position `x` (0 = least significant) of `value`.
#[must_use]
pub fn digit(value: usize, r: usize, x: u32) -> usize {
    debug_assert!(r >= 2);
    (value / pow(r, x)) % r
}

/// Full radix decomposition of the block-id space `[0, n)` for a given
/// radix, exposing exactly the quantities the index algorithm needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RadixDecomposition {
    n: usize,
    r: usize,
    w: u32,
}

impl RadixDecomposition {
    /// Decomposition of `[0, n)` in radix `r`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `r < 2`.
    #[must_use]
    pub fn new(n: usize, r: usize) -> Self {
        assert!(n >= 1, "RadixDecomposition: n must be ≥ 1");
        assert!(r >= 2, "RadixDecomposition: radix must be ≥ 2");
        Self {
            n,
            r,
            w: ceil_log(r, n),
        }
    }

    /// Number of values being decomposed (`n`).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The radix `r`.
    #[must_use]
    pub fn radix(&self) -> usize {
        self.r
    }

    /// Number of digits / subphases, `w = ⌈log_r n⌉`.
    #[must_use]
    pub fn num_subphases(&self) -> u32 {
        self.w
    }

    /// Number of *steps* in subphase `x`: the number of distinct non-zero
    /// values the digit actually takes over `[0, n)`.
    ///
    /// For `x < w-1` this is `r - 1`; for the most significant subphase it
    /// is `⌈n / r^{w-1}⌉ - 1` (pseudocode lines 7–11 of Appendix A).
    #[must_use]
    pub fn steps_in_subphase(&self, x: u32) -> usize {
        assert!(x < self.w, "subphase {x} out of range (w = {})", self.w);
        if x + 1 == self.w {
            self.n.div_ceil(pow(self.r, self.w - 1)) - 1
        } else {
            self.r - 1
        }
    }

    /// Total number of steps over all subphases: the one-port round count
    /// `C1 = (r-1)(w-1) + ⌈n/r^{w-1}⌉ - 1 ≤ (r-1)·⌈log_r n⌉`.
    #[must_use]
    pub fn total_steps(&self) -> usize {
        (0..self.w).map(|x| self.steps_in_subphase(x)).sum()
    }

    /// The digit of `value` at subphase `x`.
    #[must_use]
    pub fn digit(&self, value: usize, x: u32) -> usize {
        digit(value, self.r, x)
    }

    /// Block ids `j ∈ [0, n)` whose digit at subphase `x` equals `z`
    /// (`z ≥ 1`): exactly the blocks packed into the single message of step
    /// `(x, z)`.
    #[must_use]
    pub fn blocks_for_step(&self, x: u32, z: usize) -> Vec<usize> {
        assert!(
            z >= 1 && z <= self.steps_in_subphase(x),
            "step z={z} out of range"
        );
        (0..self.n).filter(|&j| self.digit(j, x) == z).collect()
    }

    /// The rotation amount of step `(x, z)`: blocks move `z·r^x` processors
    /// to the right (toward higher ranks, cyclically).
    #[must_use]
    pub fn step_distance(&self, x: u32, z: usize) -> usize {
        z * pow(self.r, x)
    }

    /// Exact number of blocks `j ∈ [0, n)` with `digit_x(j) = z`, in
    /// closed form (no enumeration).
    #[must_use]
    pub fn blocks_in_step(&self, x: u32, z: usize) -> usize {
        let period = pow(self.r, x + 1);
        let unit = pow(self.r, x);
        let full = (self.n / period) * unit;
        let rem = self.n % period;
        full + rem.saturating_sub(z * unit).min(unit)
    }

    /// The largest number of blocks in any one message of any step.
    ///
    /// For subphases below the top digit this is at most `⌈n/r⌉` (the
    /// paper's §3.2 bound); the top subphase can carry up to `r^{w-1}`
    /// blocks when `n` is not a power of `r` (e.g. `n=6, r=3`: step
    /// `(1, 1)` carries blocks {3, 4, 5}).
    #[must_use]
    pub fn max_blocks_per_message(&self) -> usize {
        self.steps()
            .map(|(x, z)| self.blocks_in_step(x, z))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over all `(subphase, step)` pairs in execution order.
    pub fn steps(&self) -> impl Iterator<Item = (u32, usize)> + '_ {
        (0..self.w).flat_map(move |x| (1..=self.steps_in_subphase(x)).map(move |z| (x, z)))
    }

    /// Closed-form `(C1, C2)` of the radix-`r` index algorithm's
    /// communication phase in the `k`-port model: the steps of each
    /// subphase are independent, so they are grouped `ports` per round,
    /// and a round's `C2` contribution is the largest message in its
    /// group (`b · max blocks`).
    ///
    /// Allocation-free — uses [`blocks_in_step`](Self::blocks_in_step)
    /// rather than enumerating block ids, so a planner can sweep every
    /// radix in `[2, n]` cheaply.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    #[must_use]
    pub fn complexity(&self, block: usize, ports: usize) -> Complexity {
        assert!(ports >= 1, "complexity: ports must be ≥ 1");
        let mut c = Complexity::ZERO;
        if self.n <= 1 {
            return c;
        }
        for x in 0..self.w {
            let steps = self.steps_in_subphase(x);
            let mut z = 1usize;
            while z <= steps {
                let hi = steps.min(z + ports - 1);
                let max_blocks = (z..=hi)
                    .map(|zz| self.blocks_in_step(x, zz))
                    .max()
                    .unwrap_or(0);
                c = c.plus_round((max_blocks * block) as u64);
                z = hi + 1;
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log_basics() {
        assert_eq!(ceil_log(2, 1), 0);
        assert_eq!(ceil_log(2, 2), 1);
        assert_eq!(ceil_log(2, 3), 2);
        assert_eq!(ceil_log(3, 9), 2);
        assert_eq!(ceil_log(3, 10), 3);
        assert_eq!(ceil_log(10, 1000), 3);
        assert_eq!(ceil_log(10, 1001), 4);
    }

    #[test]
    #[should_panic(expected = "base must be at least 2")]
    fn ceil_log_rejects_base_one() {
        let _ = ceil_log(1, 5);
    }

    #[test]
    fn digit_extraction() {
        // 5 in radix 3 is "12": digit 0 = 2, digit 1 = 1 (paper's example:
        // with r = 3, block 5 moves 2·3^0 then 1·3^1).
        assert_eq!(digit(5, 3, 0), 2);
        assert_eq!(digit(5, 3, 1), 1);
        assert_eq!(digit(5, 3, 2), 0);
    }

    #[test]
    fn subphase_counts_match_paper_r2() {
        // r = 2, n = 5: w = 3 subphases; digits of 0..4 in binary need
        // bits 0,1,2; last subphase has ⌈5/4⌉-1 = 1 step.
        let d = RadixDecomposition::new(5, 2);
        assert_eq!(d.num_subphases(), 3);
        assert_eq!(d.steps_in_subphase(0), 1);
        assert_eq!(d.steps_in_subphase(1), 1);
        assert_eq!(d.steps_in_subphase(2), 1);
        assert_eq!(d.total_steps(), 3); // C1 = ⌈log2 5⌉ = 3
    }

    #[test]
    fn subphase_counts_r_equals_n() {
        // r = n: a single subphase with n-1 steps — the direct algorithm.
        let d = RadixDecomposition::new(7, 7);
        assert_eq!(d.num_subphases(), 1);
        assert_eq!(d.steps_in_subphase(0), 6);
        assert_eq!(d.total_steps(), 6);
    }

    #[test]
    fn total_steps_upper_bound() {
        for n in 2..200 {
            for r in 2..=n {
                let d = RadixDecomposition::new(n, r);
                let w = ceil_log(r, n) as usize;
                assert!(
                    d.total_steps() <= (r - 1) * w,
                    "C1 bound violated for n={n} r={r}"
                );
            }
        }
    }

    #[test]
    fn blocks_for_step_partition_blocks() {
        // Every non-zero block id appears in exactly one (x, z) step.
        for n in [2usize, 5, 12, 16, 31] {
            for r in 2..=n {
                let d = RadixDecomposition::new(n, r);
                let mut seen = vec![0u32; n];
                for (x, z) in d.steps() {
                    for j in d.blocks_for_step(x, z) {
                        // block j is *touched* once per non-zero digit
                        assert_eq!(d.digit(j, x), z);
                        seen[j] += 1;
                    }
                }
                for (j, &count) in seen.iter().enumerate() {
                    let nonzero_digits = (0..d.num_subphases())
                        .filter(|&x| d.digit(j, x) != 0)
                        .count() as u32;
                    assert_eq!(count, nonzero_digits, "n={n} r={r} j={j}");
                }
                // block 0 never moves
                assert_eq!(seen[0], 0);
            }
        }
    }

    #[test]
    fn step_distances_sum_to_block_id() {
        // The total distance a block travels over all steps equals its id,
        // which is why it lands at processor (i + j) mod n.
        for n in [5usize, 9, 16, 27] {
            for r in 2..=n {
                let d = RadixDecomposition::new(n, r);
                let mut moved = vec![0usize; n];
                for (x, z) in d.steps() {
                    for j in d.blocks_for_step(x, z) {
                        moved[j] += d.step_distance(x, z);
                    }
                }
                for (j, &total) in moved.iter().enumerate() {
                    assert_eq!(total, j, "n={n} r={r}");
                }
            }
        }
    }

    #[test]
    fn closed_form_block_count_matches_enumeration() {
        for n in 2..80 {
            for r in 2..=n {
                let d = RadixDecomposition::new(n, r);
                for (x, z) in d.steps() {
                    assert_eq!(
                        d.blocks_in_step(x, z),
                        d.blocks_for_step(x, z).len(),
                        "n={n} r={r} x={x} z={z}"
                    );
                }
            }
        }
    }

    #[test]
    fn message_size_bound() {
        // The exact per-step bound is ⌈n/r^{x+1}⌉·r^x blocks; the paper's
        // simpler ⌈n/r⌉ holds exactly whenever n is a power of r.
        for n in 2..100 {
            for r in 2..=n {
                let d = RadixDecomposition::new(n, r);
                for (x, z) in d.steps() {
                    let blocks = d.blocks_in_step(x, z);
                    assert!(blocks <= d.max_blocks_per_message());
                    let exact_bound = n.div_ceil(pow(r, x + 1)) * pow(r, x);
                    assert!(
                        blocks <= exact_bound,
                        "per-step bound violated n={n} r={r} x={x} z={z}"
                    );
                }
                if n == pow(r, d.num_subphases()) {
                    assert!(d.max_blocks_per_message() <= n.div_ceil(r), "n={n} r={r}");
                }
            }
        }
    }
}

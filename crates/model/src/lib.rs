//! Analytical substrate for the Bruck et al. all-to-all reproduction.
//!
//! This crate is pure math — no threads, no I/O. It provides:
//!
//! * [`cost`] — communication cost models: the paper's linear model
//!   (`T = β + mτ`), the postal and LogP models it cites, and the SP-1
//!   calibration of §3.5 with congestion/system-noise factors.
//! * [`complexity`] — the two complexity measures of §1.2: `C1` (number of
//!   communication rounds) and `C2` (sum over rounds of the largest message).
//! * [`bounds`] — the lower bounds of §2 (Propositions 2.1–2.4 and the
//!   compound bounds of Theorems 2.5–2.7 / 2.9).
//! * [`radix`] — radix-`r` digit decomposition used by the index algorithm's
//!   communication phase (§3.2).
//! * [`circulant`] — circulant graphs `G(n; S)` and the offset sets
//!   `S_i = {(k+1)^i, 2(k+1)^i, …, k(k+1)^i}` used by the concatenation
//!   algorithm (§4.1).
//! * [`spanning_tree`] — the round-labelled spanning trees `T_0 … T_{n-1}`
//!   of Figs. 7–8 and their translation property.
//! * [`partition`] — the last-round table-partitioning problem of
//!   Proposition 4.2 / Table 1, solved byte-granularly with the fallbacks
//!   of the §4 Remark for the exception range.
//! * [`tuning`] — choosing the radix `r` that minimizes predicted time for
//!   given machine parameters (§3.3, §3.5).
//! * [`calibrate`] — fitting cost-model parameters (`β`, `τ`) from timed
//!   measurements, including a [`calibrate::Calibrator`] that folds live
//!   ping-ladder and executed-run observations into one fit.
//! * [`planner`] — cost-model dispatch over the whole algorithm family:
//!   evaluate the fitted model for every radix (plus hypercube, direct,
//!   mixed-radix, and ring vs. circulant concatenation) and return the
//!   arg-min schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod calibrate;
pub mod circulant;
pub mod complexity;
pub mod cost;
pub mod mixed_radix;
pub mod partition;
pub mod planner;
pub mod program;
pub mod radix;
pub mod spanning_tree;
pub mod tuning;

pub use bounds::{concat_bounds, index_bounds, LowerBounds};
pub use calibrate::{Calibrator, LinearFit};
pub use complexity::Complexity;
pub use cost::{CostModel, HierarchicalModel, LinearModel, LogPModel, PostalModel, Sp1Model};
pub use mixed_radix::MixedRadix;
pub use planner::{ConcatPlan, IndexPlan, PlanChoice, Planner, VIndexPlan};
pub use program::{ProgramOp, ProgramRound, ProgramXfer, RankProgram};
pub use radix::{ceil_log, RadixDecomposition};
pub use tuning::WireTuning;

//! Lower bounds for the concatenation and index operations (§2).
//!
//! * Proposition 2.1/2.3 — any algorithm needs `C1 ≥ ⌈log_{k+1} n⌉` rounds
//!   (data from one source can reach at most `(k+1)^d` processors in `d`
//!   rounds).
//! * Proposition 2.2/2.4 — any algorithm transfers `C2 ≥ ⌈b(n-1)/k⌉` units
//!   (every processor must receive `b(n-1)` bytes through `k` input ports).
//! * Theorem 2.5/2.7 — *compound* bound: an index algorithm that is
//!   round-optimal (`C1 = ⌈log_{k+1} n⌉`) must transfer
//!   `C2 ≥ (b·n / (k+1)) · log_{k+1} n` when `n` is a power of `k+1`
//!   (each block then travels as many hops as the digit-sum of its
//!   displacement).
//! * Theorem 2.6 — an index algorithm that is transfer-optimal
//!   (`C2 = b(n-1)/k`) needs `C1 ≥ (n-1)/k` rounds (every block must go
//!   directly from source to destination).
//! * Theorem 2.9 — in the one-port model, `C1 = O(log n)` forces
//!   `C2 = Ω(b·n·log n)`.

use crate::complexity::Complexity;
use crate::radix::{ceil_log, pow};

/// Lower bounds on the two complexity measures for one operation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerBounds {
    /// Minimum number of communication rounds.
    pub c1: u64,
    /// Minimum sequential data transfer (bytes).
    pub c2: u64,
}

impl LowerBounds {
    /// True if `c` meets both bounds (sanity: every valid algorithm must).
    #[must_use]
    pub fn admits(&self, c: Complexity) -> bool {
        c.c1 >= self.c1 && c.c2 >= self.c2
    }

    /// True if `c` is optimal in the round measure.
    #[must_use]
    pub fn c1_optimal(&self, c: Complexity) -> bool {
        c.c1 == self.c1
    }

    /// True if `c` is optimal in the transfer measure.
    #[must_use]
    pub fn c2_optimal(&self, c: Complexity) -> bool {
        c.c2 == self.c2
    }
}

fn check_params(n: usize, k: usize) {
    assert!(n >= 1, "need at least one processor");
    assert!(k >= 1, "need at least one port");
    // k > n-1 is allowed: the extra ports simply go unused.
}

/// Lower bounds for the concatenation (all-to-all broadcast) operation
/// among `n` processors with `k` ports and `b`-byte blocks
/// (Propositions 2.1 and 2.2).
#[must_use]
pub fn concat_bounds(n: usize, k: usize, b: usize) -> LowerBounds {
    check_params(n, k);
    if n == 1 {
        return LowerBounds { c1: 0, c2: 0 };
    }
    LowerBounds {
        c1: u64::from(ceil_log(k + 1, n)),
        c2: ((b * (n - 1)).div_ceil(k)) as u64,
    }
}

/// Lower bounds for the index (all-to-all personalized) operation
/// (Propositions 2.3 and 2.4 — identical to the concatenation bounds,
/// by reduction).
#[must_use]
pub fn index_bounds(n: usize, k: usize, b: usize) -> LowerBounds {
    concat_bounds(n, k, b)
}

/// Theorem 2.5 / 2.7: minimum `C2` of any index algorithm that uses the
/// *minimal* number of rounds `C1 = ⌈log_{k+1} n⌉`.
///
/// For `n = (k+1)^d` the bound is exactly `b·n·d/(k+1)`; for general `n`
/// we return the paper's `Ω`-shape evaluated at the same expression with
/// `d = ⌈log_{k+1} n⌉` rounded down — a *valid* (if slightly slack) lower
/// bound used by the trade-off benches.
#[must_use]
pub fn index_c2_bound_when_round_optimal(n: usize, k: usize, b: usize) -> u64 {
    check_params(n, k);
    if n <= 1 {
        return 0;
    }
    let d = u64::from(ceil_log(k + 1, n));
    if pow(k + 1, d as u32) == n {
        // Exact: each processor injects b·n·d/(k+1) over its k... — the
        // paper derives D_i = b·d·n·k/(k+1) total transmissions per source
        // tree, giving a per-port sequence of b·d·n/(k+1).
        (b as u64 * n as u64 * d) / (k as u64 + 1)
    } else {
        // Slack general form: strictly weaker than the power case but
        // still a true bound (monotonicity in n).
        let np = pow(k + 1, d as u32 - 1) as u64;
        (b as u64 * np * (d - 1)) / (k as u64 + 1)
    }
}

/// Theorem 2.6: minimum `C1` of any index algorithm that is
/// transfer-optimal (`C2 = b(n-1)/k`): every block must travel directly,
/// so `C1 ≥ ⌈(n-1)/k⌉`.
#[must_use]
pub fn index_c1_bound_when_transfer_optimal(n: usize, k: usize) -> u64 {
    check_params(n, k);
    if n <= 1 {
        return 0;
    }
    ((n - 1).div_ceil(k)) as u64
}

/// Theorem 2.9 (one-port): any index algorithm with `C1 ≤ c·log₂ n` rounds
/// has `C2 = Ω(b·n·log n)`. This helper returns the concrete
/// `b·n·log₂(n)/(8·log₂ c')`-shaped witness we assert against in tests —
/// a conservative constant per Lemma C.1 (`h ≥ m/(8 log c)`).
#[must_use]
pub fn index_c2_omega_when_logarithmic(n: usize, b: usize, c: f64) -> f64 {
    assert!(c >= 1.0);
    if n <= 2 {
        return 0.0;
    }
    let m = (n as f64).log2();
    // Lemma C.1: a fraction of the blocks travel h ≥ min(m/64, m/(8·log₂ c))
    // hops each. Each of the n sources injects n-1 blocks whose average hop
    // count is ≥ h/2, so the total volume is ≥ b·n·(n-1)·h/2; spread over
    // the n (one-port) processors, some port carries ≥ b·(n-1)·h/2.
    let h = (m / 64.0).min(m / (8.0 * c.max(2.0).log2()));
    b as f64 * (n as f64 - 1.0) * h / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_bounds_one_port() {
        let lb = concat_bounds(64, 1, 1);
        assert_eq!(lb.c1, 6); // log2 64
        assert_eq!(lb.c2, 63); // b(n-1)/k
    }

    #[test]
    fn concat_bounds_multi_port() {
        let lb = concat_bounds(9, 2, 4);
        assert_eq!(lb.c1, 2); // log3 9
        assert_eq!(lb.c2, 16); // ⌈4·8/2⌉
    }

    #[test]
    fn concat_bounds_non_power() {
        let lb = concat_bounds(10, 3, 3);
        assert_eq!(lb.c1, 2); // ⌈log4 10⌉
        assert_eq!(lb.c2, 9); // ⌈3·9/3⌉
    }

    #[test]
    fn trivial_single_processor() {
        let lb = concat_bounds(1, 1, 8);
        assert_eq!((lb.c1, lb.c2), (0, 0));
    }

    #[test]
    fn index_equals_concat_bounds() {
        for n in 1..50 {
            for k in 1..4.min(n.max(2)) {
                assert_eq!(index_bounds(n, k, 3), concat_bounds(n, k, 3));
            }
        }
    }

    #[test]
    fn compound_c2_bound_power_case() {
        // n = 8, k = 1, b = 1: round-optimal (3 rounds) index must move
        // ≥ 8·3/2 = 12 units — exactly the hypercube/Bruck r=2 volume.
        assert_eq!(index_c2_bound_when_round_optimal(8, 1, 1), 12);
        // n = 9, k = 2, b = 2: ≥ 2·9·2/3 = 12.
        assert_eq!(index_c2_bound_when_round_optimal(9, 2, 2), 12);
    }

    #[test]
    fn compound_c2_bound_exceeds_standalone() {
        // The compound bound must dominate the standalone Prop 2.4 bound
        // for power-of-two n in the one-port model (that is its point).
        for d in 2..10u32 {
            let n = 1usize << d;
            let compound = index_c2_bound_when_round_optimal(n, 1, 1);
            let standalone = index_bounds(n, 1, 1).c2;
            assert!(
                compound > standalone,
                "n={n}: compound {compound} ≤ standalone {standalone}"
            );
        }
    }

    #[test]
    fn transfer_optimal_round_bound() {
        assert_eq!(index_c1_bound_when_transfer_optimal(64, 1), 63);
        assert_eq!(index_c1_bound_when_transfer_optimal(64, 4), 16);
        assert_eq!(index_c1_bound_when_transfer_optimal(10, 3), 3);
    }

    #[test]
    fn admits_and_optimality() {
        let lb = concat_bounds(16, 1, 1);
        assert!(lb.admits(Complexity::new(4, 15)));
        assert!(lb.c1_optimal(Complexity::new(4, 15)));
        assert!(lb.c2_optimal(Complexity::new(4, 15)));
        assert!(!lb.admits(Complexity::new(3, 15)));
        assert!(!lb.admits(Complexity::new(4, 14)));
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn rejects_zero_ports() {
        let _ = concat_bounds(4, 0, 1);
    }
}

//! Fitting cost-model parameters from measurements.
//!
//! §3.5 calibrates the linear model for the SP-1 from two measured
//! quantities (start-up ≈ 29 µs, bandwidth ≈ 8.5 MB/s). This module does
//! the general version: ordinary least squares of
//! `time = β + bytes·τ` over `(bytes, seconds)` samples, with the fit
//! quality (`R²`) so callers can tell whether the linear model describes
//! their substrate at all.

use crate::cost::LinearModel;

/// A fitted linear model plus fit diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// The fitted model (`startup` = intercept, `per_byte` = slope).
    pub model: LinearModel,
    /// Coefficient of determination of the fit in `[0, 1]`
    /// (1 = perfectly linear).
    pub r_squared: f64,
    /// Number of samples used.
    pub samples: usize,
}

/// Ordinary least squares of `seconds = β + bytes·τ`.
///
/// Negative fitted parameters are clamped to zero (a message cannot have
/// negative cost; slightly negative intercepts happen with noisy small
/// samples).
///
/// # Panics
///
/// Panics with fewer than two samples or when all sizes are equal (the
/// slope would be undefined).
#[must_use]
pub fn fit_linear(samples: &[(u64, f64)]) -> LinearFit {
    assert!(
        samples.len() >= 2,
        "need at least two samples to fit a line"
    );
    let n = samples.len() as f64;
    let mean_x = samples.iter().map(|&(x, _)| x as f64).sum::<f64>() / n;
    let mean_y = samples.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = samples
        .iter()
        .map(|&(x, _)| (x as f64 - mean_x).powi(2))
        .sum();
    assert!(sxx > 0.0, "all sample sizes are equal — slope undefined");
    let sxy: f64 = samples
        .iter()
        .map(|&(x, y)| (x as f64 - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    let ss_tot: f64 = samples.iter().map(|&(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = samples
        .iter()
        .map(|&(x, y)| (y - (intercept + slope * x as f64)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    } else {
        1.0
    };

    LinearFit {
        model: LinearModel::new(intercept.max(0.0), slope.max(0.0)),
        r_squared,
        samples: samples.len(),
    }
}

/// Fit the §3.5 multiplicative factors: given a *reference* linear model
/// (the hardware spec) and measured samples, find the least-squares
/// `(γ_startup, γ_transfer)` such that
/// `time ≈ γ_s·β + bytes·γ_c·τ` — i.e. fit a line and divide out the
/// reference.
#[must_use]
pub fn fit_gamma_factors(reference: LinearModel, samples: &[(u64, f64)]) -> (f64, f64) {
    let fit = fit_linear(samples);
    let gs = if reference.startup > 0.0 {
        fit.model.startup / reference.startup
    } else {
        1.0
    };
    let gc = if reference.per_byte > 0.0 {
        fit.model.per_byte / reference.per_byte
    } else {
        1.0
    };
    (gs.max(1.0), gc.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn exact_line_recovered() {
        let truth = LinearModel::new(29e-6, 0.12e-6);
        let samples: Vec<(u64, f64)> = [1u64, 64, 256, 1024, 8192]
            .iter()
            .map(|&b| (b, truth.send_cost(b)))
            .collect();
        let fit = fit_linear(&samples);
        assert!((fit.model.startup - 29e-6).abs() < 1e-12);
        assert!((fit.model.per_byte - 0.12e-6).abs() < 1e-15);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn noisy_line_fits_reasonably() {
        let truth = LinearModel::new(10e-6, 1e-9);
        // Deterministic "noise": alternate ±5%.
        let samples: Vec<(u64, f64)> = (1..40u64)
            .map(|i| {
                let b = i * 500;
                let noise = if i % 2 == 0 { 1.05 } else { 0.95 };
                (b, truth.send_cost(b) * noise)
            })
            .collect();
        let fit = fit_linear(&samples);
        assert!((fit.model.per_byte - 1e-9).abs() / 1e-9 < 0.15);
        assert!(fit.r_squared > 0.9);
    }

    #[test]
    fn negative_intercept_clamped() {
        // Steep line through near-origin points can fit a tiny negative β.
        let samples = vec![(100u64, 1e-6), (200, 2.1e-6), (300, 2.9e-6)];
        let fit = fit_linear(&samples);
        assert!(fit.model.startup >= 0.0);
    }

    #[test]
    fn gamma_factors_recovered() {
        let reference = LinearModel::sp1();
        let inflated = LinearModel::new(reference.startup * 1.5, reference.per_byte * 2.0);
        let samples: Vec<(u64, f64)> = [16u64, 128, 1024, 4096]
            .iter()
            .map(|&b| (b, inflated.send_cost(b)))
            .collect();
        let (gs, gc) = fit_gamma_factors(reference, &samples);
        assert!((gs - 1.5).abs() < 1e-6, "γs = {gs}");
        assert!((gc - 2.0).abs() < 1e-6, "γc = {gc}");
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn too_few_samples() {
        let _ = fit_linear(&[(1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "slope undefined")]
    fn degenerate_sizes() {
        let _ = fit_linear(&[(5, 1.0), (5, 2.0)]);
    }
}

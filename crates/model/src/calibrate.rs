//! Fitting cost-model parameters from measurements.
//!
//! §3.5 calibrates the linear model for the SP-1 from two measured
//! quantities (start-up ≈ 29 µs, bandwidth ≈ 8.5 MB/s). This module does
//! the general version: ordinary least squares of
//! `time = β + bytes·τ` over `(bytes, seconds)` samples, with the fit
//! quality (`R²`) so callers can tell whether the linear model describes
//! their substrate at all.

use crate::complexity::Complexity;
use crate::cost::LinearModel;

/// A fitted linear model plus fit diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// The fitted model (`startup` = intercept, `per_byte` = slope).
    pub model: LinearModel,
    /// Coefficient of determination of the fit in `[0, 1]`
    /// (1 = perfectly linear).
    pub r_squared: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl LinearFit {
    /// Size of the [`to_bytes`](Self::to_bytes) encoding.
    pub const WIRE_BYTES: usize = 32;

    /// Encode the fit as 32 little-endian bytes (`startup`, `per_byte`,
    /// `r_squared` as `f64`, `samples` as `u64`) — small enough to ride
    /// in a control message when a cluster agrees on one shared fit.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; Self::WIRE_BYTES] {
        let mut out = [0u8; Self::WIRE_BYTES];
        out[0..8].copy_from_slice(&self.model.startup.to_le_bytes());
        out[8..16].copy_from_slice(&self.model.per_byte.to_le_bytes());
        out[16..24].copy_from_slice(&self.r_squared.to_le_bytes());
        out[24..32].copy_from_slice(&(self.samples as u64).to_le_bytes());
        out
    }

    /// Decode a [`to_bytes`](Self::to_bytes) encoding.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; Self::WIRE_BYTES]) -> Self {
        let f = |range: core::ops::Range<usize>| {
            f64::from_le_bytes(bytes[range].try_into().expect("8-byte slice"))
        };
        let samples = u64::from_le_bytes(bytes[24..32].try_into().expect("8-byte slice"));
        Self {
            model: LinearModel::new(f(0..8), f(8..16)),
            r_squared: f(16..24),
            samples: samples as usize,
        }
    }
}

/// Accumulates timed observations of communication rounds and fits the
/// linear model `seconds = C1·β + C2·τ` to them by least squares.
///
/// Two kinds of observation feed the same fit:
///
/// * **ping samples** ([`record_ping`](Self::record_ping)) — one round
///   moving `bytes` bytes, i.e. the row `(C1 = 1, C2 = bytes)`. A ladder
///   of ping sizes over a live transport is the §3.5 calibration
///   procedure generalized;
/// * **run samples** ([`record_run`](Self::record_run)) — a whole
///   collective's measured `(C1, C2)` (e.g. from executed-run metrics)
///   with its wall-clock time, refreshing the fit from real workloads.
///
/// The fit is a *no-intercept* two-variable ordinary least squares: with
/// only ping rows (`C1 = 1` everywhere) it degenerates to exactly the
/// intercept-and-slope regression of [`fit_linear`].
#[derive(Debug, Clone, Default)]
pub struct Calibrator {
    samples: Vec<(Complexity, f64)>,
}

impl Calibrator {
    /// An empty calibrator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one ping observation: a single round moving `bytes` bytes
    /// took `seconds`.
    pub fn record_ping(&mut self, bytes: u64, seconds: f64) {
        self.record_run(Complexity::new(1, bytes), seconds);
    }

    /// Record one run observation: an execution with complexity `c` took
    /// `seconds` of wall clock. Non-finite or negative times and empty
    /// complexities are ignored (a dead sample cannot improve the fit).
    pub fn record_run(&mut self, c: Complexity, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 || (c.c1 == 0 && c.c2 == 0) {
            return;
        }
        self.samples.push((c, seconds));
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Least-squares fit of `seconds = C1·β + C2·τ` over the recorded
    /// samples (normal equations of the no-intercept two-variable OLS).
    /// Negative fitted parameters are clamped to zero; `r_squared` is
    /// computed against the mean-time baseline, clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two samples, or when the design matrix is
    /// singular (all samples proportional — β and τ cannot be told
    /// apart).
    #[must_use]
    pub fn fit(&self) -> LinearFit {
        assert!(
            self.samples.len() >= 2,
            "need at least two samples to fit a line"
        );
        self.try_fit()
            .expect("degenerate calibration samples — β and τ are collinear")
    }

    /// Non-panicking [`fit`](Self::fit): `None` with fewer than two
    /// samples or a singular design matrix.
    #[must_use]
    pub fn try_fit(&self) -> Option<LinearFit> {
        if self.samples.len() < 2 {
            return None;
        }
        let (mut a11, mut a12, mut a22, mut b1, mut b2) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        for &(c, t) in &self.samples {
            let x1 = c.c1 as f64;
            let x2 = c.c2 as f64;
            a11 += x1 * x1;
            a12 += x1 * x2;
            a22 += x2 * x2;
            b1 += x1 * t;
            b2 += x2 * t;
        }
        let det = a11 * a22 - a12 * a12;
        // The determinant scales with (Σ C1²)(Σ C2²); compare it against
        // that scale, not an absolute epsilon, so byte counts in the
        // millions don't trip a false singularity.
        if det.abs() <= f64::EPSILON * a11 * a22 {
            return None;
        }
        let beta = (a22 * b1 - a12 * b2) / det;
        let tau = (a11 * b2 - a12 * b1) / det;

        let n = self.samples.len() as f64;
        let mean_t = self.samples.iter().map(|&(_, t)| t).sum::<f64>() / n;
        let ss_tot: f64 = self
            .samples
            .iter()
            .map(|&(_, t)| (t - mean_t).powi(2))
            .sum();
        let ss_res: f64 = self
            .samples
            .iter()
            .map(|&(c, t)| (t - (beta * c.c1 as f64 + tau * c.c2 as f64)).powi(2))
            .sum();
        let r_squared = if ss_tot > 0.0 {
            (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
        } else {
            1.0
        };

        Some(LinearFit {
            model: LinearModel::new(beta.max(0.0), tau.max(0.0)),
            r_squared,
            samples: self.samples.len(),
        })
    }
}

/// Ordinary least squares of `seconds = β + bytes·τ`.
///
/// Negative fitted parameters are clamped to zero (a message cannot have
/// negative cost; slightly negative intercepts happen with noisy small
/// samples).
///
/// # Panics
///
/// Panics with fewer than two samples or when all sizes are equal (the
/// slope would be undefined).
#[must_use]
pub fn fit_linear(samples: &[(u64, f64)]) -> LinearFit {
    assert!(
        samples.len() >= 2,
        "need at least two samples to fit a line"
    );
    let n = samples.len() as f64;
    let mean_x = samples.iter().map(|&(x, _)| x as f64).sum::<f64>() / n;
    let mean_y = samples.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = samples
        .iter()
        .map(|&(x, _)| (x as f64 - mean_x).powi(2))
        .sum();
    assert!(sxx > 0.0, "all sample sizes are equal — slope undefined");
    let sxy: f64 = samples
        .iter()
        .map(|&(x, y)| (x as f64 - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    let ss_tot: f64 = samples.iter().map(|&(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = samples
        .iter()
        .map(|&(x, y)| (y - (intercept + slope * x as f64)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    } else {
        1.0
    };

    LinearFit {
        model: LinearModel::new(intercept.max(0.0), slope.max(0.0)),
        r_squared,
        samples: samples.len(),
    }
}

/// Fit the §3.5 multiplicative factors: given a *reference* linear model
/// (the hardware spec) and measured samples, find the least-squares
/// `(γ_startup, γ_transfer)` such that
/// `time ≈ γ_s·β + bytes·γ_c·τ` — i.e. fit a line and divide out the
/// reference.
#[must_use]
pub fn fit_gamma_factors(reference: LinearModel, samples: &[(u64, f64)]) -> (f64, f64) {
    let fit = fit_linear(samples);
    let gs = if reference.startup > 0.0 {
        fit.model.startup / reference.startup
    } else {
        1.0
    };
    let gc = if reference.per_byte > 0.0 {
        fit.model.per_byte / reference.per_byte
    } else {
        1.0
    };
    (gs.max(1.0), gc.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn exact_line_recovered() {
        let truth = LinearModel::new(29e-6, 0.12e-6);
        let samples: Vec<(u64, f64)> = [1u64, 64, 256, 1024, 8192]
            .iter()
            .map(|&b| (b, truth.send_cost(b)))
            .collect();
        let fit = fit_linear(&samples);
        assert!((fit.model.startup - 29e-6).abs() < 1e-12);
        assert!((fit.model.per_byte - 0.12e-6).abs() < 1e-15);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn noisy_line_fits_reasonably() {
        let truth = LinearModel::new(10e-6, 1e-9);
        // Deterministic "noise": alternate ±5%.
        let samples: Vec<(u64, f64)> = (1..40u64)
            .map(|i| {
                let b = i * 500;
                let noise = if i % 2 == 0 { 1.05 } else { 0.95 };
                (b, truth.send_cost(b) * noise)
            })
            .collect();
        let fit = fit_linear(&samples);
        assert!((fit.model.per_byte - 1e-9).abs() / 1e-9 < 0.15);
        assert!(fit.r_squared > 0.9);
    }

    #[test]
    fn negative_intercept_clamped() {
        // Steep line through near-origin points can fit a tiny negative β.
        let samples = vec![(100u64, 1e-6), (200, 2.1e-6), (300, 2.9e-6)];
        let fit = fit_linear(&samples);
        assert!(fit.model.startup >= 0.0);
    }

    #[test]
    fn gamma_factors_recovered() {
        let reference = LinearModel::sp1();
        let inflated = LinearModel::new(reference.startup * 1.5, reference.per_byte * 2.0);
        let samples: Vec<(u64, f64)> = [16u64, 128, 1024, 4096]
            .iter()
            .map(|&b| (b, inflated.send_cost(b)))
            .collect();
        let (gs, gc) = fit_gamma_factors(reference, &samples);
        assert!((gs - 1.5).abs() < 1e-6, "γs = {gs}");
        assert!((gc - 2.0).abs() < 1e-6, "γc = {gc}");
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn too_few_samples() {
        let _ = fit_linear(&[(1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "slope undefined")]
    fn degenerate_sizes() {
        let _ = fit_linear(&[(5, 1.0), (5, 2.0)]);
    }

    #[test]
    fn calibrator_ping_ladder_matches_fit_linear() {
        // With only ping rows (C1 = 1) the no-intercept 2-variable OLS is
        // the same model as fit_linear's intercept+slope regression.
        let truth = LinearModel::new(29e-6, 0.12e-6);
        let sizes = [64u64, 512, 4096, 32768, 65536];
        let samples: Vec<(u64, f64)> = sizes.iter().map(|&b| (b, truth.send_cost(b))).collect();
        let line = fit_linear(&samples);
        let mut cal = Calibrator::new();
        for &(b, t) in &samples {
            cal.record_ping(b, t);
        }
        let fit = cal.fit();
        assert!((fit.model.startup - line.model.startup).abs() < 1e-12);
        assert!((fit.model.per_byte - line.model.per_byte).abs() < 1e-15);
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn calibrator_recovers_beta_tau_from_run_samples() {
        let (beta, tau) = (40e-6, 2e-9);
        let mut cal = Calibrator::new();
        for (c1, c2) in [(2u64, 12_288u64), (3, 8_192), (7, 458_752), (4, 65_536)] {
            cal.record_run(
                crate::complexity::Complexity::new(c1, c2),
                c1 as f64 * beta + c2 as f64 * tau,
            );
        }
        let fit = cal.fit();
        assert!((fit.model.startup - beta).abs() / beta < 1e-9);
        assert!((fit.model.per_byte - tau).abs() / tau < 1e-9);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn calibrator_ignores_garbage_samples() {
        let mut cal = Calibrator::new();
        cal.record_ping(100, f64::NAN);
        cal.record_ping(100, -1.0);
        cal.record_run(crate::complexity::Complexity::ZERO, 1.0);
        assert!(cal.is_empty());
    }

    #[test]
    #[should_panic(expected = "collinear")]
    fn calibrator_rejects_proportional_samples() {
        let mut cal = Calibrator::new();
        cal.record_ping(100, 1e-6);
        cal.record_ping(100, 1.1e-6);
        let _ = cal.fit();
    }

    #[test]
    fn fit_roundtrips_through_wire_encoding() {
        let fit = LinearFit {
            model: LinearModel::new(31.5e-6, 0.7e-9),
            r_squared: 0.9987,
            samples: 15,
        };
        assert_eq!(LinearFit::from_bytes(&fit.to_bytes()), fit);
    }
}

//! The last-round table-partitioning problem (Proposition 4.2, Table 1).
//!
//! After the first `d-1` rounds of the concatenation algorithm, every node
//! `v` holds the blocks of the `n1 = (k+1)^{d-1}` nodes preceding it
//! (`v, v-1, …, v-n1+1`, circularly) and still needs the blocks at
//! circular distances `δ ∈ [n1, n1+n2)`, where `n2 = n - n1 ≤ k·n1`.
//!
//! The last round must deliver, to every node, `n2` blocks of `b` bytes
//! through at most `k` input ports. By symmetry it suffices to schedule the
//! *relative* pattern once: picture a table with `n2` columns (column `m`
//! is the missing block at distance `δ = n1 + m`) and `b` rows (bytes of a
//! block). The table is partitioned into at most `k` **areas**; an area
//! with leftmost column `L` is served with offset `o = n1 + L`: node `v`
//! receives the area's bytes of column `m` from node `v - o`, which holds
//! them iff the area's column span is at most `n1`.
//!
//! Optimality requires every area to carry at most `a = ⌈b·n2/k⌉` bytes
//! (Proposition 4.2). A greedy byte-granular, column-major partition
//! achieves this for all `(n1, n2, b, k)` outside the paper's exception
//! range; inside it, the §4 Remark's two fallbacks are provided:
//!
//! * **column-aligned** — still one round (`C1` optimal), areas up to
//!   `b-1` bytes over `a` (`C2` suboptimal by `< b`);
//! * **extra round** — two rounds whose per-round maxima sum to `a`
//!   (`C2` optimal, `C1` one over the bound).

use crate::complexity::Complexity;

/// A contiguous run of byte-rows within one column of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnSlice {
    /// Column index `m ∈ [0, n2)` — the missing block at distance `n1 + m`.
    pub col: usize,
    /// First byte-row (inclusive).
    pub row_start: usize,
    /// Last byte-row (exclusive).
    pub row_end: usize,
}

impl ColumnSlice {
    /// Number of bytes in this slice.
    #[must_use]
    pub fn len(&self) -> usize {
        self.row_end - self.row_start
    }

    /// Whether the slice is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.row_end == self.row_start
    }
}

/// One area of the partition: a set of column slices served by a single
/// point-to-point message at a fixed circular offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Area {
    /// Circular sender distance: node `v` receives this area from
    /// `v - offset (mod n)` and symmetrically sends it to `v + offset`.
    pub offset: usize,
    /// The slices carried, in column order.
    pub slices: Vec<ColumnSlice>,
}

impl Area {
    /// Total bytes carried by this area (= size of the message).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.slices.iter().map(ColumnSlice::len).sum()
    }

    /// Leftmost column touched.
    #[must_use]
    pub fn leftmost(&self) -> usize {
        self.slices
            .iter()
            .map(|s| s.col)
            .min()
            .expect("area is non-empty")
    }

    /// Rightmost column touched.
    #[must_use]
    pub fn rightmost(&self) -> usize {
        self.slices
            .iter()
            .map(|s| s.col)
            .max()
            .expect("area is non-empty")
    }

    /// Column span `R - L + 1`.
    #[must_use]
    pub fn span(&self) -> usize {
        self.rightmost() - self.leftmost() + 1
    }
}

/// Which strategy produced the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Greedy byte-granular partition: optimal in both `C1` and `C2`.
    Greedy,
    /// Column-aligned partition: `C1`-optimal, `C2` at most `b-1` over.
    ColumnAligned,
    /// Two-round partition: `C2`-optimal, one extra round.
    ExtraRound,
}

/// Preference between the two fallbacks inside the exception range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preference {
    /// Keep `C1 = ⌈log_{k+1} n⌉` (default; pays ≤ `b-1` extra bytes).
    #[default]
    Rounds,
    /// Keep `C2 = ⌈b(n-1)/k⌉` (pays one extra round).
    Bytes,
}

/// The scheduled tail of the concatenation: one or two rounds of areas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LastRoundPlan {
    /// Parameters the plan was built for.
    pub n1: usize,
    /// Number of missing blocks.
    pub n2: usize,
    /// Block size in bytes.
    pub b: usize,
    /// Ports.
    pub k: usize,
    /// The rounds; each round holds at most `k` areas.
    pub rounds: Vec<Vec<Area>>,
    /// Which strategy was used.
    pub strategy: Strategy,
}

impl LastRoundPlan {
    /// The complexity contribution of the plan's rounds: one `C1` unit per
    /// round, and per round the largest area in bytes.
    #[must_use]
    pub fn complexity(&self) -> Complexity {
        let mut c = Complexity::ZERO;
        for round in &self.rounds {
            let max = round.iter().map(Area::bytes).max().unwrap_or(0) as u64;
            c = c.plus_round(max);
        }
        c
    }

    /// Exhaustively check the plan: every table entry covered exactly once,
    /// at most `k` areas per round, every area's span within `n1`, and the
    /// offset consistent with its leftmost column.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mut covered = vec![vec![false; self.b]; self.n2];
        for (ri, round) in self.rounds.iter().enumerate() {
            if round.len() > self.k {
                return Err(format!(
                    "round {ri} has {} areas > k={}",
                    round.len(),
                    self.k
                ));
            }
            let mut offsets: Vec<usize> = round.iter().map(|a| a.offset).collect();
            offsets.sort_unstable();
            offsets.dedup();
            if offsets.len() != round.len() {
                return Err(format!(
                    "round {ri} has duplicate offsets — two messages to one peer"
                ));
            }
            for area in round {
                if area.slices.is_empty() {
                    return Err("empty area".into());
                }
                if area.span() > self.n1 {
                    return Err(format!(
                        "area at offset {} spans {} columns > n1={}",
                        area.offset,
                        area.span(),
                        self.n1
                    ));
                }
                // The offset must be valid for every column of the area:
                // o ∈ [m+1, m+n1] in missing-index terms means
                // o - n1 ≤ L and o ≥ R + 1 + 0 … concretely o ∈ [R+1+n1-n1, L+n1]:
                let lo = area.rightmost() + 1;
                let hi = area.leftmost() + self.n1;
                if area.offset < lo || area.offset > hi {
                    return Err(format!(
                        "offset {} outside feasible window [{lo}, {hi}]",
                        area.offset
                    ));
                }
                for s in &area.slices {
                    if s.col >= self.n2 || s.row_end > self.b || s.is_empty() {
                        return Err(format!("bad slice {s:?}"));
                    }
                    for (row, cell) in covered[s.col][s.row_start..s.row_end]
                        .iter_mut()
                        .enumerate()
                    {
                        if *cell {
                            return Err(format!(
                                "entry ({}, {}) covered twice",
                                s.col,
                                s.row_start + row
                            ));
                        }
                        *cell = true;
                    }
                }
            }
        }
        for (m, col) in covered.iter().enumerate() {
            for (row, &c) in col.iter().enumerate() {
                if !c {
                    return Err(format!("entry ({m}, {row}) not covered"));
                }
            }
        }
        Ok(())
    }

    /// Render the partition as the paper's Table 1: one row per byte, one
    /// column per missing node, each cell showing its area number.
    #[must_use]
    pub fn render(&self) -> String {
        let mut grid = vec![vec![0usize; self.n2]; self.b];
        let mut id = 0usize;
        for round in &self.rounds {
            for area in round {
                id += 1;
                for s in &area.slices {
                    for line in &mut grid[s.row_start..s.row_end] {
                        line[s.col] = id;
                    }
                }
            }
        }
        let mut out = String::new();
        out.push_str("byte\\node |");
        for m in 0..self.n2 {
            out.push_str(&format!(" p{:<3}", self.n1 + m));
        }
        out.push('\n');
        for (row, line) in grid.iter().enumerate() {
            out.push_str(&format!("{row:9} |"));
            for &cell in line {
                out.push_str(&format!(" A{cell:<3}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Assign distinct offsets to an ordered run of areas.
///
/// Area `i`'s feasible offsets form the window `[R_i + 1, L_i + n1]`
/// (the sender must already hold every column it forwards). Two areas may
/// not share an offset within one round — that would be two messages to
/// the same peer, which the k-port model forbids. Because the areas are
/// built left-to-right, their windows form a staircase, so the greedy
/// earliest-point rule is optimal; returns `false` if no assignment
/// exists (e.g. more areas packed into one column than `n1` senders can
/// cover).
fn assign_offsets(areas: &mut [Area], n1: usize) -> bool {
    // Walk right-to-left taking the highest available point, so that a
    // lone area gets the paper's canonical offset `n1 + L`.
    let mut prev: Option<usize> = None;
    for area in areas.iter_mut().rev() {
        let lo = area.rightmost() + 1;
        let hi = area.leftmost() + n1;
        let candidate = match prev {
            Some(p) => {
                if p == 0 {
                    return false;
                }
                hi.min(p - 1)
            }
            None => hi,
        };
        if candidate < lo {
            return false;
        }
        area.offset = candidate;
        prev = Some(candidate);
    }
    true
}

/// Cut the column-major entry range `[start, end)` (global byte indices,
/// column = `t / b`) into one area.
fn area_from_range(n1: usize, b: usize, start: usize, end: usize) -> Area {
    debug_assert!(start < end);
    let mut slices = Vec::new();
    let mut t = start;
    while t < end {
        let col = t / b;
        let row_start = t % b;
        let row_end = (b).min(row_start + (end - t));
        slices.push(ColumnSlice {
            col,
            row_start,
            row_end,
        });
        t += row_end - row_start;
    }
    let leftmost = slices[0].col;
    Area {
        offset: n1 + leftmost,
        slices,
    }
}

/// Greedy byte-granular partition into `k` chunks of at most `chunk` bytes
/// each. Returns `None` if any chunk's span exceeds `n1` or more than `k`
/// chunks would be needed.
fn greedy(n1: usize, n2: usize, b: usize, k: usize, chunk: usize) -> Option<Vec<Area>> {
    let total = n2 * b;
    let mut areas = Vec::new();
    let mut start = 0usize;
    while start < total {
        if areas.len() == k {
            return None;
        }
        let end = total.min(start + chunk);
        let area = area_from_range(n1, b, start, end);
        if area.span() > n1 {
            return None;
        }
        areas.push(area);
        start = end;
    }
    assign_offsets(&mut areas, n1).then_some(areas)
}

/// Column-aligned partition: distribute whole columns as evenly as
/// possible over `k` areas. Always feasible (span ≤ ⌈n2/k⌉ ≤ n1).
fn column_aligned(n1: usize, n2: usize, b: usize, k: usize) -> Vec<Area> {
    let mut areas = Vec::new();
    let mut col = 0usize;
    let areas_needed = k.min(n2);
    for i in 0..areas_needed {
        let cols = n2 / areas_needed + usize::from(i < n2 % areas_needed);
        if cols == 0 {
            continue;
        }
        areas.push(area_from_range(n1, b, col * b, (col + cols) * b));
        col += cols;
    }
    let ok = assign_offsets(&mut areas, n1);
    debug_assert!(
        ok,
        "column-aligned offset assignment cannot fail (disjoint columns)"
    );
    areas
}

/// Build the last-round plan for `(n1, n2, b, k)`.
///
/// `n1` is the number of blocks every node already holds, `n2` the number
/// still missing; the caller guarantees `1 ≤ n2 ≤ k·n1` (Theorem 4.1's
/// precondition). The returned plan is validated.
///
/// # Panics
///
/// Panics on parameter violations (`n2 > k·n1`, zero sizes).
#[must_use]
pub fn plan_last_round(
    n1: usize,
    n2: usize,
    b: usize,
    k: usize,
    pref: Preference,
) -> LastRoundPlan {
    assert!(n1 >= 1 && n2 >= 1 && b >= 1 && k >= 1);
    assert!(
        n2 <= k * n1,
        "last round infeasible: n2={n2} > k·n1={}",
        k * n1
    );
    let a = (b * n2).div_ceil(k);
    let plan = if let Some(areas) = greedy(n1, n2, b, k, a) {
        LastRoundPlan {
            n1,
            n2,
            b,
            k,
            rounds: vec![areas],
            strategy: Strategy::Greedy,
        }
    } else {
        match pref {
            Preference::Rounds => LastRoundPlan {
                n1,
                n2,
                b,
                k,
                rounds: vec![column_aligned(n1, n2, b, k)],
                strategy: Strategy::ColumnAligned,
            },
            Preference::Bytes if n1 == 1 || a <= b => {
                // With n1 = 1 every area must be a single column, and with
                // a ≤ b the per-port budget is below one block; in both
                // degenerate geometries an extra round cannot reduce the
                // maxima, so the column-aligned plan is the best we offer.
                LastRoundPlan {
                    n1,
                    n2,
                    b,
                    k,
                    rounds: vec![column_aligned(n1, n2, b, k)],
                    strategy: Strategy::ColumnAligned,
                }
            }
            Preference::Bytes => {
                // Two rounds: chunks of a-b bytes, then chunks of b bytes.
                // Span of an (a-b)-byte chunk is ≤ n1 and of a b-byte chunk
                // ≤ 2 ≤ n1; per-round maxima sum to exactly a.
                // (Greedy cannot fail with a ≤ b unless n1 = 1, handled
                // above, so the subtraction is safe.)
                let s1 = a - b;
                debug_assert!(s1 >= 1);
                let total = n2 * b;
                let cut = total.min(k * s1);
                let mut round1 = Vec::new();
                let mut start = 0usize;
                while start < cut {
                    let end = cut.min(start + s1);
                    round1.push(area_from_range(n1, b, start, end));
                    start = end;
                }
                let mut round2 = Vec::new();
                let mut start = cut;
                while start < total {
                    let end = total.min(start + b);
                    round2.push(area_from_range(n1, b, start, end));
                    start = end;
                }
                let ok = assign_offsets(&mut round1, n1)
                    && assign_offsets(&mut round2, n1)
                    && round1.iter().all(|ar| ar.span() <= n1)
                    && round2.iter().all(|ar| ar.span() <= n1);
                if ok {
                    LastRoundPlan {
                        n1,
                        n2,
                        b,
                        k,
                        rounds: vec![round1, round2],
                        strategy: Strategy::ExtraRound,
                    }
                } else {
                    // Degenerate geometry (tiny n1 relative to k): the
                    // column-aligned single round is the best we offer.
                    LastRoundPlan {
                        n1,
                        n2,
                        b,
                        k,
                        rounds: vec![column_aligned(n1, n2, b, k)],
                        strategy: Strategy::ColumnAligned,
                    }
                }
            }
        }
    };
    plan.validate().unwrap_or_else(|e| {
        panic!("internal error: generated invalid last-round plan for n1={n1} n2={n2} b={b} k={k}: {e}")
    });
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 1: n1 = 3, n2 = 7, b = 3, k = 3 (nodes p3..p9 of a
    /// 10-node instance). The greedy partition reproduces it exactly.
    #[test]
    fn table1_example() {
        let plan = plan_last_round(3, 7, 3, 3, Preference::Rounds);
        assert_eq!(plan.strategy, Strategy::Greedy);
        assert_eq!(plan.rounds.len(), 1);
        let areas = &plan.rounds[0];
        assert_eq!(areas.len(), 3);
        // a = ⌈3·7/3⌉ = 7 bytes per area.
        assert!(areas.iter().all(|ar| ar.bytes() == 7));
        // Offsets 3, 5, 7 — "each node i sends seven bytes to nodes
        // (i+3), (i+5) and (i+7) mod n".
        let offsets: Vec<usize> = areas.iter().map(|ar| ar.offset).collect();
        assert_eq!(offsets, vec![3, 5, 7]);
        // Area 1: p3 gets 3 bytes, p4 gets 3, p5 gets 1 (columns 0..2).
        assert_eq!(
            areas[0].slices,
            vec![
                ColumnSlice {
                    col: 0,
                    row_start: 0,
                    row_end: 3
                },
                ColumnSlice {
                    col: 1,
                    row_start: 0,
                    row_end: 3
                },
                ColumnSlice {
                    col: 2,
                    row_start: 0,
                    row_end: 1
                },
            ]
        );
        // Area 2: p5 two bytes, p6 three, p7 two.
        assert_eq!(
            areas[1].slices,
            vec![
                ColumnSlice {
                    col: 2,
                    row_start: 1,
                    row_end: 3
                },
                ColumnSlice {
                    col: 3,
                    row_start: 0,
                    row_end: 3
                },
                ColumnSlice {
                    col: 4,
                    row_start: 0,
                    row_end: 2
                },
            ]
        );
        // Area 3: p7 one byte, p8 three, p9 three.
        assert_eq!(
            areas[2].slices,
            vec![
                ColumnSlice {
                    col: 4,
                    row_start: 2,
                    row_end: 3
                },
                ColumnSlice {
                    col: 5,
                    row_start: 0,
                    row_end: 3
                },
                ColumnSlice {
                    col: 6,
                    row_start: 0,
                    row_end: 3
                },
            ]
        );
    }

    #[test]
    fn one_port_is_single_area() {
        // k = 1: the classic Bruck allgather tail — one message of n2·b.
        let plan = plan_last_round(4, 3, 8, 1, Preference::Rounds);
        assert_eq!(plan.strategy, Strategy::Greedy);
        assert_eq!(plan.rounds[0].len(), 1);
        assert_eq!(plan.rounds[0][0].bytes(), 24);
        assert_eq!(plan.rounds[0][0].offset, 4);
        assert_eq!(plan.complexity(), Complexity::new(1, 24));
    }

    /// The `(n1, n2)` pairs the concatenation algorithm actually hands to
    /// the partitioner: `n1 = (k+1)^{d-1}`, `n2 = n - n1`, over all
    /// non-trivial `n` (those with `d ≥ 2`, i.e. `n > k+1`).
    fn realizable(k: usize, n_max: usize) -> impl Iterator<Item = (usize, usize)> {
        (k + 2..=n_max).map(move |n| {
            let d = crate::radix::ceil_log(k + 1, n);
            let n1 = crate::radix::pow(k + 1, d - 1);
            (n1, n - n1)
        })
    }

    #[test]
    fn greedy_optimal_for_k_le_2() {
        // Theorem 4.3: k ≤ 2 is always in the optimal range.
        for k in 1..=2usize {
            for (n1, n2) in realizable(k, 200) {
                for b in 1..=5usize {
                    let plan = plan_last_round(n1, n2, b, k, Preference::Rounds);
                    assert_eq!(
                        plan.strategy,
                        Strategy::Greedy,
                        "n1={n1} n2={n2} b={b} k={k}"
                    );
                    let a = (b * n2).div_ceil(k) as u64;
                    assert_eq!(plan.complexity(), Complexity::new(1, a));
                }
            }
        }
    }

    #[test]
    fn greedy_optimal_for_b_le_2() {
        // Theorem 4.3: b ≤ 2 is always in the optimal range.
        for b in 1..=2usize {
            for k in 1..=6usize {
                for (n1, n2) in realizable(k, 300) {
                    let plan = plan_last_round(n1, n2, b, k, Preference::Rounds);
                    assert_eq!(
                        plan.strategy,
                        Strategy::Greedy,
                        "n1={n1} n2={n2} b={b} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn exception_range_exists_and_fallbacks_hold() {
        // Somewhere with k ≥ 3, b ≥ 3 the greedy partition must fail and
        // the fallbacks engage with the costs promised by the §4 Remark.
        let mut found = false;
        for k in 3..=5usize {
            for (n1, n2) in realizable(k, 250) {
                {
                    for b in 3..=5usize {
                        let a = (b * n2).div_ceil(k) as u64;
                        let rounds_plan = plan_last_round(n1, n2, b, k, Preference::Rounds);
                        let bytes_plan = plan_last_round(n1, n2, b, k, Preference::Bytes);
                        if rounds_plan.strategy == Strategy::Greedy {
                            assert_eq!(bytes_plan.strategy, Strategy::Greedy);
                            continue;
                        }
                        // C1-preserving fallback: 1 round, < b bytes over a.
                        let rc = rounds_plan.complexity();
                        assert_eq!(rc.c1, 1);
                        assert!(
                            rc.c2 < a + b as u64,
                            "column-aligned too fat: {rc} vs a={a} b={b}"
                        );
                        // C2-preserving fallback: 2 rounds, ≤ a bytes —
                        // except degenerate geometries where the extra
                        // round cannot be scheduled and the plan reports
                        // ColumnAligned instead.
                        if bytes_plan.strategy == Strategy::ExtraRound {
                            found = true;
                            let bc = bytes_plan.complexity();
                            assert_eq!(bc.c1, 2, "n1={n1} n2={n2} b={b} k={k}");
                            assert!(
                                bc.c2 <= a,
                                "extra-round plan not byte-optimal: {bc} vs a={a} (n1={n1} n2={n2} b={b} k={k})"
                            );
                        }
                    }
                }
            }
        }
        assert!(found, "no exception-range instance found — suspicious");
    }

    #[test]
    fn plans_always_validate() {
        for k in 1..=5usize {
            for n1 in 1..=8usize {
                for n2 in 1..=(k * n1) {
                    for b in 1..=4usize {
                        for pref in [Preference::Rounds, Preference::Bytes] {
                            // plan_last_round validates internally; also
                            // check complexity is sane.
                            let plan = plan_last_round(n1, n2, b, k, pref);
                            let c = plan.complexity();
                            assert!(c.c2 as usize >= (b * n2).div_ceil(k));
                            assert!(c.c1 >= 1 && c.c1 <= 2);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn render_matches_dimensions() {
        let plan = plan_last_round(3, 7, 3, 3, Preference::Rounds);
        let table = plan.render();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 byte rows
        assert!(lines[0].contains("p3") && lines[0].contains("p9"));
        assert!(lines[1].contains("A1"));
        assert!(lines[3].contains("A3"));
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn rejects_oversized_n2() {
        let _ = plan_last_round(2, 5, 1, 2, Preference::Rounds);
    }
}

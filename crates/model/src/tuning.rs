//! Radix selection for the index algorithm (§3.3, §3.5).
//!
//! "In general, `r` can be fine-tuned according to the parameters of the
//! underlying machines to balance between the start-up time and the data
//! transfer time." This module evaluates the closed-form complexity of the
//! radix-`r` index algorithm under a [`CostModel`] and picks the best `r`.

use std::time::Duration;

use crate::complexity::Complexity;
use crate::cost::CostModel;
use crate::radix::RadixDecomposition;

/// Closed-form complexity of the one-port radix-`r` index algorithm's
/// communication phase for `n` processors and `b`-byte blocks (§3.2):
/// `C1 = Σ_x steps(x)` rounds, and per step `(x, z)` a message of
/// `b·|{j : digit_x(j) = z}|` bytes.
#[must_use]
pub fn index_complexity(n: usize, r: usize, b: usize) -> Complexity {
    index_complexity_kport(n, r, b, 1)
}

/// Closed-form complexity of the k-port radix-`r` index algorithm: the
/// steps of each subphase are independent, so they are grouped `k` per
/// round; a round's `C2` contribution is the largest message in the group.
#[must_use]
pub fn index_complexity_kport(n: usize, r: usize, b: usize, k: usize) -> Complexity {
    assert!(k >= 1);
    if n <= 1 {
        return Complexity::ZERO;
    }
    RadixDecomposition::new(n, r).complexity(b, k)
}

/// Wire-pipelining knobs for the executed data plane.
///
/// The paper's radix `r` trades start-ups (`C1`) against bytes (`C2`)
/// at *plan* time; these knobs govern how well the *executed* rounds
/// approach the planned cost. The reliability sublayer keeps up to
/// [`window`](Self::window) frames in flight per link (sliding-window
/// ARQ), so a round's per-destination RTT is paid once per window rather
/// than once per frame — `window = 1` degenerates to stop-and-wait, the
/// backward-compatible escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTuning {
    /// Maximum unacknowledged data frames in flight per destination
    /// (`≥ 1`). Larger windows hide more per-frame latency; `1`
    /// reproduces stop-and-wait faithfully — send returns only after
    /// the frame is acknowledged, with no overlap across ports.
    pub window: usize,
    /// Maximum selective-acknowledgement entries carried by one
    /// dedicated ack frame (out-of-order sequences the receiver already
    /// holds, so the sender retransmits only the truly missing suffix).
    pub sack_limit: usize,
    /// Stamp every outbound data frame with the cumulative ack for the
    /// link's reverse direction, so bidirectional exchanges keep both
    /// windows open without dedicated ack frames.
    pub piggyback: bool,
    /// Upper bound on how long a shared data plane (the TCP fabric's
    /// reactor) keeps sweeping after shutdown is requested, waiting for
    /// outboxes to drain. This is a hang backstop, not a sleep: a
    /// drained fabric exits immediately, and runtimes that observe the
    /// link's adaptive RTO clamp the grace down to a few RTOs (mirroring
    /// the thread-per-rank linger), so the configured value only binds
    /// when no RTT estimate exists.
    pub drain_grace: Duration,
}

impl WireTuning {
    /// Stop-and-wait compatibility mode: one frame in flight, no
    /// selective acks (with a single outstanding frame there is never an
    /// out-of-order stash to advertise).
    #[must_use]
    pub fn stop_and_wait() -> Self {
        Self {
            window: 1,
            sack_limit: 0,
            piggyback: false,
            drain_grace: DEFAULT_DRAIN_GRACE,
        }
    }

    /// Set the per-link window (clamped to `≥ 1`).
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Set the selective-ack entry cap.
    #[must_use]
    pub fn with_sack_limit(mut self, limit: usize) -> Self {
        self.sack_limit = limit;
        self
    }

    /// Enable or disable ack piggybacking on reverse-path data frames.
    #[must_use]
    pub fn with_piggyback(mut self, on: bool) -> Self {
        self.piggyback = on;
        self
    }

    /// Set the shutdown drain-grace ceiling (see
    /// [`drain_grace`](Self::drain_grace)).
    #[must_use]
    pub fn with_drain_grace(mut self, grace: Duration) -> Self {
        self.drain_grace = grace;
        self
    }
}

/// Default shutdown drain-grace ceiling (see
/// [`WireTuning::drain_grace`]).
pub const DEFAULT_DRAIN_GRACE: Duration = Duration::from_secs(1);

impl Default for WireTuning {
    /// Eight frames in flight, up to 32 selective-ack entries,
    /// piggybacking on.
    fn default() -> Self {
        Self {
            window: 8,
            sack_limit: 32,
            piggyback: true,
            drain_grace: DEFAULT_DRAIN_GRACE,
        }
    }
}

/// The outcome of a radix sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RadixChoice {
    /// The chosen radix.
    pub radix: usize,
    /// Its predicted complexity.
    pub complexity: Complexity,
    /// Its predicted time under the model (seconds).
    pub predicted_time: f64,
}

/// Evaluate each candidate radix and return the predicted-time minimizer.
///
/// # Panics
///
/// Panics if `candidates` yields no radix in `[2, n]` for `n ≥ 2`.
#[must_use]
pub fn best_radix(
    n: usize,
    b: usize,
    k: usize,
    model: &dyn CostModel,
    candidates: impl IntoIterator<Item = usize>,
) -> RadixChoice {
    if n <= 1 {
        return RadixChoice {
            radix: 2,
            complexity: Complexity::ZERO,
            predicted_time: 0.0,
        };
    }
    candidates
        .into_iter()
        .filter(|&r| (2..=n).contains(&r))
        .map(|r| {
            let complexity = index_complexity_kport(n, r, b, k);
            RadixChoice {
                radix: r,
                complexity,
                predicted_time: model.estimate(complexity),
            }
        })
        .min_by(|x, y| x.predicted_time.total_cmp(&y.predicted_time))
        .expect("no valid radix candidate in [2, n]")
}

/// All radices in `[2, n]`.
pub fn all_radices(n: usize) -> impl Iterator<Item = usize> {
    2..=n.max(2)
}

/// Power-of-two radices in `[2, n]` — the candidate set used for the
/// paper's Figs. 4–5 ("optimal r among all power-of-two radices").
pub fn power_of_two_radices(n: usize) -> impl Iterator<Item = usize> {
    (1..=usize::BITS - 1)
        .map(|s| 1usize << s)
        .take_while(move |&r| r <= n.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LinearModel;
    use crate::radix::ceil_log;

    #[test]
    fn r2_special_case() {
        // r = 2: C1 = ⌈log2 n⌉, C2 ≤ b·⌈n/2⌉·⌈log2 n⌉ (§3.3 case 1).
        for n in 2..200usize {
            for b in [1usize, 3, 64] {
                let c = index_complexity(n, 2, b);
                let w = u64::from(ceil_log(2, n));
                assert_eq!(c.c1, w, "n={n}");
                assert!(c.c2 <= (b * n.div_ceil(2)) as u64 * w, "n={n} b={b}");
            }
        }
    }

    #[test]
    fn r2_power_of_two_exact() {
        // For n a power of two, every step sends exactly n/2 blocks:
        // C2 = b·(n/2)·log2 n.
        for d in 1..10u32 {
            let n = 1usize << d;
            let c = index_complexity(n, 2, 4);
            assert_eq!(c.c2, (4 * (n / 2)) as u64 * u64::from(d));
        }
    }

    #[test]
    fn r_equals_n_special_case() {
        // r = n: C1 = n-1, C2 = b(n-1) (§3.3 case 2) — direct exchange.
        for n in 2..100usize {
            let c = index_complexity(n, n, 7);
            assert_eq!(c.c1, (n - 1) as u64);
            assert_eq!(c.c2, (7 * (n - 1)) as u64);
        }
    }

    #[test]
    fn kport_r_equals_kplus1_is_round_optimal() {
        // r = k+1 gives C1 = ⌈log_{k+1} n⌉, the §3.4 round-optimal choice.
        for k in 1..6usize {
            for n in 2..120usize {
                let c = index_complexity_kport(n, k + 1, 1, k);
                assert_eq!(c.c1, u64::from(ceil_log(k + 1, n)), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn kport_r_equals_n_is_transfer_optimal() {
        // r = n with k ports: C1 = ⌈(n-1)/k⌉ rounds, C2 = b·⌈(n-1)/k⌉.
        for k in 1..6usize {
            for n in 2..80usize {
                let c = index_complexity_kport(n, n, 3, k);
                assert_eq!(c.c1, ((n - 1).div_ceil(k)) as u64, "n={n} k={k}");
                assert_eq!(c.c2, (3 * (n - 1).div_ceil(k)) as u64, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn kport_one_port_degenerates() {
        for n in 2..50usize {
            for r in 2..=n {
                assert_eq!(
                    index_complexity_kport(n, r, 5, 1),
                    index_complexity(n, r, 5)
                );
            }
        }
    }

    #[test]
    fn monotone_tradeoff_at_extremes() {
        // Larger radix ⇒ fewer or equal C2... not in general, but the two
        // extremes must bracket every other radix: r=2 minimizes C1,
        // r=n minimizes C2.
        let n = 64;
        let b = 8;
        let c2r = index_complexity(n, 2, b);
        let cnr = index_complexity(n, n, b);
        for r in 2..=n {
            let c = index_complexity(n, r, b);
            assert!(c.c1 >= c2r.c1, "r={r}");
            assert!(c.c2 >= cnr.c2, "r={r}");
        }
    }

    #[test]
    fn best_radix_small_messages_prefers_small_radix() {
        // With SP-1 parameters and tiny blocks, start-up dominates: the
        // best radix must beat the direct algorithm.
        let m = LinearModel::sp1();
        let choice = best_radix(64, 1, 1, &m, all_radices(64));
        assert!(
            choice.radix < 64,
            "tiny messages should avoid r=n, got {}",
            choice.radix
        );
    }

    #[test]
    fn best_radix_large_messages_prefers_large_radix() {
        // With huge blocks the transfer term dominates and the choice must
        // be transfer-optimal: C2 = b(n-1). (r = n-1 ties with r = n for
        // n = 64 — both degenerate to direct exchange — so assert on the
        // complexity, not the radix value.)
        let m = LinearModel::sp1();
        let b = 65536u64;
        let choice = best_radix(64, b as usize, 1, &m, all_radices(64));
        assert_eq!(choice.complexity.c2, b * 63);
        assert_eq!(choice.complexity.c1, 63);
    }

    #[test]
    fn power_of_two_candidates() {
        let radices: Vec<usize> = power_of_two_radices(64).collect();
        assert_eq!(radices, vec![2, 4, 8, 16, 32, 64]);
        let radices: Vec<usize> = power_of_two_radices(5).collect();
        assert_eq!(radices, vec![2, 4]);
    }

    #[test]
    fn wire_tuning_defaults_and_escape_hatch() {
        let w = WireTuning::default();
        assert!(
            w.window >= 8,
            "default window must pipeline, got {}",
            w.window
        );
        assert!(w.piggyback);
        let sw = WireTuning::stop_and_wait();
        assert_eq!(sw.window, 1);
        assert!(!sw.piggyback);
        assert_eq!(WireTuning::default().with_window(0).window, 1);
        assert_eq!(WireTuning::default().with_sack_limit(4).sack_limit, 4);
        assert!(!WireTuning::default().with_piggyback(false).piggyback);
        assert_eq!(WireTuning::default().drain_grace, DEFAULT_DRAIN_GRACE);
        assert_eq!(sw.drain_grace, DEFAULT_DRAIN_GRACE);
        assert_eq!(
            WireTuning::default()
                .with_drain_grace(Duration::from_millis(50))
                .drain_grace,
            Duration::from_millis(50)
        );
    }

    #[test]
    fn trivial_n1() {
        assert_eq!(index_complexity(1, 2, 10), Complexity::ZERO);
        let m = LinearModel::sp1();
        assert_eq!(best_radix(1, 10, 1, &m, all_radices(1)).predicted_time, 0.0);
    }
}

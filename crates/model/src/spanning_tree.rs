//! Round-labelled broadcast spanning trees for the concatenation
//! algorithm (§4.1, Figs. 7–8).
//!
//! The communication pattern that broadcasts node `i`'s block is a
//! spanning tree `T_i` rooted at `i`; every edge is labelled with the round
//! in which the corresponding message travels. `T_0` is built by
//! generalized-binomial growth: in round `i`, every node `u` already in the
//! tree sends along offsets `j·(k+1)^i` (for `j = 1..k`), so after round
//! `i` the tree spans nodes `0 … min((k+1)^{i+1}, n) - 1`. `T_i` is `T_0`
//! translated by `i` modulo `n` with identical round labels (Theorem 4.1's
//! proof). The final partial round uses the table partitioning of
//! [`crate::partition`]; the tree here covers the *full-round* prefix plus a
//! naive completion so that shape tests (Figs. 7–8) have a concrete object.

use crate::radix::{ceil_log, pow};

/// One edge of a round-labelled spanning tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeEdge {
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// Communication round (0-based) in which the edge is used.
    pub round: u32,
}

/// A spanning tree rooted at [`SpanningTree::root`], with round labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningTree {
    n: usize,
    k: usize,
    root: usize,
    edges: Vec<TreeEdge>,
}

impl SpanningTree {
    /// Build `T_root` for `n` nodes in the `k`-port model.
    ///
    /// Rounds `0 … d-2` are the full circulant rounds; the last round
    /// (`d-1`) attaches the remaining `n - (k+1)^{d-1}` nodes, each via the
    /// unique offset that reaches it from the already-spanned prefix using
    /// the smallest sender index (the byte-balanced assignment lives in
    /// [`crate::partition`], not here).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `k == 0`, or `root ≥ n`.
    #[must_use]
    pub fn build(n: usize, k: usize, root: usize) -> Self {
        assert!(n >= 1 && k >= 1 && root < n);
        let mut edges = Vec::new();
        if n > 1 {
            let d = ceil_log(k + 1, n);
            // Full growth rounds: after round i the tree spans (k+1)^{i+1}
            // nodes (relative labels 0..), capped at n in the last round.
            for i in 0..d {
                let spanned = pow(k + 1, i); // nodes before this round
                for u in 0..spanned {
                    for j in 1..=k {
                        let target = u + j * spanned;
                        if target < n && target < spanned * (k + 1) {
                            edges.push(TreeEdge {
                                from: (root + u) % n,
                                to: (root + target) % n,
                                round: i,
                            });
                        }
                    }
                }
            }
        }
        Self { n, k, root, edges }
    }

    /// Number of nodes spanned.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Ports per node.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The root node.
    #[must_use]
    pub fn root(&self) -> usize {
        self.root
    }

    /// All edges with round labels.
    #[must_use]
    pub fn edges(&self) -> &[TreeEdge] {
        &self.edges
    }

    /// Edges used in a given round.
    #[must_use]
    pub fn edges_in_round(&self, round: u32) -> Vec<TreeEdge> {
        self.edges
            .iter()
            .copied()
            .filter(|e| e.round == round)
            .collect()
    }

    /// Total number of rounds used.
    #[must_use]
    pub fn num_rounds(&self) -> u32 {
        self.edges.iter().map(|e| e.round + 1).max().unwrap_or(0)
    }

    /// The translated tree `T_{(root + shift) mod n}`: every node label is
    /// shifted by `shift`, round labels unchanged (§4.1: "we do this by
    /// translating each node `j` in `T_0` to node `(j + i) mod n`").
    #[must_use]
    pub fn translate(&self, shift: usize) -> Self {
        Self {
            n: self.n,
            k: self.k,
            root: (self.root + shift) % self.n,
            edges: self
                .edges
                .iter()
                .map(|e| TreeEdge {
                    from: (e.from + shift) % self.n,
                    to: (e.to + shift) % self.n,
                    round: e.round,
                })
                .collect(),
        }
    }

    /// Check the tree invariants: spans all `n` nodes, every non-root node
    /// has exactly one parent, parents are reached in strictly earlier
    /// rounds, and no node sends more than `k` messages in any round.
    pub fn validate(&self) -> Result<(), String> {
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; self.n];
        for e in &self.edges {
            if e.to == self.root {
                return Err(format!("edge into root: {e:?}"));
            }
            if parent[e.to].is_some() {
                return Err(format!("node {} has two parents", e.to));
            }
            parent[e.to] = Some((e.from, e.round));
        }
        for (v, p) in parent.iter().enumerate() {
            if v != self.root && p.is_none() {
                return Err(format!("node {v} not spanned"));
            }
        }
        // Causality: a sender must have been reached before it sends.
        for e in &self.edges {
            if e.from != self.root {
                let (_, parent_round) = parent[e.from].unwrap();
                if parent_round >= e.round {
                    return Err(format!(
                        "node {} sends in round {} but is reached in round {}",
                        e.from, e.round, parent_round
                    ));
                }
            }
        }
        // Port limit per sender per round.
        let rounds = self.num_rounds();
        for r in 0..rounds {
            let mut sends = vec![0usize; self.n];
            for e in self.edges_in_round(r) {
                sends[e.from] += 1;
                if sends[e.from] > self.k {
                    return Err(format!(
                        "node {} exceeds {} ports in round {r}",
                        e.from, self.k
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fig7_tree_t0_n9_k2() {
        // Fig. 7: n = 9, k = 2, two rounds. Round 0: 0→1, 0→2.
        // Round 1: 0→3, 0→6, 1→4, 1→7, 2→5, 2→8.
        let t = SpanningTree::build(9, 2, 0);
        assert_eq!(t.num_rounds(), 2);
        let r0: HashSet<(usize, usize)> =
            t.edges_in_round(0).iter().map(|e| (e.from, e.to)).collect();
        assert_eq!(r0, HashSet::from([(0, 1), (0, 2)]));
        let r1: HashSet<(usize, usize)> =
            t.edges_in_round(1).iter().map(|e| (e.from, e.to)).collect();
        assert_eq!(
            r1,
            HashSet::from([(0, 3), (0, 6), (1, 4), (1, 7), (2, 5), (2, 8)])
        );
        t.validate().unwrap();
    }

    #[test]
    fn fig8_tree_t1_is_translation() {
        // Fig. 8: T_1 for n = 9, k = 2 is T_0 with every label +1 (mod 9).
        let t0 = SpanningTree::build(9, 2, 0);
        let t1 = t0.translate(1);
        assert_eq!(t1.root(), 1);
        let r1: HashSet<(usize, usize)> = t1
            .edges_in_round(1)
            .iter()
            .map(|e| (e.from, e.to))
            .collect();
        assert_eq!(
            r1,
            HashSet::from([(1, 4), (1, 7), (2, 5), (2, 8), (3, 6), (3, 0)])
        );
        t1.validate().unwrap();
        // Direct construction at root 1 must agree with translation.
        assert_eq!(t1, SpanningTree::build(9, 2, 1));
    }

    #[test]
    fn binomial_tree_one_port() {
        // k = 1 gives the classic binomial broadcast tree.
        let t = SpanningTree::build(8, 1, 0);
        assert_eq!(t.num_rounds(), 3);
        assert_eq!(t.edges().len(), 7);
        t.validate().unwrap();
        let r2: HashSet<(usize, usize)> =
            t.edges_in_round(2).iter().map(|e| (e.from, e.to)).collect();
        assert_eq!(r2, HashSet::from([(0, 4), (1, 5), (2, 6), (3, 7)]));
    }

    #[test]
    fn partial_last_round() {
        // n = 5, k = 1: d = 3; round 2 only attaches node 4 (0→4).
        let t = SpanningTree::build(5, 1, 0);
        assert_eq!(t.num_rounds(), 3);
        let r2 = t.edges_in_round(2);
        assert_eq!(r2.len(), 1);
        assert_eq!((r2[0].from, r2[0].to), (0, 4));
        t.validate().unwrap();
    }

    #[test]
    fn all_roots_validate() {
        for n in 1..40 {
            for k in 1..5 {
                for root in [0, n / 2, n - 1] {
                    let t = SpanningTree::build(n, k, root.min(n - 1));
                    t.validate()
                        .unwrap_or_else(|e| panic!("n={n} k={k} root={root}: {e}"));
                    assert_eq!(
                        u64::from(t.num_rounds()),
                        crate::bounds::concat_bounds(n, k, 1).c1,
                        "round count must equal ⌈log_(k+1) n⌉ (n={n}, k={k})"
                    );
                }
            }
        }
    }

    #[test]
    fn translation_round_trip() {
        let t = SpanningTree::build(10, 3, 0);
        assert_eq!(t.translate(10), t);
        assert_eq!(t.translate(3).translate(7), t);
    }
}

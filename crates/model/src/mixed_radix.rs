//! Mixed-radix digit decomposition — a strict generalization of §3.2.
//!
//! The paper's algorithm encodes block ids in a *uniform* radix `r`; its
//! complexity analysis only uses that each position `x` has a weight
//! `w_x` (the product of the radices below it) and a digit range
//! `[0, r_x)`. Nothing requires the radices to be equal: any vector
//! `(r_0, r_1, …)` with `Π r_x ≥ n` yields a correct index algorithm
//! whose subphase `x` performs up to `r_x - 1` steps moving blocks by
//! `z·w_x`. The uniform algorithm is the special case `r_x = r`; the
//! direct algorithm is the single-digit case `r_0 = n`.
//!
//! Mixed radices matter for tuning: for `n = 33` the vector
//! `(2, 2, 3, 3)` takes the same 6 rounds as uniform `r = 2` but moves
//! strictly less data (296 B vs 324 B per unit block), beating *every*
//! uniform radix for small messages. The tuner in [`best_radix_vector`]
//! searches the vector space exactly.

use crate::complexity::Complexity;
use crate::cost::CostModel;

/// A mixed-radix decomposition of the block-id space `[0, n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedRadix {
    n: usize,
    radices: Vec<usize>,
    /// `weights[x] = r_0 · r_1 ⋯ r_{x-1}` (so `weights[0] = 1`).
    weights: Vec<usize>,
}

impl MixedRadix {
    /// Build a decomposition of `[0, n)` with the given radix vector.
    ///
    /// Trailing positions whose weight already reaches `n` are dropped
    /// (they would have zero steps).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, any radix is `< 2`, or the radices do not cover
    /// `[0, n)` (`Π r_x < n`).
    #[must_use]
    pub fn new(n: usize, radices: &[usize]) -> Self {
        assert!(n >= 1);
        assert!(radices.iter().all(|&r| r >= 2), "radices must be ≥ 2");
        let mut kept = Vec::new();
        let mut weights = Vec::new();
        let mut w = 1usize;
        for &r in radices {
            if w >= n {
                break;
            }
            kept.push(r);
            weights.push(w);
            w = w.checked_mul(r).expect("radix product overflow");
        }
        assert!(
            w >= n || n == 1,
            "radix vector covers only [0, {w}) < n = {n}"
        );
        Self {
            n,
            radices: kept,
            weights,
        }
    }

    /// Number of values decomposed.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The (trimmed) radix vector.
    #[must_use]
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// Number of subphases.
    #[must_use]
    pub fn num_subphases(&self) -> usize {
        self.radices.len()
    }

    /// Digit of `value` at position `x`.
    #[must_use]
    pub fn digit(&self, value: usize, x: usize) -> usize {
        (value / self.weights[x]) % self.radices[x]
    }

    /// The rotation distance of step `(x, z)`: `z · w_x`.
    #[must_use]
    pub fn step_distance(&self, x: usize, z: usize) -> usize {
        z * self.weights[x]
    }

    /// Number of steps in subphase `x`: the largest digit value that
    /// actually occurs among ids `< n`.
    #[must_use]
    pub fn steps_in_subphase(&self, x: usize) -> usize {
        (0..self.radices[x])
            .rev()
            .find(|&z| self.blocks_in_step(x, z) > 0)
            .unwrap_or(0)
    }

    /// Exact count of ids `j ∈ [0, n)` with `digit_x(j) = z`.
    #[must_use]
    pub fn blocks_in_step(&self, x: usize, z: usize) -> usize {
        let w = self.weights[x];
        let period = w * self.radices[x];
        let full = (self.n / period) * w;
        let rem = self.n % period;
        full + rem.saturating_sub(z * w).min(w)
    }

    /// The ids moved in step `(x, z)`.
    #[must_use]
    pub fn blocks_for_step(&self, x: usize, z: usize) -> Vec<usize> {
        (0..self.n).filter(|&j| self.digit(j, x) == z).collect()
    }

    /// All `(subphase, step)` pairs in execution order.
    pub fn steps(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_subphases())
            .flat_map(move |x| (1..=self.steps_in_subphase(x)).map(move |z| (x, z)))
    }

    /// Closed-form `(C1, C2)` of the mixed-radix index algorithm in the
    /// k-port model: steps of a subphase grouped `k` per round, a round's
    /// `C2` contribution the largest message in the group.
    #[must_use]
    pub fn complexity(&self, block: usize, ports: usize) -> Complexity {
        assert!(ports >= 1);
        let mut c = Complexity::ZERO;
        if self.n <= 1 {
            return c;
        }
        for x in 0..self.num_subphases() {
            let steps = self.steps_in_subphase(x);
            let mut z = 1usize;
            while z <= steps {
                let hi = steps.min(z + ports - 1);
                let max_blocks = (z..=hi)
                    .map(|zz| self.blocks_in_step(x, zz))
                    .max()
                    .unwrap_or(0);
                c = c.plus_round((max_blocks * block) as u64);
                z = hi + 1;
            }
        }
        c
    }
}

/// Exhaustively search radix vectors (non-decreasing, product in
/// `[n, …)`, minimal — no radix can be removed) for the predicted-time
/// minimizer. Complexity of the search is modest for the processor counts
/// of interest (`n ≤ 1024`): the candidate set is the set of ordered
/// factor-coverings of `n`.
#[must_use]
pub fn best_radix_vector(
    n: usize,
    block: usize,
    ports: usize,
    model: &dyn CostModel,
) -> (Vec<usize>, Complexity, f64) {
    if n <= 1 {
        return (vec![2], Complexity::ZERO, 0.0);
    }
    let mut best: Option<(Vec<usize>, Complexity, f64)> = None;
    let mut stack: Vec<Vec<usize>> = vec![vec![]];
    while let Some(prefix) = stack.pop() {
        let product: usize = prefix.iter().product();
        if product >= n {
            let d = MixedRadix::new(n, &prefix);
            let c = d.complexity(block, ports);
            let t = model.estimate(c);
            if best.as_ref().is_none_or(|(_, _, bt)| t < *bt) {
                best = Some((prefix, c, t));
            }
            continue;
        }
        // Extend with any radix ≥ the last one (canonical non-decreasing
        // order). Radices beyond ⌈n/product⌉ are pointless — the top
        // digit's step count depends only on ⌈n/weight⌉ — but the
        // non-decreasing floor must still be allowed to finish a branch
        // (e.g. [3,3,3] for n = 48 finishes with another 3 even though
        // ⌈48/27⌉ = 2).
        let lo = prefix.last().copied().unwrap_or(2);
        let hi = n.div_ceil(product).max(lo);
        for r in lo..=hi {
            let mut next = prefix.clone();
            next.push(r);
            stack.push(next);
        }
    }
    best.expect("at least the single-digit vector [n] is always explored")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LinearModel;
    use crate::radix::RadixDecomposition;

    #[test]
    fn uniform_case_matches_radix_decomposition() {
        for n in 2..60usize {
            for r in 2..=n {
                let w = crate::radix::ceil_log(r, n);
                let mixed = MixedRadix::new(n, &vec![r; w as usize]);
                let uni = RadixDecomposition::new(n, r);
                assert_eq!(mixed.num_subphases(), w as usize, "n={n} r={r}");
                for x in 0..w {
                    assert_eq!(
                        mixed.steps_in_subphase(x as usize),
                        uni.steps_in_subphase(x),
                        "n={n} r={r} x={x}"
                    );
                    for z in 1..=uni.steps_in_subphase(x) {
                        assert_eq!(
                            mixed.blocks_in_step(x as usize, z),
                            uni.blocks_in_step(x, z)
                        );
                        assert_eq!(mixed.step_distance(x as usize, z), uni.step_distance(x, z));
                    }
                }
            }
        }
    }

    #[test]
    fn digits_sum_to_value() {
        let d = MixedRadix::new(30, &[2, 3, 5]);
        for j in 0..30 {
            let total: usize = (0..3).map(|x| d.digit(j, x) * d.step_distance(x, 1)).sum();
            assert_eq!(total, j);
        }
    }

    #[test]
    fn n33_vector_2233_beats_uniform_2_in_volume() {
        // The motivating example: for n = 33, the vector (2,2,3,3) covers
        // [0, 36) in the same 6 rounds as uniform r = 2 (which needs 6
        // bits) but moves strictly less data per processor.
        let mixed = MixedRadix::new(33, &[2, 2, 3, 3]).complexity(1, 1);
        let uniform = crate::tuning::index_complexity(33, 2, 1);
        assert_eq!(mixed.c1, uniform.c1);
        assert!(mixed.c2 < uniform.c2, "mixed {mixed} vs uniform {uniform}");
    }

    #[test]
    fn trailing_radices_trimmed() {
        let d = MixedRadix::new(6, &[2, 3, 7, 5]);
        assert_eq!(d.radices(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "covers only")]
    fn insufficient_radices_rejected() {
        let _ = MixedRadix::new(100, &[2, 3]);
    }

    #[test]
    fn blocks_partition_like_uniform() {
        let d = MixedRadix::new(14, &[3, 5]);
        let mut moved = [0usize; 14];
        for (x, z) in d.steps() {
            for j in d.blocks_for_step(x, z) {
                moved[j] += d.step_distance(x, z);
            }
            assert_eq!(d.blocks_for_step(x, z).len(), d.blocks_in_step(x, z));
        }
        for (j, &total) in moved.iter().enumerate() {
            assert_eq!(total, j);
        }
    }

    #[test]
    fn best_vector_never_worse_than_best_uniform() {
        let model = LinearModel::sp1();
        for n in [6usize, 12, 24, 30, 60] {
            for b in [8usize, 256] {
                let (vector, _, t) = best_radix_vector(n, b, 1, &model);
                let uniform =
                    crate::tuning::best_radix(n, b, 1, &model, crate::tuning::all_radices(n));
                assert!(
                    t <= uniform.predicted_time + 1e-15,
                    "n={n} b={b}: vector {vector:?} at {t} vs uniform r={} at {}",
                    uniform.radix,
                    uniform.predicted_time
                );
            }
        }
    }

    #[test]
    fn best_vector_strictly_wins_somewhere() {
        // There must exist (n, b) where mixed radices strictly beat every
        // uniform radix — that is their raison d'être.
        let model = LinearModel::sp1();
        let mut strict = false;
        for n in [33usize, 34, 35, 36] {
            for b in [4usize, 8, 16, 32] {
                let (_, _, t) = best_radix_vector(n, b, 1, &model);
                let uniform =
                    crate::tuning::best_radix(n, b, 1, &model, crate::tuning::all_radices(n));
                if t < uniform.predicted_time - 1e-12 {
                    strict = true;
                }
            }
        }
        assert!(strict, "mixed radices never beat uniform — tuner is broken");
    }

    #[test]
    fn kport_grouping() {
        let d = MixedRadix::new(20, &[4, 5]);
        let c1 = d.complexity(2, 1);
        let c2 = d.complexity(2, 2);
        assert!(c2.c1 <= c1.c1);
        assert!(c2.c2 <= c1.c2);
    }
}

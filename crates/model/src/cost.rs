//! Communication cost models (§1.2 and §3.5).
//!
//! The paper analyses algorithms in the **linear model**: sending an
//! `m`-byte message point-to-point costs `T = β + mτ`, where `β` is the
//! per-message start-up and `τ` the per-byte transfer time. It also cites
//! the **postal** model (Bar-Noy & Kipnis) and **LogP** (Culler et al.) as
//! finer-grained alternatives, and §3.5 explains measured-vs-predicted gaps
//! on the SP-1 by multiplicative congestion (`γ_c`) and system-noise
//! (`γ_s`) factors.
//!
//! All of these are expressed through the [`CostModel`] trait, consumed by
//! the virtual-time engine in `bruck-net` and by the schedule analyzer in
//! `bruck-sched`. Three primitives suffice:
//!
//! * [`CostModel::send_cost`] — how long the *sender* is busy injecting the
//!   message (the message departs when this completes);
//! * [`CostModel::latency`] — extra wire time between departure and the
//!   earliest moment the receiver can have the data;
//! * [`CostModel::recv_cost`] — receiver-side overhead charged after
//!   arrival.
//!
//! Under the linear model (`latency = recv_cost = 0`) a synchronous
//! schedule costs exactly `C1·β + C2·τ`, matching the paper.

use crate::complexity::Complexity;

/// Times, in seconds, are `f64`. Message sizes are bytes.
pub trait CostModel: Send + Sync {
    /// Time the sender is occupied injecting an `m`-byte message. The
    /// message *departs* at `send_start + send_cost(m)`.
    fn send_cost(&self, bytes: u64) -> f64;

    /// Additional delay between departure and availability at the receiver.
    fn latency(&self, bytes: u64) -> f64 {
        let _ = bytes;
        0.0
    }

    /// Receiver-side overhead charged once the message is available.
    fn recv_cost(&self, bytes: u64) -> f64 {
        let _ = bytes;
        0.0
    }

    /// Cost of a local memory copy of `bytes` (the pack/unpack and
    /// rotation work of the index algorithm's phases). The paper's §3.5
    /// names unmodelled copy time as a source of the measured-vs-predicted
    /// gap; models that want to close it override this. Default: free.
    fn copy_cost(&self, bytes: u64) -> f64 {
        let _ = bytes;
        0.0
    }

    /// Pair-aware sender cost. The paper's model is distance-uniform
    /// ("every pair of processors are equally distant", §1.2), so the
    /// default ignores the endpoints; hierarchical models override this
    /// to study how the algorithms behave when that assumption breaks
    /// (e.g. multicore nodes on a slower interconnect).
    fn send_cost_between(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        let _ = (src, dst);
        self.send_cost(bytes)
    }

    /// Pair-aware wire latency (see [`CostModel::send_cost_between`]).
    fn latency_between(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        let _ = (src, dst);
        self.latency(bytes)
    }

    /// Pair-aware receiver cost (see [`CostModel::send_cost_between`]).
    fn recv_cost_between(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        let _ = (src, dst);
        self.recv_cost(bytes)
    }

    /// Closed-form time estimate for a synchronous round-structured
    /// schedule with complexity `(C1, C2)`. The default charges one full
    /// `send_cost`-shaped term per round using the round's maximum message —
    /// exactly `C1·β + C2·τ` for the linear model.
    fn estimate(&self, c: Complexity) -> f64 {
        // Decompose send_cost into affine parts by probing; models with a
        // non-affine send_cost should override `estimate`.
        let base = self.send_cost(0);
        let per_byte = self.send_cost(1) - base;
        c.c1 as f64 * (base + self.latency(0) + self.recv_cost(0)) + c.c2 as f64 * per_byte
    }

    /// The node grouping this model knows about, if any: `Some(s)` means
    /// ranks `[i·s, (i+1)·s)` share a node and the planner may offer the
    /// two-level hierarchical composition. Distance-uniform models (the
    /// paper's assumption) return `None`.
    fn node_size(&self) -> Option<usize> {
        None
    }

    /// Estimate for a round-structured schedule that stays *inside* a
    /// node (the intra-node phase of a hierarchical plan). Uniform
    /// models have no cheaper local tier, so the default is the plain
    /// [`estimate`](CostModel::estimate).
    fn local_estimate(&self, c: Complexity) -> f64 {
        self.estimate(c)
    }

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's linear model: `T = β + mτ` (§1.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Per-message start-up time `β` (seconds).
    pub startup: f64,
    /// Per-byte transfer time `τ` (seconds/byte).
    pub per_byte: f64,
}

impl LinearModel {
    /// A new linear model with start-up `β` and per-byte time `τ`.
    #[must_use]
    pub const fn new(startup: f64, per_byte: f64) -> Self {
        Self { startup, per_byte }
    }

    /// The IBM SP-1 calibration from §3.5: `β ≈ 29 µs` start-up and
    /// sustained point-to-point bandwidth `≈ 8.5 MB/s`, i.e.
    /// `τ ≈ 0.12 µs/byte`.
    #[must_use]
    pub const fn sp1() -> Self {
        Self {
            startup: 29e-6,
            per_byte: 0.12e-6,
        }
    }

    /// A zero-cost model (useful for pure-structure analysis).
    #[must_use]
    pub const fn free() -> Self {
        Self {
            startup: 0.0,
            per_byte: 0.0,
        }
    }
}

impl CostModel for LinearModel {
    fn send_cost(&self, bytes: u64) -> f64 {
        self.startup + bytes as f64 * self.per_byte
    }

    fn estimate(&self, c: Complexity) -> f64 {
        c.linear_time(self.startup, self.per_byte)
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

/// The postal model of Bar-Noy & Kipnis (cited as \[3\]).
///
/// A sender is busy for one "sending unit" per message; the message is
/// delivered `λ ≥ 1` sending units after injection begins. We scale the
/// sending unit with message size using an underlying linear cost, so
/// `λ = 1` degenerates to [`LinearModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostalModel {
    /// The underlying per-message injection cost.
    pub wire: LinearModel,
    /// Postal latency factor `λ ≥ 1` (delivery completes at `λ·inject`).
    pub lambda: f64,
}

impl PostalModel {
    /// Postal model over an injection cost with latency ratio `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 1.0`.
    #[must_use]
    pub fn new(wire: LinearModel, lambda: f64) -> Self {
        assert!(lambda >= 1.0, "postal λ must be ≥ 1, got {lambda}");
        Self { wire, lambda }
    }
}

impl CostModel for PostalModel {
    fn send_cost(&self, bytes: u64) -> f64 {
        self.wire.send_cost(bytes)
    }

    fn latency(&self, bytes: u64) -> f64 {
        (self.lambda - 1.0) * self.wire.send_cost(bytes)
    }

    fn name(&self) -> &'static str {
        "postal"
    }
}

/// LogP (Culler et al., cited as \[9\]) with the LogGP long-message
/// extension: per-message overhead `o` on each side, inter-message gap `g`,
/// wire latency `L`, and per-byte gap `G` for long messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogPModel {
    /// Wire latency `L` (seconds).
    pub l: f64,
    /// Per-message processor overhead `o` (seconds), paid by both sides.
    pub o: f64,
    /// Gap per message `g` (seconds) — reciprocal of message rate.
    pub g: f64,
    /// Gap per byte `G` (seconds/byte) — reciprocal of bandwidth (LogGP).
    pub big_g: f64,
}

impl LogPModel {
    /// A new LogP/LogGP model.
    #[must_use]
    pub const fn new(l: f64, o: f64, g: f64, big_g: f64) -> Self {
        Self { l, o, g, big_g }
    }
}

impl CostModel for LogPModel {
    fn send_cost(&self, bytes: u64) -> f64 {
        // Sender occupancy: overhead plus the larger of the message gap and
        // the byte-rate constraint.
        self.o + self.g.max(bytes as f64 * self.big_g)
    }

    fn latency(&self, _bytes: u64) -> f64 {
        self.l
    }

    fn recv_cost(&self, _bytes: u64) -> f64 {
        self.o
    }

    fn estimate(&self, c: Complexity) -> f64 {
        // send_cost is not affine in the message size (max of gap and
        // byte-rate), so the trait's probing default would report a zero
        // slope. Per round the occupancy is max(g, m·G); summed over
        // rounds this is at least max(C1·g, C2·G) and at most their sum —
        // we use the lower of the two bounds' midpoint... conservatively,
        // the max (exact when every round is on the same side of the
        // g/G crossover).
        c.c1 as f64 * (2.0 * self.o + self.l) + (c.c1 as f64 * self.g).max(c.c2 as f64 * self.big_g)
    }

    fn name(&self) -> &'static str {
        "logp"
    }
}

/// The §3.5 refinement of the linear model for the SP-1: measured times
/// deviate from `C1·β + C2·τ` by (1) background system routines, modelled
/// as a fixed slowdown `γ_s` of the whole operation, and (2) congestion,
/// modelled as a fixed multiplicative factor `γ_c` on the transfer term
/// (the paper's "total time … modeled as `T = γ_s(γ_1 C1 t_s + γ_c C2 t_c)`"
/// family; we keep one knob per term).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sp1Model {
    /// Underlying linear calibration.
    pub linear: LinearModel,
    /// System-noise slowdown `γ_s ≥ 1` applied to the start-up term.
    pub gamma_startup: f64,
    /// Congestion factor `γ_c ≥ 1` applied to the transfer term.
    pub gamma_transfer: f64,
    /// Local memory-copy time per byte (seconds/byte) — §3.5's factor (2),
    /// the `pack`/`unpack`/`copy` work the linear model omits.
    pub copy_per_byte: f64,
}

impl Sp1Model {
    /// SP-1 model with explicit factors.
    ///
    /// # Panics
    ///
    /// Panics if either factor is below 1.
    #[must_use]
    pub fn new(linear: LinearModel, gamma_startup: f64, gamma_transfer: f64) -> Self {
        assert!(
            gamma_startup >= 1.0 && gamma_transfer >= 1.0,
            "γ factors must be ≥ 1"
        );
        Self {
            linear,
            gamma_startup,
            gamma_transfer,
            copy_per_byte: 0.0,
        }
    }

    /// Enable copy-time modelling at `copy_per_byte` seconds/byte.
    #[must_use]
    pub fn with_copy_per_byte(mut self, copy_per_byte: f64) -> Self {
        assert!(copy_per_byte >= 0.0);
        self.copy_per_byte = copy_per_byte;
        self
    }

    /// The calibration used by the figure harness: SP-1 linear parameters
    /// with a 1.5× system-noise factor and 2× congestion factor — the
    /// paper's §3.5 names a send/receive slowdown "somewhere between one
    /// and two" plus background daemons.
    #[must_use]
    pub fn calibrated() -> Self {
        Self::new(LinearModel::sp1(), 1.5, 2.0)
    }
}

impl CostModel for Sp1Model {
    fn send_cost(&self, bytes: u64) -> f64 {
        self.gamma_startup * self.linear.startup
            + self.gamma_transfer * bytes as f64 * self.linear.per_byte
    }

    fn estimate(&self, c: Complexity) -> f64 {
        c.c1 as f64 * self.gamma_startup * self.linear.startup
            + c.c2 as f64 * self.gamma_transfer * self.linear.per_byte
    }

    fn copy_cost(&self, bytes: u64) -> f64 {
        bytes as f64 * self.copy_per_byte
    }

    fn name(&self) -> &'static str {
        "sp1"
    }
}

/// A two-level machine: ranks are grouped into nodes of `node_size`;
/// intra-node messages use the `local` parameters, inter-node ones the
/// `remote` parameters. This deliberately *breaks* the paper's
/// equal-distance assumption so that the benches can quantify how the
/// flat algorithms degrade and what a hierarchy-aware composition buys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalModel {
    /// Ranks per node.
    pub node_size: usize,
    /// Cost of intra-node messages.
    pub local: LinearModel,
    /// Cost of inter-node messages.
    pub remote: LinearModel,
}

impl HierarchicalModel {
    /// A new two-level model.
    ///
    /// # Panics
    ///
    /// Panics if `node_size == 0`.
    #[must_use]
    pub fn new(node_size: usize, local: LinearModel, remote: LinearModel) -> Self {
        assert!(node_size >= 1);
        Self {
            node_size,
            local,
            remote,
        }
    }

    /// An SMP-cluster-style calibration: shared-memory-fast inside a node
    /// (1 µs start-up, 1 GB/s) and SP-1-like between nodes.
    #[must_use]
    pub fn smp_cluster(node_size: usize) -> Self {
        Self::new(node_size, LinearModel::new(1e-6, 1e-9), LinearModel::sp1())
    }

    /// Which side of the hierarchy a pair of ranks lands on.
    #[must_use]
    pub fn is_local(&self, src: usize, dst: usize) -> bool {
        src / self.node_size == dst / self.node_size
    }

    fn pick(&self, src: usize, dst: usize) -> &LinearModel {
        if self.is_local(src, dst) {
            &self.local
        } else {
            &self.remote
        }
    }
}

impl CostModel for HierarchicalModel {
    /// Conservative pair-oblivious cost: the remote parameters (used when
    /// an analysis has no endpoints, e.g. `estimate`).
    fn send_cost(&self, bytes: u64) -> f64 {
        self.remote.send_cost(bytes)
    }

    fn send_cost_between(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        self.pick(src, dst).send_cost(bytes)
    }

    fn node_size(&self) -> Option<usize> {
        Some(self.node_size)
    }

    fn local_estimate(&self, c: Complexity) -> f64 {
        self.local.estimate(c)
    }

    fn name(&self) -> &'static str {
        "hierarchical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_estimate_matches_closed_form() {
        let m = LinearModel::sp1();
        let c = Complexity::new(6, 2048);
        let t = m.estimate(c);
        assert!((t - (6.0 * 29e-6 + 2048.0 * 0.12e-6)).abs() < 1e-12);
    }

    #[test]
    fn linear_default_estimate_agrees_with_override() {
        // The trait's probing default must agree with LinearModel's
        // closed-form override.
        struct Probe(LinearModel);
        impl CostModel for Probe {
            fn send_cost(&self, b: u64) -> f64 {
                self.0.send_cost(b)
            }
            fn name(&self) -> &'static str {
                "probe"
            }
        }
        let m = LinearModel::new(1e-5, 2e-8);
        let c = Complexity::new(11, 77777);
        assert!((Probe(m).estimate(c) - m.estimate(c)).abs() < 1e-12);
    }

    #[test]
    fn postal_lambda_one_is_linear() {
        let p = PostalModel::new(LinearModel::sp1(), 1.0);
        assert_eq!(p.latency(1000), 0.0);
        assert_eq!(p.send_cost(1000), LinearModel::sp1().send_cost(1000));
    }

    #[test]
    fn postal_latency_scales() {
        let p = PostalModel::new(LinearModel::new(1e-6, 0.0), 3.0);
        assert!((p.latency(123) - 2e-6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "postal λ")]
    fn postal_rejects_sub_unit_lambda() {
        let _ = PostalModel::new(LinearModel::sp1(), 0.5);
    }

    #[test]
    fn logp_components() {
        let m = LogPModel::new(5e-6, 1e-6, 2e-6, 1e-8);
        // short message: gap dominates byte term
        assert!((m.send_cost(10) - (1e-6 + 2e-6)).abs() < 1e-15);
        // long message: byte term dominates
        assert!((m.send_cost(1_000_000) - (1e-6 + 0.01)).abs() < 1e-9);
        assert_eq!(m.latency(10), 5e-6);
        assert_eq!(m.recv_cost(10), 1e-6);
    }

    #[test]
    fn sp1_inflates_both_terms() {
        let s = Sp1Model::calibrated();
        let lin = LinearModel::sp1();
        let c = Complexity::new(10, 10_000);
        assert!(s.estimate(c) > lin.estimate(c));
        // factors apply independently
        let exact = 10.0 * 1.5 * 29e-6 + 10_000.0 * 2.0 * 0.12e-6;
        assert!((s.estimate(c) - exact).abs() < 1e-12);
    }

    #[test]
    fn hierarchical_routes_by_node() {
        let h = HierarchicalModel::smp_cluster(4);
        assert!(h.is_local(0, 3));
        assert!(!h.is_local(3, 4));
        // Local messages are much cheaper.
        assert!(h.send_cost_between(0, 1, 1024) < h.send_cost_between(0, 4, 1024) / 10.0);
        // Pair-oblivious cost is the conservative remote one.
        assert_eq!(h.send_cost(1024), LinearModel::sp1().send_cost(1024));
        // Uniform models ignore the pair.
        let m = LinearModel::sp1();
        assert_eq!(m.send_cost_between(0, 1, 64), m.send_cost(64));
    }

    #[test]
    fn models_are_object_safe() {
        let models: Vec<Box<dyn CostModel>> = vec![
            Box::new(LinearModel::sp1()),
            Box::new(PostalModel::new(LinearModel::sp1(), 2.0)),
            Box::new(LogPModel::new(5e-6, 1e-6, 2e-6, 1e-8)),
            Box::new(Sp1Model::calibrated()),
        ];
        for m in &models {
            assert!(m.send_cost(64) > 0.0, "{}", m.name());
        }
    }
}

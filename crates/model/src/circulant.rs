//! Circulant graphs `G(n; S)` (§4, Definition).
//!
//! A circulant graph on `n` nodes with offset set `S` connects node `i` to
//! nodes `(i ± s) mod n` for every `s ∈ S`. The concatenation algorithm's
//! first phase communicates along the circulant graph with offsets
//! `S = S_0 ∪ S_1 ∪ … ∪ S_{d-2}` where
//! `S_i = {(k+1)^i, 2(k+1)^i, …, k(k+1)^i}`.

use crate::radix::{ceil_log, pow};

/// A circulant graph `G(n; S)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CirculantGraph {
    n: usize,
    offsets: Vec<usize>,
}

impl CirculantGraph {
    /// A circulant graph on `n` nodes with the given offsets.
    ///
    /// Offsets are normalized modulo `n`, deduplicated, and sorted; a zero
    /// offset is rejected.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or any offset is `≡ 0 (mod n)`.
    #[must_use]
    pub fn new(n: usize, offsets: impl IntoIterator<Item = usize>) -> Self {
        assert!(n >= 1);
        let mut offsets: Vec<usize> = offsets.into_iter().map(|s| s % n).collect();
        assert!(
            offsets.iter().all(|&s| s != 0),
            "circulant offsets must be non-zero mod n"
        );
        offsets.sort_unstable();
        offsets.dedup();
        Self { n, offsets }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The normalized offset set.
    #[must_use]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Forward neighbors of `v`: `(v + s) mod n` for each offset.
    #[must_use]
    pub fn successors(&self, v: usize) -> Vec<usize> {
        self.offsets.iter().map(|&s| (v + s) % self.n).collect()
    }

    /// Backward neighbors of `v`: `(v - s) mod n` for each offset.
    #[must_use]
    pub fn predecessors(&self, v: usize) -> Vec<usize> {
        self.offsets
            .iter()
            .map(|&s| (v + self.n - s % self.n) % self.n)
            .collect()
    }

    /// Whether every node can reach every other (the offset set together
    /// with `n` generates `Z_n`), computed by BFS from node 0.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut queue = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = queue.pop() {
            for w in self.successors(v).into_iter().chain(self.predecessors(v)) {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    queue.push(w);
                }
            }
        }
        count == self.n
    }
}

/// The offset set `S_i = {j·(k+1)^i : 1 ≤ j ≤ k}` used in round `i` of the
/// concatenation algorithm's first phase (§4.1).
#[must_use]
pub fn round_offsets(k: usize, round: u32) -> Vec<usize> {
    assert!(k >= 1);
    let base = pow(k + 1, round);
    (1..=k).map(|j| j * base).collect()
}

/// All first-phase offset sets for a concatenation among `n` processors
/// with `k` ports: `d - 1` rounds where `d = ⌈log_{k+1} n⌉`.
#[must_use]
pub fn concat_phase1_offsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    assert!(n >= 1 && k >= 1);
    if n <= 1 {
        return Vec::new();
    }
    let d = ceil_log(k + 1, n);
    (0..d.saturating_sub(1))
        .map(|i| round_offsets(k, i))
        .collect()
}

/// The circulant graph used by the whole first phase.
#[must_use]
pub fn concat_phase1_graph(n: usize, k: usize) -> CirculantGraph {
    CirculantGraph::new(n, concat_phase1_offsets(n, k).into_iter().flatten())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_offsets_k2() {
        // k = 2: S_0 = {1, 2}, S_1 = {3, 6}, S_2 = {9, 18}.
        assert_eq!(round_offsets(2, 0), vec![1, 2]);
        assert_eq!(round_offsets(2, 1), vec![3, 6]);
        assert_eq!(round_offsets(2, 2), vec![9, 18]);
    }

    #[test]
    fn phase1_offsets_n9_k2() {
        // n = 9, k = 2: d = 2, one phase-1 round with offsets {1, 2}.
        assert_eq!(concat_phase1_offsets(9, 2), vec![vec![1, 2]]);
    }

    #[test]
    fn phase1_offsets_one_port() {
        // k = 1, n = 16: d = 4, rounds use offsets 1, 2, 4.
        assert_eq!(
            concat_phase1_offsets(16, 1),
            vec![vec![1], vec![2], vec![4]]
        );
    }

    #[test]
    fn phase1_offsets_trivial() {
        assert!(concat_phase1_offsets(1, 1).is_empty());
        assert!(concat_phase1_offsets(2, 1).is_empty()); // d = 1: no phase-1 rounds
    }

    #[test]
    fn neighbors_wrap() {
        let g = CirculantGraph::new(5, [1, 2]);
        assert_eq!(g.successors(4), vec![0, 1]);
        assert_eq!(g.predecessors(0), vec![4, 3]);
    }

    #[test]
    fn normalization() {
        let g = CirculantGraph::new(5, [6, 1, 7]);
        assert_eq!(g.offsets(), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_offset_rejected() {
        let _ = CirculantGraph::new(5, [5]);
    }

    #[test]
    fn phase1_graph_connected_enough() {
        // The phase-1 offsets alone need not span Z_n, but together with the
        // last round they must; with offset 1 present the graph is connected
        // whenever d ≥ 2.
        for (n, k) in [(16usize, 1usize), (9, 2), (10, 3), (100, 1), (65, 2)] {
            let g = concat_phase1_graph(n, k);
            assert!(g.is_connected(), "n={n} k={k}");
        }
    }

    #[test]
    fn connectivity_detects_disconnected() {
        let g = CirculantGraph::new(6, [2]);
        assert!(!g.is_connected()); // even offsets only reach even nodes
    }
}

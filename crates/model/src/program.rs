//! Explicit per-rank round programs ("lowered" index plans).
//!
//! The threaded executor in `bruck-net` runs an algorithm as a blocking
//! SPMD closure — one OS thread per rank, each free to park inside a
//! receive. That shape cannot be multiplexed onto fewer threads than
//! ranks: a worker that parks inside rank 7's receive can never run rank
//! 12, whose send would have satisfied it. Scaling to the paper's
//! asymptotic regime (n in the hundreds) therefore needs the algorithm in
//! a different shape: an explicit, finite list of operations per rank
//! that an event-driven pool can drive in bulk-synchronous steps, parking
//! *between* operations instead of inside them.
//!
//! [`RankProgram`] is that shape. It is pure data — slot indices, peers,
//! tags — produced here (the model crate owns [`IndexPlan`] and the radix
//! math) and consumed by any executor. Lowerings mirror the executors in
//! `bruck-collectives` exactly:
//!
//! * [`IndexPlan::Radix`] — rotate, the §3.2 digit rounds grouped `k` per
//!   round, inverse placement;
//! * [`IndexPlan::Direct`] — `n-1` offsets grouped `k` per round, no
//!   rotate/pack phases;
//! * [`IndexPlan::Hypercube`] — cost-equal to radix 2, lowered as such;
//! * [`IndexPlan::Hierarchical`] — the two-level composition of
//!   `index/hierarchical.rs`: an intra-node index over lane bundles, a
//!   transpose, an inter-node index over node bundles.
//!
//! [`simulate`] executes a program set in-process with perfect message
//! delivery; the tests sweep it against the transpose oracle so a
//! lowering bug is caught in pure math, far from any socket.

use crate::planner::IndexPlan;
use crate::radix::RadixDecomposition;

/// Bit position separating the phase namespace from the `(subphase,
/// step)` tag of a round. Flat tags are `(x << 32) | z` — far below this
/// for any realistic `n` — and the two hierarchical phases sit at
/// `1 << PHASE_SHIFT` and `2 << PHASE_SHIFT`. Kept below bit 40 so
/// program tags survive epoch-shifted group contexts (`EPOCH_SHIFT` in
/// `bruck-net`) without aliasing.
pub const PHASE_SHIFT: u32 = 37;

/// One transfer of a round: the peer, the matching tag, and the block
/// slots involved. For a send, payload bytes are gathered from `slots`
/// in order; for a receive, the payload is scattered back into `slots`
/// in the same order (sender and receiver use the same slot list, as in
/// the index algorithm's digit steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramXfer {
    /// Global rank of the peer.
    pub peer: usize,
    /// Message tag (unique per round within the program).
    pub tag: u64,
    /// Block indices into the rank's working buffer.
    pub slots: Vec<usize>,
}

/// One communication round: up to `k` sends to distinct peers and the
/// matching receives, all independent (the k-port model).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramRound {
    /// Outgoing transfers (distinct peers).
    pub sends: Vec<ProgramXfer>,
    /// Incoming transfers (distinct peers).
    pub recvs: Vec<ProgramXfer>,
}

/// One step of a rank program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramOp {
    /// Local block permutation: `new[i] = old[perm[i]]` at block
    /// granularity (the rotate / transpose / inverse-placement phases).
    Permute(Vec<usize>),
    /// One communication round.
    Round(ProgramRound),
}

/// A complete per-rank schedule for one all-to-all: every rank's program
/// in a set has the same number of ops (bulk-synchronous SPMD), so an
/// executor can drive them in lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankProgram {
    /// Cluster size.
    pub n: usize,
    /// This rank.
    pub rank: usize,
    /// Block size in bytes.
    pub block: usize,
    /// Ordered operation list.
    pub ops: Vec<ProgramOp>,
}

impl RankProgram {
    /// Lower an [`IndexPlan`] to the explicit program for one rank.
    ///
    /// `Hypercube` lowers as radix 2 (cost-equal schedule); `Mixed` is
    /// not supported (the planner's mixed search self-disables above
    /// n = 128, the regime programs exist for).
    ///
    /// # Errors
    ///
    /// A message for `Mixed` plans, for `rank ≥ n`, and for hierarchical
    /// plans whose `node_size` does not divide `n`.
    pub fn lower(
        plan: &IndexPlan,
        n: usize,
        rank: usize,
        block: usize,
        ports: usize,
    ) -> Result<Self, String> {
        if n == 0 {
            return Err("lower: n must be ≥ 1".into());
        }
        if rank >= n {
            return Err(format!("lower: rank {rank} out of range for n={n}"));
        }
        let k = ports.max(1);
        let mut ops = Vec::new();
        if n > 1 {
            match plan {
                IndexPlan::Radix(r) => {
                    bruck_ops(&mut ops, n, rank, *r, 1, k, |g| g, 0);
                }
                IndexPlan::Hypercube => {
                    bruck_ops(&mut ops, n, rank, 2, 1, k, |g| g, 0);
                }
                IndexPlan::Direct => {
                    direct_ops(&mut ops, n, rank, k);
                }
                IndexPlan::Hierarchical {
                    node_size,
                    radix_local,
                    radix_remote,
                } => {
                    hierarchical_ops(
                        &mut ops,
                        n,
                        rank,
                        *node_size,
                        *radix_local,
                        *radix_remote,
                        k,
                    )?;
                }
                IndexPlan::Mixed(_) => {
                    return Err("lower: mixed-radix plans have no program lowering".into());
                }
            }
        }
        Ok(Self {
            n,
            rank,
            block,
            ops,
        })
    }

    /// Number of communication rounds in the program.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, ProgramOp::Round(_)))
            .count()
    }

    /// The largest single message of the program, in blocks — what an
    /// executor needs for sizing its reliability window against the
    /// transport's fragment size.
    #[must_use]
    pub fn max_message_blocks(&self) -> usize {
        self.ops
            .iter()
            .filter_map(|op| match op {
                ProgramOp::Round(r) => r.sends.iter().map(|x| x.slots.len()).max(),
                ProgramOp::Permute(_) => None,
            })
            .max()
            .unwrap_or(0)
    }
}

/// Append the full radix-`r` index schedule over a (sub)group: rotate,
/// digit rounds grouped `k` per round, inverse placement. The group has
/// `n_g` members; this rank is member `m`; `peer` maps a group index to
/// a global rank; each group-level block spans `unit` consecutive
/// buffer blocks (`n_g · unit` = buffer blocks touched). Tags are
/// namespaced by `tag_base` so stacked phases never collide.
#[allow(clippy::too_many_arguments)] // one arg per schedule dimension; bundling them would only rename the problem
fn bruck_ops(
    ops: &mut Vec<ProgramOp>,
    n_g: usize,
    m: usize,
    r: usize,
    unit: usize,
    k: usize,
    peer: impl Fn(usize) -> usize,
    tag_base: u64,
) {
    if n_g <= 1 {
        return;
    }
    let r = r.clamp(2, n_g);
    // Phase 1: upward rotation, tmp[u] = old[(u + m) mod n_g].
    ops.push(ProgramOp::Permute(group_perm(n_g, unit, |u| (u + m) % n_g)));
    // Phase 2: the digit rounds.
    let decomp = RadixDecomposition::new(n_g, r);
    for x in 0..decomp.num_subphases() {
        let steps = decomp.steps_in_subphase(x);
        let mut z = 1usize;
        while z <= steps {
            let hi = steps.min(z + k - 1);
            let mut round = ProgramRound::default();
            for zz in z..=hi {
                let dist = decomp.step_distance(x, zz);
                let dst = (m + dist) % n_g;
                let src = (m + n_g - dist % n_g) % n_g;
                let slots: Vec<usize> = decomp
                    .blocks_for_step(x, zz)
                    .into_iter()
                    .flat_map(|j| (0..unit).map(move |q| j * unit + q))
                    .collect();
                let tag = tag_base | (u64::from(x) << 32) | zz as u64;
                round.sends.push(ProgramXfer {
                    peer: peer(dst),
                    tag,
                    slots: slots.clone(),
                });
                round.recvs.push(ProgramXfer {
                    peer: peer(src),
                    tag,
                    slots,
                });
            }
            ops.push(ProgramOp::Round(round));
            z = hi + 1;
        }
    }
    // Phase 3: inverse placement, out[j] = tmp[(m - j) mod n_g].
    ops.push(ProgramOp::Permute(group_perm(n_g, unit, |j| {
        (m + n_g - j) % n_g
    })));
}

/// A block-granular permutation from a group-level one: group block `u`
/// spans buffer blocks `[u·unit, (u+1)·unit)`.
fn group_perm(n_g: usize, unit: usize, f: impl Fn(usize) -> usize) -> Vec<usize> {
    let mut perm = vec![0usize; n_g * unit];
    for u in 0..n_g {
        let src = f(u);
        for q in 0..unit {
            perm[u * unit + q] = src * unit + q;
        }
    }
    perm
}

/// The direct algorithm: the working buffer is indexed by destination,
/// so offset `d` sends slot `(m+d) mod n` to that rank. The incoming
/// block (from rank `(m-d) mod n`) is written into the *same* slot —
/// the one this very round just vacated, the only slot a later round is
/// guaranteed not to still need — and a single final permutation
/// (`out[j] = work[(2m−j) mod n]`) puts every received block at its
/// source's index. Receiving into the natural slot `(m-d) mod n`
/// instead would corrupt rounds `d > n/2`, which send slots that
/// earlier rounds already received into.
fn direct_ops(ops: &mut Vec<ProgramOp>, n: usize, m: usize, k: usize) {
    let mut d = 1usize;
    while d < n {
        let hi = (n - 1).min(d + k - 1);
        let mut round = ProgramRound::default();
        for dd in d..=hi {
            let dst = (m + dd) % n;
            let src = (m + n - dd) % n;
            let slot = (m + dd) % n;
            round.sends.push(ProgramXfer {
                peer: dst,
                tag: dd as u64,
                slots: vec![slot],
            });
            round.recvs.push(ProgramXfer {
                peer: src,
                tag: dd as u64,
                slots: vec![slot],
            });
        }
        ops.push(ProgramOp::Round(round));
        d = hi + 1;
    }
    let perm: Vec<usize> = (0..n).map(|j| (2 * m + n - j % n) % n).collect();
    ops.push(ProgramOp::Permute(perm));
}

/// The two-level composition of `index/hierarchical.rs`, op for op:
/// lane-major transpose, intra-node index over `nodes`-block bundles,
/// node-major transpose, inter-node index over `node_size`-block
/// bundles. The final placement is the identity at block granularity,
/// so it is elided.
fn hierarchical_ops(
    ops: &mut Vec<ProgramOp>,
    n: usize,
    rank: usize,
    node_size: usize,
    radix_local: usize,
    radix_remote: usize,
    k: usize,
) -> Result<(), String> {
    if node_size == 0 || !n.is_multiple_of(node_size) {
        return Err(format!(
            "hierarchical: node_size {node_size} must divide n = {n}"
        ));
    }
    let nodes = n / node_size;
    if nodes == 1 || node_size == 1 {
        // Degenerate hierarchy: a flat index at the stronger radix (the
        // same fallback the threaded executor takes).
        bruck_ops(ops, n, rank, radix_local.max(radix_remote), 1, k, |g| g, 0);
        return Ok(());
    }
    let my_node = rank / node_size;
    let my_lane = rank % node_size;
    // Phase 1 pack: bundle for lane `l` holds our blocks for every rank
    // whose lane is `l`, node-major within the bundle.
    let mut p1 = vec![0usize; n];
    for lane in 0..node_size {
        for node in 0..nodes {
            p1[lane * nodes + node] = node * node_size + lane;
        }
    }
    ops.push(ProgramOp::Permute(p1));
    // Intra-node exchange of lane bundles.
    bruck_ops(
        ops,
        node_size,
        my_lane,
        radix_local,
        nodes,
        k,
        |g| my_node * node_size + g,
        1 << PHASE_SHIFT,
    );
    // Phase 2 pack: node bundle `c` holds, for every lane of our node,
    // the block destined to lane-sibling ranks on node `c`.
    let mut p2 = vec![0usize; n];
    for node in 0..nodes {
        for lane in 0..node_size {
            p2[node * node_size + lane] = lane * nodes + node;
        }
    }
    ops.push(ProgramOp::Permute(p2));
    // Inter-node exchange of node bundles between lane siblings.
    bruck_ops(
        ops,
        nodes,
        my_node,
        radix_remote,
        node_size,
        k,
        |g| g * node_size + my_lane,
        2 << PHASE_SHIFT,
    );
    Ok(())
}

/// Execute a program set with perfect in-memory message delivery: the
/// lockstep semantics of the event-driven executor without any
/// transport. `inputs[r]` is rank `r`'s send buffer (`n · block`
/// bytes); the result is each rank's output buffer.
///
/// # Errors
///
/// A message when the set is not SPMD-consistent (differing op counts,
/// wrong buffer sizes, mismatched send/recv pairs).
pub fn simulate(programs: &[RankProgram], inputs: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, String> {
    let n = programs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if inputs.len() != n {
        return Err(format!(
            "simulate: {} inputs for {n} programs",
            inputs.len()
        ));
    }
    let block = programs[0].block;
    let steps = programs[0].ops.len();
    for (r, p) in programs.iter().enumerate() {
        if p.rank != r || p.n != n || p.block != block {
            return Err(format!("simulate: program {r} header mismatch"));
        }
        if p.ops.len() != steps {
            return Err(format!(
                "simulate: program {r} has {} ops, expected {steps} (not SPMD)",
                p.ops.len()
            ));
        }
        if inputs[r].len() != n * block {
            return Err(format!("simulate: input {r} is not n·block bytes"));
        }
    }
    let mut work: Vec<Vec<u8>> = inputs.to_vec();
    let mut scratch = vec![0u8; n * block];
    for t in 0..steps {
        // Gather every send of the step first (in-place rounds overwrite
        // the very slots they sent), then deliver.
        let mut mail: Vec<(usize, u64, usize, Vec<u8>)> = Vec::new();
        for (r, p) in programs.iter().enumerate() {
            if let ProgramOp::Round(round) = &p.ops[t] {
                for s in &round.sends {
                    let mut payload = Vec::with_capacity(s.slots.len() * block);
                    for &slot in &s.slots {
                        payload.extend_from_slice(&work[r][slot * block..(slot + 1) * block]);
                    }
                    mail.push((s.peer, s.tag, r, payload));
                }
            }
        }
        for (r, p) in programs.iter().enumerate() {
            match &p.ops[t] {
                ProgramOp::Permute(perm) => {
                    if perm.len() != n {
                        return Err(format!("simulate: rank {r} permute of wrong length"));
                    }
                    for (i, &src) in perm.iter().enumerate() {
                        scratch[i * block..(i + 1) * block]
                            .copy_from_slice(&work[r][src * block..(src + 1) * block]);
                    }
                    work[r].copy_from_slice(&scratch);
                }
                ProgramOp::Round(round) => {
                    for recv in &round.recvs {
                        let pos = mail
                            .iter()
                            .position(|(dst, tag, src, _)| {
                                *dst == r && *tag == recv.tag && *src == recv.peer
                            })
                            .ok_or_else(|| {
                                format!(
                                    "simulate: rank {r} expected tag {} from {}, never sent",
                                    recv.tag, recv.peer
                                )
                            })?;
                        let (_, _, _, payload) = mail.swap_remove(pos);
                        if payload.len() != recv.slots.len() * block {
                            return Err(format!(
                                "simulate: rank {r} tag {} payload/slot mismatch",
                                recv.tag
                            ));
                        }
                        for (i, &slot) in recv.slots.iter().enumerate() {
                            work[r][slot * block..(slot + 1) * block]
                                .copy_from_slice(&payload[i * block..(i + 1) * block]);
                        }
                    }
                }
            }
        }
        if !mail.is_empty() {
            return Err(format!(
                "simulate: step {t} left {} undelivered messages",
                mail.len()
            ));
        }
    }
    Ok(work)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The byte pattern rank `i` sends to rank `j` (position `p`):
    /// deterministic and pair-unique, same convention as the verify
    /// oracle in `bruck-collectives`.
    fn pattern(i: usize, j: usize, p: usize, block: usize) -> u8 {
        ((i * 31 + j * 7 + p * 13 + block) % 251) as u8
    }

    fn input(rank: usize, n: usize, block: usize) -> Vec<u8> {
        let mut buf = vec![0u8; n * block];
        for j in 0..n {
            for p in 0..block {
                buf[j * block + p] = pattern(rank, j, p, block);
            }
        }
        buf
    }

    fn expected(rank: usize, n: usize, block: usize) -> Vec<u8> {
        let mut buf = vec![0u8; n * block];
        for j in 0..n {
            for p in 0..block {
                buf[j * block + p] = pattern(j, rank, p, block);
            }
        }
        buf
    }

    fn check(plan: &IndexPlan, n: usize, block: usize, ports: usize) {
        let programs: Vec<RankProgram> = (0..n)
            .map(|r| RankProgram::lower(plan, n, r, block, ports).expect("lowerable"))
            .collect();
        let inputs: Vec<Vec<u8>> = (0..n).map(|r| input(r, n, block)).collect();
        let outs = simulate(&programs, &inputs).expect("simulate");
        for (r, out) in outs.iter().enumerate() {
            assert_eq!(
                out,
                &expected(r, n, block),
                "plan={} n={n} b={block} k={ports} rank={r}",
                plan.label()
            );
        }
    }

    #[test]
    fn radix_lowering_matches_oracle() {
        for &n in &[2usize, 3, 5, 8, 13, 16, 27] {
            for &k in &[1usize, 2] {
                for r in [2, 3, n] {
                    check(&IndexPlan::Radix(r), n, 5, k);
                }
            }
        }
    }

    #[test]
    fn direct_and_hypercube_lowerings_match_oracle() {
        for &n in &[2usize, 5, 9, 16] {
            for &k in &[1usize, 3] {
                check(&IndexPlan::Direct, n, 4, k);
            }
        }
        for &n in &[4usize, 16, 32] {
            check(&IndexPlan::Hypercube, n, 3, 1);
        }
    }

    #[test]
    fn hierarchical_lowering_matches_oracle() {
        for &(n, s) in &[(8usize, 2usize), (8, 4), (12, 3), (16, 4), (36, 6), (64, 8)] {
            for &k in &[1usize, 2] {
                check(
                    &IndexPlan::Hierarchical {
                        node_size: s,
                        radix_local: 2,
                        radix_remote: 2,
                    },
                    n,
                    3,
                    k,
                );
            }
        }
        // Mixed radices and degenerate hierarchies.
        check(
            &IndexPlan::Hierarchical {
                node_size: 4,
                radix_local: 4,
                radix_remote: 3,
            },
            16,
            6,
            1,
        );
        check(
            &IndexPlan::Hierarchical {
                node_size: 1,
                radix_local: 2,
                radix_remote: 2,
            },
            6,
            2,
            1,
        );
        check(
            &IndexPlan::Hierarchical {
                node_size: 6,
                radix_local: 2,
                radix_remote: 2,
            },
            6,
            2,
            1,
        );
    }

    #[test]
    fn larger_scale_lowering_is_bit_correct_in_simulation() {
        check(&IndexPlan::Radix(2), 128, 2, 1);
        check(
            &IndexPlan::Hierarchical {
                node_size: 16,
                radix_local: 2,
                radix_remote: 2,
            },
            128,
            2,
            1,
        );
    }

    #[test]
    fn non_divisible_node_size_is_rejected() {
        let err = RankProgram::lower(
            &IndexPlan::Hierarchical {
                node_size: 5,
                radix_local: 2,
                radix_remote: 2,
            },
            16,
            0,
            4,
            1,
        )
        .unwrap_err();
        assert!(err.contains("must divide"), "{err}");
    }

    #[test]
    fn mixed_plans_have_no_lowering() {
        let err = RankProgram::lower(&IndexPlan::Mixed(vec![2, 3]), 6, 0, 4, 1).unwrap_err();
        assert!(err.contains("mixed"), "{err}");
    }

    #[test]
    fn trivial_cluster_has_empty_program() {
        let p = RankProgram::lower(&IndexPlan::Radix(2), 1, 0, 8, 1).unwrap();
        assert!(p.ops.is_empty());
        assert_eq!(p.rounds(), 0);
        assert_eq!(p.max_message_blocks(), 0);
    }

    #[test]
    fn round_and_message_accounting() {
        let p = RankProgram::lower(&IndexPlan::Radix(2), 8, 0, 4, 1).unwrap();
        // ⌈log2 8⌉ = 3 rounds, each carrying 4 of the 8 blocks.
        assert_eq!(p.rounds(), 3);
        assert_eq!(p.max_message_blocks(), 4);
        // k = 2 halves the round count of a radix-4 schedule's subphases.
        let p1 = RankProgram::lower(&IndexPlan::Radix(4), 16, 3, 4, 1).unwrap();
        let p2 = RankProgram::lower(&IndexPlan::Radix(4), 16, 3, 4, 2).unwrap();
        assert!(p2.rounds() < p1.rounds());
    }
}

//! Cost-model dispatch over the paper's whole algorithm family (§3.5).
//!
//! The paper's headline practical result is not any single algorithm but
//! the *selection rule*: evaluate `T = C1·β + C2·τ` for every member of
//! the family and run the arg-min. This module is that rule, factored out
//! of any particular executor:
//!
//! * **index** (all-to-all personalized, MPI_Alltoall): uniform radices
//!   `r ∈ [2, n]` (§3.2–3.3, with `r = n` degenerating to the direct
//!   algorithm), the hypercube exchange (power-of-two `n`, one port), and
//!   mixed-radix vectors (the §3.2 generalization);
//! * **concatenation** (all-to-all broadcast, MPI_Allgather): the
//!   circulant-graph doubling algorithm of §4.1 with either last-round
//!   preference of Proposition 4.2, against the one-port ring baseline.
//!
//! The planner is pure math over a [`CostModel`]; feeding it a
//! [calibrated](crate::calibrate::Calibrator) fit of the live substrate
//! closes the measure → fit → dispatch loop.

use crate::complexity::Complexity;
use crate::cost::CostModel;
use crate::mixed_radix::best_radix_vector;
use crate::partition::{plan_last_round, Preference};
use crate::radix::{ceil_log, pow, RadixDecomposition};

/// The index-algorithm family member a plan dispatches to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexPlan {
    /// The uniform radix-`r` index algorithm (§3.2).
    Radix(usize),
    /// The direct algorithm: every pair exchanges its block straight,
    /// `⌈(n-1)/k⌉` rounds with no rotate/pack phases. Cost-equal to
    /// `Radix(n)` but cheaper in memory traffic, so it wins ties.
    Direct,
    /// The hypercube (pairwise-XOR) exchange — power-of-two `n`, one
    /// port; cost-equal to `Radix(2)` at those sizes.
    Hypercube,
    /// The mixed-radix index algorithm with a per-subphase radix vector.
    Mixed(Vec<usize>),
    /// The two-level hierarchical composition: an intra-node index over
    /// lane bundles followed by an inter-node index over node bundles
    /// (Träff's k-lane decomposition applied to the §3.2 algorithm).
    /// Only offered when the cost model declares a node topology
    /// ([`CostModel::node_size`]) that divides `n`.
    Hierarchical {
        /// Ranks per node.
        node_size: usize,
        /// Radix of the intra-node index phase.
        radix_local: usize,
        /// Radix of the inter-node index phase.
        radix_remote: usize,
    },
}

impl IndexPlan {
    /// The effective uniform radix of this plan, when it has one
    /// (`Direct` ≡ radix `n`; mixed vectors have none).
    #[must_use]
    pub fn radix(&self, n: usize) -> Option<usize> {
        match self {
            Self::Radix(r) => Some(*r),
            Self::Direct => Some(n.max(2)),
            Self::Hypercube => Some(2),
            Self::Mixed(_) | Self::Hierarchical { .. } => None,
        }
    }

    /// Short human-readable label (for bench tables and reports).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Radix(r) => format!("bruck-r{r}"),
            Self::Direct => "direct".to_string(),
            Self::Hypercube => "hypercube".to_string(),
            Self::Mixed(v) => {
                let digits: Vec<String> = v.iter().map(ToString::to_string).collect();
                format!("mixed-r({})", digits.join(","))
            }
            Self::Hierarchical {
                node_size,
                radix_local,
                radix_remote,
            } => format!("hier-s{node_size}-r{radix_local}x{radix_remote}"),
        }
    }
}

/// The non-uniform ("v") index-algorithm family member a plan
/// dispatches to — the configurable non-uniform Bruck family for
/// per-pair message sizes (`MPI_Alltoallv`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VIndexPlan {
    /// Direct exchange: every pair ships its exact bytes straight,
    /// distance-scheduled `k` pairs per round. Transfer-optimal; pays
    /// up to `⌈(n-1)/k⌉` start-ups.
    Direct,
    /// Padded Bruck: every block is padded to the global maximum count,
    /// the uniform radix-`r` index moves the padded matrix, and the
    /// padding is stripped on unpack. Round-optimal; inflates volume by
    /// the skew.
    Padded {
        /// Radix of the uniform index phase.
        radix: usize,
    },
    /// Two-phase Bruck: a uniform `quota`-byte slice of every block
    /// rides the radix-`r` log-round index, the heavy tails above the
    /// quota move direct. Interpolates between the other two.
    TwoPhase {
        /// Radix of the uniform quota phase.
        radix: usize,
        /// Bytes of every block carried by the uniform phase.
        quota: usize,
    },
}

impl VIndexPlan {
    /// Short human-readable label (for bench tables and reports).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Direct => "v-direct".to_string(),
            Self::Padded { radix } => format!("v-padded-r{radix}"),
            Self::TwoPhase { radix, quota } => format!("v-twophase-r{radix}-q{quota}"),
        }
    }
}

/// Skew of a per-pair size matrix: max over mean of the off-diagonal
/// entries (the blocks that actually travel). `1.0` for uniform or
/// degenerate (empty / all-zero) matrices — the statistic
/// `plan_vindex` dispatches on.
#[must_use]
pub fn skew_ratio(n: usize, sizes: &[u64]) -> f64 {
    assert_eq!(sizes.len(), n * n, "skew_ratio: need an n×n size matrix");
    let mut max = 0u64;
    let mut sum = 0u128;
    let mut cnt = 0u64;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let s = sizes[i * n + j];
                max = max.max(s);
                sum += u128::from(s);
                cnt += 1;
            }
        }
    }
    if cnt == 0 || sum == 0 {
        return 1.0;
    }
    max as f64 / (sum as f64 / cnt as f64)
}

/// The concatenation-algorithm family member a plan dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcatPlan {
    /// The circulant-graph doubling algorithm (§4.1) with the given
    /// last-round partitioning preference (Proposition 4.2).
    Bruck(Preference),
    /// The one-port ring baseline: `n-1` rounds of `b` bytes.
    Ring,
}

impl ConcatPlan {
    /// Short human-readable label (for bench tables and reports).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Bruck(Preference::Rounds) => "bruck-circulant",
            Self::Bruck(Preference::Bytes) => "bruck-circulant-b",
            Self::Ring => "ring",
        }
    }
}

/// A planned algorithm with its predicted cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanChoice<P> {
    /// The chosen family member.
    pub plan: P,
    /// Its closed-form complexity.
    pub complexity: Complexity,
    /// Its predicted time under the planner's model (seconds).
    pub predicted_time: f64,
}

/// Evaluates the fitted cost model over the algorithm family and returns
/// the arg-min schedule.
pub struct Planner<'m> {
    model: &'m dyn CostModel,
    mixed_radix_limit: usize,
}

/// Largest `n` for which the mixed-radix vector search runs by default
/// (the DFS over factor coverings grows super-linearly with `n`).
pub const DEFAULT_MIXED_RADIX_LIMIT: usize = 128;

impl<'m> Planner<'m> {
    /// A planner over the given cost model, with the mixed-radix search
    /// enabled up to [`DEFAULT_MIXED_RADIX_LIMIT`] processors.
    #[must_use]
    pub fn new(model: &'m dyn CostModel) -> Self {
        Self {
            model,
            mixed_radix_limit: DEFAULT_MIXED_RADIX_LIMIT,
        }
    }

    /// Bound (or disable, with `0`) the mixed-radix vector search.
    #[must_use]
    pub fn with_mixed_radix_limit(mut self, limit: usize) -> Self {
        self.mixed_radix_limit = limit;
        self
    }

    /// The model this planner evaluates.
    #[must_use]
    pub fn model(&self) -> &dyn CostModel {
        self.model
    }

    /// Closed-form complexity of one index-family member for `n`
    /// processors, `k` ports, and `b`-byte blocks.
    #[must_use]
    pub fn index_complexity(&self, plan: &IndexPlan, n: usize, k: usize, b: usize) -> Complexity {
        assert!(k >= 1, "plan: ports must be ≥ 1");
        if n <= 1 {
            return Complexity::ZERO;
        }
        match plan {
            IndexPlan::Radix(r) => RadixDecomposition::new(n, *r).complexity(b, k),
            IndexPlan::Direct => RadixDecomposition::new(n, n).complexity(b, k),
            IndexPlan::Hypercube => {
                assert!(
                    n.is_power_of_two() && k == 1,
                    "hypercube needs power-of-two n and one port"
                );
                RadixDecomposition::new(n, 2).complexity(b, 1)
            }
            IndexPlan::Mixed(v) => crate::mixed_radix::MixedRadix::new(n, v).complexity(b, k),
            IndexPlan::Hierarchical {
                node_size,
                radix_local,
                radix_remote,
            } => {
                let (local, remote) = hierarchical_phase_complexities(
                    n,
                    *node_size,
                    *radix_local,
                    *radix_remote,
                    b,
                    k,
                );
                local + remote
            }
        }
    }

    /// Evaluate the whole index family and return the predicted-time
    /// arg-min. Ties go to the earliest-evaluated candidate: `Direct`
    /// before the uniform radix sweep (it does the same communication as
    /// `Radix(n)` without the rotate/pack phases), then `Hypercube`, with
    /// a mixed-radix vector adopted only when *strictly* better than
    /// every uniform choice.
    #[must_use]
    pub fn plan_index(&self, n: usize, k: usize, b: usize) -> PlanChoice<IndexPlan> {
        assert!(k >= 1, "plan: ports must be ≥ 1");
        if n <= 1 {
            return PlanChoice {
                plan: IndexPlan::Radix(2),
                complexity: Complexity::ZERO,
                predicted_time: 0.0,
            };
        }
        let mut candidates: Vec<IndexPlan> = vec![IndexPlan::Direct];
        candidates.extend((2..=n).map(IndexPlan::Radix));
        if n.is_power_of_two() && k == 1 {
            candidates.push(IndexPlan::Hypercube);
        }
        let mut best: Option<PlanChoice<IndexPlan>> = None;
        for plan in candidates {
            let complexity = self.index_complexity(&plan, n, k, b);
            let predicted_time = self.model.estimate(complexity);
            if best
                .as_ref()
                .is_none_or(|cur| predicted_time < cur.predicted_time)
            {
                best = Some(PlanChoice {
                    plan,
                    complexity,
                    predicted_time,
                });
            }
        }
        let mut best = best.expect("n ≥ 2 always yields candidates");
        // Topology-aware candidates: when the model declares a node
        // grouping that divides n, evaluate the two-level composition
        // with each phase charged to its own side of the hierarchy
        // (intra-node traffic at the local parameters, inter-node at the
        // remote ones). Flat candidates above were charged uniformly, so
        // the hierarchy wins exactly when concentrating the expensive
        // hops into the smaller inter-node index pays for the extra
        // local traffic — the quantity this planner exists to decide.
        if let Some(node_size) = self.model.node_size() {
            let nodes = n.checked_div(node_size).unwrap_or(0);
            if node_size > 1 && nodes > 1 && n.is_multiple_of(node_size) {
                let mut locals: Vec<usize> = vec![2, 3, node_size];
                locals.retain(|r| (2..=node_size).contains(r));
                locals.dedup();
                let mut remotes: Vec<usize> = vec![2, 3, nodes];
                remotes.retain(|r| (2..=nodes).contains(r));
                remotes.dedup();
                for &radix_local in &locals {
                    for &radix_remote in &remotes {
                        let (local_c, remote_c) = hierarchical_phase_complexities(
                            n,
                            node_size,
                            radix_local,
                            radix_remote,
                            b,
                            k,
                        );
                        let predicted_time =
                            self.model.local_estimate(local_c) + self.model.estimate(remote_c);
                        if predicted_time < best.predicted_time {
                            best = PlanChoice {
                                plan: IndexPlan::Hierarchical {
                                    node_size,
                                    radix_local,
                                    radix_remote,
                                },
                                complexity: local_c + remote_c,
                                predicted_time,
                            };
                        }
                    }
                }
            }
        }
        if self.mixed_radix_limit >= n {
            let (vector, complexity, predicted_time) = best_radix_vector(n, b, k, self.model);
            // A uniform vector is a member of the mixed search space, so
            // the search can only tie or beat `best`; adopt it only on a
            // strict win (the uniform executor is simpler).
            if predicted_time < best.predicted_time {
                best = PlanChoice {
                    plan: IndexPlan::Mixed(vector),
                    complexity,
                    predicted_time,
                };
            }
        }
        best
    }

    /// Closed-form complexity of one non-uniform index-family member
    /// for an `n×n` row-major per-pair size matrix (`sizes[i·n + j]` =
    /// bytes rank `i` sends rank `j`; the diagonal never travels).
    ///
    /// Matches the executors' geometry exactly: the direct phase skips
    /// distances no pair uses and charges each round its largest
    /// message; the padded phase is the uniform index at the global
    /// maximum count; two-phase is the uniform index at the quota plus
    /// the direct phase over the tails. The metadata concat — identical
    /// for every member — is excluded.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `sizes.len() != n²`.
    #[must_use]
    pub fn vindex_complexity(
        &self,
        plan: &VIndexPlan,
        n: usize,
        k: usize,
        sizes: &[u64],
    ) -> Complexity {
        assert!(k >= 1, "plan: ports must be ≥ 1");
        assert_eq!(sizes.len(), n * n, "vindex: need an n×n size matrix");
        if n <= 1 {
            return Complexity::ZERO;
        }
        let off_diag_max = (0..n)
            .flat_map(|i| {
                (0..n)
                    .filter(move |&j| j != i)
                    .map(move |j| sizes[i * n + j])
            })
            .max()
            .unwrap_or(0);
        match plan {
            VIndexPlan::Direct => direct_v_complexity(n, k, |i, j| sizes[i * n + j]),
            VIndexPlan::Padded { radix } => {
                if off_diag_max == 0 {
                    return Complexity::ZERO;
                }
                let r = (*radix).clamp(2, n);
                RadixDecomposition::new(n, r).complexity(off_diag_max as usize, k)
            }
            VIndexPlan::TwoPhase { radix, quota } => {
                let q = (*quota as u64).min(off_diag_max);
                let r = (*radix).clamp(2, n);
                let uniform = if q == 0 {
                    Complexity::ZERO
                } else {
                    RadixDecomposition::new(n, r).complexity(q as usize, k)
                };
                uniform + direct_v_complexity(n, k, |i, j| sizes[i * n + j].saturating_sub(q))
            }
        }
    }

    /// Evaluate the non-uniform index family — direct, padded Bruck at
    /// every radix, two-phase Bruck at every radix × a small quota
    /// candidate set (mean and median of the travelling blocks) — and
    /// return the predicted-time arg-min. Ties go to the
    /// earliest-evaluated candidate: `Direct` first (no pack/strip
    /// memory traffic), then padded, then two-phase.
    ///
    /// Deterministic in `(n, k, sizes, model)`: ranks holding the same
    /// size matrix (as established by the metadata round) and the same
    /// model provably pick the same plan, so the SPMD executors never
    /// diverge.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `sizes.len() != n²`.
    #[must_use]
    pub fn plan_vindex(&self, n: usize, k: usize, sizes: &[u64]) -> PlanChoice<VIndexPlan> {
        assert!(k >= 1, "plan: ports must be ≥ 1");
        assert_eq!(sizes.len(), n * n, "vindex: need an n×n size matrix");
        if n <= 1 {
            return PlanChoice {
                plan: VIndexPlan::Direct,
                complexity: Complexity::ZERO,
                predicted_time: 0.0,
            };
        }
        // Same candidate set and evaluation order as the naive
        // one-`vindex_complexity`-per-candidate sweep (Direct, padded by
        // ascending radix, then two-phase quota-major), but with the
        // shared sub-terms hoisted: one radix decomposition per radix
        // (reused by its padded and every two-phase candidate) and one
        // O(n²) tail complexity per distinct quota (shared across
        // radices). The sweep runs on every `alltoallv_auto` call —
        // between the metadata and payload rounds — so its CPU cost is
        // part of the measured collective.
        let off_diag_max = (0..n)
            .flat_map(|i| {
                (0..n)
                    .filter(move |&j| j != i)
                    .map(move |j| sizes[i * n + j])
            })
            .max()
            .unwrap_or(0);
        let mut best: Option<PlanChoice<VIndexPlan>> = None;
        let mut consider = |plan: VIndexPlan, complexity: Complexity| {
            let predicted_time = self.model.estimate(complexity);
            if best
                .as_ref()
                .is_none_or(|cur| predicted_time < cur.predicted_time)
            {
                best = Some(PlanChoice {
                    plan,
                    complexity,
                    predicted_time,
                });
            }
        };
        consider(
            VIndexPlan::Direct,
            direct_v_complexity(n, k, |i, j| sizes[i * n + j]),
        );
        let decomps: Vec<RadixDecomposition> =
            (2..=n).map(|r| RadixDecomposition::new(n, r)).collect();
        for (radix, decomp) in (2..=n).zip(&decomps) {
            let complexity = if off_diag_max == 0 {
                Complexity::ZERO
            } else {
                decomp.complexity(off_diag_max as usize, k)
            };
            consider(VIndexPlan::Padded { radix }, complexity);
        }
        for quota in quota_candidates(n, sizes) {
            let q = (quota as u64).min(off_diag_max);
            let tail = direct_v_complexity(n, k, |i, j| sizes[i * n + j].saturating_sub(q));
            for (radix, decomp) in (2..=n).zip(&decomps) {
                let uniform = if q == 0 {
                    Complexity::ZERO
                } else {
                    decomp.complexity(q as usize, k)
                };
                consider(VIndexPlan::TwoPhase { radix, quota }, uniform + tail);
            }
        }
        best.expect("n ≥ 2 always yields candidates")
    }

    /// Closed-form complexity of one concatenation-family member:
    /// mirrors the executor's geometry exactly (doubling rounds over the
    /// circulant graph, then the Proposition 4.2 last round; the ring
    /// pays `n-1` rounds of `b` bytes).
    #[must_use]
    pub fn concat_complexity(&self, plan: &ConcatPlan, n: usize, k: usize, b: usize) -> Complexity {
        assert!(k >= 1, "plan: ports must be ≥ 1");
        if n <= 1 || b == 0 {
            return Complexity::ZERO;
        }
        match plan {
            ConcatPlan::Ring => {
                assert!(k == 1, "ring is a one-port algorithm");
                Complexity::new((n - 1) as u64, ((n - 1) * b) as u64)
            }
            ConcatPlan::Bruck(pref) => {
                let d = ceil_log(k + 1, n);
                if d <= 1 {
                    return Complexity::new(1, b as u64);
                }
                let mut c = Complexity::ZERO;
                for i in 0..d - 1 {
                    c = c.plus_round((pow(k + 1, i) * b) as u64);
                }
                let n1 = pow(k + 1, d - 1);
                let n2 = n - n1;
                c + plan_last_round(n1, n2, b, k, *pref).complexity()
            }
        }
    }

    /// Evaluate the concatenation family (circulant doubling under both
    /// last-round preferences, plus the ring when one-port) and return
    /// the predicted-time arg-min. Ties go to the circulant algorithm.
    #[must_use]
    pub fn plan_concat(&self, n: usize, k: usize, b: usize) -> PlanChoice<ConcatPlan> {
        assert!(k >= 1, "plan: ports must be ≥ 1");
        if n <= 1 || b == 0 {
            return PlanChoice {
                plan: ConcatPlan::Bruck(Preference::Rounds),
                complexity: Complexity::ZERO,
                predicted_time: 0.0,
            };
        }
        let mut candidates = vec![
            ConcatPlan::Bruck(Preference::Rounds),
            ConcatPlan::Bruck(Preference::Bytes),
        ];
        if k == 1 {
            candidates.push(ConcatPlan::Ring);
        }
        candidates
            .into_iter()
            .map(|plan| {
                let complexity = self.concat_complexity(&plan, n, k, b);
                PlanChoice {
                    plan,
                    complexity,
                    predicted_time: self.model.estimate(complexity),
                }
            })
            .min_by(|x, y| x.predicted_time.total_cmp(&y.predicted_time))
            .expect("concat candidate set is never empty")
    }
}

/// Per-phase complexities of the two-level hierarchical composition:
/// `(intra-node, inter-node)`. The local phase is a radix index over the
/// `node_size` lanes moving `nodes·b`-byte bundles; the remote phase is
/// a radix index over the `nodes` node groups moving `node_size·b`-byte
/// bundles. Degenerate hierarchies (one node, or one rank per node)
/// collapse to a flat index at the stronger radix, charged remote —
/// matching the executor's fallback.
///
/// # Panics
///
/// Panics if `node_size` is zero or does not divide `n`.
fn hierarchical_phase_complexities(
    n: usize,
    node_size: usize,
    radix_local: usize,
    radix_remote: usize,
    b: usize,
    k: usize,
) -> (Complexity, Complexity) {
    assert!(
        node_size >= 1 && n.is_multiple_of(node_size),
        "hierarchical: node_size {node_size} must divide n = {n}"
    );
    let nodes = n / node_size;
    if nodes == 1 || node_size == 1 {
        let r = radix_local.max(radix_remote).clamp(2, n.max(2));
        return (
            Complexity::ZERO,
            RadixDecomposition::new(n, r).complexity(b, k),
        );
    }
    let local = RadixDecomposition::new(node_size, radix_local.clamp(2, node_size))
        .complexity(nodes * b, k);
    let remote =
        RadixDecomposition::new(nodes, radix_remote.clamp(2, nodes)).complexity(node_size * b, k);
    (local, remote)
}

/// The direct-exchange complexity over an arbitrary per-pair size
/// function: distances `1..n` with at least one non-empty message,
/// grouped `k` per round; each round is charged its largest message
/// (the multiport round completes when its slowest port does).
fn direct_v_complexity(n: usize, k: usize, size: impl Fn(usize, usize) -> u64) -> Complexity {
    let active: Vec<usize> = (1..n)
        .filter(|&d| (0..n).any(|i| size(i, (i + d) % n) > 0))
        .collect();
    let mut c = Complexity::ZERO;
    for group in active.chunks(k) {
        let mut max = 0u64;
        for &d in group {
            for i in 0..n {
                max = max.max(size(i, (i + d) % n));
            }
        }
        c = c.plus_round(max);
    }
    c
}

/// Quota candidates for the two-phase plan: the mean and the median of
/// the off-diagonal (travelling) entries, deduplicated, keeping only
/// values strictly between `0` and the maximum (a zero quota *is* the
/// direct plan; a max quota *is* the padded plan — both already in the
/// candidate set). The first entry, when present, is the default quota
/// executors use for a forced two-phase run.
#[must_use]
pub fn quota_candidates(n: usize, sizes: &[u64]) -> Vec<usize> {
    assert_eq!(sizes.len(), n * n, "quota: need an n×n size matrix");
    let mut travelling: Vec<u64> = (0..n)
        .flat_map(|i| {
            (0..n)
                .filter(move |&j| j != i)
                .map(move |j| sizes[i * n + j])
        })
        .collect();
    if travelling.is_empty() {
        return Vec::new();
    }
    travelling.sort_unstable();
    let max = *travelling.last().expect("non-empty");
    let sum: u128 = travelling.iter().map(|&s| u128::from(s)).sum();
    let mean = (sum / travelling.len() as u128) as u64;
    let median = travelling[travelling.len() / 2];
    let mut out = Vec::new();
    for q in [mean, median] {
        let q = usize::try_from(q).unwrap_or(usize::MAX);
        if q > 0 && (q as u64) < max && !out.contains(&q) {
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LinearModel;
    use crate::tuning::index_complexity_kport;

    #[test]
    fn planner_matches_exhaustive_uniform_argmin() {
        let model = LinearModel::sp1();
        let planner = Planner::new(&model);
        for n in [2usize, 4, 7, 8, 16, 33] {
            for k in [1usize, 2, 3] {
                for b in [1usize, 64, 4096, 65536] {
                    let choice = planner.plan_index(n, k, b);
                    let exhaustive = (2..=n)
                        .map(|r| model.estimate(index_complexity_kport(n, r, b, k)))
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        choice.predicted_time <= exhaustive,
                        "n={n} k={k} b={b}: planner {} > exhaustive {exhaustive}",
                        choice.predicted_time
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_blocks_pick_round_optimal_radix() {
        // β-dominated: the planner must minimize rounds, i.e. pick a
        // radix near k+1 (§3.4), never the direct algorithm.
        let model = LinearModel::new(1e-3, 1e-12);
        let planner = Planner::new(&model);
        let choice = planner.plan_index(64, 1, 1);
        assert_eq!(
            choice.complexity.c1,
            u64::from(ceil_log(2, 64)),
            "round-optimal C1 expected, got {:?}",
            choice.plan
        );
    }

    #[test]
    fn huge_blocks_pick_direct() {
        // τ-dominated: the planner must minimize bytes — the direct
        // algorithm, preferred over Radix(n) on the tie.
        let model = LinearModel::new(1e-9, 1e-3);
        let planner = Planner::new(&model);
        let choice = planner.plan_index(16, 2, 1 << 20);
        assert_eq!(choice.plan, IndexPlan::Direct);
    }

    #[test]
    fn mixed_radix_wins_when_strictly_better() {
        // n = 33 with moderate blocks is the documented case where a
        // mixed vector strictly beats every uniform radix.
        let model = LinearModel::sp1();
        let planner = Planner::new(&model);
        let choice = planner.plan_index(33, 1, 64);
        let (vector, _, t) = best_radix_vector(33, 64, 1, &model);
        let uniform_best = (2..=33)
            .map(|r| model.estimate(index_complexity_kport(33, r, 64, 1)))
            .fold(f64::INFINITY, f64::min);
        if t < uniform_best {
            assert_eq!(choice.plan, IndexPlan::Mixed(vector));
        } else {
            assert!(choice.predicted_time <= uniform_best);
        }
    }

    #[test]
    fn mixed_radix_can_be_disabled() {
        let model = LinearModel::sp1();
        let planner = Planner::new(&model).with_mixed_radix_limit(0);
        let choice = planner.plan_index(33, 1, 64);
        assert!(!matches!(choice.plan, IndexPlan::Mixed(_)));
    }

    #[test]
    fn hierarchical_plan_wins_on_a_two_level_machine() {
        // Fast intra-node lane, SP-1-like interconnect: concentrating
        // the expensive hops into the inter-node index must beat every
        // flat schedule once messages matter.
        let model = crate::cost::HierarchicalModel::smp_cluster(4);
        let planner = Planner::new(&model);
        let choice = planner.plan_index(16, 1, 4096);
        match choice.plan {
            IndexPlan::Hierarchical { node_size, .. } => assert_eq!(node_size, 4),
            other => panic!("expected a hierarchical plan, got {other:?}"),
        }
        // Combined complexity is the sum of both phases — non-zero in
        // each measure.
        assert!(choice.complexity.c1 > 0 && choice.complexity.c2 > 0);
    }

    #[test]
    fn uniform_models_never_offer_hierarchy() {
        let model = LinearModel::sp1();
        let planner = Planner::new(&model);
        for n in [8usize, 16, 64] {
            let choice = planner.plan_index(n, 1, 4096);
            assert!(
                !matches!(choice.plan, IndexPlan::Hierarchical { .. }),
                "n={n}: {:?}",
                choice.plan
            );
        }
    }

    #[test]
    fn non_divisible_topology_stays_flat() {
        // node_size 4 does not divide 18: the hierarchy must not be
        // offered, not crash.
        let model = crate::cost::HierarchicalModel::smp_cluster(4);
        let planner = Planner::new(&model);
        let choice = planner.plan_index(18, 1, 4096);
        assert!(!matches!(choice.plan, IndexPlan::Hierarchical { .. }));
    }

    #[test]
    fn hierarchical_complexity_is_phase_sum() {
        let model = crate::cost::HierarchicalModel::smp_cluster(4);
        let planner = Planner::new(&model);
        let plan = IndexPlan::Hierarchical {
            node_size: 4,
            radix_local: 2,
            radix_remote: 2,
        };
        let c = planner.index_complexity(&plan, 16, 1, 8);
        let local = RadixDecomposition::new(4, 2).complexity(4 * 8, 1);
        let remote = RadixDecomposition::new(4, 2).complexity(4 * 8, 1);
        assert_eq!(c, local + remote);
        // Degenerate hierarchies collapse to the flat schedule.
        let degen = IndexPlan::Hierarchical {
            node_size: 16,
            radix_local: 2,
            radix_remote: 3,
        };
        assert_eq!(
            planner.index_complexity(&degen, 16, 1, 8),
            RadixDecomposition::new(16, 3).complexity(8, 1)
        );
    }

    #[test]
    fn concat_prefers_circulant_over_ring() {
        // The circulant algorithm is round-optimal; the ring only ties it
        // at n = 2.
        let model = LinearModel::sp1();
        let planner = Planner::new(&model);
        for n in [2usize, 5, 8, 16] {
            let choice = planner.plan_concat(n, 1, 256);
            assert!(
                matches!(choice.plan, ConcatPlan::Bruck(_)),
                "n={n}: {:?}",
                choice.plan
            );
        }
    }

    #[test]
    fn concat_ring_wins_when_startup_is_free_and_bytes_tie() {
        // With b large and β = 0, time is pure C2; the ring moves
        // (n-1)·b which the circulant algorithm also cannot beat
        // (Proposition 2.3 lower bound), so predicted times tie or the
        // circulant wins — the planner must still produce a valid plan.
        let model = LinearModel::new(0.0, 1e-6);
        let planner = Planner::new(&model);
        let choice = planner.plan_concat(6, 1, 4096);
        assert!(choice.predicted_time <= model.estimate(Complexity::new(5, 5 * 4096)));
    }

    #[test]
    fn concat_complexity_small_n_single_round() {
        let model = LinearModel::sp1();
        let planner = Planner::new(&model);
        for k in 1..4usize {
            for n in 2..=k + 1 {
                let c = planner.concat_complexity(&ConcatPlan::Bruck(Preference::Rounds), n, k, 10);
                assert_eq!(c, Complexity::new(1, 10), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn trivial_sizes() {
        let model = LinearModel::sp1();
        let planner = Planner::new(&model);
        assert_eq!(planner.plan_index(1, 1, 64).predicted_time, 0.0);
        assert_eq!(planner.plan_concat(1, 2, 64).predicted_time, 0.0);
        assert_eq!(planner.plan_concat(8, 2, 0).predicted_time, 0.0);
    }

    /// A uniform matrix with every off-diagonal entry `b`.
    fn uniform_matrix(n: usize, b: u64) -> Vec<u64> {
        let mut m = vec![b; n * n];
        for i in 0..n {
            m[i * n + i] = 0;
        }
        m
    }

    #[test]
    fn vindex_uniform_padded_matches_uniform_index() {
        let model = LinearModel::sp1();
        let planner = Planner::new(&model);
        for n in [4usize, 8, 13] {
            for k in [1usize, 2] {
                let sizes = uniform_matrix(n, 64);
                for r in 2..=n {
                    let c =
                        planner.vindex_complexity(&VIndexPlan::Padded { radix: r }, n, k, &sizes);
                    assert_eq!(c, index_complexity_kport(n, r, 64, k), "n={n} k={k} r={r}");
                }
            }
        }
    }

    #[test]
    fn vindex_direct_matches_uniform_direct() {
        let model = LinearModel::sp1();
        let planner = Planner::new(&model);
        for n in [2usize, 5, 8] {
            for k in [1usize, 2, 3] {
                let sizes = uniform_matrix(n, 100);
                let c = planner.vindex_complexity(&VIndexPlan::Direct, n, k, &sizes);
                assert_eq!(c.c1, ((n - 1) as u64).div_ceil(k as u64), "n={n} k={k}");
                assert_eq!(c.c2, c.c1 * 100, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn vindex_two_phase_degenerates_at_extremes() {
        let model = LinearModel::sp1();
        let planner = Planner::new(&model);
        let sizes = uniform_matrix(8, 64);
        // Quota 0 ≡ direct; quota ≥ max ≡ padded.
        let zero =
            planner.vindex_complexity(&VIndexPlan::TwoPhase { radix: 2, quota: 0 }, 8, 2, &sizes);
        assert_eq!(
            zero,
            planner.vindex_complexity(&VIndexPlan::Direct, 8, 2, &sizes)
        );
        let full = planner.vindex_complexity(
            &VIndexPlan::TwoPhase {
                radix: 2,
                quota: 64,
            },
            8,
            2,
            &sizes,
        );
        assert_eq!(
            full,
            planner.vindex_complexity(&VIndexPlan::Padded { radix: 2 }, 8, 2, &sizes)
        );
    }

    #[test]
    fn plan_vindex_low_skew_avoids_direct_on_tiny_blocks() {
        // β-dominated uniform traffic: the log-round padded (or
        // two-phase) plan must beat the ⌈(n-1)/k⌉-round direct plan.
        let model = LinearModel::new(1e-3, 1e-12);
        let planner = Planner::new(&model);
        let sizes = uniform_matrix(16, 8);
        let choice = planner.plan_vindex(16, 2, &sizes);
        assert_ne!(choice.plan, VIndexPlan::Direct, "got {:?}", choice.plan);
    }

    #[test]
    fn plan_vindex_high_skew_picks_direct() {
        // One hot pair dominating the volume under a τ-dominated model:
        // padding would multiply the hot size by every relay hop.
        let model = LinearModel::new(1e-9, 1e-3);
        let planner = Planner::new(&model);
        let mut sizes = uniform_matrix(8, 16);
        sizes[1] = 1 << 20; // 0 → 1 is hot
        let choice = planner.plan_vindex(8, 2, &sizes);
        assert_eq!(choice.plan, VIndexPlan::Direct, "got {:?}", choice.plan);
    }

    #[test]
    fn plan_vindex_beats_every_member_it_considers() {
        let model = LinearModel::sp1();
        let planner = Planner::new(&model);
        let mut sizes = uniform_matrix(8, 256);
        sizes[2] = 8192;
        sizes[8 + 3] = 0;
        let choice = planner.plan_vindex(8, 2, &sizes);
        for plan in [
            VIndexPlan::Direct,
            VIndexPlan::Padded { radix: 2 },
            VIndexPlan::TwoPhase {
                radix: 2,
                quota: 256,
            },
        ] {
            let t = model.estimate(planner.vindex_complexity(&plan, 8, 2, &sizes));
            assert!(
                choice.predicted_time <= t,
                "{:?} beat the arg-min {:?}",
                plan,
                choice.plan
            );
        }
    }

    #[test]
    fn skew_ratio_statistics() {
        let n = 4;
        assert_eq!(skew_ratio(n, &uniform_matrix(n, 64)), 1.0);
        assert_eq!(skew_ratio(n, &uniform_matrix(n, 0)), 1.0);
        assert_eq!(skew_ratio(1, &[123]), 1.0);
        let mut hot = uniform_matrix(n, 10);
        hot[1] = 100;
        let ratio = skew_ratio(n, &hot);
        assert!(ratio > 4.0 && ratio < 6.0, "got {ratio}");
    }

    #[test]
    fn quota_candidates_are_strictly_interior() {
        let mut sizes = uniform_matrix(4, 10);
        sizes[1] = 1000;
        for q in quota_candidates(4, &sizes) {
            assert!(q > 0 && q < 1000, "quota {q} out of the open interval");
        }
        // A uniform matrix has no interior candidate (mean = median = max).
        assert!(quota_candidates(4, &uniform_matrix(4, 10)).is_empty());
        assert!(quota_candidates(1, &[0]).is_empty());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(IndexPlan::Radix(3).label(), "bruck-r3");
        assert_eq!(IndexPlan::Direct.label(), "direct");
        assert_eq!(IndexPlan::Hypercube.label(), "hypercube");
        assert_eq!(IndexPlan::Mixed(vec![2, 3]).label(), "mixed-r(2,3)");
        assert_eq!(VIndexPlan::Direct.label(), "v-direct");
        assert_eq!(VIndexPlan::Padded { radix: 4 }.label(), "v-padded-r4");
        assert_eq!(
            VIndexPlan::TwoPhase {
                radix: 2,
                quota: 96
            }
            .label(),
            "v-twophase-r2-q96"
        );
        assert_eq!(ConcatPlan::Ring.label(), "ring");
        assert_eq!(
            ConcatPlan::Bruck(Preference::Rounds).label(),
            "bruck-circulant"
        );
    }

    #[test]
    fn effective_radix() {
        assert_eq!(IndexPlan::Radix(4).radix(8), Some(4));
        assert_eq!(IndexPlan::Direct.radix(8), Some(8));
        assert_eq!(IndexPlan::Hypercube.radix(8), Some(2));
        assert_eq!(IndexPlan::Mixed(vec![2, 2]).radix(8), None);
    }
}

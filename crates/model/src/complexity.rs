//! The two complexity measures of §1.2.
//!
//! * `C1` — the number of communication rounds. Dominant when the start-up
//!   time is high relative to the per-byte transfer time and messages are
//!   small.
//! * `C2` — the amount of data transferred *in sequence*: per round, take
//!   the largest message sent over any port of any processor; `C2` is the
//!   sum of these maxima over all rounds. Dominant when start-up is cheap
//!   and messages are large.
//!
//! Under the linear model an algorithm's estimated time is
//! `T = C1·β + C2·τ`.

use core::fmt;
use core::ops::Add;

/// A `(C1, C2)` complexity pair. `C2` is measured in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Complexity {
    /// Number of communication rounds.
    pub c1: u64,
    /// Sum over rounds of the largest single message (bytes).
    pub c2: u64,
}

impl Complexity {
    /// A zero-cost (empty) complexity.
    pub const ZERO: Self = Self { c1: 0, c2: 0 };

    /// Construct from round count and sequential byte count.
    #[must_use]
    pub const fn new(c1: u64, c2: u64) -> Self {
        Self { c1, c2 }
    }

    /// Accumulate one more round whose largest message is `max_bytes`.
    #[must_use]
    pub const fn plus_round(self, max_bytes: u64) -> Self {
        Self {
            c1: self.c1 + 1,
            c2: self.c2 + max_bytes,
        }
    }

    /// Estimated time under the linear model: `C1·startup + C2·per_byte`.
    #[must_use]
    pub fn linear_time(&self, startup: f64, per_byte: f64) -> f64 {
        self.c1 as f64 * startup + self.c2 as f64 * per_byte
    }

    /// Component-wise `≤` — useful for asserting an algorithm meets a bound
    /// in both measures simultaneously.
    #[must_use]
    pub fn dominated_by(&self, other: &Self) -> bool {
        self.c1 <= other.c1 && self.c2 <= other.c2
    }
}

impl Add for Complexity {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            c1: self.c1 + rhs.c1,
            c2: self.c2 + rhs.c2,
        }
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C1={} rounds, C2={} bytes", self.c1, self.c2)
    }
}

/// Per-round maxima folded into a [`Complexity`].
///
/// `round_maxima[i]` must be the size in bytes of the largest message (over
/// all ports of all processors) sent in round `i`.
#[must_use]
pub fn from_round_maxima(round_maxima: &[u64]) -> Complexity {
    Complexity {
        c1: round_maxima.len() as u64,
        c2: round_maxima.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_rounds() {
        let c = Complexity::ZERO.plus_round(10).plus_round(20).plus_round(5);
        assert_eq!(c, Complexity::new(3, 35));
    }

    #[test]
    fn linear_time_matches_formula() {
        let c = Complexity::new(6, 320);
        let t = c.linear_time(29e-6, 0.12e-6);
        assert!((t - (6.0 * 29e-6 + 320.0 * 0.12e-6)).abs() < 1e-15);
    }

    #[test]
    fn from_maxima() {
        assert_eq!(from_round_maxima(&[4, 4, 8]), Complexity::new(3, 16));
        assert_eq!(from_round_maxima(&[]), Complexity::ZERO);
    }

    #[test]
    fn domination_is_componentwise() {
        assert!(Complexity::new(3, 10).dominated_by(&Complexity::new(3, 10)));
        assert!(Complexity::new(2, 10).dominated_by(&Complexity::new(3, 11)));
        assert!(!Complexity::new(4, 10).dominated_by(&Complexity::new(3, 11)));
        assert!(!Complexity::new(2, 12).dominated_by(&Complexity::new(3, 11)));
    }

    #[test]
    fn add_sums_components() {
        let total = Complexity::new(2, 100) + Complexity::new(1, 7);
        assert_eq!(total, Complexity::new(3, 107));
    }
}

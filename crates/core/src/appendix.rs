//! Line-faithful ports of the paper's Appendix A and Appendix B
//! pseudocode (the one-port `index` and `concat` functions as shipped in
//! IBM's CCL/EUI), kept deliberately close to the paper's structure —
//! same variable names, same loop shape, same `pack`/`unpack`/`copy`/
//! `mod`/`getrank` helpers — and tested equivalent to the idiomatic
//! implementations in [`crate::index::bruck`] and [`crate::concat::bruck`].
//!
//! Like the paper's code, these operate on a *process array* `A`: a list
//! of processor ids such that `A[i] = p_i`. That is the 1994 spelling of
//! a process group; [`bruck_net::Group`] is the modern one.

use bruck_net::{Comm, NetError};

/// The paper's `mod(x, y)`: remainder in `[0, y)` even for negative `x`.
fn pmod(x: i64, y: i64) -> usize {
    debug_assert!(y > 0);
    (((x % y) + y) % y) as usize
}

/// The paper's `getrank(id, n, A)`: the index `i` with `A[i] == id`.
fn getrank(id: usize, a: &[usize]) -> Result<usize, NetError> {
    a.iter()
        .position(|&p| p == id)
        .ok_or_else(|| NetError::App(format!("processor {id} is not in the process array")))
}

/// The paper's `copy(A, B, len)` is `B[..len].copy_from_slice(&A[..len])`
/// at call sites; `pack` selects the blocks whose `i`-th radix-`r` digit
/// equals `j` (Appendix A's description).
fn pack(tmp: &[u8], blklen: usize, n: usize, r: usize, i: u32, j: usize) -> (Vec<u8>, usize) {
    let mut packed = Vec::new();
    let mut nblocks = 0;
    let weight = r.pow(i);
    for blk in 0..n {
        if (blk / weight) % r == j {
            packed.extend_from_slice(&tmp[blk * blklen..(blk + 1) * blklen]);
            nblocks += 1;
        }
    }
    (packed, nblocks)
}

/// Inverse of [`pack`].
fn unpack(msg: &[u8], tmp: &mut [u8], blklen: usize, n: usize, r: usize, i: u32, j: usize) {
    let weight = r.pow(i);
    let mut slot = 0usize;
    for blk in 0..n {
        if (blk / weight) % r == j {
            tmp[blk * blklen..(blk + 1) * blklen]
                .copy_from_slice(&msg[slot * blklen..(slot + 1) * blklen]);
            slot += 1;
        }
    }
}

/// Appendix A: `index(outmsg, blklen, inmsg, n, A, r)` — the one-port
/// radix-`r` index operation over the process array `A`.
///
/// `outmsg` is the `n·blklen`-byte send buffer (block `i` destined for
/// `A[i]`); the returned `inmsg` holds block `i` from `A[i]`. `my_pid` is
/// this caller's processor id (the paper's `my_pid`).
///
/// # Errors
///
/// [`NetError::App`] if `my_pid ∉ A` or sizes mismatch.
#[allow(clippy::many_single_char_names)]
pub fn index_appendix_a<C: Comm + ?Sized>(
    ep: &mut C,
    outmsg: &[u8],
    blklen: usize,
    a: &[usize],
    r: usize,
) -> Result<Vec<u8>, NetError> {
    let n = a.len();
    if outmsg.len() != n * blklen {
        return Err(NetError::App("outmsg must be n·blklen bytes".into()));
    }
    if r < 2 {
        return Err(NetError::App("radix must be ≥ 2".into()));
    }
    if n == 1 {
        return Ok(outmsg.to_vec());
    }
    let r = r.min(n);
    // (1) w = ⌈log_r n⌉
    let w = bruck_model::radix::ceil_log(r, n);
    // (2) my_rank = getrank(my_pid, n, A)
    let my_rank = getrank(ep.rank(), a)?;

    // (3)–(4) phase 1: tmp = outmsg rotated up by my_rank.
    let mut tmp = vec![0u8; n * blklen];
    tmp[..(n - my_rank) * blklen].copy_from_slice(&outmsg[my_rank * blklen..]);
    tmp[(n - my_rank) * blklen..].copy_from_slice(&outmsg[..my_rank * blklen]);

    // (5)–(20) phase 2.
    let mut dist = 1usize;
    for i in 0..w {
        // (7)–(11): the last subphase has ⌈n / r^{w-1}⌉ - 1 steps.
        let h = if i == w - 1 {
            n.div_ceil(r.pow(w - 1)) - 1
        } else {
            r - 1
        };
        for j in 1..=h {
            // (13)–(14)
            let dest_rank = pmod(my_rank as i64 + (j * dist) as i64, n as i64);
            let src_rank = pmod(my_rank as i64 - (j * dist) as i64, n as i64);
            // (15) pack
            let (packed_msg, nblocks) = pack(&tmp, blklen, n, r, i, j);
            debug_assert!(nblocks > 0);
            // (16) send_and_recv
            let received = ep.send_and_recv(
                a[dest_rank],
                &packed_msg,
                a[src_rank],
                (u64::from(i) << 32) | j as u64,
            )?;
            if received.len() != packed_msg.len() {
                return Err(NetError::App("appendix-A message size mismatch".into()));
            }
            // (17) unpack
            unpack(&received, &mut tmp, blklen, n, r, i, j);
        }
        // (19)
        dist *= r;
    }

    // (21)–(23) phase 3: inmsg[i] = tmp[mod(my_rank - i, n)].
    let mut inmsg = vec![0u8; n * blklen];
    for i in 0..n {
        let src = pmod(my_rank as i64 - i as i64, n as i64);
        inmsg[i * blklen..(i + 1) * blklen].copy_from_slice(&tmp[src * blklen..(src + 1) * blklen]);
    }
    Ok(inmsg)
}

/// Appendix B: `concat(outmsg, len, inmsg, n, A)` — the one-port
/// concatenation over the process array `A`.
///
/// Note the paper's convention here: the spanning trees are grown with
/// *negative* offsets (left rotations), so data is sent to
/// `my_rank - nblk` and the result accumulates below `my_rank`; lines
/// (17)–(18) rotate the temp buffer so `inmsg` begins with `B[0]`.
///
/// # Errors
///
/// [`NetError::App`] if `my_pid ∉ A`.
pub fn concat_appendix_b<C: Comm + ?Sized>(
    ep: &mut C,
    outmsg: &[u8],
    a: &[usize],
) -> Result<Vec<u8>, NetError> {
    let n = a.len();
    let len = outmsg.len();
    if n == 1 {
        return Ok(outmsg.to_vec());
    }
    // (1) d = ⌈log2 n⌉  (2) my_rank
    let d = bruck_model::radix::ceil_log(2, n);
    let my_rank = getrank(ep.rank(), a)?;
    // (3)–(5)
    let mut temp = vec![0u8; n * len];
    temp[..len].copy_from_slice(outmsg);
    let mut nblk = 1usize;
    let mut current_len = len;

    // (6)–(12): the first d-1 doubling rounds.
    for i in 0..d.saturating_sub(1) {
        // (7)–(8)
        let dest_rank = pmod(my_rank as i64 - nblk as i64, n as i64);
        let src_rank = pmod(my_rank as i64 + nblk as i64, n as i64);
        // (9) send_and_recv of the current prefix.
        let payload = temp[..current_len].to_vec();
        let received = ep.send_and_recv(a[dest_rank], &payload, a[src_rank], u64::from(i))?;
        if received.len() != current_len {
            return Err(NetError::App("appendix-B phase-1 size mismatch".into()));
        }
        temp[current_len..2 * current_len].copy_from_slice(&received);
        // (10)–(11)
        nblk *= 2;
        current_len *= 2;
    }

    // (13)–(16): the last (possibly partial) round.
    let last_len = len * (n - nblk);
    if last_len > 0 {
        let dest_rank = pmod(my_rank as i64 - nblk as i64, n as i64);
        let src_rank = pmod(my_rank as i64 + nblk as i64, n as i64);
        let payload = temp[..last_len].to_vec();
        let received = ep.send_and_recv(a[dest_rank], &payload, a[src_rank], u64::from(d))?;
        if received.len() != last_len {
            return Err(NetError::App("appendix-B last-round size mismatch".into()));
        }
        temp[nblk * len..nblk * len + last_len].copy_from_slice(&received);
    }

    // (17)–(18): rotate so that inmsg starts with block 0. With negative
    // offsets, temp[j] holds the block of rank (my_rank + j) mod n, so
    // block 0 sits at offset (n - my_rank) mod n.
    let mut inmsg = vec![0u8; n * len];
    let start = pmod(-(my_rank as i64), n as i64);
    inmsg[..(n - start) * len].copy_from_slice(&temp[start * len..n * len]);
    inmsg[(n - start) * len..].copy_from_slice(&temp[..start * len]);
    Ok(inmsg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_net::{Cluster, ClusterConfig};

    #[test]
    fn pmod_handles_negatives() {
        assert_eq!(pmod(-1, 5), 4);
        assert_eq!(pmod(-7, 5), 3);
        assert_eq!(pmod(7, 5), 2);
        assert_eq!(pmod(0, 5), 0);
    }

    #[test]
    fn appendix_a_matches_oracle() {
        for n in [2usize, 3, 5, 8, 11] {
            for r in [2usize, 3, n] {
                let a: Vec<usize> = (0..n).collect();
                let cfg = ClusterConfig::new(n);
                let out = Cluster::run(&cfg, |ep| {
                    let input = crate::verify::index_input(ep.rank(), n, 3);
                    index_appendix_a(ep, &input, 3, &a, r)
                })
                .unwrap();
                for (rank, result) in out.results.iter().enumerate() {
                    assert_eq!(
                        result,
                        &crate::verify::index_expected(rank, n, 3),
                        "n={n} r={r} rank={rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn appendix_a_matches_idiomatic_rounds() {
        // Same wire behaviour as crate::index::bruck in the one-port case.
        let n = 13;
        let r = 3;
        let a: Vec<usize> = (0..n).collect();
        let cfg = ClusterConfig::new(n);
        let apdx = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, 2);
            index_appendix_a(ep, &input, 2, &a, r)
        })
        .unwrap();
        let idio = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, 2);
            crate::index::bruck::run(ep, &input, 2, r)
        })
        .unwrap();
        assert_eq!(apdx.results, idio.results);
        assert_eq!(
            apdx.metrics.global_complexity(),
            idio.metrics.global_complexity()
        );
    }

    #[test]
    fn appendix_a_over_permuted_process_array() {
        // The process array maps logical ranks to arbitrary processor
        // ids — the paper's groups-avant-la-lettre.
        let n = 6;
        let a = vec![4usize, 2, 0, 5, 1, 3];
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let my_rank = a.iter().position(|&p| p == ep.rank()).unwrap();
            let input = crate::verify::index_input(my_rank, n, 2);
            let result = index_appendix_a(ep, &input, 2, &a, 2)?;
            Ok((my_rank, result))
        })
        .unwrap();
        for (my_rank, result) in &out.results {
            assert_eq!(result, &crate::verify::index_expected(*my_rank, n, 2));
        }
    }

    #[test]
    fn appendix_b_matches_oracle() {
        for n in [2usize, 3, 5, 8, 13, 16] {
            let a: Vec<usize> = (0..n).collect();
            let cfg = ClusterConfig::new(n);
            let out = Cluster::run(&cfg, |ep| {
                let input = crate::verify::concat_input(ep.rank(), 4);
                concat_appendix_b(ep, &input, &a)
            })
            .unwrap();
            let expected = crate::verify::concat_expected(n, 4);
            for (rank, result) in out.results.iter().enumerate() {
                assert_eq!(result, &expected, "n={n} rank={rank}");
            }
        }
    }

    #[test]
    fn appendix_b_complexity_matches_idiomatic() {
        // d rounds, C2 = ⌈b(n-1)⌉ — same as the k=1 circulant algorithm.
        let n = 11;
        let b = 3;
        let a: Vec<usize> = (0..n).collect();
        let cfg = ClusterConfig::new(n);
        let apdx = Cluster::run(&cfg, |ep| {
            let input = crate::verify::concat_input(ep.rank(), b);
            concat_appendix_b(ep, &input, &a)
        })
        .unwrap();
        let idio = Cluster::run(&cfg, |ep| {
            let input = crate::verify::concat_input(ep.rank(), b);
            crate::concat::bruck::run(ep, &input, Default::default())
        })
        .unwrap();
        assert_eq!(
            apdx.metrics.global_complexity(),
            idio.metrics.global_complexity()
        );
    }

    #[test]
    fn unknown_pid_rejected() {
        let cfg = ClusterConfig::new(3);
        let err = Cluster::run(&cfg, |ep| {
            // Process array omits rank 2.
            let a = vec![0usize, 1];
            if ep.rank() == 2 {
                index_appendix_a(ep, &[0u8; 4], 2, &a, 2)
            } else {
                Ok(Vec::new())
            }
        })
        .unwrap_err();
        assert!(matches!(err, NetError::App(_)));
    }
}

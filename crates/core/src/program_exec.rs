//! Execute a lowered [`RankProgram`] over any [`Comm`].
//!
//! `bruck_model::program` lowers an [`IndexPlan`] to pure data — local
//! permutations and k-port rounds over block slots. This module is the
//! threaded-substrate interpreter for that data: each op maps onto the
//! same [`Comm`] surface the hand-written executors use (`round_gather`
//! for the exchanges, pooled scratch for the permutes), so a program runs
//! on a full [`Endpoint`](bruck_net::Endpoint), on a
//! [`GroupComm`](bruck_net::GroupComm), or on any future context — and
//! the event-driven TCP executor in `bruck-net` interprets the *same*
//! programs without threads. One lowering, two substrates, bit-identical
//! results; the integration tests assert exactly that.

use bruck_model::planner::IndexPlan;
use bruck_model::program::{ProgramOp, RankProgram};
use bruck_net::{Comm, GatherSendSpec, NetError, RecvSpec};

use crate::blocks::{gather_spans, unpack_spans};

/// Lower `plan` for this rank and execute it (see [`run_program_into`]).
///
/// # Errors
///
/// [`NetError::App`] when the plan has no lowering (mixed radices, a
/// `node_size` that does not divide `n`) or on buffer-size mismatches;
/// network failures propagate.
pub fn run_plan_into<C: Comm + ?Sized>(
    ep: &mut C,
    plan: &IndexPlan,
    sendbuf: &[u8],
    block: usize,
    out: &mut [u8],
) -> Result<(), NetError> {
    let program =
        RankProgram::lower(plan, ep.size(), ep.rank(), block, ep.ports()).map_err(NetError::App)?;
    run_program_into(ep, &program, sendbuf, out)
}

/// Interpret one rank's program against the communication context.
///
/// # Errors
///
/// [`NetError::App`] on header or buffer-size mismatches; network
/// failures propagate.
pub fn run_program_into<C: Comm + ?Sized>(
    ep: &mut C,
    program: &RankProgram,
    sendbuf: &[u8],
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = program.n;
    let block = program.block;
    if ep.size() != n || ep.rank() != program.rank {
        return Err(NetError::App(format!(
            "program for rank {}/{} run on rank {}/{}",
            program.rank,
            n,
            ep.rank(),
            ep.size()
        )));
    }
    if sendbuf.len() != n * block || out.len() != n * block {
        return Err(NetError::App(format!(
            "program buffers must be n·b = {} bytes (send {}, out {})",
            n * block,
            sendbuf.len(),
            out.len()
        )));
    }
    if n == 1 {
        out.copy_from_slice(sendbuf);
        return Ok(());
    }
    let mut work = ep.acquire(n * block);
    work[..n * block].copy_from_slice(sendbuf);
    let mut scratch = ep.acquire(n * block);
    for op in &program.ops {
        match op {
            ProgramOp::Permute(perm) => {
                if perm.len() != n {
                    return Err(NetError::App(format!(
                        "permute of length {} in an n = {n} program",
                        perm.len()
                    )));
                }
                for (i, &src) in perm.iter().enumerate() {
                    scratch[i * block..(i + 1) * block]
                        .copy_from_slice(&work[src * block..(src + 1) * block]);
                }
                std::mem::swap(&mut work, &mut scratch);
                ep.charge_copy((n * block) as u64);
            }
            ProgramOp::Round(round) => {
                let send_spans: Vec<Vec<(usize, usize)>> = round
                    .sends
                    .iter()
                    .map(|s| gather_spans(&s.slots, block))
                    .collect();
                let sends: Vec<GatherSendSpec<'_>> = round
                    .sends
                    .iter()
                    .zip(&send_spans)
                    .map(|(s, spans)| GatherSendSpec {
                        to: s.peer,
                        tag: s.tag,
                        src: &work,
                        spans,
                    })
                    .collect();
                let recvs: Vec<RecvSpec> = round
                    .recvs
                    .iter()
                    .map(|r| RecvSpec {
                        from: r.peer,
                        tag: r.tag,
                    })
                    .collect();
                let msgs = ep.round_gather(&sends, &recvs)?;
                let mut received = 0u64;
                for (r, msg) in round.recvs.iter().zip(&msgs) {
                    let spans = gather_spans(&r.slots, block);
                    if msg.payload.len() != r.slots.len() * block {
                        return Err(NetError::App(format!(
                            "rank {} tag {}: {} payload bytes for {} slots",
                            program.rank,
                            r.tag,
                            msg.payload.len(),
                            r.slots.len()
                        )));
                    }
                    unpack_spans(&mut work, &spans, &msg.payload);
                    received += msg.payload.len() as u64;
                }
                ep.charge_copy(received);
                for msg in msgs {
                    ep.recycle(msg.payload);
                }
            }
        }
    }
    out.copy_from_slice(&work[..n * block]);
    ep.charge_copy((n * block) as u64);
    ep.recycle(work);
    ep.recycle(scratch);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use bruck_net::{Cluster, ClusterConfig};

    fn run_plan(plan: &IndexPlan, n: usize, block: usize, ports: usize) -> Vec<Vec<u8>> {
        let cfg = ClusterConfig::new(n).with_ports(ports);
        let label = plan.label();
        Cluster::run(&cfg, |ep| {
            let input = verify::index_input(ep.rank(), n, block);
            let mut out = vec![0u8; n * block];
            run_plan_into(ep, plan, &input, block, &mut out)?;
            Ok(out)
        })
        .unwrap_or_else(|e| panic!("{label} n={n} b={block} k={ports}: {e}"))
        .results
    }

    #[test]
    fn programs_match_oracle_on_the_threaded_substrate() {
        for &(n, k) in &[(5usize, 1usize), (8, 2), (12, 1)] {
            for plan in [IndexPlan::Radix(2), IndexPlan::Radix(3), IndexPlan::Direct] {
                let results = run_plan(&plan, n, 3, k);
                for (rank, r) in results.iter().enumerate() {
                    assert_eq!(
                        r,
                        &verify::index_expected(rank, n, 3),
                        "{} n={n} k={k} rank={rank}",
                        plan.label()
                    );
                }
            }
        }
    }

    #[test]
    fn hierarchical_program_matches_oracle_and_dedicated_executor() {
        let n = 12;
        let block = 4;
        let plan = IndexPlan::Hierarchical {
            node_size: 3,
            radix_local: 2,
            radix_remote: 2,
        };
        let via_program = run_plan(&plan, n, block, 1);
        let cfg = ClusterConfig::new(n);
        let dedicated = Cluster::run(&cfg, move |ep| {
            let input = verify::index_input(ep.rank(), n, block);
            crate::index::hierarchical::run(ep, &input, block, 3, 2, 2)
        })
        .unwrap()
        .results;
        for (rank, (a, b)) in via_program.iter().zip(&dedicated).enumerate() {
            assert_eq!(a, &verify::index_expected(rank, n, block), "rank {rank}");
            assert_eq!(a, b, "program vs dedicated executor, rank {rank}");
        }
    }

    #[test]
    fn unlowerable_plan_is_a_clean_error() {
        let cfg = ClusterConfig::new(4);
        let err = Cluster::run(&cfg, |ep| {
            let input = verify::index_input(ep.rank(), 4, 2);
            let mut out = vec![0u8; 8];
            run_plan_into(ep, &IndexPlan::Mixed(vec![2, 2]), &input, 2, &mut out)
        })
        .unwrap_err();
        assert!(matches!(err, NetError::App(_)), "{err}");
    }
}

//! High-level tuned entry points — the `MPI_Alltoall` / `MPI_Allgather`
//! equivalents a downstream application calls.
//!
//! The paper's §3.3: "r can be fine-tuned according to the parameters of
//! the underlying machines to balance between the start-up time and the
//! data transfer time". [`alltoall`] does exactly that: given a cost
//! model, it evaluates the closed-form complexity of every candidate
//! radix and runs the predicted-time minimizer.

use std::sync::Arc;
use std::time::Duration;

use bruck_model::cost::{CostModel, LinearModel};
use bruck_model::partition::Preference;
use bruck_model::planner::{ConcatPlan, IndexPlan, PlanChoice, Planner};
use bruck_model::tuning::{all_radices, best_radix, RadixChoice};
use bruck_net::{Comm, Endpoint, Group, NetError, RecoveryPolicy};

use crate::concat::ConcatAlgorithm;
use crate::index::IndexAlgorithm;

/// Tuning knobs for the high-level operations.
///
/// Construct via [`Tuning::default`] or, to override fields, the builder:
///
/// ```
/// use bruck_collectives::api::Tuning;
///
/// let tuning = Tuning::builder().radix(4).build();
/// assert_eq!(tuning.radix, Some(4));
/// ```
///
/// The struct is `#[non_exhaustive]`: new knobs may be added without a
/// breaking release, so downstream crates must go through the builder
/// (or `Default`) rather than a struct literal.
#[derive(Clone)]
#[non_exhaustive]
pub struct Tuning {
    /// Cost model used to select the index radix.
    pub model: Arc<dyn CostModel>,
    /// Force a specific radix instead of auto-tuning.
    pub radix: Option<usize>,
    /// Preference inside the concatenation exception range.
    pub concat_preference: Preference,
    /// Dispatch through the full [`Planner`] family (uniform radices,
    /// direct, hypercube, mixed radix) instead of the uniform-radix
    /// search only. Ignored when [`radix`](Self::radix) is forced.
    pub planner: bool,
    /// Force a non-uniform family member for
    /// [`alltoallv_into`](crate::vops::alltoallv_into) instead of the
    /// planner's skew-driven arg-min.
    pub vmethod: Option<crate::vbruck::VMethod>,
}

/// Incremental constructor for [`Tuning`], starting from the defaults.
///
/// Obtained from [`Tuning::builder`]; finish with
/// [`build`](TuningBuilder::build).
#[derive(Clone, Debug)]
pub struct TuningBuilder {
    inner: Tuning,
}

impl TuningBuilder {
    /// Set the cost model used to select the index radix.
    #[must_use]
    pub fn model(mut self, model: Arc<dyn CostModel>) -> Self {
        self.inner.model = model;
        self
    }

    /// Force a specific radix instead of auto-tuning.
    #[must_use]
    pub fn radix(mut self, radix: usize) -> Self {
        self.inner.radix = Some(radix);
        self
    }

    /// Return to auto-tuned radix selection (the default).
    #[must_use]
    pub fn auto_radix(mut self) -> Self {
        self.inner.radix = None;
        self
    }

    /// Set the preference inside the concatenation exception range.
    #[must_use]
    pub fn concat_preference(mut self, pref: Preference) -> Self {
        self.inner.concat_preference = pref;
        self
    }

    /// Enable (or disable) full planner dispatch — see [`Tuning::auto`].
    #[must_use]
    pub fn planner(mut self, enabled: bool) -> Self {
        self.inner.planner = enabled;
        self
    }

    /// Force a non-uniform family member (direct, padded Bruck, or
    /// two-phase Bruck) for the v-ops instead of skew-driven dispatch.
    #[must_use]
    pub fn vmethod(mut self, method: crate::vbruck::VMethod) -> Self {
        self.inner.vmethod = Some(method);
        self
    }

    /// Finish, yielding the configured [`Tuning`].
    #[must_use]
    pub fn build(self) -> Tuning {
        self.inner
    }
}

impl Default for Tuning {
    /// SP-1 linear parameters, auto radix, round-preserving concatenation.
    fn default() -> Self {
        Self {
            model: Arc::new(LinearModel::sp1()),
            radix: None,
            concat_preference: Preference::Rounds,
            planner: false,
            vmethod: None,
        }
    }
}

impl core::fmt::Debug for Tuning {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Tuning")
            .field("model", &self.model.name())
            .field("radix", &self.radix)
            .field("concat_preference", &self.concat_preference)
            .field("planner", &self.planner)
            .field("vmethod", &self.vmethod)
            .finish()
    }
}

impl Tuning {
    /// Start building a `Tuning` from the default configuration.
    #[must_use]
    pub fn builder() -> TuningBuilder {
        TuningBuilder {
            inner: Self::default(),
        }
    }

    /// A tuning that dispatches through the full [`Planner`] family under
    /// the given cost model: every uniform radix `r ∈ [2, n]`, the direct
    /// exchange, the hypercube (where it applies), and mixed-radix
    /// vectors. Pair with a model fitted by
    /// [`autotune`](crate::autotune) against the live transport.
    #[must_use]
    pub fn auto(model: Arc<dyn CostModel>) -> Self {
        Self {
            model,
            radix: None,
            concat_preference: Preference::Rounds,
            planner: true,
            vmethod: None,
        }
    }

    /// The index plan [`alltoall`] will execute for `n` ranks, `b`-byte
    /// blocks, and `k` ports under this tuning. A forced radix always
    /// wins; otherwise the full planner family is searched when
    /// [`planner`](Self::planner) is set, and the uniform radices only
    /// when it is not.
    #[must_use]
    pub fn chosen_plan(&self, n: usize, block: usize, ports: usize) -> PlanChoice<IndexPlan> {
        if let Some(r) = self.radix {
            let r = r.clamp(2, n.max(2));
            let complexity = bruck_model::tuning::index_complexity_kport(n.max(2), r, block, ports);
            return PlanChoice {
                plan: IndexPlan::Radix(r),
                complexity,
                predicted_time: self.model.estimate(complexity),
            };
        }
        if self.planner {
            Planner::new(self.model.as_ref()).plan_index(n, ports, block)
        } else {
            let choice = best_radix(n, block, ports, self.model.as_ref(), all_radices(n));
            PlanChoice {
                plan: IndexPlan::Radix(choice.radix),
                complexity: choice.complexity,
                predicted_time: choice.predicted_time,
            }
        }
    }

    /// The radix [`alltoall`] will use for `n` ranks, `b`-byte blocks, and
    /// `k` ports under this tuning.
    #[must_use]
    pub fn chosen_radix(&self, n: usize, block: usize, ports: usize) -> RadixChoice {
        match self.radix {
            Some(r) => {
                let complexity = bruck_model::tuning::index_complexity_kport(
                    n.max(2),
                    r.clamp(2, n.max(2)),
                    block,
                    ports,
                );
                RadixChoice {
                    radix: r.clamp(2, n.max(2)),
                    complexity,
                    predicted_time: self.model.estimate(complexity),
                }
            }
            None => best_radix(n, block, ports, self.model.as_ref(), all_radices(n)),
        }
    }
}

/// All-to-all personalized communication with an auto-tuned radix.
///
/// `sendbuf` holds `n` blocks of `block` bytes (block `j` destined for
/// rank `j`); the result holds block `j` *from* rank `j`.
///
/// # Example
///
/// ```
/// use bruck_collectives::api::{alltoall, Tuning};
/// use bruck_net::{Cluster, ClusterConfig};
///
/// let n = 4;
/// let out = Cluster::run(&ClusterConfig::new(n), |ep| {
///     // Block j carries one byte naming the (source, destination) pair.
///     let sendbuf: Vec<u8> = (0..n).map(|j| (ep.rank() * 16 + j) as u8).collect();
///     let result = alltoall(ep, &sendbuf, 1, &Tuning::default())?;
///     // Block j of the result came *from* rank j and names us.
///     for (j, &byte) in result.iter().enumerate() {
///         assert_eq!(byte as usize, j * 16 + ep.rank());
///     }
///     Ok(())
/// })
/// .unwrap();
/// assert_eq!(out.results.len(), n);
/// ```
///
/// # Errors
///
/// See [`IndexAlgorithm::run`].
pub fn alltoall<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    tuning: &Tuning,
) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; sendbuf.len()];
    alltoall_into(ep, sendbuf, block, tuning, &mut out)?;
    Ok(out)
}

/// [`alltoall`] into a caller-provided `n·b`-byte output buffer.
///
/// The zero-copy entry point: all scratch comes from the cluster's
/// buffer pool, so steady-state calls perform no heap allocations.
///
/// # Example
///
/// ```
/// use bruck_collectives::api::{alltoall_into, Tuning};
/// use bruck_net::{Cluster, ClusterConfig};
///
/// let n = 4;
/// let out = Cluster::run(&ClusterConfig::new(n), |ep| {
///     let sendbuf: Vec<u8> = (0..n).map(|j| (ep.rank() * 16 + j) as u8).collect();
///     let mut recvbuf = vec![0u8; n];
///     alltoall_into(ep, &sendbuf, 1, &Tuning::default(), &mut recvbuf)?;
///     for (j, &byte) in recvbuf.iter().enumerate() {
///         assert_eq!(byte as usize, j * 16 + ep.rank());
///     }
///     Ok(())
/// })
/// .unwrap();
/// assert_eq!(out.results.len(), n);
/// ```
///
/// # Errors
///
/// See [`IndexAlgorithm::run_into`].
pub fn alltoall_into<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    tuning: &Tuning,
    out: &mut [u8],
) -> Result<(), NetError> {
    let choice = tuning.chosen_plan(ep.size(), block, ep.ports());
    run_index_plan(ep, &choice.plan, sendbuf, block, out)
}

/// Execute a specific [`IndexPlan`] (as produced by
/// [`Tuning::chosen_plan`] or [`Planner::plan_index`]).
fn run_index_plan<C: Comm + ?Sized>(
    ep: &mut C,
    plan: &IndexPlan,
    sendbuf: &[u8],
    block: usize,
    out: &mut [u8],
) -> Result<(), NetError> {
    match plan {
        IndexPlan::Radix(r) => IndexAlgorithm::BruckRadix(*r).run_into(ep, sendbuf, block, out),
        IndexPlan::Direct => IndexAlgorithm::Direct.run_into(ep, sendbuf, block, out),
        IndexPlan::Hypercube => IndexAlgorithm::Hypercube.run_into(ep, sendbuf, block, out),
        IndexPlan::Mixed(radices) => {
            crate::index::mixed::run_into(ep, sendbuf, block, radices, out)
        }
        // The two-level plan runs through its program lowering — the
        // same ops the event-driven scale executor interprets — so the
        // planner can choose it from any Comm context (a full endpoint
        // or a survivor-group view alike).
        IndexPlan::Hierarchical { .. } => {
            crate::program_exec::run_plan_into(ep, plan, sendbuf, block, out)
        }
    }
}

/// All-to-all with full planner dispatch: evaluates the fitted cost model
/// over the whole algorithm family (every uniform radix, direct,
/// hypercube, mixed radix), runs the arg-min, and returns the result
/// alongside the [`PlanChoice`] so callers (e.g. the bench harness) can
/// report *which* schedule won and at what predicted cost.
///
/// # Errors
///
/// See [`alltoall_into`].
pub fn alltoall_auto<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    model: &dyn CostModel,
) -> Result<(Vec<u8>, PlanChoice<IndexPlan>), NetError> {
    let mut out = vec![0u8; sendbuf.len()];
    let choice = alltoall_auto_into(ep, sendbuf, block, model, &mut out)?;
    Ok((out, choice))
}

/// [`alltoall_auto`] into a caller-provided `n·b`-byte output buffer;
/// returns the executed [`PlanChoice`].
///
/// # Errors
///
/// See [`alltoall_into`].
pub fn alltoall_auto_into<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    model: &dyn CostModel,
    out: &mut [u8],
) -> Result<PlanChoice<IndexPlan>, NetError> {
    let choice = Planner::new(model).plan_index(ep.size(), ep.ports(), block);
    run_index_plan(ep, &choice.plan, sendbuf, block, out)?;
    Ok(choice)
}

/// All-to-all broadcast with planner dispatch: picks between the
/// circulant algorithm (either [`Preference`]) and the ring under the
/// fitted cost model, runs the arg-min, and returns the result alongside
/// the winning [`PlanChoice`].
///
/// # Errors
///
/// See [`allgather_into`].
pub fn allgather_auto<C: Comm + ?Sized>(
    ep: &mut C,
    myblock: &[u8],
    model: &dyn CostModel,
) -> Result<(Vec<u8>, PlanChoice<ConcatPlan>), NetError> {
    let mut out = vec![0u8; ep.size() * myblock.len()];
    let choice = allgather_auto_into(ep, myblock, model, &mut out)?;
    Ok((out, choice))
}

/// [`allgather_auto`] into a caller-provided `n·b`-byte output buffer;
/// returns the executed [`PlanChoice`].
///
/// # Errors
///
/// See [`allgather_into`].
pub fn allgather_auto_into<C: Comm + ?Sized>(
    ep: &mut C,
    myblock: &[u8],
    model: &dyn CostModel,
    out: &mut [u8],
) -> Result<PlanChoice<ConcatPlan>, NetError> {
    let choice = Planner::new(model).plan_concat(ep.size(), ep.ports(), myblock.len());
    match &choice.plan {
        ConcatPlan::Bruck(pref) => ConcatAlgorithm::Bruck(*pref).run_into(ep, myblock, out)?,
        ConcatPlan::Ring => ConcatAlgorithm::Ring.run_into(ep, myblock, out)?,
    }
    Ok(choice)
}

/// [`alltoall`] under a wall-clock completion budget: the call either
/// completes bit-correct within `budget` or fails with the structured
/// [`NetError::DeadlineExceeded`] — it can never hang. The budget is
/// armed on the context's [`Deadline`](bruck_net::Deadline) (shared with
/// the reliability sublayer, so even an ARQ-level blocking wait aborts
/// within one poll slice) and disarmed on the way out, success or
/// failure.
///
/// Before arming, the chosen plan's round count divides the budget into
/// per-round sub-budgets; when the context's adaptive RTO
/// ([`Comm::rto_hint`], warmed by calibration traffic) shows a single
/// round could not even complete one lost-frame recovery inside its
/// sub-budget, the call fails fast instead of burning the wire on a
/// budget it cannot meet.
///
/// # Errors
///
/// [`NetError::DeadlineExceeded`] on an infeasible or blown budget;
/// otherwise see [`alltoall`].
pub fn alltoall_deadline<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    tuning: &Tuning,
    budget: Duration,
) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; sendbuf.len()];
    alltoall_deadline_into(ep, sendbuf, block, tuning, budget, &mut out)?;
    Ok(out)
}

/// [`alltoall_deadline`] into a caller-provided `n·b`-byte output buffer.
///
/// # Errors
///
/// See [`alltoall_deadline`].
pub fn alltoall_deadline_into<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    tuning: &Tuning,
    budget: Duration,
    out: &mut [u8],
) -> Result<(), NetError> {
    let choice = tuning.chosen_plan(ep.size(), block, ep.ports());
    let rounds = choice.complexity.c1.max(1);
    if let Some(rto) = ep.rto_hint() {
        // Feasibility: a round that loses a frame needs ~one RTO to
        // retransmit and be acked; a per-round sub-budget below that is
        // a guaranteed miss, so fail fast with the same structured
        // verdict the blown budget would produce.
        let per_round = budget.div_f64(rounds as f64);
        if per_round < rto {
            return Err(NetError::DeadlineExceeded {
                rank: ep.rank(),
                budget,
            });
        }
    }
    ep.arm_deadline(budget);
    let result = run_index_plan(ep, &choice.plan, sendbuf, block, out);
    ep.disarm_deadline();
    result
}

/// Outcome of [`alltoall_resilient`]: survivor-dense data plus the
/// membership it corresponds to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilientAlltoall {
    /// One `block`-byte block per survivor, in `survivors` order: block
    /// `i` came from global rank `survivors[i]`.
    pub data: Vec<u8>,
    /// Global ranks that completed the successful attempt, ascending.
    pub survivors: Vec<usize>,
    /// Attempts (epochs) consumed, including the successful one.
    pub attempts: usize,
}

/// In-run shrink-and-retry all-to-all: on a rank failure mid-collective,
/// the survivors rebuild a dense [`Group`] from the cluster's failure
/// verdict, re-tune the radix for the shrunken size, and re-run among
/// themselves — inside the *same* cluster run, without restarting.
///
/// Each attempt runs in a tag **epoch**
/// ([`GroupComm::with_epoch`](bruck_net::GroupComm::with_epoch)) equal
/// to the failure-detector version the rank acknowledged
/// ([`Endpoint::acknowledge_failures`]): ranks tagging with the same
/// epoch provably hold the same dead set and build identical groups, so
/// neither stale messages from an aborted attempt nor messages from a
/// rank with a different membership view can ever match a receive.
///
/// `sendbuf` still holds one block per *original* rank; blocks addressed
/// to dead ranks are skipped. The result is survivor-dense.
///
/// Every attempt ends with a **completion barrier** (a dissemination
/// barrier in a reserved tag namespace of the attempt's epoch): a rank
/// returns `Ok` only once every group member has provably finished the
/// same attempt. Without it, a rank whose windowed sends were all
/// fire-and-forget could complete and leave while a peer was still
/// mid-collective; if that peer then triggered a retry, the departed
/// rank could never be recalled and the survivors would stall until the
/// watchdog excommunicated it. With the barrier, a membership change
/// aborts the barrier like any other round, the locally-finished rank
/// discards its result, and it rejoins the shrink-and-retry loop.
///
/// # Errors
///
/// [`NetError::Killed`] immediately if fault injection kills *this*
/// rank; non-failure errors immediately; the last failure verdict when
/// `max_attempts` are exhausted.
///
/// Tag namespace of the per-attempt completion barrier: above every
/// data tag a collective emits (round/dimension numbers, all well below
/// 2³²), below the epoch bits at
/// [`EPOCH_SHIFT`](bruck_net::comm::EPOCH_SHIFT), so barrier traffic can
/// alias neither an attempt's data frames nor another epoch's barrier.
pub(crate) const CONFIRM_TAG_BASE: u64 = 1 << 32;

/// Dissemination barrier over the (epoch-tagged) group: `⌈log₂ m⌉`
/// rounds of `send to (me + 2ʲ) mod m, recv from (me − 2ʲ) mod m`.
/// Completing at any rank proves every rank entered the barrier — i.e.
/// finished the attempt this barrier seals. Aborts with the shared
/// failure verdict if the membership changes mid-barrier.
pub(crate) fn confirm_completion<C: Comm + ?Sized>(gc: &mut C) -> Result<(), NetError> {
    let m = gc.size();
    let me = gc.rank();
    let mut hop = 1usize;
    let mut j = 0u64;
    while hop < m {
        let to = (me + hop) % m;
        let from = (me + m - hop) % m;
        let token = gc.send_and_recv(to, &[], from, CONFIRM_TAG_BASE + j)?;
        gc.recycle(token);
        hop <<= 1;
        j += 1;
    }
    Ok(())
}

/// Enforce an in-run [`RecoveryPolicy`] against an attempt's survivor
/// count. Within one cluster run the failure detector's dead set is
/// monotone — a dead rank cannot come back until the run ends — so
/// `WaitForRejoin` has nothing to wait *for* here and degrades to
/// `ShrinkOnly`; restart-scope rejoin is
/// [`Cluster::run_resilient`](bruck_net::Cluster::run_resilient)'s job.
/// `FailFast` turns a below-quorum membership into an immediate
/// [`NetError::RanksFailed`] carrying the full dead set.
pub(crate) fn check_recovery_policy(
    policy: RecoveryPolicy,
    survivors: usize,
    dead: &[usize],
) -> Result<(), NetError> {
    if let RecoveryPolicy::FailFast { min_quorum } = policy {
        if survivors < min_quorum {
            return Err(NetError::RanksFailed {
                ranks: dead.to_vec(),
            });
        }
    }
    Ok(())
}

/// # Panics
///
/// Panics if `max_attempts == 0` or `sendbuf.len() != n·block`.
pub fn alltoall_resilient(
    ep: &mut Endpoint,
    sendbuf: &[u8],
    block: usize,
    tuning: &Tuning,
    max_attempts: usize,
) -> Result<ResilientAlltoall, NetError> {
    alltoall_resilient_with_policy(
        ep,
        sendbuf,
        block,
        tuning,
        max_attempts,
        RecoveryPolicy::default(),
    )
}

/// [`alltoall_resilient`] under an explicit [`RecoveryPolicy`]:
///
/// * [`ShrinkOnly`](RecoveryPolicy::ShrinkOnly) — retry dense among the
///   survivors (the [`alltoall_resilient`] default);
/// * [`FailFast`](RecoveryPolicy::FailFast) — abort with
///   [`NetError::RanksFailed`] as soon as the acknowledged membership
///   drops below `min_quorum`, instead of completing degraded;
/// * [`WaitForRejoin`](RecoveryPolicy::WaitForRejoin) — in-run the dead
///   set is monotone (an evicted rank cannot return before the run
///   ends), so this degrades to `ShrinkOnly` here; pair it with
///   [`Cluster::run_resilient`](bruck_net::Cluster::run_resilient),
///   where the budget is honored at the attempt boundary.
///
/// # Errors
///
/// See [`alltoall_resilient`]; additionally [`NetError::RanksFailed`]
/// when `FailFast` quorum is lost.
///
/// # Panics
///
/// Panics if `max_attempts == 0` or `sendbuf.len() != n·block`.
pub fn alltoall_resilient_with_policy(
    ep: &mut Endpoint,
    sendbuf: &[u8],
    block: usize,
    tuning: &Tuning,
    max_attempts: usize,
    policy: RecoveryPolicy,
) -> Result<ResilientAlltoall, NetError> {
    assert!(max_attempts >= 1, "need at least one attempt");
    let n = Endpoint::size(ep);
    assert_eq!(sendbuf.len(), n * block, "sendbuf must hold n blocks");
    let me = Endpoint::rank(ep);
    let mut last_failure = None;
    for attempt in 0..max_attempts {
        // The acknowledged detector version is the attempt's tag epoch:
        // the dead set is monotone and the version counts it, so ranks
        // tagging with the same epoch hold exactly the same dead set and
        // build identically-shaped groups. A rank whose view is stale
        // aborts its receive on the version bump and lands back here.
        let (epoch, dead) = ep.acknowledge_failures();
        if dead.contains(&me) {
            // Our peers gave up on us (e.g. past their retry cap while we
            // were stalled): we are outside the agreed membership.
            return Err(NetError::RanksFailed { ranks: dead });
        }
        check_recovery_policy(policy, n - dead.len(), &dead)?;
        let group = Group::new((0..n).filter(|r| !dead.contains(r)).collect());
        let survivors = group.members().to_vec();
        let mut dense = Vec::with_capacity(survivors.len() * block);
        for &m in &survivors {
            dense.extend_from_slice(&sendbuf[m * block..(m + 1) * block]);
        }
        let mut gc = group.bind(ep).with_epoch(epoch);
        // A locally-complete attempt only counts once the whole group
        // confirms it: the barrier keeps early finishers recallable, so
        // a failure observed by *any* member sends *every* member around
        // the retry loop with the same verdict.
        let outcome = alltoall(&mut gc, &dense, block, tuning)
            .and_then(|data| confirm_completion(&mut gc).map(|()| data));
        match outcome {
            Ok(data) => {
                return Ok(ResilientAlltoall {
                    data,
                    survivors,
                    attempts: attempt + 1,
                })
            }
            Err(e) => {
                // A killed rank must exit, not retry (its kill re-fires
                // every attempt); programming errors are not survivable.
                // Stale traffic from this aborted attempt is NOT purged:
                // its epoch tags can never match a later attempt's
                // receives, while purging would race against
                // already-arrived messages from peers ahead of us.
                if matches!(e, NetError::Killed { rank, .. } if rank == me) || !e.is_rank_failure()
                {
                    return Err(e);
                }
                last_failure = Some(e);
            }
        }
    }
    Err(last_failure.expect("loop body ran at least once"))
}

/// All-to-all broadcast via the circulant algorithm.
///
/// # Example
///
/// ```
/// use bruck_collectives::api::{allgather, Tuning};
/// use bruck_net::{Cluster, ClusterConfig};
///
/// let n = 5;
/// let out = Cluster::run(&ClusterConfig::new(n), |ep| {
///     let mine = vec![ep.rank() as u8; 3];
///     let all = allgather(ep, &mine, &Tuning::default())?;
///     assert_eq!(all.len(), n * 3);
///     for src in 0..n {
///         assert!(all[src * 3..(src + 1) * 3].iter().all(|&x| x == src as u8));
///     }
///     Ok(())
/// })
/// .unwrap();
/// assert_eq!(out.results.len(), n);
/// ```
///
/// # Errors
///
/// See [`ConcatAlgorithm::run`].
pub fn allgather<C: Comm + ?Sized>(
    ep: &mut C,
    myblock: &[u8],
    tuning: &Tuning,
) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; ep.size() * myblock.len()];
    allgather_into(ep, myblock, tuning, &mut out)?;
    Ok(out)
}

/// [`allgather`] into a caller-provided `n·b`-byte output buffer.
///
/// The zero-copy entry point: all scratch comes from the cluster's
/// buffer pool, so steady-state calls perform no heap allocations.
///
/// # Errors
///
/// See [`ConcatAlgorithm::run_into`].
pub fn allgather_into<C: Comm + ?Sized>(
    ep: &mut C,
    myblock: &[u8],
    tuning: &Tuning,
    out: &mut [u8],
) -> Result<(), NetError> {
    ConcatAlgorithm::Bruck(tuning.concat_preference).run_into(ep, myblock, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_net::{Cluster, ClusterConfig};

    #[test]
    fn alltoall_auto_tuned_is_correct() {
        for block in [1usize, 64, 1024] {
            let n = 8;
            let cfg = ClusterConfig::new(n);
            let tuning = Tuning::default();
            let out = Cluster::run(&cfg, |ep| {
                let input = crate::verify::index_input(ep.rank(), n, block);
                alltoall(ep, &input, block, &tuning)
            })
            .unwrap();
            for (rank, result) in out.results.iter().enumerate() {
                assert_eq!(result, &crate::verify::index_expected(rank, n, block));
            }
        }
    }

    #[test]
    fn radix_override_is_respected() {
        let tuning = Tuning::builder().radix(4).build();
        assert_eq!(tuning.chosen_radix(16, 100, 1).radix, 4);
        // Clamped into [2, n].
        let tuning = Tuning::builder().radix(100).build();
        assert_eq!(tuning.chosen_radix(16, 100, 1).radix, 16);
    }

    #[test]
    fn builder_covers_every_knob() {
        let tuning = Tuning::builder()
            .model(Arc::new(LinearModel::new(1e-3, 1e-8)))
            .radix(3)
            .concat_preference(Preference::Bytes)
            .build();
        assert_eq!(tuning.radix, Some(3));
        assert_eq!(tuning.concat_preference, Preference::Bytes);
        let auto = Tuning::builder().radix(7).auto_radix().build();
        assert_eq!(auto.radix, None);
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let n = 6;
        let block = 4;
        let cfg = ClusterConfig::new(n).with_ports(2);
        let tuning = Tuning::builder().radix(3).build();
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, block);
            let a = alltoall(ep, &input, block, &tuning)?;
            let mut b = vec![0u8; n * block];
            alltoall_into(ep, &input, block, &tuning, &mut b)?;
            let mine = crate::verify::concat_input(ep.rank(), block);
            let c = allgather(ep, &mine, &tuning)?;
            let mut d = vec![0u8; n * block];
            allgather_into(ep, &mine, &tuning, &mut d)?;
            Ok((a, b, c, d))
        })
        .unwrap();
        for (rank, (a, b, c, d)) in out.results.iter().enumerate() {
            assert_eq!(a, b, "alltoall variants disagree at rank {rank}");
            assert_eq!(c, d, "allgather variants disagree at rank {rank}");
            assert_eq!(a, &crate::verify::index_expected(rank, n, block));
            assert_eq!(c, &crate::verify::concat_expected(n, block));
        }
    }

    #[test]
    fn auto_radix_adapts_to_block_size() {
        let tuning = Tuning::default();
        let small = tuning.chosen_radix(64, 1, 1).radix;
        let large = tuning.chosen_radix(64, 16384, 1).radix;
        assert!(
            small < large,
            "small-block radix {small} should be below large-block {large}"
        );
    }

    #[test]
    fn planner_tuning_is_correct_across_block_sizes() {
        // Small blocks dispatch a low radix, large blocks the direct
        // exchange — both must produce the right answer.
        for block in [1usize, 2048] {
            let n = 8;
            let cfg = ClusterConfig::new(n).with_ports(2);
            let tuning = Tuning::auto(Arc::new(LinearModel::sp1()));
            let out = Cluster::run(&cfg, |ep| {
                let input = crate::verify::index_input(ep.rank(), n, block);
                alltoall(ep, &input, block, &tuning)
            })
            .unwrap();
            for (rank, result) in out.results.iter().enumerate() {
                assert_eq!(result, &crate::verify::index_expected(rank, n, block));
            }
        }
    }

    #[test]
    fn forced_radix_overrides_planner() {
        let tuning = Tuning::builder().planner(true).radix(4).build();
        let choice = tuning.chosen_plan(16, 1 << 20, 1);
        assert_eq!(choice.plan, bruck_model::planner::IndexPlan::Radix(4));
    }

    #[test]
    fn auto_entry_points_report_winning_plan() {
        let n = 8;
        let block = 4096;
        let model = LinearModel::sp1();
        let cfg = ClusterConfig::new(n).with_ports(2);
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, block);
            let (data, choice) = alltoall_auto(ep, &input, block, &model)?;
            let mine = crate::verify::concat_input(ep.rank(), block);
            let (all, cchoice) = allgather_auto(ep, &mine, &model)?;
            Ok((data, choice, all, cchoice))
        })
        .unwrap();
        let expected_choice = Planner::new(&model).plan_index(n, 2, block);
        for (rank, (data, choice, all, cchoice)) in out.results.iter().enumerate() {
            assert_eq!(data, &crate::verify::index_expected(rank, n, block));
            assert_eq!(choice.plan, expected_choice.plan);
            assert_eq!(all, &crate::verify::concat_expected(n, block));
            assert!(cchoice.predicted_time.is_finite());
        }
    }

    #[test]
    fn allgather_is_correct() {
        let n = 9;
        let cfg = ClusterConfig::new(n).with_ports(2);
        let tuning = Tuning::default();
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::concat_input(ep.rank(), 5);
            allgather(ep, &input, &tuning)
        })
        .unwrap();
        for result in &out.results {
            assert_eq!(result, &crate::verify::concat_expected(n, 5));
        }
    }
}

//! Pairwise-exchange index for power-of-two `n`: step `i ∈ [1, n)` swaps
//! blocks with partner `rank ⊕ i`. A classic alternative to the direct
//! exchange with the same complexity (`C1 = ⌈(n-1)/k⌉`, `C2 = b·C1`) but a
//! symmetric pairing pattern (each step is a perfect matching), which some
//! switches prefer.

use bruck_net::{Comm, NetError, RecvSpec, SendSpec};
use bruck_sched::{Schedule, Transfer};

fn check_pow2(n: usize) -> Result<(), NetError> {
    if !n.is_power_of_two() {
        return Err(NetError::App(format!(
            "pairwise-XOR index requires a power-of-two processor count, got {n}"
        )));
    }
    Ok(())
}

/// Execute the pairwise exchange.
///
/// Thin allocating wrapper over [`run_into`].
///
/// # Errors
///
/// [`NetError::App`] if `n` is not a power of two or the buffer is
/// mis-sized; network failures propagate.
pub fn run<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; sendbuf.len()];
    run_into(ep, sendbuf, block, &mut out)?;
    Ok(out)
}

/// Execute the pairwise exchange into a caller-provided output buffer of
/// `n·b` bytes. Sends borrow straight from `sendbuf` and received
/// payloads are recycled to the cluster's pool, so steady-state rounds
/// are allocation-free.
///
/// # Errors
///
/// [`NetError::App`] if `n` is not a power of two or the buffer is
/// mis-sized; network failures propagate.
pub fn run_into<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    check_pow2(n)?;
    if sendbuf.len() != n * block {
        return Err(NetError::App("send buffer must be n·b bytes".into()));
    }
    if out.len() != n * block {
        return Err(NetError::App("output buffer must be n·b bytes".into()));
    }
    let rank = ep.rank();
    let k = ep.ports();
    out[rank * block..(rank + 1) * block]
        .copy_from_slice(&sendbuf[rank * block..(rank + 1) * block]);

    let mut i = 1usize;
    while i < n {
        let group: Vec<usize> = (i..n.min(i + k)).collect();
        let sends: Vec<SendSpec<'_>> = group
            .iter()
            .map(|&d| {
                let peer = rank ^ d;
                SendSpec {
                    to: peer,
                    tag: d as u64,
                    payload: &sendbuf[peer * block..(peer + 1) * block],
                }
            })
            .collect();
        let recvs: Vec<RecvSpec> = group
            .iter()
            .map(|&d| RecvSpec {
                from: rank ^ d,
                tag: d as u64,
            })
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        for (&d, msg) in group.iter().zip(&msgs) {
            let peer = rank ^ d;
            out[peer * block..(peer + 1) * block].copy_from_slice(&msg.payload);
        }
        for msg in msgs {
            ep.recycle(msg.payload);
        }
        i += group.len();
    }
    Ok(())
}

/// The static schedule of the pairwise exchange.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
#[must_use]
pub fn plan(n: usize, block: usize, ports: usize) -> Schedule {
    assert!(n.is_power_of_two(), "pairwise-XOR requires power-of-two n");
    assert!(ports >= 1);
    let mut schedule = Schedule::new(n, ports);
    if n <= 1 {
        return schedule;
    }
    let mut i = 1usize;
    while i < n {
        let group: Vec<usize> = (i..n.min(i + ports)).collect();
        let mut transfers = Vec::with_capacity(group.len() * n);
        for &d in &group {
            for src in 0..n {
                transfers.push(Transfer {
                    src,
                    dst: src ^ d,
                    bytes: block as u64,
                });
            }
        }
        schedule.push_round(transfers);
        i += group.len();
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_net::{Cluster, ClusterConfig};
    use bruck_sched::ScheduleStats;

    #[test]
    fn correct_for_powers_of_two() {
        for n in [1usize, 2, 4, 8, 16] {
            let cfg = ClusterConfig::new(n);
            let out = Cluster::run(&cfg, |ep| {
                let input = crate::verify::index_input(ep.rank(), n, 2);
                run(ep, &input, 2)
            })
            .unwrap();
            for (rank, result) in out.results.iter().enumerate() {
                assert_eq!(result, &crate::verify::index_expected(rank, n, 2), "n={n}");
            }
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        let cfg = ClusterConfig::new(3);
        let err = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), 3, 1);
            run(ep, &input, 1)
        })
        .unwrap_err();
        assert!(matches!(err, NetError::App(_)));
    }

    #[test]
    fn each_round_is_a_perfect_matching() {
        let s = plan(8, 1, 1);
        s.validate().unwrap();
        for round in &s.rounds {
            // Every rank appears exactly once as src and once as dst, and
            // the pairing is an involution.
            for t in &round.transfers {
                assert!(round
                    .transfers
                    .iter()
                    .any(|u| u.src == t.dst && u.dst == t.src));
            }
        }
    }

    #[test]
    fn multiport_complexity() {
        let s = plan(16, 3, 4);
        s.validate().unwrap();
        let c = ScheduleStats::of(&s).complexity;
        assert_eq!(c.c1, 4); // ⌈15/4⌉
        assert_eq!(c.c2, 12); // 4 rounds × 3 bytes
    }

    #[test]
    fn multiport_execution() {
        let n = 8;
        let cfg = ClusterConfig::new(n).with_ports(3);
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, 4);
            run(ep, &input, 4)
        })
        .unwrap();
        for (rank, result) in out.results.iter().enumerate() {
            assert_eq!(result, &crate::verify::index_expected(rank, n, 4));
        }
    }
}

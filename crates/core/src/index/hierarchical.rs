//! Hierarchy-aware all-to-all — an extension beyond the paper.
//!
//! The paper's model makes every pair of processors equally distant
//! (§1.2). Real clusters of multicore nodes are not: intra-node messages
//! are orders of magnitude cheaper than inter-node ones
//! ([`bruck_model::cost::HierarchicalModel`]). This module composes the
//! paper's *own* index algorithm at two levels so that expensive links
//! carry as few start-ups as possible:
//!
//! 1. **Intra-node phase** — within each node (a [`Group`] of
//!    `node_size` ranks), run an index whose "blocks" are bundles: the
//!    bundle from local rank `x` to local rank `y` contains every block
//!    destined to a global rank with lane `y` (i.e. `dest % node_size == y`),
//!    ordered by destination node. After this phase, rank `(c, λ)` holds
//!    all of node `c`'s traffic for every lane-`λ` rank in the machine.
//! 2. **Inter-node phase** — within each lane (a strided [`Group`], one
//!    rank per node), run an index whose block for node `m` is the
//!    `node_size · b` bundle destined to rank `(m, λ)`. Every byte now
//!    sits at its destination; a local reorder finishes.
//!
//! Inter-node start-ups drop from `Θ(log n)` per rank (flat `r = 2`) to
//! the inter-node phase's round count; with `radix_remote = #nodes` every
//! remote byte crosses the slow network exactly once, and smaller remote
//! radices trade extra remote volume for fewer remote start-ups — the
//! paper's trade-off, now applied per network level.

use bruck_net::{Endpoint, Group, NetError};

use crate::index::bruck;

/// Execute the two-level alltoall on a cluster of `n` ranks organized as
/// nodes of `node_size` consecutive ranks. `radix_local` and
/// `radix_remote` tune the two phases independently.
///
/// Thin allocating wrapper over [`run_into`].
///
/// # Errors
///
/// [`NetError::App`] if `n % node_size != 0` or the buffer is mis-sized.
pub fn run(
    ep: &mut Endpoint,
    sendbuf: &[u8],
    block: usize,
    node_size: usize,
    radix_local: usize,
    radix_remote: usize,
) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; sendbuf.len()];
    run_into(
        ep,
        sendbuf,
        block,
        node_size,
        radix_local,
        radix_remote,
        &mut out,
    )?;
    Ok(out)
}

/// Execute the two-level alltoall into a caller-provided output buffer
/// of `n·b` bytes. The re-bundling staging buffers come from the
/// cluster's buffer pool and are recycled, so steady-state runs are
/// allocation-free.
///
/// # Errors
///
/// [`NetError::App`] if `n % node_size != 0` or a buffer is mis-sized.
pub fn run_into(
    ep: &mut Endpoint,
    sendbuf: &[u8],
    block: usize,
    node_size: usize,
    radix_local: usize,
    radix_remote: usize,
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    if node_size == 0 || !n.is_multiple_of(node_size) {
        return Err(NetError::App(format!(
            "hierarchical alltoall: n = {n} not divisible by node_size = {node_size}"
        )));
    }
    if sendbuf.len() != n * block {
        return Err(NetError::App("send buffer must be n·b bytes".into()));
    }
    if out.len() != n * block {
        return Err(NetError::App("output buffer must be n·b bytes".into()));
    }
    let nodes = n / node_size;
    if nodes == 1 || node_size == 1 {
        // Degenerate hierarchy: plain flat index.
        return bruck::run_into(ep, sendbuf, block, radix_local.max(radix_remote), out);
    }
    let rank = ep.rank();
    let my_node = rank / node_size;
    let my_lane = rank % node_size;

    // Phase 1: intra-node index over lane bundles. Bundle for lane y =
    // blocks for dests y, y + S, y + 2S, … (node order), S = node_size.
    let bundle = nodes * block;
    let mut local_send = ep.acquire(node_size * bundle);
    for lane in 0..node_size {
        for node in 0..nodes {
            let dest = node * node_size + lane;
            let at = lane * bundle + node * block;
            local_send[at..at + block].copy_from_slice(&sendbuf[dest * block..(dest + 1) * block]);
        }
    }
    let node_group = Group::range(my_node * node_size, node_size);
    let mut lane_bundles = ep.acquire(node_size * bundle);
    {
        let mut gc = node_group.bind(ep);
        bruck::run_into(&mut gc, &local_send, bundle, radix_local, &mut lane_bundles)?;
    }
    ep.recycle(local_send);
    // lane_bundles[x·bundle..] = node-ordered blocks from local rank x to
    // every lane-my_lane rank.

    // Phase 2: inter-node index over node bundles. Block for node m =
    // the node_size · block bytes destined to rank (m, my_lane), source
    // order = local rank order.
    let node_bundle = node_size * block;
    let mut remote_send = ep.acquire(nodes * node_bundle);
    for m in 0..nodes {
        for x in 0..node_size {
            let at = m * node_bundle + x * block;
            let from = x * bundle + m * block;
            remote_send[at..at + block].copy_from_slice(&lane_bundles[from..from + block]);
        }
    }
    ep.recycle(lane_bundles);
    let lane_group = Group::strided(my_lane, node_size, n);
    let mut arrived = ep.acquire(nodes * node_bundle);
    {
        let mut gc = lane_group.bind(ep);
        bruck::run_into(
            &mut gc,
            &remote_send,
            node_bundle,
            radix_remote,
            &mut arrived,
        )?;
    }
    ep.recycle(remote_send);
    // arrived[c·node_bundle + x·block ..] = block from global rank
    // (c, x) destined to us.

    for c in 0..nodes {
        for x in 0..node_size {
            let src = c * node_size + x;
            let at = c * node_bundle + x * block;
            out[src * block..(src + 1) * block].copy_from_slice(&arrived[at..at + block]);
        }
    }
    ep.recycle(arrived);
    ep.charge_copy(3 * (n * block) as u64); // the two re-bundlings + final reorder
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_model::cost::HierarchicalModel;
    use bruck_net::{Cluster, ClusterConfig};
    use std::sync::Arc;

    fn run_cluster(n: usize, node_size: usize, block: usize, rl: usize, rr: usize) {
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, block);
            run(ep, &input, block, node_size, rl, rr)
        })
        .unwrap();
        for (rank, result) in out.results.iter().enumerate() {
            assert_eq!(
                result,
                &crate::verify::index_expected(rank, n, block),
                "n={n} S={node_size} rank={rank}"
            );
        }
    }

    #[test]
    fn correct_various_shapes() {
        run_cluster(8, 2, 3, 2, 2);
        run_cluster(12, 3, 2, 2, 4);
        run_cluster(16, 4, 2, 4, 4);
        run_cluster(18, 6, 1, 3, 3);
    }

    #[test]
    fn degenerate_hierarchies() {
        run_cluster(6, 1, 2, 2, 2); // node_size 1 → flat
        run_cluster(6, 6, 2, 2, 2); // one node → flat
    }

    #[test]
    fn indivisible_rejected() {
        let cfg = ClusterConfig::new(7);
        let err = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), 7, 1);
            run(ep, &input, 1, 3, 2, 2)
        })
        .unwrap_err();
        assert!(matches!(err, NetError::App(_)));
    }

    #[test]
    fn beats_flat_on_a_two_level_machine() {
        // 4 nodes × 4 cores, fast local / slow remote: the two-level
        // composition must beat the flat r=2 index in virtual time.
        let n = 16;
        let node_size = 4;
        let block = 64;
        let model: Arc<dyn bruck_model::cost::CostModel> =
            Arc::new(HierarchicalModel::smp_cluster(node_size));
        let cfg = ClusterConfig::new(n).with_cost(Arc::clone(&model));
        let flat = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, block);
            bruck::run(ep, &input, block, 2)
        })
        .unwrap();
        let hier = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, block);
            run(ep, &input, block, node_size, 2, 2)
        })
        .unwrap();
        assert!(
            hier.virtual_makespan() < flat.virtual_makespan(),
            "hierarchical {} s should beat flat {} s",
            hier.virtual_makespan(),
            flat.virtual_makespan()
        );
    }

    #[test]
    fn remote_traffic_is_minimal() {
        // Every byte crosses the inter-node boundary exactly once: the
        // remote traffic equals the inter-node portion of the payload.
        let n = 12;
        let node_size = 3;
        let block = 5;
        let cfg = ClusterConfig::new(n).with_trace();
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, block);
            run(ep, &input, block, node_size, 2, 2)
        })
        .unwrap();
        let trace = out.trace.unwrap();
        let remote_bytes: u64 = trace
            .snapshot()
            .iter()
            .filter(|e| e.src / node_size != e.dst / node_size)
            .map(|e| e.bytes)
            .sum();
        // Payload that must cross nodes: every (src, dst) pair in
        // different nodes = n·(n - node_size) blocks.
        let payload = (n * (n - node_size) * block) as u64;
        // The lane-group index with radix 2 relays blocks through
        // intermediate nodes: volume = Σ rounds (bundles/2 · nodes) —
        // bounded by payload · ⌈log2 nodes⌉ / 2... just assert it stays
        // below the flat algorithm's remote volume on the same machine.
        let flat = Cluster::run(&ClusterConfig::new(n).with_trace(), |ep| {
            let input = crate::verify::index_input(ep.rank(), n, block);
            bruck::run(ep, &input, block, 2)
        })
        .unwrap();
        let flat_remote: u64 = flat
            .trace
            .unwrap()
            .snapshot()
            .iter()
            .filter(|e| e.src / node_size != e.dst / node_size)
            .map(|e| e.bytes)
            .sum();
        assert!(
            remote_bytes <= flat_remote,
            "hierarchical remote {remote_bytes} vs flat remote {flat_remote} (payload {payload})"
        );
    }
}

//! Store-and-forward hypercube index (the classic algorithm of
//! Johnsson & Ho, cited as \[20\]; see also Bokhari \[5\]).
//!
//! Requires `n = 2^w`, one port. In round `x`, every processor exchanges
//! with its dimension-`x` neighbour `rank ⊕ 2^x` all blocks whose
//! *destination* differs from `rank` in bit `x` — including blocks it is
//! merely relaying. After round `x`, processor `p` holds exactly the
//! blocks `(src, dst)` with `dst ≡ p (mod 2^{x+1})` and
//! `src ≫ (x+1) = p ≫ (x+1)`.
//!
//! Complexity: `C1 = log₂ n` rounds of `(n/2)·b` bytes, so
//! `C2 = b·(n/2)·log₂ n` — identical to the Bruck `r = 2` algorithm
//! (which achieves the same with arbitrary `n` and no relaying of
//! foreign payload *labels*). This is the baseline the paper's §3.3
//! credits and generalizes.

use bruck_net::{Comm, NetError};
use bruck_sched::{Schedule, Transfer};

fn check(n: usize) -> Result<(), NetError> {
    if !n.is_power_of_two() {
        return Err(NetError::App(format!(
            "hypercube index requires a power-of-two processor count, got {n}"
        )));
    }
    Ok(())
}

/// The sorted `(src, dst)` pairs processor `owner` holds before round `x`.
fn held(owner: usize, x: u32, n: usize) -> Vec<(usize, usize)> {
    let low = 1usize << x;
    let mut v = Vec::with_capacity(n);
    for src in 0..n {
        for dst in 0..n {
            if dst % low == owner % low && src >> x == owner >> x {
                v.push((src, dst));
            }
        }
    }
    v.sort_unstable_by_key(|&(s, d)| (d, s));
    v
}

/// The sorted `(src, dst)` pairs `owner` ships to its dimension-`x`
/// partner.
fn shipment(owner: usize, x: u32, n: usize) -> Vec<(usize, usize)> {
    let partner = owner ^ (1 << x);
    let high = 1usize << (x + 1);
    held(owner, x, n)
        .into_iter()
        .filter(|&(_, d)| d % high == partner % high)
        .collect()
}

/// Execute the hypercube index (one-port; extra ports go unused).
///
/// Thin allocating wrapper over [`run_into`].
///
/// # Errors
///
/// [`NetError::App`] for non-power-of-two `n` or a mis-sized buffer.
pub fn run<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; sendbuf.len()];
    run_into(ep, sendbuf, block, &mut out)?;
    Ok(out)
}

/// Execute the hypercube index into a caller-provided output buffer of
/// `n·b` bytes. The per-round shipment buffers (send and receive sides)
/// and the per-block staging entries all come from the cluster's buffer
/// pool, so repeated runs are allocation-free in steady state.
///
/// # Errors
///
/// [`NetError::App`] for non-power-of-two `n` or a mis-sized buffer.
pub fn run_into<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    check(n)?;
    if sendbuf.len() != n * block {
        return Err(NetError::App("send buffer must be n·b bytes".into()));
    }
    if out.len() != n * block {
        return Err(NetError::App("output buffer must be n·b bytes".into()));
    }
    if n == 1 {
        out.copy_from_slice(sendbuf);
        return Ok(());
    }
    let rank = ep.rank();
    let w = n.trailing_zeros();

    // store[(src, dst)] = pooled payload, for currently-held blocks.
    let mut store: std::collections::HashMap<(usize, usize), Vec<u8>> = (0..n)
        .map(|dst| {
            let mut buf = ep.acquire(block);
            buf.copy_from_slice(&sendbuf[dst * block..(dst + 1) * block]);
            ((rank, dst), buf)
        })
        .collect();

    let ship = (n / 2) * block;
    let mut payload = ep.acquire(ship);
    let mut inbound = ep.acquire(ship);
    for x in 0..w {
        let partner = rank ^ (1 << x);
        let out_list = shipment(rank, x, n);
        let in_list = shipment(partner, x, n);
        for (slot, key) in out_list.iter().enumerate() {
            let blockdata = store
                .remove(key)
                .expect("holding-set invariant violated: block not present");
            payload[slot * block..(slot + 1) * block].copy_from_slice(&blockdata);
            ep.recycle(blockdata);
        }
        let got = ep.send_and_recv_into(partner, &payload, partner, u64::from(x), &mut inbound)?;
        if got != in_list.len() * block {
            return Err(NetError::App(format!(
                "round {x}: expected {} bytes, got {got}",
                in_list.len() * block
            )));
        }
        for (slot, key) in in_list.iter().enumerate() {
            let mut buf = ep.acquire(block);
            buf.copy_from_slice(&inbound[slot * block..(slot + 1) * block]);
            store.insert(*key, buf);
        }
    }
    ep.recycle(payload);
    ep.recycle(inbound);

    for ((src, dst), payload) in store {
        debug_assert_eq!(dst, rank, "final holdings must all be destined here");
        out[src * block..(src + 1) * block].copy_from_slice(&payload);
        ep.recycle(payload);
    }
    Ok(())
}

/// The static schedule: `log₂ n` perfect-matching rounds of `(n/2)·b`.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
#[must_use]
pub fn plan(n: usize, block: usize) -> Schedule {
    assert!(n.is_power_of_two());
    let mut schedule = Schedule::new(n, 1);
    if n <= 1 {
        return schedule;
    }
    let bytes = ((n / 2) * block) as u64;
    for x in 0..n.trailing_zeros() {
        schedule.push_round(
            (0..n)
                .map(|src| Transfer {
                    src,
                    dst: src ^ (1 << x),
                    bytes,
                })
                .collect(),
        );
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_model::tuning::index_complexity;
    use bruck_net::{Cluster, ClusterConfig};
    use bruck_sched::ScheduleStats;

    #[test]
    fn holding_sets_have_constant_size() {
        let n = 16;
        for x in 0..4 {
            for owner in 0..n {
                assert_eq!(held(owner, x, n).len(), n, "x={x} owner={owner}");
                assert_eq!(shipment(owner, x, n).len(), n / 2);
            }
        }
    }

    #[test]
    fn shipments_are_symmetric_views() {
        // What `owner` expects from `partner` is what `partner` ships.
        let n = 8;
        for x in 0..3 {
            for owner in 0..n {
                let partner = owner ^ (1 << x);
                assert_eq!(shipment(partner, x, n), shipment(partner, x, n));
                // Shipment destinations all match the receiver's side.
                for (_, d) in shipment(partner, x, n) {
                    assert_eq!(d % (1 << (x + 1)), owner % (1 << (x + 1)));
                }
            }
        }
    }

    #[test]
    fn correct_for_powers_of_two() {
        for n in [1usize, 2, 4, 8, 16] {
            let cfg = ClusterConfig::new(n);
            let out = Cluster::run(&cfg, |ep| {
                let input = crate::verify::index_input(ep.rank(), n, 3);
                run(ep, &input, 3)
            })
            .unwrap();
            for (rank, result) in out.results.iter().enumerate() {
                assert_eq!(result, &crate::verify::index_expected(rank, n, 3), "n={n}");
            }
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        let cfg = ClusterConfig::new(6);
        let err = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), 6, 1);
            run(ep, &input, 1)
        })
        .unwrap_err();
        assert!(matches!(err, NetError::App(_)));
    }

    #[test]
    fn complexity_equals_bruck_r2_on_powers_of_two() {
        for n in [2usize, 4, 8, 16, 32, 64] {
            let hc = ScheduleStats::of(&plan(n, 5)).complexity;
            assert_eq!(hc, index_complexity(n, 2, 5), "n={n}");
        }
    }
}

//! The paper's radix-`r` index algorithm (§3, Appendix A), generalized to
//! the k-port model (§3.4).
//!
//! Three phases:
//!
//! 1. processor `i` rotates its blocks `i` steps upward
//!    (`tmp[m] = send[(m+i) mod n]`) — local;
//! 2. `w = ⌈log_r n⌉` subphases, one per radix-`r` digit of the block
//!    offset; step `z` of subphase `x` packs every block whose digit `x`
//!    equals `z` into one message and rotates it `z·r^x` processors to the
//!    right. In the k-port model the (up to) `r-1` independent steps of a
//!    subphase are grouped `k` per round;
//! 3. processor `i` places offset `m` at result slot `(i - m) mod n` —
//!    local (Appendix A lines 21–23).
//!
//! After phase 2 every block has travelled a total of `j` processors to
//! the right (the digits of `j` sum up positionally), which is exactly its
//! destination; phase 3 fixes the memory offsets.

use bruck_model::radix::RadixDecomposition;
use bruck_net::{Comm, GatherSendSpec, NetError, RecvSpec};
use bruck_sched::{Schedule, Transfer};

use crate::blocks::{gather_spans, phase3_place_into, rotate_up_into, unpack_spans};

/// One staged phase-2 message: the coalesced `(start, len)` spans over
/// the rotated scratch buffer, the step's rotation distance, and its tag.
type StagedSend = (Vec<(usize, usize)>, usize, u64);

/// Sanity-check common parameters; returns `Ok(n)` for convenience.
fn check(n: usize, buf_len: usize, block: usize, radix: usize) -> Result<usize, NetError> {
    if buf_len != n * block {
        return Err(NetError::App(format!(
            "send buffer is {buf_len} bytes, expected n·b = {}",
            n * block
        )));
    }
    if radix < 2 {
        return Err(NetError::App(format!("radix must be ≥ 2, got {radix}")));
    }
    Ok(n)
}

/// Execute the radix-`r` index algorithm. Radices above `n` are clamped
/// to `n` (they would change nothing: one subphase of `n-1` steps).
///
/// Thin allocating wrapper over [`run_into`].
///
/// # Errors
///
/// Buffer-size mismatches surface as [`NetError::App`]; network failures
/// propagate.
pub fn run<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    radix: usize,
) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; sendbuf.len()];
    run_into(ep, sendbuf, block, radix, &mut out)?;
    Ok(out)
}

/// Execute the radix-`r` index algorithm into a caller-provided output
/// buffer of `n·b` bytes. All scratch (the rotated working buffer and
/// the per-step pack buffers) comes from the cluster's buffer pool and
/// is recycled, so steady-state rounds are allocation-free.
///
/// # Errors
///
/// Buffer-size mismatches surface as [`NetError::App`]; network failures
/// propagate.
pub fn run_into<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    radix: usize,
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    check(n, sendbuf.len(), block, radix)?;
    if out.len() != n * block {
        return Err(NetError::App(format!(
            "output buffer is {} bytes, expected n·b = {}",
            out.len(),
            n * block
        )));
    }
    if n == 1 {
        out.copy_from_slice(sendbuf);
        return Ok(());
    }
    let r = radix.min(n);
    let rank = ep.rank();
    let k = ep.ports();
    let decomp = RadixDecomposition::new(n, r);

    // Phase 1: local upward rotation by `rank` into pooled scratch.
    // Charged as a copy of the whole buffer (models with copy_cost = 0
    // are unaffected).
    let mut tmp = ep.acquire(n * block);
    rotate_up_into(sendbuf, n, block, rank, &mut tmp);
    ep.charge_copy((n * block) as u64);

    // Phase 2: one round per group of ≤ k steps.
    for x in 0..decomp.num_subphases() {
        let steps = decomp.steps_in_subphase(x);
        let mut z = 1usize;
        while z <= steps {
            let group: Vec<usize> = (z..=steps.min(z + k - 1)).collect();
            // Describe each outgoing message as coalesced byte spans over
            // `tmp` — the gather path stages them straight into the
            // transport's pooled buffer, so the separate pack copy of the
            // old pack→stage pipeline never happens.
            let staged: Vec<StagedSend> = group
                .iter()
                .map(|&zz| {
                    let indices = decomp.blocks_for_step(x, zz);
                    let spans = gather_spans(&indices, block);
                    let dist = decomp.step_distance(x, zz);
                    let tag = (u64::from(x) << 32) | zz as u64;
                    (spans, dist, tag)
                })
                .collect();
            let sends: Vec<GatherSendSpec<'_>> = staged
                .iter()
                .map(|(spans, dist, tag)| GatherSendSpec {
                    to: (rank + dist) % n,
                    tag: *tag,
                    src: &tmp,
                    spans,
                })
                .collect();
            let recvs: Vec<RecvSpec> = staged
                .iter()
                .map(|(_, dist, tag)| RecvSpec {
                    from: (rank + n - dist % n) % n,
                    tag: *tag,
                })
                .collect();
            let msgs = ep.round_gather(&sends, &recvs)?;
            // Only the unpack side remains a local copy to charge: the
            // send side's single staging copy is the transport's own
            // (already accounted by the endpoint), not an extra pack.
            let mut received = 0u64;
            for ((spans, _, _), msg) in staged.iter().zip(&msgs) {
                unpack_spans(&mut tmp, spans, &msg.payload);
                received += msg.payload.len() as u64;
            }
            ep.charge_copy(received);
            for msg in msgs {
                ep.recycle(msg.payload);
            }
            z += group.len();
        }
    }

    // Phase 3: local placement (another whole-buffer copy).
    phase3_place_into(&tmp, n, block, rank, out);
    ep.recycle(tmp);
    ep.charge_copy((n * block) as u64);
    Ok(())
}

/// The static schedule of [`run`] for `n` processors, `b`-byte blocks,
/// `k` ports, and the given radix.
///
/// # Panics
///
/// Panics if `radix < 2` or `ports == 0`.
#[must_use]
pub fn plan(n: usize, block: usize, ports: usize, radix: usize) -> Schedule {
    assert!(radix >= 2, "radix must be ≥ 2");
    assert!(ports >= 1);
    let mut schedule = Schedule::new(n, ports);
    if n <= 1 {
        return schedule;
    }
    let r = radix.min(n);
    let decomp = RadixDecomposition::new(n, r);
    for x in 0..decomp.num_subphases() {
        let steps = decomp.steps_in_subphase(x);
        let mut z = 1usize;
        while z <= steps {
            let group: Vec<usize> = (z..=steps.min(z + ports - 1)).collect();
            let mut transfers = Vec::with_capacity(group.len() * n);
            for &zz in &group {
                let bytes = (decomp.blocks_in_step(x, zz) * block) as u64;
                let dist = decomp.step_distance(x, zz);
                for src in 0..n {
                    transfers.push(Transfer {
                        src,
                        dst: (src + dist) % n,
                        bytes,
                    });
                }
            }
            schedule.push_round(transfers);
            z += group.len();
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_model::tuning::index_complexity_kport;
    use bruck_net::{Cluster, ClusterConfig};
    use bruck_sched::ScheduleStats;

    fn run_cluster(n: usize, block: usize, radix: usize, ports: usize) {
        let cfg = ClusterConfig::new(n).with_ports(ports);
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, block);
            run(ep, &input, block, radix)
        })
        .unwrap();
        for (rank, result) in out.results.iter().enumerate() {
            let expected = crate::verify::index_expected(rank, n, block);
            assert_eq!(
                result,
                &expected,
                "n={n} b={block} r={radix} k={ports} rank={rank}: first bad block {:?}",
                crate::verify::first_block_mismatch(result, &expected, block)
            );
        }
    }

    #[test]
    fn correct_n5_r2() {
        run_cluster(5, 3, 2, 1);
    }

    #[test]
    fn correct_n5_r5_direct_case() {
        run_cluster(5, 3, 5, 1);
    }

    #[test]
    fn correct_all_radices_small() {
        for n in [2usize, 3, 4, 6, 7, 8] {
            for r in 2..=n {
                run_cluster(n, 2, r, 1);
            }
        }
    }

    #[test]
    fn correct_multiport() {
        for k in [2usize, 3] {
            for n in [6usize, 9, 10] {
                for r in [2usize, 3, 4] {
                    run_cluster(n, 2, r, k);
                }
            }
        }
    }

    #[test]
    fn correct_radix_above_n_clamped() {
        run_cluster(5, 2, 64, 1);
    }

    #[test]
    fn zero_byte_blocks_work() {
        run_cluster(4, 0, 2, 1);
    }

    #[test]
    fn single_processor_identity() {
        let cfg = ClusterConfig::new(1);
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(0, 1, 4);
            run(ep, &input, 4, 2)
        })
        .unwrap();
        assert_eq!(out.results[0], crate::verify::index_input(0, 1, 4));
    }

    #[test]
    fn bad_buffer_rejected() {
        let cfg = ClusterConfig::new(2);
        let err = Cluster::run(&cfg, |ep| run(ep, &[0u8; 3], 2, 2)).unwrap_err();
        assert!(matches!(err, NetError::App(_)));
    }

    #[test]
    fn plan_matches_closed_form_complexity() {
        for n in [2usize, 5, 8, 13, 16, 27, 64] {
            for r in [2usize, 3, 4, 8, 64] {
                for k in [1usize, 2, 3] {
                    let schedule = plan(n, 4, k, r);
                    schedule
                        .validate()
                        .unwrap_or_else(|e| panic!("invalid plan n={n} r={r} k={k}: {e}"));
                    let stats = ScheduleStats::of(&schedule);
                    assert_eq!(
                        stats.complexity,
                        index_complexity_kport(n, r.min(n), 4, k),
                        "n={n} r={r} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn executed_metrics_match_plan() {
        let n = 12;
        let block = 4;
        let r = 3;
        let cfg = ClusterConfig::new(n).with_trace();
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, block);
            run(ep, &input, block, r)
        })
        .unwrap();
        let planned = plan(n, block, 1, r);
        assert_eq!(
            out.metrics.global_complexity().unwrap(),
            ScheduleStats::of(&planned).complexity
        );
        // The executed trace IS the plan.
        let traced = bruck_sched::Schedule::from_trace(&out.trace.unwrap(), n, 1);
        let mut planned_stripped = planned.without_empty_rounds();
        // Trace transfers don't carry tags; compare structurally.
        for round in &mut planned_stripped.rounds {
            round.transfers.sort_unstable();
        }
        assert_eq!(traced, planned_stripped);
    }
}

//! Mixed-radix index algorithm — the paper's §3 algorithm run over a
//! [`MixedRadix`] digit
//! decomposition instead of a uniform radix.
//!
//! Correctness rests on the same invariant as the uniform case: over all
//! subphases, a block with phase-1 offset `j` moves a total of
//! `Σ_x digit_x(j)·w_x = j` processors to the right, landing at its
//! destination. The uniform algorithm is exactly the radix vector
//! `(r, r, …, r)`; this module exists because non-uniform vectors can
//! strictly dominate every uniform radix (see
//! [`bruck_model::mixed_radix::best_radix_vector`]).

use bruck_model::mixed_radix::MixedRadix;
use bruck_net::{Comm, NetError, RecvSpec, SendSpec};
use bruck_sched::{Schedule, Transfer};

use crate::blocks::{pack_into, phase3_place_into, rotate_up_into, unpack};

/// Execute the mixed-radix index algorithm with the given radix vector.
///
/// Thin allocating wrapper over [`run_into`].
///
/// # Errors
///
/// [`NetError::App`] on a mis-sized buffer or an insufficient radix
/// vector; network failures propagate.
pub fn run<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    radices: &[usize],
) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; sendbuf.len()];
    run_into(ep, sendbuf, block, radices, &mut out)?;
    Ok(out)
}

/// Execute the mixed-radix index algorithm into a caller-provided output
/// buffer of `n·b` bytes. Scratch comes from the cluster's buffer pool
/// and is recycled, so steady-state rounds are allocation-free.
///
/// # Errors
///
/// [`NetError::App`] on a mis-sized buffer or an insufficient radix
/// vector; network failures propagate.
pub fn run_into<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    radices: &[usize],
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    if sendbuf.len() != n * block {
        return Err(NetError::App("send buffer must be n·b bytes".into()));
    }
    if out.len() != n * block {
        return Err(NetError::App("output buffer must be n·b bytes".into()));
    }
    if n == 1 {
        out.copy_from_slice(sendbuf);
        return Ok(());
    }
    if radices.iter().any(|&r| r < 2) {
        return Err(NetError::App("radices must be ≥ 2".into()));
    }
    if radices
        .iter()
        .try_fold(1usize, |p, &r| p.checked_mul(r))
        .is_none_or(|p| p < n)
    {
        return Err(NetError::App(format!(
            "radix vector {radices:?} does not cover n = {n}"
        )));
    }
    let decomp = MixedRadix::new(n, radices);
    let rank = ep.rank();
    let k = ep.ports();

    let mut tmp = ep.acquire(n * block);
    rotate_up_into(sendbuf, n, block, rank, &mut tmp);
    ep.charge_copy((n * block) as u64);

    for x in 0..decomp.num_subphases() {
        let steps = decomp.steps_in_subphase(x);
        let mut z = 1usize;
        while z <= steps {
            let group: Vec<usize> = (z..=steps.min(z + k - 1)).collect();
            let staged: Vec<(Vec<usize>, usize, u64, Vec<u8>)> = group
                .iter()
                .map(|&zz| {
                    let indices = decomp.blocks_for_step(x, zz);
                    let dist = decomp.step_distance(x, zz) % n;
                    let tag = ((x as u64) << 32) | zz as u64;
                    let mut payload = ep.acquire(indices.len() * block);
                    pack_into(&tmp, block, &indices, &mut payload);
                    (indices, dist, tag, payload)
                })
                .collect();
            let sends: Vec<SendSpec<'_>> = staged
                .iter()
                .map(|(_, dist, tag, payload)| SendSpec {
                    to: (rank + dist) % n,
                    tag: *tag,
                    payload,
                })
                .collect();
            let recvs: Vec<RecvSpec> = staged
                .iter()
                .map(|(_, dist, tag, _)| RecvSpec {
                    from: (rank + n - dist) % n,
                    tag: *tag,
                })
                .collect();
            let copied: u64 = staged.iter().map(|(_, _, _, p)| p.len() as u64).sum();
            ep.charge_copy(copied);
            let msgs = ep.round(&sends, &recvs)?;
            let mut received = 0u64;
            for ((indices, _, _, _), msg) in staged.iter().zip(&msgs) {
                unpack(&mut tmp, block, indices, &msg.payload);
                received += msg.payload.len() as u64;
            }
            ep.charge_copy(received);
            for (_, _, _, payload) in staged {
                ep.recycle(payload);
            }
            for msg in msgs {
                ep.recycle(msg.payload);
            }
            z += group.len();
        }
    }

    phase3_place_into(&tmp, n, block, rank, out);
    ep.recycle(tmp);
    ep.charge_copy((n * block) as u64);
    Ok(())
}

/// The static schedule of [`run`].
///
/// # Panics
///
/// Panics on an insufficient radix vector.
#[must_use]
pub fn plan(n: usize, block: usize, ports: usize, radices: &[usize]) -> Schedule {
    assert!(ports >= 1);
    let mut schedule = Schedule::new(n, ports);
    if n <= 1 {
        return schedule;
    }
    let decomp = MixedRadix::new(n, radices);
    for x in 0..decomp.num_subphases() {
        let steps = decomp.steps_in_subphase(x);
        let mut z = 1usize;
        while z <= steps {
            let group: Vec<usize> = (z..=steps.min(z + ports - 1)).collect();
            let mut transfers = Vec::with_capacity(group.len() * n);
            for &zz in &group {
                let bytes = (decomp.blocks_in_step(x, zz) * block) as u64;
                let dist = decomp.step_distance(x, zz) % n;
                for src in 0..n {
                    transfers.push(Transfer {
                        src,
                        dst: (src + dist) % n,
                        bytes,
                    });
                }
            }
            schedule.push_round(transfers);
            z += group.len();
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_net::{Cluster, ClusterConfig};
    use bruck_sched::ScheduleStats;

    fn run_cluster(n: usize, block: usize, radices: &[usize], ports: usize) {
        let cfg = ClusterConfig::new(n).with_ports(ports);
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, block);
            run(ep, &input, block, radices)
        })
        .unwrap();
        for (rank, result) in out.results.iter().enumerate() {
            assert_eq!(
                result,
                &crate::verify::index_expected(rank, n, block),
                "n={n} radices={radices:?} k={ports} rank={rank}"
            );
        }
    }

    #[test]
    fn correct_small_vectors() {
        run_cluster(6, 3, &[2, 3], 1);
        run_cluster(6, 3, &[3, 2], 1);
        run_cluster(12, 2, &[2, 2, 3], 1);
        run_cluster(30, 1, &[2, 3, 5], 1);
        run_cluster(33, 2, &[2, 2, 3, 3], 1);
    }

    #[test]
    fn correct_multiport() {
        run_cluster(12, 2, &[3, 4], 2);
        run_cluster(20, 2, &[4, 5], 3);
    }

    #[test]
    fn matches_uniform_when_vector_is_uniform() {
        // Same wire behaviour as the §3 algorithm for (r, r, …).
        let n = 9;
        let b = 2;
        let uniform = crate::index::bruck::plan(n, b, 1, 3);
        let mixed = plan(n, b, 1, &[3, 3]);
        assert_eq!(uniform, mixed);
    }

    #[test]
    fn oversized_vector_trimmed_like_model() {
        run_cluster(6, 2, &[2, 3, 5, 7], 1);
    }

    #[test]
    fn insufficient_vector_rejected() {
        let cfg = ClusterConfig::new(10);
        let err = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), 10, 1);
            run(ep, &input, 1, &[2, 2])
        })
        .unwrap_err();
        assert!(matches!(err, NetError::App(_)));
    }

    #[test]
    fn plan_complexity_matches_model() {
        for (n, radices) in [
            (33usize, vec![2usize, 2, 3, 3]),
            (30, vec![2, 3, 5]),
            (12, vec![4, 3]),
        ] {
            for k in [1usize, 2] {
                let s = plan(n, 4, k, &radices);
                s.validate().unwrap();
                assert_eq!(
                    ScheduleStats::of(&s).complexity,
                    MixedRadix::new(n, &radices).complexity(4, k),
                    "n={n} radices={radices:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn executed_trace_matches_plan() {
        let n = 12;
        let radices = [2usize, 2, 3];
        let cfg = ClusterConfig::new(n).with_trace();
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::index_input(ep.rank(), n, 3);
            run(ep, &input, 3, &radices)
        })
        .unwrap();
        let traced = bruck_sched::Schedule::from_trace(&out.trace.unwrap(), n, 1);
        assert_eq!(traced, plan(n, 3, 1, &radices).without_empty_rounds());
    }
}

//! Pure processor-memory configuration simulator for the index algorithm
//! (the matrices of the paper's Figs. 1–3).
//!
//! A configuration is the `n × n` matrix whose column `i` is processor
//! `p_i`'s memory and whose row `j` is memory offset `j`; every cell names
//! a block `(owner, index)` ("`ij`" in the paper's notation). The
//! simulator applies the three phases of the index algorithm to the whole
//! matrix at once — no threads, no payloads — so tests can pin the exact
//! intermediate configurations the paper draws.

use bruck_model::radix::RadixDecomposition;

/// A processor-memory configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    n: usize,
    /// `cells[proc][offset] = (owner, block_index)`.
    cells: Vec<Vec<(usize, usize)>>,
}

impl Configuration {
    /// The initial configuration: processor `i` holds `B[i, j]` at offset
    /// `j` (Fig. 1 left).
    #[must_use]
    pub fn initial(n: usize) -> Self {
        Self {
            n,
            cells: (0..n).map(|i| (0..n).map(|j| (i, j)).collect()).collect(),
        }
    }

    /// The target configuration: processor `i` holds `B[j, i]` at offset
    /// `j` (Fig. 1 right).
    #[must_use]
    pub fn target(n: usize) -> Self {
        Self {
            n,
            cells: (0..n).map(|i| (0..n).map(|j| (j, i)).collect()).collect(),
        }
    }

    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The block at `(proc, offset)`.
    #[must_use]
    pub fn cell(&self, proc: usize, offset: usize) -> (usize, usize) {
        self.cells[proc][offset]
    }

    /// Phase 1: every processor rotates its column `i` steps upward.
    #[must_use]
    pub fn phase1(&self) -> Self {
        let cells = (0..self.n)
            .map(|i| {
                (0..self.n)
                    .map(|m| self.cells[i][(m + i) % self.n])
                    .collect()
            })
            .collect();
        Self { n: self.n, cells }
    }

    /// One step of phase 2: all blocks at offsets whose radix-`r` digit
    /// `x` equals `z` move `z·r^x` processors to the right, keeping their
    /// offsets.
    #[must_use]
    pub fn phase2_step(&self, r: usize, x: u32, z: usize) -> Self {
        let decomp = RadixDecomposition::new(self.n, r);
        let dist = decomp.step_distance(x, z);
        let mut cells = self.cells.clone();
        let moving: Vec<usize> = (0..self.n).filter(|&m| decomp.digit(m, x) == z).collect();
        for i in 0..self.n {
            for &m in &moving {
                cells[(i + dist) % self.n][m] = self.cells[i][m];
            }
        }
        Self { n: self.n, cells }
    }

    /// Phase 3: processor `i` moves offset `m` to offset `(i - m) mod n`.
    #[must_use]
    pub fn phase3(&self) -> Self {
        let mut cells = vec![vec![(0usize, 0usize); self.n]; self.n];
        for i in 0..self.n {
            for m in 0..self.n {
                cells[i][(i + self.n - m) % self.n] = self.cells[i][m];
            }
        }
        Self { n: self.n, cells }
    }

    /// Render as the paper's figures do: rows are offsets, columns are
    /// processors, each cell the two-index label `ij`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for offset in 0..self.n {
            for proc in 0..self.n {
                let (o, j) = self.cells[proc][offset];
                out.push_str(&format!(" {o}{j}"));
            }
            out.push('\n');
        }
        out
    }
}

/// A labelled snapshot of the algorithm's progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Human-readable phase/step label.
    pub label: String,
    /// The configuration after that step.
    pub config: Configuration,
}

/// Run the whole algorithm symbolically, returning a snapshot after every
/// phase and every phase-2 step (Figs. 2–3 are exactly these sequences for
/// `n = 5` with `r = n` and `r = 2`).
#[must_use]
pub fn snapshots(n: usize, r: usize) -> Vec<Snapshot> {
    let mut out = Vec::new();
    let mut cfg = Configuration::initial(n);
    out.push(Snapshot {
        label: "initial".into(),
        config: cfg.clone(),
    });
    cfg = cfg.phase1();
    out.push(Snapshot {
        label: "after phase 1".into(),
        config: cfg.clone(),
    });
    if n > 1 {
        let decomp = RadixDecomposition::new(n, r.min(n));
        for x in 0..decomp.num_subphases() {
            for z in 1..=decomp.steps_in_subphase(x) {
                cfg = cfg.phase2_step(r.min(n), x, z);
                out.push(Snapshot {
                    label: format!("after subphase {x} step {z}"),
                    config: cfg.clone(),
                });
            }
        }
    }
    cfg = cfg.phase3();
    out.push(Snapshot {
        label: "after phase 3".into(),
        config: cfg,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1: the before/after configurations for n = 5.
    #[test]
    fn fig1_before_after() {
        let before = Configuration::initial(5);
        assert_eq!(before.cell(2, 3), (2, 3)); // "23" in column p2, row 3
        let after = Configuration::target(5);
        assert_eq!(after.cell(2, 3), (3, 2)); // "32"
                                              // Columns of `after` are the rows of `before`: a block transpose.
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(after.cell(i, j), (before.cell(j, i).0, before.cell(j, i).1));
            }
        }
    }

    /// Fig. 2: the three phases for n = 5 (communication phase as one
    /// conceptual rotation per block).
    #[test]
    fn fig2_phase_configurations() {
        let p1 = Configuration::initial(5).phase1();
        // After phase 1, processor i holds B[i, (m+i) mod 5] at offset m;
        // e.g. p2's column reads 22, 23, 24, 20, 21.
        for m in 0..5 {
            assert_eq!(p1.cell(2, m), (2, (m + 2) % 5));
        }
        // Run all of phase 2 (any radix; use r = 5: one subphase, 4 steps).
        let mut cfg = p1;
        for z in 1..=4 {
            cfg = cfg.phase2_step(5, 0, z);
        }
        // After phase 2, processor p holds B[(p - m) mod 5, p] at offset m.
        for p in 0..5 {
            for m in 0..5 {
                assert_eq!(cfg.cell(p, m), ((p + 5 - m) % 5, p), "p={p} m={m}");
            }
        }
        // Phase 3 fixes offsets: the target configuration.
        assert_eq!(cfg.phase3(), Configuration::target(5));
    }

    /// Fig. 3: the r = 2 subphase sequence for n = 5 reaches the target in
    /// ⌈log2 5⌉ = 3 communication steps.
    #[test]
    fn fig3_r2_subphases() {
        let snaps = snapshots(5, 2);
        // initial, phase1, three phase-2 steps (w=3 subphases × 1 step),
        // phase 3.
        assert_eq!(snaps.len(), 6);
        assert_eq!(snaps[1].label, "after phase 1");
        assert_eq!(snaps[2].label, "after subphase 0 step 1");
        assert_eq!(snaps[3].label, "after subphase 1 step 1");
        assert_eq!(snaps[4].label, "after subphase 2 step 1");
        assert_eq!(snaps[5].config, Configuration::target(5));
        // After subphase 0, blocks with odd offsets have moved one
        // processor right: offset 1 of p1 now holds what p0 had there.
        let s = &snaps[2].config;
        assert_eq!(s.cell(1, 1), (0, 1)); // B[0,1] (was at p0 offset 1 after phase 1)
    }

    #[test]
    fn all_radices_reach_target() {
        for n in 1..=12 {
            for r in 2..=n.max(2) {
                let snaps = snapshots(n, r);
                assert_eq!(
                    snaps.last().unwrap().config,
                    Configuration::target(n),
                    "n={n} r={r}"
                );
            }
        }
    }

    #[test]
    fn phase2_moves_exactly_digit_blocks() {
        let n = 9;
        let r = 3;
        let cfg = Configuration::initial(n).phase1();
        let stepped = cfg.phase2_step(r, 1, 2); // digit 1 == 2 → offsets 6,7,8
        for m in 0..n {
            for p in 0..n {
                if (m / 3) % 3 == 2 {
                    assert_eq!(stepped.cell((p + 6) % n, m), cfg.cell(p, m));
                } else {
                    assert_eq!(stepped.cell(p, m), cfg.cell(p, m));
                }
            }
        }
    }

    #[test]
    fn render_shape() {
        let r = Configuration::initial(3).render();
        assert_eq!(r.lines().count(), 3);
        assert!(r.starts_with(" 00 10 20"));
    }
}

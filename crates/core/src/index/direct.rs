//! Direct (linear) exchange: the `r = n` end of the trade-off, written
//! without the rotation phases. Step `i` sends block `rank+i` directly to
//! processor `rank+i` and receives block `rank` of processor `rank-i`;
//! steps are grouped `k` per round.
//!
//! Complexity: `C1 = ⌈(n-1)/k⌉`, `C2 = b·⌈(n-1)/k⌉` — transfer-optimal
//! (Proposition 2.4), round-pessimal (Theorem 2.6 shows this is forced).

use bruck_net::{Comm, NetError, RecvSpec, SendSpec};
use bruck_sched::{Schedule, Transfer};

/// Execute the direct exchange.
///
/// Thin allocating wrapper over [`run_into`].
///
/// # Errors
///
/// Buffer-size mismatch as [`NetError::App`]; network failures propagate.
pub fn run<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; sendbuf.len()];
    run_into(ep, sendbuf, block, &mut out)?;
    Ok(out)
}

/// Execute the direct exchange into a caller-provided output buffer of
/// `n·b` bytes. Sends borrow straight from `sendbuf` and received
/// payloads are recycled to the cluster's pool, so steady-state rounds
/// are allocation-free.
///
/// # Errors
///
/// Buffer-size mismatch as [`NetError::App`]; network failures propagate.
pub fn run_into<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    block: usize,
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    if sendbuf.len() != n * block {
        return Err(NetError::App(format!(
            "send buffer is {} bytes, expected n·b = {}",
            sendbuf.len(),
            n * block
        )));
    }
    if out.len() != n * block {
        return Err(NetError::App(format!(
            "output buffer is {} bytes, expected n·b = {}",
            out.len(),
            n * block
        )));
    }
    let rank = ep.rank();
    let k = ep.ports();
    out[rank * block..(rank + 1) * block]
        .copy_from_slice(&sendbuf[rank * block..(rank + 1) * block]);

    let mut i = 1usize;
    while i < n {
        let group: Vec<usize> = (i..n.min(i + k)).collect();
        let sends: Vec<SendSpec<'_>> = group
            .iter()
            .map(|&d| {
                let dst = (rank + d) % n;
                SendSpec {
                    to: dst,
                    tag: d as u64,
                    payload: &sendbuf[dst * block..(dst + 1) * block],
                }
            })
            .collect();
        let recvs: Vec<RecvSpec> = group
            .iter()
            .map(|&d| RecvSpec {
                from: (rank + n - d) % n,
                tag: d as u64,
            })
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        for (&d, msg) in group.iter().zip(&msgs) {
            let src = (rank + n - d) % n;
            out[src * block..(src + 1) * block].copy_from_slice(&msg.payload);
        }
        for msg in msgs {
            ep.recycle(msg.payload);
        }
        i += group.len();
    }
    Ok(())
}

/// The static schedule of the direct exchange.
#[must_use]
pub fn plan(n: usize, block: usize, ports: usize) -> Schedule {
    assert!(ports >= 1);
    let mut schedule = Schedule::new(n, ports);
    if n <= 1 {
        return schedule;
    }
    let mut i = 1usize;
    while i < n {
        let group: Vec<usize> = (i..n.min(i + ports)).collect();
        let mut transfers = Vec::with_capacity(group.len() * n);
        for &d in &group {
            for src in 0..n {
                transfers.push(Transfer {
                    src,
                    dst: (src + d) % n,
                    bytes: block as u64,
                });
            }
        }
        schedule.push_round(transfers);
        i += group.len();
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_model::bounds::index_bounds;
    use bruck_net::{Cluster, ClusterConfig};
    use bruck_sched::ScheduleStats;

    #[test]
    fn correct_one_port() {
        for n in [1usize, 2, 5, 9] {
            let cfg = ClusterConfig::new(n);
            let out = Cluster::run(&cfg, |ep| {
                let input = crate::verify::index_input(ep.rank(), n, 3);
                run(ep, &input, 3)
            })
            .unwrap();
            for (rank, result) in out.results.iter().enumerate() {
                assert_eq!(
                    result,
                    &crate::verify::index_expected(rank, n, 3),
                    "n={n} rank={rank}"
                );
            }
        }
    }

    #[test]
    fn correct_multiport() {
        for k in [2usize, 4] {
            let n = 10;
            let cfg = ClusterConfig::new(n).with_ports(k);
            let out = Cluster::run(&cfg, |ep| {
                let input = crate::verify::index_input(ep.rank(), n, 2);
                run(ep, &input, 2)
            })
            .unwrap();
            for (rank, result) in out.results.iter().enumerate() {
                assert_eq!(result, &crate::verify::index_expected(rank, n, 2));
            }
            // ⌈9/k⌉ rounds.
            let c = out.metrics.global_complexity().unwrap();
            assert_eq!(c.c1, (9usize.div_ceil(k)) as u64);
        }
    }

    #[test]
    fn plan_is_transfer_optimal() {
        for n in [2usize, 7, 16, 33] {
            for k in [1usize, 2, 3] {
                let s = plan(n, 5, k);
                s.validate().unwrap();
                let stats = ScheduleStats::of(&s);
                let lb = index_bounds(n, k, 5);
                // Within one round's rounding of the C2 lower bound.
                assert!(stats.complexity.c2 <= ((n - 1).div_ceil(k) * 5) as u64);
                assert!(stats.complexity.c2 >= lb.c2);
                assert_eq!(stats.complexity.c1, ((n - 1).div_ceil(k)) as u64);
            }
        }
    }
}

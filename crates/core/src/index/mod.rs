//! The index operation (all-to-all personalized communication,
//! `MPI_Alltoall`).
//!
//! Every processor `i` starts with `n` blocks; block `j` is `B[i, j]`,
//! destined for processor `j`. Afterwards processor `i` holds
//! `B[0, i], B[1, i], …, B[n-1, i]` in that order.

pub mod bruck;
pub mod direct;
pub mod hierarchical;
pub mod hypercube;
pub mod mixed;
pub mod pairwise;
pub mod sim;

use bruck_net::{Comm, NetError};
use bruck_sched::Schedule;

/// Selects and parameterizes an index algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexAlgorithm {
    /// The paper's §3 algorithm with the given radix `r ∈ [2, n]`.
    /// `r = 2` minimizes rounds, `r = n` minimizes volume.
    BruckRadix(usize),
    /// Direct exchange: every pair communicates once (`⌈(n-1)/k⌉`
    /// rounds of `b`-byte messages) — identical complexity to
    /// `BruckRadix(n)` but without the rotation phases.
    Direct,
    /// Pairwise XOR exchange (requires `n` a power of two): step `i`
    /// exchanges with `rank ⊕ i`.
    Pairwise,
    /// Store-and-forward hypercube index (\[20\], Johnsson & Ho; requires
    /// `n` a power of two, one-port): `log₂ n` rounds of `n/2` blocks.
    Hypercube,
}

impl IndexAlgorithm {
    /// Execute the algorithm. `sendbuf` is `n·b` bytes (block `j` at
    /// offset `j·b`); the result has the same layout with block `j` being
    /// the one received from processor `j`.
    ///
    /// # Errors
    ///
    /// Network errors, or [`NetError::App`] for unsupported parameters
    /// (e.g. non-power-of-two `n` for [`IndexAlgorithm::Pairwise`]).
    pub fn run<C: Comm + ?Sized>(
        &self,
        ep: &mut C,
        sendbuf: &[u8],
        block: usize,
    ) -> Result<Vec<u8>, NetError> {
        match *self {
            Self::BruckRadix(r) => bruck::run(ep, sendbuf, block, r),
            Self::Direct => direct::run(ep, sendbuf, block),
            Self::Pairwise => pairwise::run(ep, sendbuf, block),
            Self::Hypercube => hypercube::run(ep, sendbuf, block),
        }
    }

    /// Execute the algorithm into a caller-provided `n·b`-byte output
    /// buffer. All scratch comes from the cluster's buffer pool, so
    /// steady-state rounds perform no heap allocations.
    ///
    /// # Errors
    ///
    /// Network errors, or [`NetError::App`] for unsupported parameters
    /// or a mis-sized output buffer.
    pub fn run_into<C: Comm + ?Sized>(
        &self,
        ep: &mut C,
        sendbuf: &[u8],
        block: usize,
        out: &mut [u8],
    ) -> Result<(), NetError> {
        match *self {
            Self::BruckRadix(r) => bruck::run_into(ep, sendbuf, block, r, out),
            Self::Direct => direct::run_into(ep, sendbuf, block, out),
            Self::Pairwise => pairwise::run_into(ep, sendbuf, block, out),
            Self::Hypercube => hypercube::run_into(ep, sendbuf, block, out),
        }
    }

    /// Emit the algorithm's static communication schedule for `n`
    /// processors, `b`-byte blocks, and `k` ports.
    ///
    /// # Panics
    ///
    /// Panics for unsupported parameters (the executor returns an error
    /// instead; planners are used in analysis contexts where a panic is
    /// the right failure mode).
    #[must_use]
    pub fn plan(&self, n: usize, block: usize, ports: usize) -> Schedule {
        match *self {
            Self::BruckRadix(r) => bruck::plan(n, block, ports, r),
            Self::Direct => direct::plan(n, block, ports),
            Self::Pairwise => pairwise::plan(n, block, ports),
            Self::Hypercube => hypercube::plan(n, block),
        }
    }

    /// Short display name for reports and benches.
    #[must_use]
    pub fn name(&self) -> String {
        match *self {
            Self::BruckRadix(r) => format!("bruck-r{r}"),
            Self::Direct => "direct".into(),
            Self::Pairwise => "pairwise-xor".into(),
            Self::Hypercube => "hypercube".into(),
        }
    }
}

//! Deterministic input patterns and result oracles.
//!
//! Every byte of every block is a function of `(owner, block, offset)`, so
//! tests can build the expected output of any collective without running
//! one — and a single wrong byte pinpoints which block went astray.

/// The canonical content byte for byte `t` of block `j` of processor `i`.
///
/// Mixes all three coordinates so that transposed/shifted results cannot
/// collide by accident.
#[must_use]
pub fn content_byte(i: usize, j: usize, t: usize) -> u8 {
    let x = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(t as u64);
    (x ^ (x >> 29) ^ (x >> 47)) as u8
}

/// The index operation's *input* at processor `rank`: `n` blocks of `b`
/// bytes, block `j` being `B[rank, j]`.
#[must_use]
pub fn index_input(rank: usize, n: usize, b: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(n * b);
    for j in 0..n {
        for t in 0..b {
            v.push(content_byte(rank, j, t));
        }
    }
    v
}

/// The index operation's *expected output* at processor `rank`: block `j`
/// of the result is `B[j, rank]` (the `rank`-th block of processor `j`).
#[must_use]
pub fn index_expected(rank: usize, n: usize, b: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(n * b);
    for j in 0..n {
        for t in 0..b {
            v.push(content_byte(j, rank, t));
        }
    }
    v
}

/// The concatenation's input at processor `rank`: one block `B[rank]`
/// (encoded as block index 0 of owner `rank`).
#[must_use]
pub fn concat_input(rank: usize, b: usize) -> Vec<u8> {
    (0..b).map(|t| content_byte(rank, 0, t)).collect()
}

/// The concatenation's expected output (identical on every processor):
/// `B[0] ‖ B[1] ‖ … ‖ B[n-1]`.
#[must_use]
pub fn concat_expected(n: usize, b: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(n * b);
    for i in 0..n {
        v.extend(concat_input(i, b));
    }
    v
}

/// Locate the first mismatching block for a human-readable diagnosis.
#[must_use]
pub fn first_block_mismatch(actual: &[u8], expected: &[u8], b: usize) -> Option<usize> {
    debug_assert_eq!(actual.len(), expected.len());
    actual
        .chunks(b.max(1))
        .zip(expected.chunks(b.max(1)))
        .position(|(a, e)| a != e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_bytes_distinguish_coordinates() {
        assert_ne!(content_byte(0, 1, 0), content_byte(1, 0, 0));
        assert_ne!(content_byte(2, 3, 4), content_byte(2, 3, 5));
        // Deterministic.
        assert_eq!(content_byte(7, 8, 9), content_byte(7, 8, 9));
    }

    #[test]
    fn index_oracle_is_transpose() {
        let n = 6;
        let b = 3;
        // Gather all inputs into a matrix and transpose manually.
        let inputs: Vec<Vec<u8>> = (0..n).map(|i| index_input(i, n, b)).collect();
        for rank in 0..n {
            let expected = index_expected(rank, n, b);
            for j in 0..n {
                assert_eq!(
                    &expected[j * b..(j + 1) * b],
                    &inputs[j][rank * b..(rank + 1) * b],
                    "rank={rank} j={j}"
                );
            }
        }
    }

    #[test]
    fn concat_oracle_concatenates() {
        let expected = concat_expected(4, 2);
        assert_eq!(expected.len(), 8);
        for i in 0..4 {
            assert_eq!(&expected[i * 2..(i + 1) * 2], concat_input(i, 2).as_slice());
        }
    }

    #[test]
    fn mismatch_locator() {
        let a = vec![1u8, 2, 3, 4];
        let mut e = a.clone();
        assert_eq!(first_block_mismatch(&a, &e, 2), None);
        e[2] = 9;
        assert_eq!(first_block_mismatch(&a, &e, 2), Some(1));
    }
}

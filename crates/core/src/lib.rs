//! The paper's contribution: **index** (all-to-all personalized
//! communication, `MPI_Alltoall`) and **concatenation** (all-to-all
//! broadcast, `MPI_Allgather`) algorithms for multiport fully connected
//! message-passing systems, after
//!
//! > J. Bruck, C.-T. Ho, S. Kipnis, E. Upfal, D. Weathersby. *Efficient
//! > Algorithms for All-to-All Communications in Multiport Message-Passing
//! > Systems.* SPAA 1994; IEEE TPDS 8(11):1143–1156, 1997.
//!
//! # Operations
//!
//! * [`index`] — every processor `i` starts with `n` blocks
//!   `B[i,0..n]`; afterwards processor `i` holds `B[0,i], …, B[n-1,i]`.
//!   The paper's algorithm family is parameterized by a radix
//!   `r ∈ [2, n]` trading start-ups against volume; `r = 2` is round
//!   optimal, `r = n` transfer optimal, and everything in between is a
//!   tunable compromise (§3).
//! * [`concat`](mod@crate::concat) — every processor starts with one block; afterwards every
//!   processor holds all `n` blocks. The circulant-graph algorithm is
//!   simultaneously round and transfer optimal for most `(n, k, b)` (§4).
//!
//! Each algorithm exists twice:
//!
//! * an **executor** — an SPMD routine moving real bytes through a
//!   [`bruck_net::Endpoint`];
//! * a **planner** — a pure function emitting the identical communication
//!   pattern as a [`bruck_sched::Schedule`] for analysis.
//!
//! Integration tests assert the two agree (the executed trace equals the
//! plan), so the complexity numbers reported by the benches are the
//! complexities of the code that actually runs.
//!
//! Baselines the paper compares against (or that were folklore at the
//! time) live alongside: direct/pairwise/hypercube index algorithms, and
//! gather+broadcast / recursive-doubling / ring concatenations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod appendix;
pub mod autotune;
pub mod blocks;
pub mod concat;
pub mod index;
pub mod primitives;
pub mod program_exec;
pub mod reduce;
pub mod scan;
pub mod vbruck;
pub mod verify;
pub mod vops;

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::api::{
        allgather, allgather_auto, allgather_into, alltoall, alltoall_auto, alltoall_into,
        alltoall_resilient, alltoall_resilient_with_policy, ResilientAlltoall, Tuning,
        TuningBuilder,
    };
    pub use crate::autotune::{calibrated_fit, calibrated_model};
    pub use crate::concat::ConcatAlgorithm;
    pub use crate::index::IndexAlgorithm;
    pub use crate::reduce::{allreduce_via_concat, reduce, ReduceOp};
    pub use crate::vbruck::{VLayout, VMethod};
    #[allow(deprecated)]
    pub use crate::vops::{allgatherv, alltoallv};
    pub use crate::vops::{
        allgatherv_into, alltoallv_auto, alltoallv_auto_into, alltoallv_into, alltoallv_resilient,
        alltoallv_resilient_with_policy, ResilientAlltoallv,
    };
    pub use bruck_model::complexity::Complexity;
    pub use bruck_model::cost::{CostModel, LinearModel, Sp1Model};
    pub use bruck_model::planner::{ConcatPlan, IndexPlan, PlanChoice, Planner, VIndexPlan};
    pub use bruck_net::RecoveryPolicy;
    pub use bruck_net::{Cluster, ClusterConfig, Comm, Endpoint, Group, NetError};
}

//! Prefix reductions (`MPI_Scan` / `MPI_Exscan`) over `f64` vectors.
//!
//! CCL-style companion operations: rank `i` ends with the reduction of
//! ranks `0..=i` (inclusive) or `0..i` (exclusive). Implemented with the
//! Hillis–Steele doubling recursion — `⌈log₂ n⌉` rounds, each rank
//! exchanging at most one `m`-vector per round — which is exactly the
//! non-circular cousin of the concatenation's doubling phase.

use bruck_net::{Comm, NetError, RecvSpec, SendSpec};

use crate::reduce::{decode, encode_into, ReduceOp};

/// Inclusive prefix reduction: rank `i` returns `op(data_0, …, data_i)`.
///
/// # Errors
///
/// Network failures propagate; length mismatches surface as
/// [`NetError::App`].
pub fn scan<C: Comm + ?Sized>(
    ep: &mut C,
    data: &[f64],
    op: ReduceOp,
) -> Result<Vec<f64>, NetError> {
    let n = ep.size();
    let rank = ep.rank();
    let mut acc = data.to_vec();
    if n == 1 {
        return Ok(acc);
    }
    let rounds = bruck_model::radix::ceil_log(2, n);
    let mut dist = 1usize;
    let mut payload = ep.acquire(acc.len() * 8);
    for round in 0..rounds {
        // Send the running prefix op(data_{rank-dist+1..=rank}) — which is
        // `acc` — to rank+dist; fold in what arrives from rank-dist.
        encode_into(&acc, &mut payload);
        let sends: Vec<SendSpec<'_>> = (rank + dist < n)
            .then(|| SendSpec {
                to: rank + dist,
                tag: u64::from(round),
                payload: &payload,
            })
            .into_iter()
            .collect();
        let recvs: Vec<RecvSpec> = (rank >= dist)
            .then(|| RecvSpec {
                from: rank - dist,
                tag: u64::from(round),
            })
            .into_iter()
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        if let Some(msg) = msgs.first() {
            let incoming = decode(&msg.payload)?;
            if incoming.len() != acc.len() {
                return Err(NetError::App("scan length mismatch across ranks".into()));
            }
            // Prefix order: the incoming covers strictly earlier ranks.
            let mut merged = incoming;
            op.fold_into(&mut merged, &acc);
            acc = merged;
        }
        for msg in msgs {
            ep.recycle(msg.payload);
        }
        dist *= 2;
    }
    ep.recycle(payload);
    Ok(acc)
}

/// Exclusive prefix reduction: rank `i` returns `op(data_0, …, data_{i-1})`,
/// and rank 0 returns `None` (there is no empty-prefix value for a
/// general operator).
///
/// # Errors
///
/// See [`scan`].
pub fn exscan<C: Comm + ?Sized>(
    ep: &mut C,
    data: &[f64],
    op: ReduceOp,
) -> Result<Option<Vec<f64>>, NetError> {
    let n = ep.size();
    let rank = ep.rank();
    // Shift-by-one on top of the inclusive scan would cost an extra
    // round; instead run the same recursion but never fold own data in.
    let mut acc: Option<Vec<f64>> = None;
    if n == 1 {
        return Ok(None);
    }
    let rounds = bruck_model::radix::ceil_log(2, n);
    let mut dist = 1usize;
    let mut carry = vec![0.0f64; data.len()];
    let mut payload = ep.acquire(data.len() * 8);
    for round in 0..rounds {
        // What we forward to rank+dist must cover ranks
        // [rank-dist+1, rank] — own data plus the exclusive prefix
        // accumulated so far, *clipped* to that window. The doubling
        // recursion keeps exactly that window in `carry`.
        match &acc {
            // acc covers [rank-dist+1, rank-1]; adding own data covers
            // the window including rank.
            Some(prev) => {
                carry.copy_from_slice(prev);
                op.fold_into(&mut carry, data);
            }
            None => carry.copy_from_slice(data),
        }
        encode_into(&carry, &mut payload);
        let sends: Vec<SendSpec<'_>> = (rank + dist < n)
            .then(|| SendSpec {
                to: rank + dist,
                tag: u64::from(round),
                payload: &payload,
            })
            .into_iter()
            .collect();
        let recvs: Vec<RecvSpec> = (rank >= dist)
            .then(|| RecvSpec {
                from: rank - dist,
                tag: u64::from(round),
            })
            .into_iter()
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        if let Some(msg) = msgs.first() {
            let incoming = decode(&msg.payload)?;
            if incoming.len() != data.len() {
                return Err(NetError::App("exscan length mismatch across ranks".into()));
            }
            acc = Some(match acc {
                Some(prev) => {
                    let mut merged = incoming;
                    op.fold_into(&mut merged, &prev);
                    merged
                }
                None => incoming,
            });
        }
        for msg in msgs {
            ep.recycle(msg.payload);
        }
        dist *= 2;
    }
    ep.recycle(payload);
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_net::{Cluster, ClusterConfig};

    fn input(rank: usize, m: usize) -> Vec<f64> {
        (0..m).map(|i| (rank * 3 + i) as f64 * 0.5 - 1.0).collect()
    }

    fn prefix(upto_inclusive: usize, m: usize, op: ReduceOp) -> Vec<f64> {
        let mut acc = input(0, m);
        for r in 1..=upto_inclusive {
            op.fold_into(&mut acc, &input(r, m));
        }
        acc
    }

    #[test]
    fn inclusive_scan_all_ops() {
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            for n in [1usize, 2, 5, 8, 13] {
                let m = 4;
                let cfg = ClusterConfig::new(n);
                let out = Cluster::run(&cfg, |ep| {
                    let mine = input(ep.rank(), m);
                    scan(ep, &mine, op)
                })
                .unwrap();
                for (rank, r) in out.results.iter().enumerate() {
                    let want = prefix(rank, m, op);
                    for (g, e) in r.iter().zip(&want) {
                        assert!((g - e).abs() < 1e-9, "{op:?} n={n} rank={rank}");
                    }
                }
            }
        }
    }

    #[test]
    fn exclusive_scan_shifts_by_one() {
        let n = 9;
        let m = 3;
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let mine = input(ep.rank(), m);
            exscan(ep, &mine, ReduceOp::Sum)
        })
        .unwrap();
        assert!(out.results[0].is_none());
        for rank in 1..n {
            let got = out.results[rank].as_ref().unwrap();
            let want = prefix(rank - 1, m, ReduceOp::Sum);
            for (g, e) in got.iter().zip(&want) {
                assert!((g - e).abs() < 1e-9, "rank={rank}");
            }
        }
    }

    #[test]
    fn scan_round_count_is_logarithmic() {
        let n = 16;
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let mine = input(ep.rank(), 2);
            scan(ep, &mine, ReduceOp::Sum)
        })
        .unwrap();
        assert_eq!(out.metrics.global_complexity().unwrap().c1, 4);
    }

    #[test]
    fn scan_and_exscan_compose() {
        // inclusive = op(exclusive, own) everywhere except rank 0.
        let n = 7;
        let m = 5;
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let mine = input(ep.rank(), m);
            let inc = scan(ep, &mine, ReduceOp::Max)?;
            let exc = exscan(ep, &mine, ReduceOp::Max)?;
            Ok((mine, inc, exc))
        })
        .unwrap();
        for (rank, (mine, inc, exc)) in out.results.iter().enumerate() {
            match exc {
                None => {
                    assert_eq!(rank, 0);
                    assert_eq!(inc, mine);
                }
                Some(exc) => {
                    let mut composed = exc.clone();
                    ReduceOp::Max.fold_into(&mut composed, mine);
                    for (a, b) in composed.iter().zip(inc) {
                        assert!((a - b).abs() < 1e-9, "rank={rank}");
                    }
                }
            }
        }
    }
}

//! The configurable non-uniform Bruck family: executors behind the
//! [`vops`](crate::vops) API.
//!
//! The paper's index algorithm assumes one uniform block size `b`;
//! production all-to-all traffic is heavy-tailed. This module carries
//! the three members of the non-uniform family over the pooled data
//! plane, all driven by the same metadata round (one circulant concat
//! of each rank's count row, after which **every rank holds the full
//! `n×n` size matrix** — the shared state that lets the SPMD ranks
//! agree on pad sizes, quotas, tail schedules, and the auto plan
//! without any extra agreement protocol):
//!
//! * **direct** — every pair ships its exact bytes, distance-scheduled
//!   `k` pairs per round, skipping distances no pair uses. Transfer
//!   optimal; `⌈(n-1)/k⌉` start-ups.
//! * **padded Bruck** — every travelling block is padded to the global
//!   maximum count, the tuned uniform radix-`r` index (with its gather
//!   -spec staging) moves the padded matrix, and the padding is
//!   stripped on unpack. Log-round; volume inflated by the skew.
//! * **two-phase Bruck** — phase 1 moves a uniform `quota`-byte slice
//!   of every block through the log-round index; phase 2 moves the
//!   heavy tails above the quota direct. Interpolates between the
//!   other two (quota `0` *is* direct, quota `≥ max` *is* padded).
//!
//! The family follows Fan et al., *Configurable Algorithms for
//! All-to-All Collectives* (arXiv:2411.02581), transplanted onto the
//! paper's radix-`r` index core and this workspace's pooled transport.

use bruck_model::planner::VIndexPlan;
use bruck_net::{Comm, NetError, RecvSpec, SendSpec};

use crate::concat::ConcatAlgorithm;
use crate::index::IndexAlgorithm;

/// Per-destination counts and displacements over one contiguous
/// buffer — the typed layout the v-ops address payloads with
/// (`MPI_Alltoallv`'s `counts`/`displs` pair, minus the raw-pointer
/// footguns).
///
/// Block `j` of a buffer `buf` under layout `l` is
/// `buf[l.displ(j) .. l.displ(j) + l.count(j)]`. Layouts built by
/// [`from_counts`](VLayout::from_counts) are *dense* (displacements are
/// the prefix sums, blocks tile `[0, total)`); [`new`](VLayout::new)
/// accepts arbitrary non-overlapping-or-not displacements for strided
/// or shared-prefix sends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VLayout {
    counts: Vec<usize>,
    displs: Vec<usize>,
    total: usize,
}

impl VLayout {
    /// Dense layout: block `j` has `counts[j]` bytes at displacement
    /// `counts[0] + … + counts[j-1]`.
    ///
    /// # Panics
    ///
    /// Panics if the counts sum past `usize::MAX` (impossible for
    /// counts describing buffers that actually exist in one address
    /// space).
    #[must_use]
    pub fn from_counts(counts: &[usize]) -> Self {
        Self::try_from_counts(counts).expect("layout total overflows usize")
    }

    /// [`from_counts`](Self::from_counts) with the overflow reported as
    /// an error instead of a panic — the form the metadata round uses
    /// on *announced* (attacker-controllable) counts.
    pub(crate) fn try_from_counts(counts: &[usize]) -> Result<Self, NetError> {
        let mut displs = Vec::with_capacity(counts.len());
        let mut total = 0usize;
        for &c in counts {
            displs.push(total);
            total = total
                .checked_add(c)
                .ok_or_else(|| NetError::App("v-layout: counts sum past usize::MAX".to_string()))?;
        }
        Ok(Self {
            counts: counts.to_vec(),
            displs,
            total,
        })
    }

    /// Layout with explicit displacements. `total` is the least buffer
    /// length that contains every block.
    ///
    /// # Errors
    ///
    /// [`NetError::App`] if the vectors' lengths differ or any block
    /// end overflows `usize`.
    pub fn new(counts: Vec<usize>, displs: Vec<usize>) -> Result<Self, NetError> {
        if counts.len() != displs.len() {
            return Err(NetError::App(format!(
                "v-layout: {} counts but {} displacements",
                counts.len(),
                displs.len()
            )));
        }
        let mut total = 0usize;
        for (j, (&c, &d)) in counts.iter().zip(&displs).enumerate() {
            let end = d
                .checked_add(c)
                .ok_or_else(|| NetError::App(format!("v-layout: block {j} end overflows usize")))?;
            total = total.max(end);
        }
        Ok(Self {
            counts,
            displs,
            total,
        })
    }

    /// Number of blocks (peers) the layout addresses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the layout addresses no blocks at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Byte count of block `j`.
    #[must_use]
    pub fn count(&self, j: usize) -> usize {
        self.counts[j]
    }

    /// Byte displacement of block `j`.
    #[must_use]
    pub fn displ(&self, j: usize) -> usize {
        self.displs[j]
    }

    /// All counts, in peer order.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The least buffer length containing every block.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Byte range of block `j`.
    #[must_use]
    pub fn range(&self, j: usize) -> core::ops::Range<usize> {
        self.displs[j]..self.displs[j] + self.counts[j]
    }

    /// Block `j` of `buf` under this layout.
    ///
    /// # Panics
    ///
    /// Panics if the block's range exceeds `buf` (see
    /// [`fits`](Self::fits)).
    #[must_use]
    pub fn slice<'a>(&self, buf: &'a [u8], j: usize) -> &'a [u8] {
        &buf[self.range(j)]
    }

    /// The largest block count.
    #[must_use]
    pub fn max_count(&self) -> usize {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Whether every block lies inside a `len`-byte buffer.
    #[must_use]
    pub fn fits(&self, len: usize) -> bool {
        self.total <= len
    }
}

/// A forced member of the non-uniform family (see
/// [`Tuning::vmethod`](crate::api::Tuning::vmethod)); leave unset to
/// let the planner arg-min over all three from the measured skew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VMethod {
    /// Direct pairwise exchange of the exact bytes.
    Direct,
    /// Padded Bruck through the uniform radix-`radix` index.
    Padded {
        /// Radix of the uniform index phase (clamped to `[2, n]`).
        radix: usize,
    },
    /// Two-phase Bruck: uniform quota slice + direct tails.
    TwoPhase {
        /// Radix of the uniform quota phase (clamped to `[2, n]`).
        radix: usize,
        /// Bytes per block for the uniform phase; `None` picks the
        /// planner's default (mean travelling count).
        quota: Option<usize>,
    },
}

fn decode_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8-byte length"))
}

/// Metadata round: circulant-concat every rank's count row so each
/// rank holds the full `n×n` row-major size matrix
/// (`matrix[i·n + j]` = bytes rank `i` sends rank `j`). One concat of
/// `n·8` bytes per rank — `⌈log_{k+1} n⌉` rounds — replaces the seed's
/// index-only metadata *and* upgrades it: the full matrix is exactly
/// the shared state the pad size, quota, tail schedule, and auto plan
/// all need to be rank-consistent.
pub(crate) fn exchange_size_matrix<C: Comm + ?Sized>(
    ep: &mut C,
    layout: &VLayout,
) -> Result<Vec<u64>, NetError> {
    let n = ep.size();
    let mut row = ep.acquire(n * 8);
    for (slot, &c) in row.chunks_exact_mut(8).zip(layout.counts()) {
        slot.copy_from_slice(&(c as u64).to_le_bytes());
    }
    let mut flat = ep.acquire(n * n * 8);
    let result = ConcatAlgorithm::Bruck(Default::default()).run_into(ep, &row, &mut flat);
    ep.recycle(row);
    let matrix = result.map(|()| {
        (0..n * n)
            .map(|e| decode_u64(&flat[e * 8..(e + 1) * 8]))
            .collect()
    });
    ep.recycle(flat);
    matrix
}

/// Validate the announced matrix **before any payload round**: every
/// entry must fit `usize` and this rank's incoming column must sum
/// without overflow. Returns the matrix as `usize` plus the dense
/// receive layout (one block per source, in rank order).
///
/// The seed only caught a forged 8-byte size entry *after* the full
/// exchange, when the received length mismatched; now a poisoned
/// announcement fails fast, before a byte of payload moves.
pub(crate) fn validate_matrix(
    n: usize,
    rank: usize,
    matrix: &[u64],
) -> Result<(Vec<usize>, VLayout), NetError> {
    debug_assert_eq!(matrix.len(), n * n);
    let mut sizes = Vec::with_capacity(n * n);
    for (e, &s) in matrix.iter().enumerate() {
        sizes.push(usize::try_from(s).map_err(|_| {
            NetError::App(format!(
                "alltoallv: rank {} announced a {s}-byte block for rank {} that cannot \
                 fit in usize",
                e / n,
                e % n
            ))
        })?);
    }
    let incoming: Vec<usize> = (0..n).map(|src| sizes[src * n + rank]).collect();
    let recv = VLayout::try_from_counts(&incoming)?;
    Ok((sizes, recv))
}

/// Largest travelling (off-diagonal) entry of the size matrix.
fn off_diag_max(n: usize, sizes: &[usize]) -> usize {
    let mut max = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                max = max.max(sizes[i * n + j]);
            }
        }
    }
    max
}

/// Distances `1..n` at which at least one pair moves `> floor` bytes,
/// under the globally-shared matrix — every rank derives the same
/// list, so the chunked rounds never desynchronize.
fn active_distances(n: usize, sizes: &[usize], floor: usize) -> Vec<usize> {
    (1..n)
        .filter(|&d| (0..n).any(|i| sizes[i * n + (i + d) % n] > floor))
        .collect()
}

/// Copy this rank's own block straight from the send buffer.
fn place_self(sendbuf: &[u8], send: &VLayout, recv: &VLayout, rank: usize, out: &mut [u8]) {
    out[recv.range(rank)].copy_from_slice(send.slice(sendbuf, rank));
}

/// The direct member: exact bytes, `k` active distances per round.
/// Sends borrow the caller's buffer (zero-copy out); received payloads
/// are copied into place and recycled to the pool.
pub(crate) fn run_direct<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    send: &VLayout,
    sizes: &[usize],
    recv: &VLayout,
    out: &mut [u8],
) -> Result<(), NetError> {
    run_tails(ep, sendbuf, send, sizes, 0, recv, out)?;
    place_self(sendbuf, send, recv, ep.rank(), out);
    Ok(())
}

/// The direct exchange of everything above `quota` — the whole block
/// when `quota == 0` (the direct member), the heavy tails in phase 2
/// of the two-phase member otherwise.
fn run_tails<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    send: &VLayout,
    sizes: &[usize],
    quota: usize,
    recv: &VLayout,
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    let rank = ep.rank();
    let k = ep.ports().max(1);
    for group in active_distances(n, sizes, quota).chunks(k) {
        let sends: Vec<SendSpec<'_>> = group
            .iter()
            .filter_map(|&d| {
                let dst = (rank + d) % n;
                let count = sizes[rank * n + dst];
                (count > quota).then(|| SendSpec {
                    to: dst,
                    tag: d as u64,
                    payload: &sendbuf[send.displ(dst) + quota..send.displ(dst) + count],
                })
            })
            .collect();
        let expected: Vec<(usize, usize)> = group
            .iter()
            .filter_map(|&d| {
                let src = (rank + n - d) % n;
                let count = sizes[src * n + rank];
                (count > quota).then(|| (src, count - quota))
            })
            .collect();
        let recvs: Vec<RecvSpec> = group
            .iter()
            .filter_map(|&d| {
                let src = (rank + n - d) % n;
                (sizes[src * n + rank] > quota).then_some(RecvSpec {
                    from: src,
                    tag: d as u64,
                })
            })
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        for (&(src, tail), msg) in expected.iter().zip(msgs) {
            if msg.payload.len() != tail {
                return Err(NetError::App(format!(
                    "alltoallv: rank {src} announced {tail} tail bytes but sent {}",
                    msg.payload.len()
                )));
            }
            out[recv.displ(src) + quota..recv.displ(src) + quota + tail]
                .copy_from_slice(&msg.payload);
            ep.charge_copy(tail as u64);
            ep.recycle(msg.payload);
        }
    }
    Ok(())
}

/// The padded member: pad every travelling block to the global max,
/// run the tuned uniform index, strip the padding on unpack. All
/// scratch is pooled; the uniform index underneath stages its rounds
/// through gather specs, so the padded matrix is copied once in and
/// once out.
pub(crate) fn run_padded<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    send: &VLayout,
    sizes: &[usize],
    radix: usize,
    recv: &VLayout,
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    let rank = ep.rank();
    place_self(sendbuf, send, recv, rank, out);
    let bmax = off_diag_max(n, sizes);
    if bmax == 0 {
        return Ok(());
    }
    let padded_len = n
        .checked_mul(bmax)
        .ok_or_else(|| NetError::App("alltoallv: padded buffer overflows usize".to_string()))?;
    // Pack: slot j = block j left-aligned in bmax bytes (acquire zeroes
    // the scratch, so the padding needs no explicit memset). The self
    // slot stays zero — the uniform index never moves it, and the own
    // block was placed above.
    let mut padded = ep.acquire(padded_len);
    let mut packed = 0u64;
    for j in 0..n {
        if j != rank {
            let blk = send.slice(sendbuf, j);
            padded[j * bmax..j * bmax + blk.len()].copy_from_slice(blk);
            packed += blk.len() as u64;
        }
    }
    ep.charge_copy(packed);
    let mut gathered = ep.acquire(padded_len);
    let result =
        IndexAlgorithm::BruckRadix(radix.clamp(2, n)).run_into(ep, &padded, bmax, &mut gathered);
    ep.recycle(padded);
    if let Err(e) = result {
        ep.recycle(gathered);
        return Err(e);
    }
    // Strip: the receiver knows every incoming count from the metadata
    // matrix, so the pad bytes simply stay behind in the scratch.
    let mut stripped = 0u64;
    for src in 0..n {
        if src != rank {
            let count = recv.count(src);
            out[recv.range(src)].copy_from_slice(&gathered[src * bmax..src * bmax + count]);
            stripped += count as u64;
        }
    }
    ep.charge_copy(stripped);
    ep.recycle(gathered);
    Ok(())
}

/// The two-phase member: a uniform `quota`-byte slice of every block
/// rides the radix-`r` index (blocks shorter than the quota are
/// zero-padded up to it), then the tails above the quota move direct.
/// Degenerates to [`run_direct`] at `quota == 0` and to [`run_padded`]
/// at `quota ≥ max`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_two_phase<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    send: &VLayout,
    sizes: &[usize],
    radix: usize,
    quota: usize,
    recv: &VLayout,
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    let rank = ep.rank();
    let bmax = off_diag_max(n, sizes);
    if quota == 0 {
        return run_direct(ep, sendbuf, send, sizes, recv, out);
    }
    if quota >= bmax {
        return run_padded(ep, sendbuf, send, sizes, radix, recv, out);
    }
    place_self(sendbuf, send, recv, rank, out);

    // Phase 1: uniform index over the first min(count, quota) bytes of
    // every travelling block, zero-padded to the quota.
    let phase1_len = n
        .checked_mul(quota)
        .ok_or_else(|| NetError::App("alltoallv: quota buffer overflows usize".to_string()))?;
    let mut sliced = ep.acquire(phase1_len);
    let mut packed = 0u64;
    for j in 0..n {
        if j != rank {
            let blk = send.slice(sendbuf, j);
            let head = blk.len().min(quota);
            sliced[j * quota..j * quota + head].copy_from_slice(&blk[..head]);
            packed += head as u64;
        }
    }
    ep.charge_copy(packed);
    let mut gathered = ep.acquire(phase1_len);
    let result =
        IndexAlgorithm::BruckRadix(radix.clamp(2, n)).run_into(ep, &sliced, quota, &mut gathered);
    ep.recycle(sliced);
    if let Err(e) = result {
        ep.recycle(gathered);
        return Err(e);
    }
    let mut stripped = 0u64;
    for src in 0..n {
        if src != rank {
            let head = recv.count(src).min(quota);
            out[recv.displ(src)..recv.displ(src) + head]
                .copy_from_slice(&gathered[src * quota..src * quota + head]);
            stripped += head as u64;
        }
    }
    ep.charge_copy(stripped);
    ep.recycle(gathered);

    // Phase 2: the heavy tails, direct.
    run_tails(ep, sendbuf, send, sizes, quota, recv, out)
}

/// Execute one planned member of the family. The plan must be derived
/// from the shared metadata matrix (or forced identically on every
/// rank) — the executors assume all ranks run the same member.
pub(crate) fn run_plan<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    send: &VLayout,
    sizes: &[usize],
    plan: &VIndexPlan,
    recv: &VLayout,
    out: &mut [u8],
) -> Result<(), NetError> {
    match *plan {
        VIndexPlan::Direct => run_direct(ep, sendbuf, send, sizes, recv, out),
        VIndexPlan::Padded { radix } => run_padded(ep, sendbuf, send, sizes, radix, recv, out),
        VIndexPlan::TwoPhase { radix, quota } => {
            run_two_phase(ep, sendbuf, send, sizes, radix, quota, recv, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_from_counts_is_dense() {
        let l = VLayout::from_counts(&[3, 0, 5]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.total(), 8);
        assert_eq!(l.range(0), 0..3);
        assert_eq!(l.range(1), 3..3);
        assert_eq!(l.range(2), 3..8);
        assert_eq!(l.max_count(), 5);
        assert!(l.fits(8));
        assert!(!l.fits(7));
    }

    #[test]
    fn layout_with_displacements() {
        let l = VLayout::new(vec![2, 2], vec![4, 0]).unwrap();
        assert_eq!(l.total(), 6);
        assert_eq!(l.slice(b"abcdef", 0), b"ef");
        assert_eq!(l.slice(b"abcdef", 1), b"ab");
        assert!(VLayout::new(vec![1], vec![usize::MAX]).is_err());
        assert!(VLayout::new(vec![1, 2], vec![0]).is_err());
    }

    #[test]
    fn overflowing_counts_are_rejected_not_panicked() {
        let err = VLayout::try_from_counts(&[usize::MAX, 2]).unwrap_err();
        assert!(matches!(err, NetError::App(_)));
    }

    #[test]
    fn validate_matrix_rejects_forged_sizes() {
        // On 64-bit targets every u64 fits usize, but a forged column
        // that sums past usize::MAX must still fail before payload.
        let n = 2;
        let m = [u64::MAX, 0, u64::MAX, 0];
        let err = validate_matrix(n, 0, &m).unwrap_err();
        assert!(matches!(err, NetError::App(_)), "{err:?}");
    }

    #[test]
    fn active_distance_floor() {
        // 3 ranks, only 0→1 carries data (size 4).
        let sizes = [0, 4, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(active_distances(3, &sizes, 0), vec![1]);
        assert_eq!(active_distances(3, &sizes, 3), vec![1]);
        assert!(active_distances(3, &sizes, 4).is_empty());
    }
}

//! Block-buffer manipulation: the local data movements of the index
//! algorithm's phases 1 and 3 and the pack/unpack of phase 2
//! (Appendix A's `copy`, `pack`, and `unpack` routines).

/// Rotate the `n` blocks of `buf` (each `b` bytes) `steps` blocks
/// *upwards* (toward index 0), cyclically: `out[m] = in[(m + steps) mod n]`.
///
/// This is Appendix A lines 3–4 with `steps = my_rank` (phase 1).
///
/// # Panics
///
/// Panics if `buf.len() != n * b`.
#[must_use]
pub fn rotate_up(buf: &[u8], n: usize, b: usize, steps: usize) -> Vec<u8> {
    let mut out = vec![0u8; buf.len()];
    rotate_up_into(buf, n, b, steps, &mut out);
    out
}

/// [`rotate_up`] into a caller-provided buffer (no allocation).
///
/// # Panics
///
/// Panics if `buf.len() != n * b` or `out.len() != n * b`.
pub fn rotate_up_into(buf: &[u8], n: usize, b: usize, steps: usize, out: &mut [u8]) {
    assert_eq!(buf.len(), n * b, "buffer must hold n·b bytes");
    assert_eq!(out.len(), n * b, "output must hold n·b bytes");
    if n == 0 {
        return;
    }
    let s = steps % n;
    out[..(n - s) * b].copy_from_slice(&buf[s * b..]);
    out[(n - s) * b..].copy_from_slice(&buf[..s * b]);
}

/// The inverse-with-reversal placement of phase 3 (Appendix A lines
/// 21–23): `out[(rank - m) mod n] = in[m]`.
///
/// After phase 2, offset `m` of processor `rank` holds the block that
/// originated at processor `(rank - m) mod n`; this permutation lands
/// block `B[i, rank]` at offset `i`.
#[must_use]
pub fn phase3_place(buf: &[u8], n: usize, b: usize, rank: usize) -> Vec<u8> {
    let mut out = vec![0u8; n * b];
    phase3_place_into(buf, n, b, rank, &mut out);
    out
}

/// [`phase3_place`] into a caller-provided buffer (no allocation).
///
/// # Panics
///
/// Panics if `buf.len() != n * b` or `out.len() != n * b`.
pub fn phase3_place_into(buf: &[u8], n: usize, b: usize, rank: usize, out: &mut [u8]) {
    assert_eq!(buf.len(), n * b);
    assert_eq!(out.len(), n * b);
    for m in 0..n {
        let dst = (rank + n - m % n) % n;
        out[dst * b..(dst + 1) * b].copy_from_slice(&buf[m * b..(m + 1) * b]);
    }
}

/// Pack the blocks at the given indices into a contiguous message
/// (Appendix A's `pack`).
#[must_use]
pub fn pack(buf: &[u8], b: usize, indices: &[usize]) -> Vec<u8> {
    let mut out = vec![0u8; indices.len() * b];
    pack_into(buf, b, indices, &mut out);
    out
}

/// [`pack`] into a caller-provided buffer (no allocation).
///
/// # Panics
///
/// Panics if `out.len() != indices.len() * b`.
pub fn pack_into(buf: &[u8], b: usize, indices: &[usize], out: &mut [u8]) {
    assert_eq!(
        out.len(),
        indices.len() * b,
        "output/index-set size mismatch"
    );
    for (slot, &j) in indices.iter().enumerate() {
        out[slot * b..(slot + 1) * b].copy_from_slice(&buf[j * b..(j + 1) * b]);
    }
}

/// Unpack a contiguous message back into the blocks at the given indices
/// (Appendix A's `unpack`).
///
/// # Panics
///
/// Panics if the message length does not match `indices.len() * b`.
pub fn unpack(buf: &mut [u8], b: usize, indices: &[usize], msg: &[u8]) {
    assert_eq!(
        msg.len(),
        indices.len() * b,
        "message/index-set size mismatch"
    );
    for (slot, &j) in indices.iter().enumerate() {
        buf[j * b..(j + 1) * b].copy_from_slice(&msg[slot * b..(slot + 1) * b]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(ids: &[u8], b: usize) -> Vec<u8> {
        ids.iter()
            .flat_map(|&id| std::iter::repeat_n(id, b))
            .collect()
    }

    #[test]
    fn rotate_up_basic() {
        let buf = blocks(&[0, 1, 2, 3, 4], 2);
        let r = rotate_up(&buf, 5, 2, 2);
        assert_eq!(r, blocks(&[2, 3, 4, 0, 1], 2));
    }

    #[test]
    fn rotate_up_identity_and_wrap() {
        let buf = blocks(&[0, 1, 2], 3);
        assert_eq!(rotate_up(&buf, 3, 3, 0), buf);
        assert_eq!(rotate_up(&buf, 3, 3, 3), buf);
        assert_eq!(rotate_up(&buf, 3, 3, 4), rotate_up(&buf, 3, 3, 1));
    }

    #[test]
    fn phase3_inverts_phase1_modulo_transposition() {
        // For every rank: phase1 followed by phase3 with no communication
        // must place block m at (rank - (m - rank)) ... — concretely, the
        // composition sends original offset j to (2·rank - j) mod n; we
        // just pin the formula's behaviour on an example.
        let n = 5;
        let b = 1;
        let rank = 2;
        let buf: Vec<u8> = (0..n as u8).collect();
        let p1 = rotate_up(&buf, n, b, rank);
        assert_eq!(p1, vec![2, 3, 4, 0, 1]);
        let p3 = phase3_place(&p1, n, b, rank);
        // out[(2 - m) mod 5] = p1[m] = (m + 2) mod 5 ⇒ out[x] = (4 - x) mod 5.
        assert_eq!(p3, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let buf = blocks(&[10, 11, 12, 13, 14, 15], 4);
        let idx = [1usize, 3, 4];
        let msg = pack(&buf, 4, &idx);
        assert_eq!(msg, blocks(&[11, 13, 14], 4));
        let mut out = blocks(&[0, 0, 0, 0, 0, 0], 4);
        unpack(&mut out, 4, &idx, &msg);
        assert_eq!(out, blocks(&[0, 11, 0, 13, 14, 0], 4));
    }

    #[test]
    fn zero_byte_blocks() {
        let buf: Vec<u8> = Vec::new();
        assert_eq!(rotate_up(&buf, 4, 0, 2), Vec::<u8>::new());
        assert_eq!(pack(&buf, 0, &[0, 1]), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "n·b bytes")]
    fn rotate_rejects_bad_length() {
        let _ = rotate_up(&[1, 2, 3], 2, 2, 1);
    }
}

//! Block-buffer manipulation: the local data movements of the index
//! algorithm's phases 1 and 3 and the pack/unpack of phase 2
//! (Appendix A's `copy`, `pack`, and `unpack` routines).
//!
//! Two perf devices live here alongside the straightforward routines:
//!
//! * **gather spans** ([`gather_spans`] / [`unpack_spans`]) — a step's
//!   block-index set expressed as coalesced `(offset, len)` byte spans,
//!   the iovec the data plane's gather path
//!   ([`bruck_net::Endpoint::round_gather`]) stages straight into the
//!   transport's pooled buffer. Contiguous runs (common for low
//!   subphases, where a step's blocks are arithmetic runs of stride
//!   `r^x` blocks of `r^x·b` bytes each) collapse to a handful of big
//!   memcpys instead of one per block — and the separate pack buffer
//!   disappears entirely.
//! * **chunked parallel copies** — the rotate/placement/unpack moves are
//!   pure memcpy, so on large buffers they fan out across a few scoped
//!   threads (no rayon, no unsafe: disjointness comes from
//!   `chunks_mut`). Below [`PAR_COPY_MIN`] bytes everything stays
//!   single-threaded — thread spawn costs more than the copy.

/// Byte threshold above which a single contiguous copy (or a reversed
/// block placement) fans out across scoped threads. Chosen so the n·b
/// buffers of bench-sized runs stay on the fast single-threaded path and
/// only genuinely large payloads (≥ 4 MiB) pay a spawn.
pub const PAR_COPY_MIN: usize = 4 << 20;

/// Cap on copy helper threads: memory bandwidth saturates with a few
/// cores; more just adds spawn/join overhead.
const PAR_COPY_THREADS: usize = 4;

fn copy_threads() -> usize {
    // `available_parallelism` re-reads the cgroup filesystem on every
    // call (tens of microseconds — orders of magnitude more than the
    // small copies these helpers mostly move), so resolve it once.
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// `dst.copy_from_slice(src)`, split across scoped threads when the
/// buffers are at least `min_chunk·2` bytes (each thread gets a chunk of
/// at least `min_chunk`).
fn copy_chunked(dst: &mut [u8], src: &[u8], min_chunk: usize) {
    debug_assert_eq!(dst.len(), src.len());
    let threads = copy_threads()
        .min(PAR_COPY_THREADS)
        .min(dst.len() / min_chunk.max(1));
    if threads <= 1 {
        dst.copy_from_slice(src);
        return;
    }
    let chunk = dst.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (d, s) in dst.chunks_mut(chunk).zip(src.chunks(chunk)) {
            scope.spawn(move || d.copy_from_slice(s));
        }
    });
}

/// A large contiguous copy: plain `copy_from_slice` below
/// [`PAR_COPY_MIN`], chunked across a few scoped threads above it.
pub fn copy_large(dst: &mut [u8], src: &[u8]) {
    copy_chunked(dst, src, PAR_COPY_MIN);
}

/// Copy the `b`-byte blocks of `src` into `out` in reversed block order
/// (`out` block `t` = `src` block `count-1-t`), chunk-parallel when the
/// buffers clear `min_bytes`. Both phase-3 segments are exactly this
/// shape.
fn reverse_blocks_chunked(src: &[u8], b: usize, out: &mut [u8], min_bytes: usize) {
    debug_assert_eq!(src.len(), out.len());
    if b == 0 || src.is_empty() {
        return;
    }
    debug_assert_eq!(src.len() % b, 0);
    let count = src.len() / b;
    let place = |dst: &mut [u8], first_out_block: usize| {
        for (i, blk) in dst.chunks_mut(b).enumerate() {
            let s = count - 1 - (first_out_block + i);
            blk.copy_from_slice(&src[s * b..(s + 1) * b]);
        }
    };
    let threads = copy_threads().min(PAR_COPY_THREADS).min(count);
    if threads <= 1 || src.len() < min_bytes {
        place(out, 0);
        return;
    }
    let chunk_blocks = count.div_ceil(threads);
    std::thread::scope(|scope| {
        for (j, dst) in out.chunks_mut(chunk_blocks * b).enumerate() {
            let place = &place;
            scope.spawn(move || place(dst, j * chunk_blocks));
        }
    });
}

/// Rotate the `n` blocks of `buf` (each `b` bytes) `steps` blocks
/// *upwards* (toward index 0), cyclically: `out[m] = in[(m + steps) mod n]`.
///
/// This is Appendix A lines 3–4 with `steps = my_rank` (phase 1).
///
/// # Panics
///
/// Panics if `buf.len() != n * b`.
#[must_use]
pub fn rotate_up(buf: &[u8], n: usize, b: usize, steps: usize) -> Vec<u8> {
    let mut out = vec![0u8; buf.len()];
    rotate_up_into(buf, n, b, steps, &mut out);
    out
}

/// [`rotate_up`] into a caller-provided buffer (no allocation).
///
/// # Panics
///
/// Panics if `buf.len() != n * b` or `out.len() != n * b`.
pub fn rotate_up_into(buf: &[u8], n: usize, b: usize, steps: usize, out: &mut [u8]) {
    assert_eq!(buf.len(), n * b, "buffer must hold n·b bytes");
    assert_eq!(out.len(), n * b, "output must hold n·b bytes");
    if n == 0 {
        return;
    }
    let s = steps % n;
    copy_large(&mut out[..(n - s) * b], &buf[s * b..]);
    copy_large(&mut out[(n - s) * b..], &buf[..s * b]);
}

/// The inverse-with-reversal placement of phase 3 (Appendix A lines
/// 21–23): `out[(rank - m) mod n] = in[m]`.
///
/// After phase 2, offset `m` of processor `rank` holds the block that
/// originated at processor `(rank - m) mod n`; this permutation lands
/// block `B[i, rank]` at offset `i`.
#[must_use]
pub fn phase3_place(buf: &[u8], n: usize, b: usize, rank: usize) -> Vec<u8> {
    let mut out = vec![0u8; n * b];
    phase3_place_into(buf, n, b, rank, &mut out);
    out
}

/// [`phase3_place`] into a caller-provided buffer (no allocation).
///
/// # Panics
///
/// Panics if `buf.len() != n * b` or `out.len() != n * b`.
pub fn phase3_place_into(buf: &[u8], n: usize, b: usize, rank: usize, out: &mut [u8]) {
    assert_eq!(buf.len(), n * b);
    assert_eq!(out.len(), n * b);
    if n == 0 {
        return;
    }
    // dst = (rank + n - m) mod n splits [0, n) into two runs that are
    // each *reversed contiguous* copies: m ∈ [0, rank] lands at
    // rank - m (output blocks [0, rank]), m ∈ (rank, n) lands at
    // n + rank - m (output blocks (rank, n)). Two reversed-block moves —
    // disjoint output regions, so each can go chunk-parallel.
    let split = ((rank % n) + 1) * b;
    reverse_blocks_chunked(&buf[..split], b, &mut out[..split], PAR_COPY_MIN);
    reverse_blocks_chunked(&buf[split..], b, &mut out[split..], PAR_COPY_MIN);
}

/// Pack the blocks at the given indices into a contiguous message
/// (Appendix A's `pack`).
#[must_use]
pub fn pack(buf: &[u8], b: usize, indices: &[usize]) -> Vec<u8> {
    let mut out = vec![0u8; indices.len() * b];
    pack_into(buf, b, indices, &mut out);
    out
}

/// [`pack`] into a caller-provided buffer (no allocation).
///
/// # Panics
///
/// Panics if `out.len() != indices.len() * b`.
pub fn pack_into(buf: &[u8], b: usize, indices: &[usize], out: &mut [u8]) {
    assert_eq!(
        out.len(),
        indices.len() * b,
        "output/index-set size mismatch"
    );
    for (slot, &j) in indices.iter().enumerate() {
        out[slot * b..(slot + 1) * b].copy_from_slice(&buf[j * b..(j + 1) * b]);
    }
}

/// Unpack a contiguous message back into the blocks at the given indices
/// (Appendix A's `unpack`).
///
/// # Panics
///
/// Panics if the message length does not match `indices.len() * b`.
pub fn unpack(buf: &mut [u8], b: usize, indices: &[usize], msg: &[u8]) {
    assert_eq!(
        msg.len(),
        indices.len() * b,
        "message/index-set size mismatch"
    );
    for (slot, &j) in indices.iter().enumerate() {
        buf[j * b..(j + 1) * b].copy_from_slice(&msg[slot * b..(slot + 1) * b]);
    }
}

/// Coalesce a step's block-index set into `(byte_offset, byte_len)`
/// spans over the block buffer: consecutive indices merge into one span.
/// The index algorithm's steps select arithmetic runs, so the span list
/// is typically far shorter than the index list — for subphase 0 of the
/// radix decomposition the whole message is `⌈n/r⌉` runs of one block;
/// for higher subphases each run covers `r^x` consecutive blocks.
///
/// The spans are the *gather list* handed to
/// [`bruck_net::Endpoint::round_gather`], replacing the pack→stage
/// double copy with one staging gather.
#[must_use]
pub fn gather_spans(indices: &[usize], b: usize) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for &j in indices {
        match spans.last_mut() {
            Some((start, len)) if *start + *len == j * b => *len += b,
            _ => spans.push((j * b, b)),
        }
    }
    spans
}

/// Scatter a contiguous message back into the given byte spans of `buf`
/// — the span-granular inverse of the gather send, doing one (possibly
/// chunk-parallel) copy per span instead of one per block.
///
/// # Panics
///
/// Panics if `msg` is not exactly the spans' total length.
pub fn unpack_spans(buf: &mut [u8], spans: &[(usize, usize)], msg: &[u8]) {
    let total: usize = spans.iter().map(|&(_, len)| len).sum();
    assert_eq!(msg.len(), total, "message/span-set size mismatch");
    let mut at = 0usize;
    for &(start, len) in spans {
        copy_large(&mut buf[start..start + len], &msg[at..at + len]);
        at += len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(ids: &[u8], b: usize) -> Vec<u8> {
        ids.iter()
            .flat_map(|&id| std::iter::repeat_n(id, b))
            .collect()
    }

    #[test]
    fn rotate_up_basic() {
        let buf = blocks(&[0, 1, 2, 3, 4], 2);
        let r = rotate_up(&buf, 5, 2, 2);
        assert_eq!(r, blocks(&[2, 3, 4, 0, 1], 2));
    }

    #[test]
    fn rotate_up_identity_and_wrap() {
        let buf = blocks(&[0, 1, 2], 3);
        assert_eq!(rotate_up(&buf, 3, 3, 0), buf);
        assert_eq!(rotate_up(&buf, 3, 3, 3), buf);
        assert_eq!(rotate_up(&buf, 3, 3, 4), rotate_up(&buf, 3, 3, 1));
    }

    #[test]
    fn phase3_inverts_phase1_modulo_transposition() {
        // For every rank: phase1 followed by phase3 with no communication
        // must place block m at (rank - (m - rank)) ... — concretely, the
        // composition sends original offset j to (2·rank - j) mod n; we
        // just pin the formula's behaviour on an example.
        let n = 5;
        let b = 1;
        let rank = 2;
        let buf: Vec<u8> = (0..n as u8).collect();
        let p1 = rotate_up(&buf, n, b, rank);
        assert_eq!(p1, vec![2, 3, 4, 0, 1]);
        let p3 = phase3_place(&p1, n, b, rank);
        // out[(2 - m) mod 5] = p1[m] = (m + 2) mod 5 ⇒ out[x] = (4 - x) mod 5.
        assert_eq!(p3, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let buf = blocks(&[10, 11, 12, 13, 14, 15], 4);
        let idx = [1usize, 3, 4];
        let msg = pack(&buf, 4, &idx);
        assert_eq!(msg, blocks(&[11, 13, 14], 4));
        let mut out = blocks(&[0, 0, 0, 0, 0, 0], 4);
        unpack(&mut out, 4, &idx, &msg);
        assert_eq!(out, blocks(&[0, 11, 0, 13, 14, 0], 4));
    }

    #[test]
    fn zero_byte_blocks() {
        let buf: Vec<u8> = Vec::new();
        assert_eq!(rotate_up(&buf, 4, 0, 2), Vec::<u8>::new());
        assert_eq!(pack(&buf, 0, &[0, 1]), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "n·b bytes")]
    fn rotate_rejects_bad_length() {
        let _ = rotate_up(&[1, 2, 3], 2, 2, 1);
    }

    #[test]
    fn gather_spans_coalesce_runs() {
        // {1, 3, 4, 5, 7} with b = 2: three spans, the middle one a
        // 3-block run.
        assert_eq!(
            gather_spans(&[1, 3, 4, 5, 7], 2),
            vec![(2, 2), (6, 6), (14, 2)]
        );
        assert_eq!(gather_spans(&[], 4), Vec::<(usize, usize)>::new());
        // A fully contiguous set is one span.
        assert_eq!(gather_spans(&[0, 1, 2, 3], 8), vec![(0, 32)]);
        // b = 0 degenerates to a single empty span per... nothing: all
        // spans merge at offset 0 with zero length.
        assert_eq!(gather_spans(&[0, 1], 0), vec![(0, 0)]);
    }

    #[test]
    fn spans_match_pack_over_radix_steps() {
        // For every (n, r, step): gathering the spans must equal packing
        // the index list.
        for n in [5usize, 8, 12, 16] {
            for r in 2..=n {
                let d = bruck_model::RadixDecomposition::new(n, r);
                let b = 3usize;
                let buf: Vec<u8> = (0..n * b).map(|i| i as u8).collect();
                for (x, z) in d.steps() {
                    let idx = d.blocks_for_step(x, z);
                    let spans = gather_spans(&idx, b);
                    let packed = pack(&buf, b, &idx);
                    let gathered: Vec<u8> = spans
                        .iter()
                        .flat_map(|&(s, l)| buf[s..s + l].iter().copied())
                        .collect();
                    assert_eq!(gathered, packed, "n={n} r={r} x={x} z={z}");
                    // And unpack_spans inverts into the same places.
                    let mut via_idx = vec![0u8; n * b];
                    unpack(&mut via_idx, b, &idx, &packed);
                    let mut via_spans = vec![0u8; n * b];
                    unpack_spans(&mut via_spans, &spans, &packed);
                    assert_eq!(via_idx, via_spans, "n={n} r={r} x={x} z={z}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "span-set size mismatch")]
    fn unpack_spans_rejects_bad_length() {
        let mut buf = vec![0u8; 8];
        unpack_spans(&mut buf, &[(0, 4)], &[1, 2, 3]);
    }

    #[test]
    fn chunked_copy_matches_plain_copy() {
        // Force the parallel branch with a tiny min_chunk.
        let src: Vec<u8> = (0..1031u32).map(|i| (i % 251) as u8).collect();
        let mut dst = vec![0u8; src.len()];
        copy_chunked(&mut dst, &src, 64);
        assert_eq!(dst, src);
    }

    #[test]
    fn chunked_reverse_matches_sequential() {
        for (count, b) in [(7usize, 5usize), (16, 3), (33, 1), (4, 64)] {
            let src: Vec<u8> = (0..count * b).map(|i| (i % 253) as u8).collect();
            let mut seq = vec![0u8; src.len()];
            reverse_blocks_chunked(&src, b, &mut seq, usize::MAX);
            let mut par = vec![0u8; src.len()];
            reverse_blocks_chunked(&src, b, &mut par, 1);
            assert_eq!(seq, par, "count={count} b={b}");
            // Spot-check the definition on the first block.
            assert_eq!(&seq[..b], &src[(count - 1) * b..]);
        }
    }

    #[test]
    fn phase3_parallel_threshold_agrees_with_naive() {
        // A buffer big enough to clear PAR_COPY_MIN in one segment, so
        // the scoped-thread path actually runs against the naive loop.
        let n = 8usize;
        let b = (PAR_COPY_MIN / 4) + 13;
        let rank = 5usize;
        let buf: Vec<u8> = (0..n * b).map(|i| (i % 241) as u8).collect();
        let mut naive = vec![0u8; n * b];
        for m in 0..n {
            let dst = (rank + n - m) % n;
            naive[dst * b..(dst + 1) * b].copy_from_slice(&buf[m * b..(m + 1) * b]);
        }
        let fast = phase3_place(&buf, n, b, rank);
        assert_eq!(fast, naive);
    }
}

//! Live calibration of the cost model against the actual transport.
//!
//! The paper fine-tunes the index radix "according to the parameters of
//! the underlying machines" (§3.3) — its §3.5 measures `β` and `τ` on the
//! IBM SP-1 by hand. This module automates that measurement: every rank
//! pairs with a neighbour and runs a **ping ladder** (round-trip
//! exchanges at geometrically spaced message sizes), records
//! `(Complexity, seconds)` samples into a [`Calibrator`], and the cluster
//! agrees on a single merged [`LinearFit`] for the transport.
//!
//! Fits are cached per **transport kind** ([`Comm::transport_kind`]:
//! `"channel"`, `"uds"`, …) in a process-global table, so a bench that
//! spins up many clusters over the same substrate probes once.
//! Everything after the probe is collective-consistent: rank 0 alone
//! consults the cache and broadcasts its verdict, all ranks' local fits
//! are gathered back to rank 0, deterministically merged, and the merged
//! fit is broadcast — every rank leaves [`calibrated_fit`] holding
//! bit-identical parameters, so later planner decisions agree without
//! further communication.
//!
//! [`refresh_from_metrics`] closes the loop after real collectives run:
//! it folds a measured `(global complexity, wall seconds)` pair back into
//! the cached [`Calibrator`] and refits, so the model tracks the live
//! machine instead of the ping microbenchmark alone.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use bruck_model::calibrate::{Calibrator, LinearFit};
use bruck_model::complexity::Complexity;
use bruck_model::cost::LinearModel;
use bruck_net::{Comm, NetError, RunMetrics};

use crate::primitives::{broadcast, gather};

/// Tag base for probe traffic. Kept below bit 40 so it never collides
/// with [`bruck_net::GroupComm`] epoch prefixes.
const PROBE_TAG: u64 = 0xA0_0000_0000;

/// Ping-ladder message sizes (bytes). Geometric spacing separates the
/// start-up-dominated and bandwidth-dominated regimes so the two-variable
/// fit is well conditioned.
pub const PROBE_SIZES: [usize; 5] = [64, 512, 4096, 32768, 65536];

/// Timed repetitions per ladder rung (one extra untimed warmup precedes
/// each rung).
const PROBE_REPS: usize = 3;

struct CacheEntry {
    cal: Calibrator,
    fit: LinearFit,
}

static CACHE: Mutex<Option<HashMap<String, CacheEntry>>> = Mutex::new(None);

fn with_cache<R>(f: impl FnOnce(&mut HashMap<String, CacheEntry>) -> R) -> R {
    let mut guard = CACHE.lock().expect("calibration cache poisoned");
    f(guard.get_or_insert_with(HashMap::new))
}

/// Drop every cached fit (tests; or to force a re-probe).
pub fn clear_cache() {
    with_cache(HashMap::clear);
}

/// The cached fit for a transport kind, if any rank has probed it.
#[must_use]
pub fn cached_fit(kind: &str) -> Option<LinearFit> {
    with_cache(|c| c.get(kind).map(|e| e.fit))
}

/// Fold a measured run — its global [`Complexity`] and wall-clock
/// duration — into the cached calibrator for `kind` and refit. Returns
/// the updated fit, or `None` when there is no cache entry for `kind`,
/// the metrics carry no global complexity, or the refreshed samples no
/// longer support a fit.
pub fn refresh_from_metrics(
    kind: &str,
    metrics: &RunMetrics,
    wall_seconds: f64,
) -> Option<LinearFit> {
    let c = metrics.global_complexity()?;
    with_cache(|cache| {
        let entry = cache.get_mut(kind)?;
        entry.cal.record_run(c, wall_seconds);
        let fit = entry.cal.try_fit()?;
        entry.fit = fit;
        Some(fit)
    })
}

/// Encode an optional fit as a 1-byte validity flag plus the wire fit.
fn encode_opt(fit: Option<&LinearFit>) -> Vec<u8> {
    let mut out = vec![0u8; 1 + LinearFit::WIRE_BYTES];
    if let Some(f) = fit {
        out[0] = 1;
        out[1..].copy_from_slice(&f.to_bytes());
    }
    out
}

fn decode_opt(bytes: &[u8]) -> Option<LinearFit> {
    let arr: &[u8; LinearFit::WIRE_BYTES] = bytes.get(1..)?.try_into().ok()?;
    (bytes[0] == 1).then(|| LinearFit::from_bytes(arr))
}

/// Deterministic merge of the per-rank fits: arithmetic mean of the
/// parameters over the ranks that produced one, total sample count.
fn merge(fits: &[LinearFit]) -> Option<LinearFit> {
    if fits.is_empty() {
        return None;
    }
    let n = fits.len() as f64;
    Some(LinearFit {
        model: LinearModel::new(
            fits.iter().map(|f| f.model.startup).sum::<f64>() / n,
            fits.iter().map(|f| f.model.per_byte).sum::<f64>() / n,
        ),
        r_squared: fits.iter().map(|f| f.r_squared).sum::<f64>() / n,
        samples: fits.iter().map(|f| f.samples).sum(),
    })
}

/// When no rank could probe (a 1-rank cluster), fall back to the paper's
/// SP-1 calibration with `samples = 0` marking it synthetic.
fn fallback() -> LinearFit {
    LinearFit {
        model: LinearModel::sp1(),
        r_squared: 0.0,
        samples: 0,
    }
}

/// Run this rank's half of the ping ladder against `partner`, recording
/// one `(Complexity::new(1, size), seconds)` sample per timed exchange:
/// both directions of an exchange proceed concurrently, so one round-trip
/// ≈ one round's start-up plus `size` bytes per port.
fn probe_pair<C: Comm + ?Sized>(
    ep: &mut C,
    partner: usize,
    cal: &mut Calibrator,
) -> Result<(), NetError> {
    let payload = vec![0u8; *PROBE_SIZES.iter().max().expect("non-empty ladder")];
    let mut scratch = vec![0u8; payload.len()];
    for (i, &size) in PROBE_SIZES.iter().enumerate() {
        for rep in 0..=PROBE_REPS {
            let tag = PROBE_TAG | ((i as u64) << 8) | rep as u64;
            let t0 = Instant::now();
            ep.send_and_recv_into(partner, &payload[..size], partner, tag, &mut scratch)?;
            let secs = t0.elapsed().as_secs_f64();
            if rep > 0 {
                // rep 0 is the warmup (page faults, pool growth, lazy
                // connection setup) and is discarded.
                cal.record_run(Complexity::new(1, size as u64), secs);
            }
        }
    }
    Ok(())
}

/// Probe the live transport (or reuse the cached result) and return the
/// fitted `(β, τ)` every rank agrees on.
///
/// Collective over the whole communicator — every rank must call it. The
/// probe itself is pairwise: rank `i` exchanges with `i ^ 1`; with odd
/// `n` the last rank sits the ladder out and adopts the merged fit.
///
/// # Errors
///
/// Network failures propagate.
pub fn calibrated_fit<C: Comm + ?Sized>(ep: &mut C) -> Result<LinearFit, NetError> {
    let kind = ep.transport_kind();
    let n = ep.size();
    let rank = ep.rank();

    // Cache consultation must be collectively consistent: rank 0 alone
    // reads the table and broadcasts its verdict, so ranks never split
    // between the cached and probing paths (which would deadlock the
    // probe rounds).
    let verdict = if rank == 0 {
        encode_opt(cached_fit(kind).as_ref())
    } else {
        Vec::new()
    };
    let verdict = broadcast(ep, 0, &verdict)?;
    if let Some(fit) = decode_opt(&verdict) {
        return Ok(fit);
    }

    let mut cal = Calibrator::new();
    let partner = rank ^ 1;
    if partner < n {
        probe_pair(ep, partner, &mut cal)?;
    }
    let local = cal.try_fit();

    // Gather every rank's fit to rank 0, merge deterministically, and
    // broadcast the merged result so all ranks adopt ONE set of
    // parameters (per-rank timing noise must not diverge later plans).
    let gathered = gather(ep, 0, &encode_opt(local.as_ref()))?;
    let merged = if let Some(all) = gathered {
        let stride = 1 + LinearFit::WIRE_BYTES;
        let fits: Vec<LinearFit> = all.chunks_exact(stride).filter_map(decode_opt).collect();
        let fit = merge(&fits).unwrap_or_else(fallback);
        encode_opt(Some(&fit))
    } else {
        Vec::new()
    };
    let merged = broadcast(ep, 0, &merged)?;
    let fit = decode_opt(&merged).expect("rank 0 always encodes a merged fit");

    if rank == 0 {
        with_cache(|c| {
            c.insert(kind.to_string(), CacheEntry { cal, fit });
        });
    }
    Ok(fit)
}

/// [`calibrated_fit`], reduced to the [`LinearModel`] the planner wants.
///
/// # Errors
///
/// Network failures propagate.
pub fn calibrated_model<C: Comm + ?Sized>(ep: &mut C) -> Result<LinearModel, NetError> {
    Ok(calibrated_fit(ep)?.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_net::{Cluster, ClusterConfig};
    use std::sync::MutexGuard;

    /// The cache is process-global; tests that reset it must not
    /// interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn all_ranks_agree_on_one_fit() {
        let _guard = exclusive();
        clear_cache();
        let cfg = ClusterConfig::new(4);
        let out = Cluster::run(&cfg, calibrated_fit).unwrap();
        let first = out.results[0];
        for (rank, fit) in out.results.iter().enumerate() {
            assert_eq!(fit.to_bytes(), first.to_bytes(), "rank {rank} diverged");
        }
        assert!(first.samples > 0, "probing ranks must contribute samples");
        assert!(cached_fit("channel").is_some(), "fit must be cached");
    }

    #[test]
    fn second_cluster_reuses_cache() {
        let _guard = exclusive();
        clear_cache();
        let cfg = ClusterConfig::new(2);
        let first = Cluster::run(&cfg, calibrated_fit).unwrap().results[0];
        // Poison-pill check: a second run must return the cached fit
        // bit-for-bit (a re-probe would time differently).
        let second = Cluster::run(&cfg, calibrated_fit).unwrap().results[0];
        assert_eq!(first.to_bytes(), second.to_bytes());
    }

    #[test]
    fn odd_cluster_and_singleton_still_agree() {
        let _guard = exclusive();
        clear_cache();
        let out = Cluster::run(&ClusterConfig::new(3), calibrated_fit).unwrap();
        let first = out.results[0];
        for fit in &out.results {
            assert_eq!(fit.to_bytes(), first.to_bytes());
        }
        clear_cache();
        // n = 1: nobody can probe; the SP-1 fallback is returned.
        let solo = Cluster::run(&ClusterConfig::new(1), calibrated_fit)
            .unwrap()
            .results[0];
        assert_eq!(solo.samples, 0);
        assert!(solo.model.startup > 0.0);
    }

    #[test]
    fn refresh_folds_run_samples_into_cache() {
        let _guard = exclusive();
        clear_cache();
        let cfg = ClusterConfig::new(2);
        Cluster::run(&cfg, calibrated_fit).unwrap();
        let before = cached_fit("channel").unwrap();
        let out = Cluster::run(&cfg, |ep| {
            let buf = vec![7u8; 2 * 64];
            crate::index::bruck::run(ep, &buf, 64, 2).map(|_| ())
        })
        .unwrap();
        let refreshed = refresh_from_metrics("channel", &out.metrics, 1e-4).unwrap();
        // The cached calibrator holds rank 0's ladder samples (the merged
        // fit's count sums every rank's, so compare against the ladder).
        assert_eq!(refreshed.samples, PROBE_SIZES.len() * PROBE_REPS + 1);
        assert!(before.samples >= PROBE_SIZES.len() * PROBE_REPS);
        assert_eq!(cached_fit("channel").unwrap().samples, refreshed.samples);
        // Unknown transports have nothing to refresh.
        assert!(refresh_from_metrics("nonsuch", &out.metrics, 1e-4).is_none());
    }
}

//! The concatenation operation (all-to-all broadcast, `MPI_Allgather`).
//!
//! Every processor starts with one `b`-byte block; afterwards every
//! processor holds `B[0] ‖ B[1] ‖ … ‖ B[n-1]`.

pub mod bruck;
pub mod gather_bcast;
pub mod recursive_doubling;
pub mod ring;

use bruck_model::partition::Preference;
use bruck_net::{Comm, NetError};
use bruck_sched::Schedule;

/// Selects and parameterizes a concatenation algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcatAlgorithm {
    /// The paper's §4 circulant-graph algorithm: `⌈log_{k+1} n⌉` rounds,
    /// `⌈b(n-1)/k⌉` bytes — optimal in both measures outside the §4
    /// exception range; inside it, the `Preference` picks the fallback.
    Bruck(Preference),
    /// The folklore two-phase algorithm the paper's §4 opens with:
    /// binomial-tree gather to processor 0, then a broadcast of the
    /// concatenation down the same tree (sending each recipient only the
    /// blocks it lacks).
    GatherBroadcast,
    /// Recursive doubling (\[20\]): requires a power-of-two `n`, one port;
    /// optimal in both measures where it applies.
    RecursiveDoubling,
    /// Ring: `n-1` rounds of single blocks — transfer-optimal,
    /// round-pessimal (one-port).
    Ring,
}

impl ConcatAlgorithm {
    /// Execute the algorithm. `myblock` is this rank's `b`-byte block; the
    /// result is the `n·b`-byte concatenation, identical on every rank.
    ///
    /// # Errors
    ///
    /// Network errors; [`NetError::App`] for unsupported parameters.
    pub fn run<C: Comm + ?Sized>(&self, ep: &mut C, myblock: &[u8]) -> Result<Vec<u8>, NetError> {
        match *self {
            Self::Bruck(pref) => bruck::run(ep, myblock, pref),
            Self::GatherBroadcast => gather_bcast::run(ep, myblock),
            Self::RecursiveDoubling => recursive_doubling::run(ep, myblock),
            Self::Ring => ring::run(ep, myblock),
        }
    }

    /// Execute the algorithm into a caller-provided `n·b`-byte output
    /// buffer. All scratch comes from the cluster's buffer pool, so
    /// steady-state rounds perform no heap allocations.
    ///
    /// # Errors
    ///
    /// Network errors; [`NetError::App`] for unsupported parameters or a
    /// mis-sized output buffer.
    pub fn run_into<C: Comm + ?Sized>(
        &self,
        ep: &mut C,
        myblock: &[u8],
        out: &mut [u8],
    ) -> Result<(), NetError> {
        match *self {
            Self::Bruck(pref) => bruck::run_into(ep, myblock, pref, out),
            Self::GatherBroadcast => gather_bcast::run_into(ep, myblock, out),
            Self::RecursiveDoubling => recursive_doubling::run_into(ep, myblock, out),
            Self::Ring => ring::run_into(ep, myblock, out),
        }
    }

    /// Emit the static communication schedule.
    ///
    /// # Panics
    ///
    /// Panics for unsupported parameters.
    #[must_use]
    pub fn plan(&self, n: usize, block: usize, ports: usize) -> Schedule {
        match *self {
            Self::Bruck(pref) => bruck::plan(n, block, ports, pref),
            Self::GatherBroadcast => gather_bcast::plan(n, block, ports),
            Self::RecursiveDoubling => recursive_doubling::plan(n, block),
            Self::Ring => ring::plan(n, block),
        }
    }

    /// Short display name for reports and benches.
    #[must_use]
    pub fn name(&self) -> String {
        match *self {
            Self::Bruck(Preference::Rounds) => "bruck-circulant".into(),
            Self::Bruck(Preference::Bytes) => "bruck-circulant-b".into(),
            Self::GatherBroadcast => "gather-bcast".into(),
            Self::RecursiveDoubling => "recursive-doubling".into(),
            Self::Ring => "ring".into(),
        }
    }
}

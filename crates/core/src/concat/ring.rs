//! Ring concatenation: in round `i` every rank forwards to its right
//! neighbour the block it received in round `i-1` (starting with its
//! own). One-port, `C1 = n-1` rounds, `C2 = b(n-1)` — transfer-optimal,
//! round-pessimal. The standard bandwidth-bound baseline in MPI stacks.

use bruck_net::{Comm, NetError};
use bruck_sched::{Schedule, Transfer};

/// Execute the ring concatenation.
///
/// Thin allocating wrapper over [`run_into`].
///
/// # Errors
///
/// Network failures propagate.
pub fn run<C: Comm + ?Sized>(ep: &mut C, myblock: &[u8]) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; ep.size() * myblock.len()];
    run_into(ep, myblock, &mut out)?;
    Ok(out)
}

/// Execute the ring concatenation into a caller-provided output buffer
/// of `n·b` bytes. Each hop sends straight out of the result buffer and
/// receives into a single pooled scratch block, so steady-state rounds
/// are allocation-free.
///
/// # Errors
///
/// Network failures propagate; a mis-sized output buffer surfaces as
/// [`NetError::App`].
pub fn run_into<C: Comm + ?Sized>(
    ep: &mut C,
    myblock: &[u8],
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    let b = myblock.len();
    let rank = ep.rank();
    if out.len() != n * b {
        return Err(NetError::App("output buffer must be n·b bytes".into()));
    }
    out[rank * b..(rank + 1) * b].copy_from_slice(myblock);
    if n == 1 {
        return Ok(());
    }
    let right = (rank + 1) % n;
    let left = (rank + n - 1) % n;
    let mut inbound = ep.acquire(b);
    for i in 0..n - 1 {
        // Forward the block that originated i hops to the left.
        let owner = (rank + n - i) % n;
        let got = {
            let payload = &out[owner * b..(owner + 1) * b];
            ep.send_and_recv_into(right, payload, left, i as u64, &mut inbound)?
        };
        let incoming_owner = (rank + n - i - 1) % n;
        if got != b {
            return Err(NetError::App("ring block size mismatch".into()));
        }
        out[incoming_owner * b..(incoming_owner + 1) * b].copy_from_slice(&inbound);
    }
    ep.recycle(inbound);
    Ok(())
}

/// The static schedule of [`run`].
#[must_use]
pub fn plan(n: usize, block: usize) -> Schedule {
    let mut schedule = Schedule::new(n, 1);
    if n <= 1 {
        return schedule;
    }
    for _ in 0..n - 1 {
        schedule.push_round(
            (0..n)
                .map(|src| Transfer {
                    src,
                    dst: (src + 1) % n,
                    bytes: block as u64,
                })
                .collect(),
        );
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_model::bounds::concat_bounds;
    use bruck_net::{Cluster, ClusterConfig};
    use bruck_sched::ScheduleStats;

    #[test]
    fn correct() {
        for n in [1usize, 2, 3, 7, 12] {
            let cfg = ClusterConfig::new(n);
            let out = Cluster::run(&cfg, |ep| {
                let input = crate::verify::concat_input(ep.rank(), 4);
                run(ep, &input)
            })
            .unwrap();
            let expected = crate::verify::concat_expected(n, 4);
            for result in &out.results {
                assert_eq!(result, &expected, "n={n}");
            }
        }
    }

    #[test]
    fn transfer_optimal_round_pessimal() {
        for n in [3usize, 9, 20] {
            let c = ScheduleStats::of(&plan(n, 6)).complexity;
            let lb = concat_bounds(n, 1, 6);
            assert_eq!(c.c2, lb.c2, "n={n}");
            assert_eq!(c.c1, (n - 1) as u64, "n={n}");
            // Strictly round-pessimal once n-1 > ⌈log2 n⌉ (n ≥ 4).
            assert!(c.c1 >= lb.c1);
            assert!(c.c1 > lb.c1 || n <= 3);
        }
    }
}

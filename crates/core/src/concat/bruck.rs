//! The paper's §4 concatenation algorithm on the circulant graph
//! `G(n; S_0 ∪ … ∪ S_{d-2})`, with the byte-partitioned last round of
//! Proposition 4.2.
//!
//! Data layout during the algorithm: rank `v` keeps a *distance-ordered*
//! buffer `have`, where slot `δ` holds the block of rank
//! `(v - δ) mod n`. Phase 1 round `i` sends the first `(k+1)^i` slots to
//! the `k` ranks `v + j·(k+1)^i` and appends what arrives from
//! `v - j·(k+1)^i` at slot `j·(k+1)^i`; after `d-1` rounds the first
//! `n1 = (k+1)^{d-1}` slots are full (Theorem 4.1). The last round(s)
//! follow the [`bruck_model::partition`] plan: an area with offset `o`
//! carries, for each of its column slices `(m, rows)`, the bytes `rows`
//! of slot `n1 + m - o` to rank `v + o`, landing in slot `n1 + m`.

use bruck_model::partition::{plan_last_round, LastRoundPlan, Preference};
use bruck_model::radix::{ceil_log, pow};
use bruck_net::{Comm, NetError, RecvSpec, SendSpec};
use bruck_sched::{Schedule, Transfer};

/// Geometry shared by the executor and the planner.
struct Geometry {
    d: u32,
    n1: usize,
    n2: usize,
}

fn geometry(n: usize, k: usize) -> Geometry {
    let d = ceil_log(k + 1, n);
    let n1 = if d == 0 { 1 } else { pow(k + 1, d - 1) };
    Geometry {
        d,
        n1,
        n2: n - n1.min(n),
    }
}

/// Pack one area's bytes out of the distance-ordered buffer into a
/// caller-provided buffer of `area.bytes()` bytes.
fn pack_area_into(
    have: &[u8],
    b: usize,
    n1: usize,
    area: &bruck_model::partition::Area,
    out: &mut [u8],
) {
    debug_assert_eq!(out.len(), area.bytes());
    let mut at = 0usize;
    for s in &area.slices {
        let slot = n1 + s.col - area.offset;
        let len = s.len();
        out[at..at + len].copy_from_slice(&have[slot * b + s.row_start..slot * b + s.row_end]);
        at += len;
    }
}

/// Unpack one received area into the distance-ordered buffer.
fn unpack_area(
    have: &mut [u8],
    b: usize,
    n1: usize,
    area: &bruck_model::partition::Area,
    msg: &[u8],
) -> Result<(), NetError> {
    if msg.len() != area.bytes() {
        return Err(NetError::App(format!(
            "area message size mismatch: got {}, expected {}",
            msg.len(),
            area.bytes()
        )));
    }
    let mut at = 0usize;
    for s in &area.slices {
        let slot = n1 + s.col;
        let len = s.len();
        have[slot * b + s.row_start..slot * b + s.row_end].copy_from_slice(&msg[at..at + len]);
        at += len;
    }
    Ok(())
}

/// Execute the circulant concatenation.
///
/// Thin allocating wrapper over [`run_into`].
///
/// # Errors
///
/// Network failures propagate; parameter problems surface as
/// [`NetError::App`].
pub fn run<C: Comm + ?Sized>(
    ep: &mut C,
    myblock: &[u8],
    pref: Preference,
) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; ep.size() * myblock.len()];
    run_into(ep, myblock, pref, &mut out)?;
    Ok(out)
}

/// Execute the circulant concatenation into a caller-provided output
/// buffer of `n·b` bytes. The distance-ordered working buffer and every
/// per-round payload come from the cluster's buffer pool and are
/// recycled, so steady-state rounds are allocation-free.
///
/// # Errors
///
/// Network failures propagate; parameter problems surface as
/// [`NetError::App`].
pub fn run_into<C: Comm + ?Sized>(
    ep: &mut C,
    myblock: &[u8],
    pref: Preference,
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    let b = myblock.len();
    let rank = ep.rank();
    let k = ep.ports();
    if out.len() != n * b {
        return Err(NetError::App(format!(
            "output buffer is {} bytes, expected n·b = {}",
            out.len(),
            n * b
        )));
    }
    if n == 1 {
        out.copy_from_slice(myblock);
        return Ok(());
    }
    if b == 0 {
        return Ok(());
    }

    let geo = geometry(n, k);
    let mut have = ep.acquire(n * b);
    have[..b].copy_from_slice(myblock);

    if geo.d <= 1 {
        // Trivial single round: n ≤ k+1, everyone talks to everyone.
        let sends: Vec<SendSpec<'_>> = (1..n)
            .map(|d| SendSpec {
                to: (rank + d) % n,
                tag: 0,
                payload: myblock,
            })
            .collect();
        let recvs: Vec<RecvSpec> = (1..n)
            .map(|d| RecvSpec {
                from: (rank + n - d) % n,
                tag: 0,
            })
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        for (d, msg) in (1..n).zip(&msgs) {
            have[d * b..(d + 1) * b].copy_from_slice(&msg.payload);
        }
        for msg in msgs {
            ep.recycle(msg.payload);
        }
    } else {
        // Phase 1: d-1 doubling-by-(k+1) rounds.
        for i in 0..geo.d - 1 {
            let cur = pow(k + 1, i);
            let mut payload = ep.acquire(cur * b);
            payload.copy_from_slice(&have[..cur * b]);
            ep.charge_copy((cur * b) as u64);
            let sends: Vec<SendSpec<'_>> = (1..=k)
                .map(|j| SendSpec {
                    to: (rank + j * cur) % n,
                    tag: u64::from(i),
                    payload: &payload,
                })
                .collect();
            let recvs: Vec<RecvSpec> = (1..=k)
                .map(|j| RecvSpec {
                    from: (rank + n - j * cur % n) % n,
                    tag: u64::from(i),
                })
                .collect();
            let msgs = ep.round(&sends, &recvs)?;
            let mut received = 0u64;
            for (j, msg) in (1..=k).zip(&msgs) {
                if msg.payload.len() != cur * b {
                    return Err(NetError::App("phase-1 message size mismatch".into()));
                }
                have[j * cur * b..(j * cur + cur) * b].copy_from_slice(&msg.payload);
                received += msg.payload.len() as u64;
            }
            ep.charge_copy(received);
            ep.recycle(payload);
            for msg in msgs {
                ep.recycle(msg.payload);
            }
        }

        // Last round(s): the table-partition plan.
        let plan = plan_last_round(geo.n1, geo.n2, b, k, pref);
        for (ri, round) in plan.rounds.iter().enumerate() {
            let tag_base = u64::from(geo.d - 1 + ri as u32) << 8;
            let staged: Vec<(usize, u64, Vec<u8>)> = round
                .iter()
                .enumerate()
                .map(|(ai, area)| {
                    let mut payload = ep.acquire(area.bytes());
                    pack_area_into(&have, b, geo.n1, area, &mut payload);
                    (area.offset, tag_base | ai as u64, payload)
                })
                .collect();
            let sends: Vec<SendSpec<'_>> = staged
                .iter()
                .map(|(offset, tag, payload)| SendSpec {
                    to: (rank + offset) % n,
                    tag: *tag,
                    payload,
                })
                .collect();
            let recvs: Vec<RecvSpec> = staged
                .iter()
                .map(|(offset, tag, _)| RecvSpec {
                    from: (rank + n - offset % n) % n,
                    tag: *tag,
                })
                .collect();
            let packed: u64 = staged.iter().map(|(_, _, p)| p.len() as u64).sum();
            ep.charge_copy(packed);
            let msgs = ep.round(&sends, &recvs)?;
            let mut received = 0u64;
            for (area, msg) in round.iter().zip(&msgs) {
                unpack_area(&mut have, b, geo.n1, area, &msg.payload)?;
                received += msg.payload.len() as u64;
            }
            ep.charge_copy(received);
            for (_, _, payload) in staged {
                ep.recycle(payload);
            }
            for msg in msgs {
                ep.recycle(msg.payload);
            }
        }
    }

    // Reorder: slot δ holds the block of rank (rank - δ) mod n.
    for slot in 0..n {
        let owner = (rank + n - slot) % n;
        out[owner * b..(owner + 1) * b].copy_from_slice(&have[slot * b..(slot + 1) * b]);
    }
    ep.recycle(have);
    ep.charge_copy((n * b) as u64);
    Ok(())
}

/// The static schedule of [`run`].
#[must_use]
pub fn plan(n: usize, block: usize, ports: usize, pref: Preference) -> Schedule {
    assert!(ports >= 1);
    let mut schedule = Schedule::new(n, ports);
    if n <= 1 || block == 0 {
        return schedule;
    }
    let geo = geometry(n, ports);
    if geo.d <= 1 {
        let transfers = (0..n)
            .flat_map(|src| {
                (1..n).map(move |d| Transfer {
                    src,
                    dst: (src + d) % n,
                    bytes: block as u64,
                })
            })
            .collect();
        schedule.push_round(transfers);
        return schedule;
    }
    for i in 0..geo.d - 1 {
        let cur = pow(ports + 1, i);
        let bytes = (cur * block) as u64;
        let transfers = (0..n)
            .flat_map(|src| {
                (1..=ports).map(move |j| Transfer {
                    src,
                    dst: (src + j * cur) % n,
                    bytes,
                })
            })
            .collect();
        schedule.push_round(transfers);
    }
    let lr = plan_last_round(geo.n1, geo.n2, block, ports, pref);
    for round in &lr.rounds {
        let transfers = (0..n)
            .flat_map(|src| {
                round.iter().map(move |area| Transfer {
                    src,
                    dst: (src + area.offset) % n,
                    bytes: area.bytes() as u64,
                })
            })
            .collect();
        schedule.push_round(transfers);
    }
    schedule
}

/// Expose the last-round plan used for `(n, k, b)` — the figure harness
/// prints it as the paper's Table 1.
#[must_use]
pub fn last_round_plan(
    n: usize,
    block: usize,
    ports: usize,
    pref: Preference,
) -> Option<LastRoundPlan> {
    let geo = geometry(n, ports);
    (geo.d >= 2 && block > 0).then(|| plan_last_round(geo.n1, geo.n2, block, ports, pref))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_model::bounds::concat_bounds;
    use bruck_net::{Cluster, ClusterConfig};
    use bruck_sched::ScheduleStats;

    fn run_cluster(n: usize, b: usize, k: usize, pref: Preference) {
        let cfg = ClusterConfig::new(n).with_ports(k);
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::concat_input(ep.rank(), b);
            run(ep, &input, pref)
        })
        .unwrap();
        let expected = crate::verify::concat_expected(n, b);
        for (rank, result) in out.results.iter().enumerate() {
            assert_eq!(result, &expected, "n={n} b={b} k={k} rank={rank}");
        }
    }

    #[test]
    fn correct_one_port() {
        for n in [1usize, 2, 3, 5, 8, 13, 16] {
            run_cluster(n, 4, 1, Preference::Rounds);
        }
    }

    #[test]
    fn correct_fig9_case() {
        // Fig. 9: n = 5, k = 1, b = 1.
        run_cluster(5, 1, 1, Preference::Rounds);
    }

    #[test]
    fn correct_multiport() {
        for k in [2usize, 3, 4] {
            for n in [4usize, 9, 10, 17, 25] {
                run_cluster(n, 3, k, Preference::Rounds);
            }
        }
    }

    #[test]
    fn correct_trivial_range() {
        // n ≤ k+1: the single-round direct algorithm.
        run_cluster(4, 2, 3, Preference::Rounds);
        run_cluster(3, 2, 5, Preference::Rounds);
    }

    #[test]
    fn correct_bytes_preference() {
        for n in [10usize, 21, 30] {
            for k in [3usize, 4] {
                run_cluster(n, 5, k, Preference::Bytes);
            }
        }
    }

    #[test]
    fn correct_byte_split_last_round() {
        // A case where blocks are split across ports byte-wise: the
        // Table 1 geometry (n = 10, k = 3, b = 3) — n1 = 4 here since
        // d = ⌈log4 10⌉ = 2.
        run_cluster(10, 3, 3, Preference::Rounds);
    }

    #[test]
    fn fig9_round_count() {
        // n = 5, k = 1: d = 3 rounds total (2 doubling + 1 partial).
        let cfg = ClusterConfig::new(5);
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::concat_input(ep.rank(), 1);
            run(ep, &input, Preference::Rounds)
        })
        .unwrap();
        let c = out.metrics.global_complexity().unwrap();
        assert_eq!(c.c1, 3);
        // C2 = 1 + 2 + 1 = 4 = ⌈b(n-1)/k⌉ = 4: optimal.
        assert_eq!(c.c2, 4);
    }

    #[test]
    fn plan_matches_execution() {
        for (n, k, b) in [(5usize, 1usize, 2usize), (9, 2, 3), (10, 3, 3), (16, 1, 4)] {
            let cfg = ClusterConfig::new(n).with_ports(k).with_trace();
            let out = Cluster::run(&cfg, |ep| {
                let input = crate::verify::concat_input(ep.rank(), b);
                run(ep, &input, Preference::Rounds)
            })
            .unwrap();
            let planned = plan(n, b, k, Preference::Rounds);
            planned.validate().unwrap();
            assert_eq!(
                out.metrics.global_complexity().unwrap(),
                ScheduleStats::of(&planned).complexity,
                "n={n} k={k} b={b}"
            );
            let traced = Schedule::from_trace(&out.trace.unwrap(), n, k);
            assert_eq!(traced, planned.without_empty_rounds(), "n={n} k={k} b={b}");
        }
    }

    #[test]
    fn optimality_outside_exception_range() {
        // Theorem 4.3: for k ≤ 2 (all n, b) the algorithm attains both
        // lower bounds simultaneously.
        for k in [1usize, 2] {
            for n in 2..60 {
                for b in [1usize, 3, 8] {
                    let s = plan(n, b, k, Preference::Rounds);
                    let c = ScheduleStats::of(&s).complexity;
                    let lb = concat_bounds(n, k, b);
                    assert!(lb.admits(c), "n={n} k={k} b={b}: {c} below bounds");
                    assert_eq!(c.c1, lb.c1, "rounds not optimal: n={n} k={k} b={b}");
                    if n > k + 1 {
                        assert_eq!(c.c2, lb.c2, "bytes not optimal: n={n} k={k} b={b}");
                    }
                }
            }
        }
    }
}

//! Recursive-doubling concatenation (the hypercube algorithm of \[20\],
//! §4's "second known algorithm"): requires `n = 2^d`, one port. Round
//! `x` exchanges the `2^x` blocks accumulated so far with partner
//! `rank ⊕ 2^x`.
//!
//! `C1 = log₂ n`, `C2 = b(n-1)` — optimal in both measures, but only for
//! power-of-two `n`; the paper's circulant algorithm matches it there and
//! works for every `n`.

use bruck_net::{Comm, NetError};
use bruck_sched::{Schedule, Transfer};

/// Execute recursive doubling.
///
/// Thin allocating wrapper over [`run_into`].
///
/// # Errors
///
/// [`NetError::App`] if `n` is not a power of two.
pub fn run<C: Comm + ?Sized>(ep: &mut C, myblock: &[u8]) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; ep.size() * myblock.len()];
    run_into(ep, myblock, &mut out)?;
    Ok(out)
}

/// Execute recursive doubling into a caller-provided output buffer of
/// `n·b` bytes. Each round sends straight out of the result buffer and
/// receives into a pooled scratch buffer, so steady-state rounds are
/// allocation-free.
///
/// # Errors
///
/// [`NetError::App`] if `n` is not a power of two or the output buffer
/// is mis-sized.
pub fn run_into<C: Comm + ?Sized>(
    ep: &mut C,
    myblock: &[u8],
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    if !n.is_power_of_two() {
        return Err(NetError::App(format!(
            "recursive doubling requires a power-of-two processor count, got {n}"
        )));
    }
    let b = myblock.len();
    let rank = ep.rank();
    if out.len() != n * b {
        return Err(NetError::App("output buffer must be n·b bytes".into()));
    }
    out[rank * b..(rank + 1) * b].copy_from_slice(myblock);
    if n == 1 {
        return Ok(());
    }

    // The largest exchange is the final one: half the result buffer.
    let mut inbound = ep.acquire((n / 2) * b);
    for x in 0..n.trailing_zeros() {
        let span = 1usize << x;
        let base = (rank / span) * span; // aligned group this rank owns
        let partner = rank ^ span;
        let partner_base = (partner / span) * span;
        let got = {
            let payload = &out[base * b..(base + span) * b];
            ep.send_and_recv_into(partner, payload, partner, u64::from(x), &mut inbound)?
        };
        if got != span * b {
            return Err(NetError::App("recursive-doubling size mismatch".into()));
        }
        out[partner_base * b..(partner_base + span) * b].copy_from_slice(&inbound[..got]);
    }
    ep.recycle(inbound);
    Ok(())
}

/// The static schedule of [`run`].
///
/// # Panics
///
/// Panics if `n` is not a power of two.
#[must_use]
pub fn plan(n: usize, block: usize) -> Schedule {
    assert!(n.is_power_of_two());
    let mut schedule = Schedule::new(n, 1);
    if n <= 1 {
        return schedule;
    }
    for x in 0..n.trailing_zeros() {
        let bytes = ((1usize << x) * block) as u64;
        schedule.push_round(
            (0..n)
                .map(|src| Transfer {
                    src,
                    dst: src ^ (1 << x),
                    bytes,
                })
                .collect(),
        );
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_model::bounds::concat_bounds;
    use bruck_net::{Cluster, ClusterConfig};
    use bruck_sched::ScheduleStats;

    #[test]
    fn correct_for_powers_of_two() {
        for n in [1usize, 2, 4, 8, 16, 32] {
            let cfg = ClusterConfig::new(n);
            let out = Cluster::run(&cfg, |ep| {
                let input = crate::verify::concat_input(ep.rank(), 3);
                run(ep, &input)
            })
            .unwrap();
            let expected = crate::verify::concat_expected(n, 3);
            for result in &out.results {
                assert_eq!(result, &expected, "n={n}");
            }
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        let cfg = ClusterConfig::new(5);
        let err = Cluster::run(&cfg, |ep| {
            let input = crate::verify::concat_input(ep.rank(), 1);
            run(ep, &input)
        })
        .unwrap_err();
        assert!(matches!(err, NetError::App(_)));
    }

    #[test]
    fn optimal_in_both_measures() {
        for n in [2usize, 4, 8, 16, 64] {
            let c = ScheduleStats::of(&plan(n, 5)).complexity;
            let lb = concat_bounds(n, 1, 5);
            assert_eq!(c.c1, lb.c1, "n={n}");
            assert_eq!(c.c2, lb.c2, "n={n}");
        }
    }
}

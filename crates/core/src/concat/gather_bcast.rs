//! The folklore two-phase concatenation (§4's opening): gather all blocks
//! to processor 0 along a (k+1)-ary spanning tree, then broadcast the
//! concatenation back down the same tree.
//!
//! The broadcast sends each recipient only the blocks it does *not*
//! already hold from the gather phase (its own subtree), so every block
//! crosses every tree edge at most once in each direction. Even so, the
//! algorithm needs `2·⌈log_{k+1} n⌉` rounds and its `C2` is dominated by
//! the near-root broadcast messages of `≈ n·b` bytes — the paper's point:
//! strictly worse than the circulant algorithm in both measures.

use bruck_model::spanning_tree::SpanningTree;
use bruck_net::{Comm, NetError, RecvSpec, SendSpec};
use bruck_sched::{Schedule, Transfer};

/// Per-round roles of a rank, derived from the tree.
#[derive(Debug, Clone, Default)]
struct Role {
    /// `(peer, peer_subtree)` — children whose subtree data arrives
    /// (gather) or departs (broadcast complement).
    children: Vec<(usize, Vec<usize>)>,
    /// `(parent, own_subtree)` if this rank's parent edge is in the round.
    parent: Option<(usize, Vec<usize>)>,
}

/// The sorted members of the subtree rooted at `node`.
fn subtree(tree: &SpanningTree, node: usize) -> Vec<usize> {
    let mut children: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for e in tree.edges() {
        children.entry(e.from).or_default().push(e.to);
    }
    let mut members = Vec::new();
    let mut stack = vec![node];
    while let Some(v) = stack.pop() {
        members.push(v);
        if let Some(cs) = children.get(&v) {
            stack.extend(cs.iter().copied());
        }
    }
    members.sort_unstable();
    members
}

/// Role of `rank` in tree round `g`.
fn role(tree: &SpanningTree, rank: usize, g: u32) -> Role {
    let mut role = Role::default();
    for e in tree.edges_in_round(g) {
        if e.from == rank {
            role.children.push((e.to, subtree(tree, e.to)));
        } else if e.to == rank {
            role.parent = Some((e.from, subtree(tree, rank)));
        }
    }
    role
}

fn copy_blocks(dst: &mut [u8], b: usize, blocks: &[usize], payload: &[u8]) -> Result<(), NetError> {
    if payload.len() != blocks.len() * b {
        return Err(NetError::App(format!(
            "bundle size mismatch: got {}, expected {}",
            payload.len(),
            blocks.len() * b
        )));
    }
    for (slot, &i) in blocks.iter().enumerate() {
        dst[i * b..(i + 1) * b].copy_from_slice(&payload[slot * b..(slot + 1) * b]);
    }
    Ok(())
}

/// Gather the listed blocks contiguously into a caller-provided buffer
/// of `blocks.len() * b` bytes.
fn extract_blocks_into(src: &[u8], b: usize, blocks: &[usize], out: &mut [u8]) {
    debug_assert_eq!(out.len(), blocks.len() * b);
    for (slot, &i) in blocks.iter().enumerate() {
        out[slot * b..(slot + 1) * b].copy_from_slice(&src[i * b..(i + 1) * b]);
    }
}

/// Execute the folklore gather+broadcast concatenation.
///
/// Thin allocating wrapper over [`run_into`].
///
/// # Errors
///
/// Network failures propagate.
pub fn run<C: Comm + ?Sized>(ep: &mut C, myblock: &[u8]) -> Result<Vec<u8>, NetError> {
    let mut out = vec![0u8; ep.size() * myblock.len()];
    run_into(ep, myblock, &mut out)?;
    Ok(out)
}

/// Execute the folklore gather+broadcast concatenation into a
/// caller-provided output buffer of `n·b` bytes. Per-round bundles come
/// from the cluster's buffer pool and are recycled, so steady-state
/// rounds are allocation-free.
///
/// # Errors
///
/// Network failures propagate; a mis-sized output buffer surfaces as
/// [`NetError::App`].
pub fn run_into<C: Comm + ?Sized>(
    ep: &mut C,
    myblock: &[u8],
    out: &mut [u8],
) -> Result<(), NetError> {
    let n = ep.size();
    let b = myblock.len();
    let rank = ep.rank();
    if out.len() != n * b {
        return Err(NetError::App("output buffer must be n·b bytes".into()));
    }
    if n == 1 {
        out.copy_from_slice(myblock);
        return Ok(());
    }
    let tree = SpanningTree::build(n, ep.ports(), 0);
    let rounds = tree.num_rounds();
    out[rank * b..(rank + 1) * b].copy_from_slice(myblock);

    // Phase A: gather (tree rounds in reverse).
    for g in (0..rounds).rev() {
        let role = role(&tree, rank, g);
        let tag = u64::from(g);
        let payload = role.parent.as_ref().map(|(_, own)| {
            let mut p = ep.acquire(own.len() * b);
            extract_blocks_into(out, b, own, &mut p);
            p
        });
        let sends: Vec<SendSpec<'_>> = match (&role.parent, &payload) {
            (Some((parent, _)), Some(p)) => {
                vec![SendSpec {
                    to: *parent,
                    tag,
                    payload: p,
                }]
            }
            _ => Vec::new(),
        };
        let recvs: Vec<RecvSpec> = role
            .children
            .iter()
            .map(|&(c, _)| RecvSpec { from: c, tag })
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        for ((_, blocks), msg) in role.children.iter().zip(&msgs) {
            copy_blocks(out, b, blocks, &msg.payload)?;
        }
        if let Some(p) = payload {
            ep.recycle(p);
        }
        for msg in msgs {
            ep.recycle(msg.payload);
        }
    }

    // Phase B: broadcast complements (tree rounds forward).
    for g in 0..rounds {
        let role = role(&tree, rank, g);
        let tag = u64::from(rounds + g);
        let payloads: Vec<(usize, Vec<usize>, Vec<u8>)> = role
            .children
            .iter()
            .map(|(c, sub)| {
                let complement: Vec<usize> = (0..n).filter(|i| !sub.contains(i)).collect();
                let mut data = ep.acquire(complement.len() * b);
                extract_blocks_into(out, b, &complement, &mut data);
                (*c, complement, data)
            })
            .collect();
        let sends: Vec<SendSpec<'_>> = payloads
            .iter()
            .map(|(c, _, data)| SendSpec {
                to: *c,
                tag,
                payload: data,
            })
            .collect();
        let recvs: Vec<RecvSpec> = role
            .parent
            .as_ref()
            .map(|&(p, _)| RecvSpec { from: p, tag })
            .into_iter()
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        if let (Some((_, own)), Some(msg)) = (&role.parent, msgs.first()) {
            let complement: Vec<usize> = (0..n).filter(|i| !own.contains(i)).collect();
            copy_blocks(out, b, &complement, &msg.payload)?;
        }
        for (_, _, data) in payloads {
            ep.recycle(data);
        }
        for msg in msgs {
            ep.recycle(msg.payload);
        }
    }
    Ok(())
}

/// The static schedule of [`run`].
#[must_use]
pub fn plan(n: usize, block: usize, ports: usize) -> Schedule {
    let mut schedule = Schedule::new(n, ports);
    if n <= 1 {
        return schedule;
    }
    let tree = SpanningTree::build(n, ports, 0);
    let rounds = tree.num_rounds();
    for g in (0..rounds).rev() {
        let transfers = tree
            .edges_in_round(g)
            .into_iter()
            .map(|e| Transfer {
                src: e.to,
                dst: e.from,
                bytes: (subtree(&tree, e.to).len() * block) as u64,
            })
            .collect();
        schedule.push_round(transfers);
    }
    for g in 0..rounds {
        let transfers = tree
            .edges_in_round(g)
            .into_iter()
            .map(|e| Transfer {
                src: e.from,
                dst: e.to,
                bytes: ((n - subtree(&tree, e.to).len()) * block) as u64,
            })
            .collect();
        schedule.push_round(transfers);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_model::bounds::concat_bounds;
    use bruck_net::{Cluster, ClusterConfig};
    use bruck_sched::ScheduleStats;

    fn run_cluster(n: usize, b: usize, k: usize) {
        let cfg = ClusterConfig::new(n).with_ports(k);
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::concat_input(ep.rank(), b);
            run(ep, &input)
        })
        .unwrap();
        let expected = crate::verify::concat_expected(n, b);
        for (rank, result) in out.results.iter().enumerate() {
            assert_eq!(result, &expected, "n={n} b={b} k={k} rank={rank}");
        }
    }

    #[test]
    fn correct_one_port() {
        for n in [1usize, 2, 3, 5, 8, 12, 16] {
            run_cluster(n, 3, 1);
        }
    }

    #[test]
    fn correct_multiport() {
        for k in [2usize, 3] {
            for n in [5usize, 9, 10, 14] {
                run_cluster(n, 2, k);
            }
        }
    }

    #[test]
    fn round_count_is_twice_tree_depth() {
        let s = plan(16, 1, 1);
        s.validate().unwrap();
        assert_eq!(s.num_rounds(), 8); // 2·log2(16)
    }

    #[test]
    fn strictly_worse_than_lower_bounds() {
        // The paper's point about the folklore algorithm: suboptimal in
        // both measures for n > 2.
        for n in [4usize, 8, 16, 31] {
            let c = ScheduleStats::of(&plan(n, 4, 1)).complexity;
            let lb = concat_bounds(n, 1, 4);
            assert!(c.c1 > lb.c1, "n={n}");
            assert!(c.c2 > lb.c2, "n={n}");
        }
    }

    #[test]
    fn executed_complexity_matches_plan() {
        let n = 12;
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let input = crate::verify::concat_input(ep.rank(), 2);
            run(ep, &input)
        })
        .unwrap();
        assert_eq!(
            out.metrics.global_complexity().unwrap(),
            ScheduleStats::of(&plan(n, 2, 1)).complexity
        );
    }
}

//! Reduction collectives over `f64` vectors: `reduce`, `allreduce`, and
//! `reduce_scatter`.
//!
//! The paper situates index and concatenation inside IBM's Collective
//! Communication Library, whose users compose them with reductions for
//! "basic linear algebra operations" (§1.1). Two allreduce strategies are
//! provided, bracketing the same trade-off the index radix exposes:
//!
//! * [`allreduce_via_concat`] — every rank contributes its vector via the
//!   **circulant concatenation** and reduces locally. Round-optimal
//!   (`⌈log_{k+1} n⌉`), data-heavy (`O(n·m)` received per rank): the
//!   right choice for short vectors, exactly like small-radix index.
//! * [`allreduce_halving_doubling`] — recursive halving reduce-scatter
//!   followed by recursive doubling allgather (power-of-two `n`,
//!   one-port): `2·log₂ n` rounds, `O(m)` data — the long-vector choice.

use bruck_net::{Comm, NetError, RecvSpec, SendSpec};

use crate::concat::ConcatAlgorithm;
use crate::primitives;

/// The reduction operator, applied element-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

impl ReduceOp {
    /// Apply the operator to a pair.
    #[must_use]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            Self::Sum => a + b,
            Self::Min => a.min(b),
            Self::Max => a.max(b),
        }
    }

    /// Fold `src` into `dst` element-wise.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn fold_into(self, dst: &mut [f64], src: &[f64]) {
        assert_eq!(dst.len(), src.len(), "reduction length mismatch");
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = self.apply(*d, s);
        }
    }
}

pub(crate) fn encode(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// [`encode`] into a caller-provided buffer of `v.len() * 8` bytes.
pub(crate) fn encode_into(v: &[f64], out: &mut [u8]) {
    debug_assert_eq!(out.len(), v.len() * 8);
    for (chunk, x) in out.chunks_exact_mut(8).zip(v) {
        chunk.copy_from_slice(&x.to_le_bytes());
    }
}

pub(crate) fn decode(bytes: &[u8]) -> Result<Vec<f64>, NetError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(NetError::App(
            "f64 payload not a multiple of 8 bytes".into(),
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

/// [`decode`] into a caller-provided slice of `bytes.len() / 8` values.
pub(crate) fn decode_into(bytes: &[u8], dst: &mut [f64]) -> Result<(), NetError> {
    if bytes.len() != dst.len() * 8 {
        return Err(NetError::App(format!(
            "f64 payload is {} bytes, expected {}",
            bytes.len(),
            dst.len() * 8
        )));
    }
    for (d, c) in dst.iter_mut().zip(bytes.chunks_exact(8)) {
        *d = f64::from_le_bytes(c.try_into().expect("chunk of 8"));
    }
    Ok(())
}

/// Fold an encoded f64 vector into `dst` element-wise without decoding
/// to a temporary (the operators are commutative, so the fold order does
/// not matter).
pub(crate) fn fold_bytes_into(op: ReduceOp, dst: &mut [f64], bytes: &[u8]) -> Result<(), NetError> {
    if bytes.len() != dst.len() * 8 {
        return Err(NetError::App(format!(
            "f64 payload is {} bytes, expected {}",
            bytes.len(),
            dst.len() * 8
        )));
    }
    for (d, c) in dst.iter_mut().zip(bytes.chunks_exact(8)) {
        *d = op.apply(*d, f64::from_le_bytes(c.try_into().expect("chunk of 8")));
    }
    Ok(())
}

/// Reduce every rank's vector to `root` along the (k+1)-ary spanning
/// tree (partial reductions folded at every internal node). Returns
/// `Some(result)` at `root`, `None` elsewhere.
///
/// # Errors
///
/// Network failures propagate; length mismatches surface as
/// [`NetError::App`].
pub fn reduce<C: Comm + ?Sized>(
    ep: &mut C,
    root: usize,
    data: &[f64],
    op: ReduceOp,
) -> Result<Option<Vec<f64>>, NetError> {
    let n = ep.size();
    let rank = ep.rank();
    if n == 1 {
        return Ok(Some(data.to_vec()));
    }
    let tree = bruck_model::spanning_tree::SpanningTree::build(n, ep.ports(), root);
    let mut acc = data.to_vec();
    for g in (0..tree.num_rounds()).rev() {
        let edges = tree.edges_in_round(g);
        let parent = edges.iter().find(|e| e.to == rank).map(|e| e.from);
        let children: Vec<usize> = edges
            .iter()
            .filter(|e| e.from == rank)
            .map(|e| e.to)
            .collect();
        let payload = parent
            .map(|_| {
                let mut p = ep.acquire(acc.len() * 8);
                encode_into(&acc, &mut p);
                p
            })
            .unwrap_or_default();
        let sends: Vec<SendSpec<'_>> = parent
            .map(|p| SendSpec {
                to: p,
                tag: u64::from(g),
                payload: &payload,
            })
            .into_iter()
            .collect();
        let recvs: Vec<RecvSpec> = children
            .iter()
            .map(|&c| RecvSpec {
                from: c,
                tag: u64::from(g),
            })
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        for msg in &msgs {
            fold_bytes_into(op, &mut acc, &msg.payload)
                .map_err(|_| NetError::App("reduce length mismatch across ranks".into()))?;
        }
        ep.recycle(payload);
        for msg in msgs {
            ep.recycle(msg.payload);
        }
    }
    Ok((rank == root).then_some(acc))
}

/// Allreduce by concatenation: gather all `n` vectors with the paper's
/// circulant algorithm, reduce locally. Any `n`, any `k`;
/// `⌈log_{k+1} n⌉` rounds.
///
/// # Errors
///
/// Network failures propagate.
pub fn allreduce_via_concat<C: Comm + ?Sized>(
    ep: &mut C,
    data: &[f64],
    op: ReduceOp,
) -> Result<Vec<f64>, NetError> {
    let n = ep.size();
    let m = data.len();
    let mut mine = ep.acquire(m * 8);
    encode_into(data, &mut mine);
    let mut all = ep.acquire(n * m * 8);
    ConcatAlgorithm::Bruck(Default::default()).run_into(ep, &mine, &mut all)?;
    ep.recycle(mine);
    let mut acc = vec![
        match op {
            ReduceOp::Sum => 0.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        };
        m
    ];
    for i in 0..n {
        fold_bytes_into(op, &mut acc, &all[i * m * 8..(i + 1) * m * 8])?;
    }
    ep.recycle(all);
    Ok(acc)
}

/// Allreduce by recursive halving (reduce-scatter) then recursive
/// doubling (allgather). Requires power-of-two `n` and
/// `data.len() % n == 0`; one-port. `2·log₂ n` rounds, `≈ 2·m` data.
///
/// # Errors
///
/// [`NetError::App`] for unsupported shapes; network failures propagate.
pub fn allreduce_halving_doubling<C: Comm + ?Sized>(
    ep: &mut C,
    data: &[f64],
    op: ReduceOp,
) -> Result<Vec<f64>, NetError> {
    let n = ep.size();
    if !n.is_power_of_two() {
        return Err(NetError::App(format!(
            "halving-doubling allreduce needs a power-of-two n, got {n}"
        )));
    }
    if !data.len().is_multiple_of(n) {
        return Err(NetError::App(format!(
            "vector length {} must be divisible by n = {n}",
            data.len()
        )));
    }
    if n == 1 {
        return Ok(data.to_vec());
    }
    let rank = ep.rank();
    let w = n.trailing_zeros();
    let mut buf = data.to_vec();

    // One pooled staging pair serves every round (the first halving round
    // moves the most: half the vector).
    let cap = (data.len() / 2) * 8;
    let mut outbound = ep.acquire(cap);
    let mut inbound = ep.acquire(cap);

    // Reduce-scatter by recursive halving: after step x, this rank owns
    // the reduced segment of all ranks sharing its low x+1 bits… tracked
    // as a shrinking [lo, hi) window over the vector.
    let mut lo = 0usize;
    let mut hi = data.len();
    for x in (0..w).rev() {
        let partner = rank ^ (1 << x);
        let mid = lo + (hi - lo) / 2;
        // The half we keep is the half containing our final segment:
        // ranks with bit x = 0 keep the low half.
        let (keep, send) = if rank & (1 << x) == 0 {
            ((lo, mid), (mid, hi))
        } else {
            ((mid, hi), (lo, mid))
        };
        let send_bytes = (send.1 - send.0) * 8;
        encode_into(&buf[send.0..send.1], &mut outbound[..send_bytes]);
        let got = ep.send_and_recv_into(
            partner,
            &outbound[..send_bytes],
            partner,
            u64::from(x),
            &mut inbound,
        )?;
        let (keep_lo, keep_hi) = keep;
        fold_bytes_into(op, &mut buf[keep_lo..keep_hi], &inbound[..got])
            .map_err(|_| NetError::App("halving segment mismatch".into()))?;
        lo = keep_lo;
        hi = keep_hi;
    }

    // Allgather by recursive doubling: windows merge back.
    for x in 0..w {
        let partner = rank ^ (1 << x);
        let span = hi - lo;
        encode_into(&buf[lo..hi], &mut outbound[..span * 8]);
        let got = ep.send_and_recv_into(
            partner,
            &outbound[..span * 8],
            partner,
            u64::from(w + x),
            &mut inbound,
        )?;
        // Partner's window is the sibling half of the doubled window.
        let (new_lo, new_hi) = if rank & (1 << x) == 0 {
            (lo, hi + span)
        } else {
            (lo - span, hi)
        };
        let partner_lo = if rank & (1 << x) == 0 { hi } else { lo - span };
        decode_into(&inbound[..got], &mut buf[partner_lo..partner_lo + span])
            .map_err(|_| NetError::App("doubling segment mismatch".into()))?;
        lo = new_lo;
        hi = new_hi;
    }
    ep.recycle(outbound);
    ep.recycle(inbound);
    debug_assert_eq!((lo, hi), (0, data.len()));
    Ok(buf)
}

/// Reduce-scatter: every rank ends with the fully reduced segment
/// `[rank·m/n, (rank+1)·m/n)` of the element-wise reduction. Implemented
/// as tree reduce + scatter (any `n`, any `k`).
///
/// # Errors
///
/// [`NetError::App`] if `data.len() % n != 0`; network failures propagate.
pub fn reduce_scatter<C: Comm + ?Sized>(
    ep: &mut C,
    data: &[f64],
    op: ReduceOp,
) -> Result<Vec<f64>, NetError> {
    let n = ep.size();
    if !data.len().is_multiple_of(n) {
        return Err(NetError::App(format!(
            "vector length {} must be divisible by n = {n}",
            data.len()
        )));
    }
    let seg = data.len() / n;
    let reduced = reduce(ep, 0, data, op)?;
    let flat = reduced.map(|v| encode(&v)).unwrap_or_default();
    let mine = primitives::scatter(ep, 0, &flat, seg * 8)?;
    decode(&mine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_net::{Cluster, ClusterConfig};

    fn input(rank: usize, m: usize) -> Vec<f64> {
        (0..m).map(|i| (rank * m + i) as f64 * 0.25 - 3.0).collect()
    }

    fn expected(n: usize, m: usize, op: ReduceOp) -> Vec<f64> {
        let mut acc = input(0, m);
        for r in 1..n {
            op.fold_into(&mut acc, &input(r, m));
        }
        acc
    }

    #[test]
    fn reduce_to_each_root() {
        let n = 9;
        let m = 5;
        for root in [0usize, 4, 8] {
            let cfg = ClusterConfig::new(n).with_ports(2);
            let out = Cluster::run(&cfg, |ep| {
                let mine = input(ep.rank(), m);
                reduce(ep, root, &mine, ReduceOp::Sum)
            })
            .unwrap();
            for (rank, r) in out.results.iter().enumerate() {
                if rank == root {
                    let got = r.as_ref().unwrap();
                    for (g, e) in got.iter().zip(expected(n, m, ReduceOp::Sum)) {
                        assert!((g - e).abs() < 1e-9);
                    }
                } else {
                    assert!(r.is_none());
                }
            }
        }
    }

    #[test]
    fn allreduce_via_concat_all_ops() {
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            for &(n, k) in &[(5usize, 1usize), (9, 2), (12, 3)] {
                let m = 7;
                let cfg = ClusterConfig::new(n).with_ports(k);
                let out = Cluster::run(&cfg, |ep| {
                    let mine = input(ep.rank(), m);
                    allreduce_via_concat(ep, &mine, op)
                })
                .unwrap();
                let want = expected(n, m, op);
                for r in &out.results {
                    for (g, e) in r.iter().zip(&want) {
                        assert!((g - e).abs() < 1e-9, "{op:?} n={n} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn halving_doubling_matches_concat_path() {
        for n in [2usize, 4, 8, 16] {
            let m = 2 * n;
            let cfg = ClusterConfig::new(n);
            let out = Cluster::run(&cfg, |ep| {
                let mine = input(ep.rank(), m);
                let a = allreduce_halving_doubling(ep, &mine, ReduceOp::Sum)?;
                let b = allreduce_via_concat(ep, &mine, ReduceOp::Sum)?;
                Ok((a, b))
            })
            .unwrap();
            for (a, b) in &out.results {
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-9, "n={n}");
                }
            }
        }
    }

    #[test]
    fn halving_doubling_rejects_bad_shapes() {
        let cfg = ClusterConfig::new(3);
        let err = Cluster::run(&cfg, |ep| {
            allreduce_halving_doubling(ep, &[1.0, 2.0, 3.0], ReduceOp::Sum)
        })
        .unwrap_err();
        assert!(matches!(err, NetError::App(_)));
    }

    #[test]
    fn reduce_scatter_segments() {
        let n = 6;
        let m = 12;
        let cfg = ClusterConfig::new(n).with_ports(2);
        let out = Cluster::run(&cfg, |ep| {
            let mine = input(ep.rank(), m);
            reduce_scatter(ep, &mine, ReduceOp::Max)
        })
        .unwrap();
        let want = expected(n, m, ReduceOp::Max);
        let seg = m / n;
        for (rank, r) in out.results.iter().enumerate() {
            assert_eq!(r.len(), seg);
            for (i, g) in r.iter().enumerate() {
                assert!((g - want[rank * seg + i]).abs() < 1e-9, "rank={rank}");
            }
        }
    }

    #[test]
    fn allreduce_round_counts_bracket_the_tradeoff() {
        // concat path: log2(8) = 3 rounds; halving-doubling: 6 rounds.
        let n = 8;
        let m = 8;
        let cfg = ClusterConfig::new(n);
        let concat_rounds = Cluster::run(&cfg, |ep| {
            allreduce_via_concat(ep, &input(ep.rank(), m), ReduceOp::Sum)?;
            Ok(ep.virtual_time())
        })
        .unwrap()
        .metrics
        .global_complexity()
        .unwrap()
        .c1;
        let hd_rounds = Cluster::run(&cfg, |ep| {
            allreduce_halving_doubling(ep, &input(ep.rank(), m), ReduceOp::Sum)?;
            Ok(())
        })
        .unwrap()
        .metrics
        .global_complexity()
        .unwrap()
        .c1;
        assert_eq!(concat_rounds, 3);
        assert_eq!(hd_rounds, 6);
    }
}

//! Non-uniform (“v”) variants: `alltoallv` and `allgatherv`.
//!
//! The paper's operations assume a uniform block size `b`; MPI's
//! `MPI_Alltoallv` / `MPI_Allgatherv` drop that assumption. Both variants
//! here are *compositions of the paper's algorithms*:
//!
//! * [`alltoallv`] first runs the **uniform Bruck index** on the 8-byte
//!   size table (so every rank learns exactly what to expect from every
//!   other — a `C1`-optimal metadata round-trip), then moves the payload
//!   by direct exchange, which is transfer-optimal and the right choice
//!   for skewed sizes (relaying through intermediate ranks would multiply
//!   the largest payloads).
//! * [`allgatherv`] first runs the **circulant concatenation** on the
//!   size table, then replays the circulant structure with variable-size
//!   bundles: `⌈log_{k+1} n⌉ - 1` doubling rounds plus a column-aligned
//!   last round. Round count stays optimal at `1 + ⌈log_{k+1} n⌉`; byte
//!   balance across the last round's ports is per-block rather than the
//!   uniform case's per-byte (byte-splitting optimality does not survive
//!   non-uniform blocks, where the bound itself is block-dependent).

use bruck_model::radix::{ceil_log, pow};
use bruck_net::{Comm, NetError, RecvSpec, SendSpec};

use crate::concat::ConcatAlgorithm;
use crate::index::IndexAlgorithm;

fn encode_len(len: usize) -> [u8; 8] {
    (len as u64).to_le_bytes()
}

fn decode_len(bytes: &[u8]) -> usize {
    u64::from_le_bytes(bytes.try_into().expect("8-byte length")) as usize
}

/// Personalized all-to-all with per-destination message sizes.
///
/// `sendbufs[j]` is this rank's message for rank `j` (`sendbufs[rank]` is
/// returned verbatim in slot `rank`). Returns one received buffer per
/// source rank.
///
/// # Errors
///
/// [`NetError::App`] if `sendbufs.len() != n`; network failures propagate.
pub fn alltoallv<C: Comm + ?Sized>(
    ep: &mut C,
    sendbufs: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, NetError> {
    let n = ep.size();
    if sendbufs.len() != n {
        return Err(NetError::App(format!(
            "alltoallv needs one buffer per rank: got {}, need {n}",
            sendbufs.len()
        )));
    }
    if n == 1 {
        return Ok(vec![sendbufs[0].clone()]);
    }
    let rank = ep.rank();
    let k = ep.ports();

    // Metadata: every rank tells every other how much to expect, via the
    // round-optimal uniform index on 8-byte blocks (pooled staging).
    let mut size_table = ep.acquire(n * 8);
    for (slot, buf) in size_table.chunks_exact_mut(8).zip(sendbufs) {
        slot.copy_from_slice(&encode_len(buf.len()));
    }
    let mut incoming_sizes = ep.acquire(n * 8);
    IndexAlgorithm::BruckRadix(2).run_into(ep, &size_table, 8, &mut incoming_sizes)?;
    ep.recycle(size_table);
    let expect: Vec<usize> = (0..n)
        .map(|src| decode_len(&incoming_sizes[src * 8..(src + 1) * 8]))
        .collect();
    ep.recycle(incoming_sizes);

    // Payload: direct exchange, k pairs per round.
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
    out[rank] = sendbufs[rank].clone();
    let mut i = 1usize;
    while i < n {
        let group: Vec<usize> = (i..n.min(i + k)).collect();
        let sends: Vec<SendSpec<'_>> = group
            .iter()
            .map(|&d| {
                let dst = (rank + d) % n;
                SendSpec {
                    to: dst,
                    tag: d as u64,
                    payload: &sendbufs[dst],
                }
            })
            .collect();
        let recvs: Vec<RecvSpec> = group
            .iter()
            .map(|&d| RecvSpec {
                from: (rank + n - d) % n,
                tag: d as u64,
            })
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        for (&d, msg) in group.iter().zip(msgs) {
            let src = (rank + n - d) % n;
            if msg.payload.len() != expect[src] {
                return Err(NetError::App(format!(
                    "alltoallv: rank {src} announced {} bytes but sent {}",
                    expect[src],
                    msg.payload.len()
                )));
            }
            out[src] = msg.payload;
        }
        i += group.len();
    }
    Ok(out)
}

/// All-gather with per-rank block sizes. Returns one buffer per rank,
/// identical on every rank.
///
/// # Errors
///
/// Network failures propagate.
pub fn allgatherv<C: Comm + ?Sized>(ep: &mut C, myblock: &[u8]) -> Result<Vec<Vec<u8>>, NetError> {
    let n = ep.size();
    if n == 1 {
        return Ok(vec![myblock.to_vec()]);
    }
    let rank = ep.rank();
    let k = ep.ports();

    // Metadata: the uniform circulant concatenation on the size table
    // (pooled staging).
    let mut sizes_flat = ep.acquire(n * 8);
    ConcatAlgorithm::Bruck(Default::default()).run_into(
        ep,
        &encode_len(myblock.len()),
        &mut sizes_flat,
    )?;
    let sizes: Vec<usize> = (0..n)
        .map(|i| decode_len(&sizes_flat[i * 8..(i + 1) * 8]))
        .collect();
    ep.recycle(sizes_flat);

    // Distance-ordered holdings: slot δ = block of rank (rank - δ) mod n.
    let slot_size = |v: usize, slot: usize| sizes[(v + n - slot % n) % n];
    let mut have: Vec<Option<Vec<u8>>> = vec![None; n];
    have[0] = Some(myblock.to_vec());

    let d = ceil_log(k + 1, n);
    if d <= 1 {
        // Trivial single round.
        let sends: Vec<SendSpec<'_>> = (1..n)
            .map(|dd| SendSpec {
                to: (rank + dd) % n,
                tag: 0,
                payload: myblock,
            })
            .collect();
        let recvs: Vec<RecvSpec> = (1..n)
            .map(|dd| RecvSpec {
                from: (rank + n - dd) % n,
                tag: 0,
            })
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        for (dd, msg) in (1..n).zip(msgs) {
            have[dd] = Some(msg.payload);
        }
    } else {
        // Doubling rounds with variable-size bundles (pooled staging).
        for i in 0..d - 1 {
            let cur = pow(k + 1, i);
            let bundle_len: usize = (0..cur)
                .map(|s| have[s].as_deref().expect("slot filled").len())
                .sum();
            let mut bundle = ep.acquire(bundle_len);
            let mut at = 0usize;
            for slot in have.iter().take(cur) {
                let data = slot.as_deref().expect("slot filled");
                bundle[at..at + data.len()].copy_from_slice(data);
                at += data.len();
            }
            let sends: Vec<SendSpec<'_>> = (1..=k)
                .map(|j| SendSpec {
                    to: (rank + j * cur) % n,
                    tag: u64::from(i),
                    payload: &bundle,
                })
                .collect();
            let recvs: Vec<RecvSpec> = (1..=k)
                .map(|j| RecvSpec {
                    from: (rank + n - j * cur) % n,
                    tag: u64::from(i),
                })
                .collect();
            let msgs = ep.round(&sends, &recvs)?;
            for (j, msg) in (1..=k).zip(&msgs) {
                // Sender (rank - j·cur) shipped its slots 0..cur; our slot
                // for its slot s is j·cur + s.
                let src = (rank + n - (j * cur) % n) % n;
                let mut at = 0usize;
                for s in 0..cur {
                    let len = slot_size(src, s);
                    if at + len > msg.payload.len() {
                        return Err(NetError::App("allgatherv bundle underrun".into()));
                    }
                    have[j * cur + s] = Some(msg.payload[at..at + len].to_vec());
                    at += len;
                }
                if at != msg.payload.len() {
                    return Err(NetError::App("allgatherv bundle overrun".into()));
                }
            }
            ep.recycle(bundle);
            for msg in msgs {
                ep.recycle(msg.payload);
            }
        }
        // Last round: the n2 missing slots [n1, n) split column-aligned
        // over ≤ k offsets with sender-window span ≤ n1 each.
        let n1 = pow(k + 1, d - 1);
        let n2 = n - n1;
        if n2 > 0 {
            let areas = k.min(n2);
            let mut starts = Vec::with_capacity(areas + 1);
            let mut at = 0usize;
            for a in 0..areas {
                starts.push(at);
                at += n2 / areas + usize::from(a < n2 % areas);
            }
            starts.push(n2);
            let tag = u64::from(d - 1);
            // Area a covers missing indices [starts[a], starts[a+1]);
            // offset = n1 + starts[a] (span ≤ ⌈n2/k⌉ ≤ n1).
            let staged: Vec<(usize, Vec<u8>)> = (0..areas)
                .map(|a| {
                    let offset = n1 + starts[a];
                    // We send to rank+offset the bundle of its missing
                    // slots n1+m for m in the area: its slot n1+m is our
                    // slot n1+m-offset (pooled staging).
                    let bundle_len: usize = (starts[a]..starts[a + 1])
                        .map(|m| have[n1 + m - offset].as_deref().expect("slot filled").len())
                        .sum();
                    let mut bundle = ep.acquire(bundle_len);
                    let mut at = 0usize;
                    for m in starts[a]..starts[a + 1] {
                        let data = have[n1 + m - offset].as_deref().expect("slot filled");
                        bundle[at..at + data.len()].copy_from_slice(data);
                        at += data.len();
                    }
                    (offset, bundle)
                })
                .collect();
            let sends: Vec<SendSpec<'_>> = staged
                .iter()
                .map(|(offset, bundle)| SendSpec {
                    to: (rank + offset) % n,
                    tag,
                    payload: bundle,
                })
                .collect();
            let recvs: Vec<RecvSpec> = staged
                .iter()
                .map(|(offset, _)| RecvSpec {
                    from: (rank + n - offset % n) % n,
                    tag,
                })
                .collect();
            let msgs = ep.round(&sends, &recvs)?;
            for (a, msg) in (0..areas).zip(&msgs) {
                let mut at = 0usize;
                for m in starts[a]..starts[a + 1] {
                    let len = slot_size(rank, n1 + m);
                    if at + len > msg.payload.len() {
                        return Err(NetError::App("allgatherv tail underrun".into()));
                    }
                    have[n1 + m] = Some(msg.payload[at..at + len].to_vec());
                    at += len;
                }
                if at != msg.payload.len() {
                    return Err(NetError::App("allgatherv tail overrun".into()));
                }
            }
            for (_, bundle) in staged {
                ep.recycle(bundle);
            }
            for msg in msgs {
                ep.recycle(msg.payload);
            }
        }
    }

    // Reorder distance slots into rank order.
    let mut out = vec![Vec::new(); n];
    for (slot, data) in have.into_iter().enumerate() {
        let owner = (rank + n - slot) % n;
        out[owner] = data.expect("all slots filled");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_net::{Cluster, ClusterConfig};

    /// Rank i's payload for rank j: (i + j + 1) % 13 bytes of content.
    fn v_payload(i: usize, j: usize) -> Vec<u8> {
        (0..(i + j + 1) % 13)
            .map(|t| crate::verify::content_byte(i, j, t))
            .collect()
    }

    /// Rank i's allgatherv block: (i * 7) % 19 bytes (some empty).
    fn g_payload(i: usize) -> Vec<u8> {
        (0..(i * 7) % 19)
            .map(|t| crate::verify::content_byte(i, 0, t))
            .collect()
    }

    #[test]
    fn alltoallv_correct() {
        for &n in &[1usize, 2, 5, 8, 13] {
            for &k in &[1usize, 2, 3] {
                let cfg = ClusterConfig::new(n).with_ports(k);
                let out = Cluster::run(&cfg, |ep| {
                    let bufs: Vec<Vec<u8>> = (0..n).map(|j| v_payload(ep.rank(), j)).collect();
                    alltoallv(ep, &bufs)
                })
                .unwrap();
                for (rank, received) in out.results.iter().enumerate() {
                    for (src, buf) in received.iter().enumerate() {
                        assert_eq!(buf, &v_payload(src, rank), "n={n} k={k} {src}→{rank}");
                    }
                }
            }
        }
    }

    #[test]
    fn alltoallv_with_empty_messages() {
        let n = 6;
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            // Only even→odd pairs carry data.
            let bufs: Vec<Vec<u8>> = (0..n)
                .map(|j| {
                    if ep.rank() % 2 == 0 && j % 2 == 1 {
                        vec![ep.rank() as u8; 4]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            alltoallv(ep, &bufs)
        })
        .unwrap();
        for (rank, received) in out.results.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                if src % 2 == 0 && rank % 2 == 1 {
                    assert_eq!(buf, &vec![src as u8; 4]);
                } else {
                    assert!(buf.is_empty());
                }
            }
        }
    }

    #[test]
    fn alltoallv_rejects_bad_arity() {
        let cfg = ClusterConfig::new(3);
        let err = Cluster::run(&cfg, |ep| alltoallv(ep, &[Vec::new()])).unwrap_err();
        assert!(matches!(err, NetError::App(_)));
    }

    #[test]
    fn allgatherv_correct() {
        for &n in &[1usize, 2, 5, 9, 10, 16, 21] {
            for &k in &[1usize, 2, 3, 4] {
                let cfg = ClusterConfig::new(n).with_ports(k);
                let out = Cluster::run(&cfg, |ep| {
                    let mine = g_payload(ep.rank());
                    allgatherv(ep, &mine)
                })
                .unwrap();
                for received in &out.results {
                    for (src, buf) in received.iter().enumerate() {
                        assert_eq!(buf, &g_payload(src), "n={n} k={k} src={src}");
                    }
                }
            }
        }
    }

    #[test]
    fn allgatherv_round_count_stays_logarithmic() {
        // 1 metadata concat (d rounds) + d-1 doubling + 1 tail.
        let n = 16;
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let mine = g_payload(ep.rank());
            allgatherv(ep, &mine)
        })
        .unwrap();
        let c = out.metrics.global_complexity().unwrap();
        assert_eq!(c.c1, 4 + 4); // metadata d=4 + payload d=4
    }

    #[test]
    fn allgatherv_uniform_degenerates_to_same_totals() {
        // With equal sizes, the payload phase moves the same volume as the
        // uniform circulant algorithm.
        let n = 9;
        let b = 8;
        let cfg = ClusterConfig::new(n).with_ports(2);
        let out = Cluster::run(&cfg, |ep| {
            let mine = vec![ep.rank() as u8; b];
            allgatherv(ep, &mine)
        })
        .unwrap();
        let c = out.metrics.global_complexity().unwrap();
        let uniform = bruck_sched::ScheduleStats::of(
            &ConcatAlgorithm::Bruck(Default::default()).plan(n, b, 2),
        )
        .complexity;
        let metadata = bruck_sched::ScheduleStats::of(
            &ConcatAlgorithm::Bruck(Default::default()).plan(n, 8, 2),
        )
        .complexity;
        assert_eq!(c.c1, uniform.c1 + metadata.c1);
        // Payload volume matches the uniform algorithm exactly (the tail
        // is column-aligned; with b=8=block it coincides with greedy).
        assert_eq!(c.c2, uniform.c2 + metadata.c2);
    }
}

//! Non-uniform (“v”) variants: `alltoallv` and `allgatherv` over a
//! typed [`VLayout`].
//!
//! The paper's operations assume a uniform block size `b`; MPI's
//! `MPI_Alltoallv` / `MPI_Allgatherv` drop that assumption. Both
//! variants here are *compositions of the paper's algorithms*:
//!
//! * [`alltoallv_into`] first concats every rank's count row (one
//!   circulant metadata round, after which each rank holds the full
//!   `n×n` size matrix and validates it **before** any payload moves),
//!   then dispatches the payload over the configurable non-uniform
//!   Bruck family of [`vbruck`](crate::vbruck): **direct** exchange,
//!   **padded Bruck** (pad to the max count, run the tuned uniform
//!   index, strip on unpack), or **two-phase Bruck** (a uniform quota
//!   slice through the log-round index plus direct heavy tails). With
//!   no forced [`VMethod`] the planner arg-mins the three from the
//!   matrix's measured skew (max/mean) under the tuning's cost model —
//!   rank-consistently, because every rank plans from the same matrix.
//! * [`allgatherv_into`] first runs the circulant concatenation on the
//!   size table, then replays the circulant structure with
//!   variable-size bundles gathered span-wise straight out of the
//!   result buffer: `⌈log_{k+1} n⌉ - 1` doubling rounds plus a
//!   column-aligned last round. Round count stays optimal at
//!   `1 + ⌈log_{k+1} n⌉`.
//!
//! Both `_into` forms follow the PR 1 zero-copy convention: sends
//! borrow the caller's contiguous buffer, scratch and received
//! payloads come from the cluster's buffer pool, and the caller-owned
//! output `Vec` is only resized (no reallocation once its capacity has
//! seen the working set). The legacy `&[Vec<u8>]` entry points remain
//! as deprecated shims whose outputs now come from the pool.

use bruck_model::cost::CostModel;
use bruck_model::planner::{quota_candidates, PlanChoice, Planner, VIndexPlan};
use bruck_model::radix::{ceil_log, pow};
use bruck_net::{Comm, GatherSendSpec, NetError, RecvSpec, SendSpec};

use crate::api::Tuning;
use crate::concat::ConcatAlgorithm;
use crate::vbruck;

pub use crate::vbruck::{VLayout, VMethod};

/// Personalized all-to-all with per-destination sizes, into a
/// caller-owned output buffer.
///
/// `sendbuf` holds this rank's outgoing blocks addressed by `layout`
/// (block `j` for rank `j`; block `rank` is delivered back verbatim).
/// `out` is resized to the incoming total and filled dense in source
/// order; the returned [`VLayout`] addresses it. The payload algorithm
/// is `tuning.vmethod` when forced, otherwise the planner's arg-min of
/// {direct, padded Bruck, two-phase Bruck} under `tuning.model` — see
/// [`alltoallv_auto`] to also learn which member ran.
///
/// # Errors
///
/// [`NetError::App`] if `layout` does not address exactly `n` blocks
/// inside `sendbuf`, or if a peer's announced sizes cannot be laid out
/// in memory (checked before any payload round); network failures
/// propagate.
pub fn alltoallv_into<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    layout: &VLayout,
    tuning: &Tuning,
    out: &mut Vec<u8>,
) -> Result<VLayout, NetError> {
    let (recv, _) = dispatch(
        ep,
        sendbuf,
        layout,
        tuning.model.as_ref(),
        tuning.vmethod,
        out,
    )?;
    Ok(recv)
}

/// [`alltoallv_into`] with planner dispatch under an explicit model,
/// returning the receive layout **and** the family member that ran
/// with its predicted cost — the bench harness's entry point.
///
/// # Errors
///
/// See [`alltoallv_into`].
pub fn alltoallv_auto_into<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    layout: &VLayout,
    model: &dyn CostModel,
    out: &mut Vec<u8>,
) -> Result<(VLayout, PlanChoice<VIndexPlan>), NetError> {
    dispatch(ep, sendbuf, layout, model, None, out)
}

/// Allocating form of [`alltoallv_auto_into`].
///
/// # Errors
///
/// See [`alltoallv_into`].
pub fn alltoallv_auto<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    layout: &VLayout,
    model: &dyn CostModel,
) -> Result<(Vec<u8>, VLayout, PlanChoice<VIndexPlan>), NetError> {
    let mut out = Vec::new();
    let (recv, choice) = alltoallv_auto_into(ep, sendbuf, layout, model, &mut out)?;
    Ok((out, recv, choice))
}

/// Outcome of [`alltoallv_resilient`]: survivor-dense data, the layout
/// addressing it, and the membership it corresponds to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilientAlltoallv {
    /// Received bytes, dense in survivor order: span `i` (addressed by
    /// [`layout`](Self::layout)) came from global rank `survivors[i]`.
    pub data: Vec<u8>,
    /// Layout of `data`: `layout.range(i)` is survivor `i`'s block.
    pub layout: VLayout,
    /// Global ranks that completed the successful attempt, ascending.
    pub survivors: Vec<usize>,
    /// Attempts (epochs) consumed, including the successful one.
    pub attempts: usize,
}

/// In-run shrink-and-retry [`alltoallv_into`]: the non-uniform
/// counterpart of [`alltoall_resilient`](crate::api::alltoall_resilient),
/// with the same epoch discipline (attempts tag with the acknowledged
/// failure-detector version) and the same per-attempt completion
/// barrier — see that function for the protocol argument; only the
/// payload step differs (dense sub-*layout* instead of dense blocks).
///
/// `sendbuf`/`layout` still address one variable-size block per
/// *original* rank; blocks addressed to dead ranks are skipped and the
/// survivor blocks are repacked dense under a fresh [`VLayout`] before
/// each attempt. The returned layout addresses survivor-dense data.
///
/// # Errors
///
/// [`NetError::Killed`] immediately if fault injection kills *this*
/// rank; non-failure errors (including `layout` arity/fit validation)
/// immediately; the last failure verdict when `max_attempts` are
/// exhausted.
///
/// # Panics
///
/// Panics if `max_attempts == 0`.
pub fn alltoallv_resilient(
    ep: &mut bruck_net::Endpoint,
    sendbuf: &[u8],
    layout: &VLayout,
    tuning: &Tuning,
    max_attempts: usize,
) -> Result<ResilientAlltoallv, NetError> {
    alltoallv_resilient_with_policy(
        ep,
        sendbuf,
        layout,
        tuning,
        max_attempts,
        bruck_net::RecoveryPolicy::default(),
    )
}

/// [`alltoallv_resilient`] under an explicit
/// [`RecoveryPolicy`](bruck_net::RecoveryPolicy) — the policy semantics
/// (and the `WaitForRejoin`-degrades-to-`ShrinkOnly` caveat for in-run
/// retries) match
/// [`alltoall_resilient_with_policy`](crate::api::alltoall_resilient_with_policy).
///
/// # Errors
///
/// See [`alltoallv_resilient`]; additionally
/// [`NetError::RanksFailed`] when `FailFast` quorum is lost.
///
/// # Panics
///
/// Panics if `max_attempts == 0`.
pub fn alltoallv_resilient_with_policy(
    ep: &mut bruck_net::Endpoint,
    sendbuf: &[u8],
    layout: &VLayout,
    tuning: &Tuning,
    max_attempts: usize,
    policy: bruck_net::RecoveryPolicy,
) -> Result<ResilientAlltoallv, NetError> {
    use bruck_net::Endpoint;
    assert!(max_attempts >= 1, "need at least one attempt");
    let n = Endpoint::size(ep);
    if layout.len() != n {
        return Err(NetError::App(format!(
            "layout addresses {} blocks for {n} ranks",
            layout.len()
        )));
    }
    if !layout.fits(sendbuf.len()) {
        return Err(NetError::App(format!(
            "layout needs {} bytes, sendbuf has {}",
            layout.total(),
            sendbuf.len()
        )));
    }
    let me = Endpoint::rank(ep);
    let mut last_failure = None;
    for attempt in 0..max_attempts {
        let (epoch, dead) = ep.acknowledge_failures();
        if dead.contains(&me) {
            return Err(NetError::RanksFailed { ranks: dead });
        }
        crate::api::check_recovery_policy(policy, n - dead.len(), &dead)?;
        let group = bruck_net::Group::new((0..n).filter(|r| !dead.contains(r)).collect());
        let survivors = group.members().to_vec();
        // Repack the survivor blocks dense and re-derive the layout so
        // the group-sized collective sees a self-consistent (buffer,
        // layout) pair in *dense* numbering.
        let counts: Vec<usize> = survivors.iter().map(|&m| layout.count(m)).collect();
        let dense_layout = VLayout::from_counts(&counts);
        let mut dense = Vec::with_capacity(dense_layout.total());
        for &m in &survivors {
            dense.extend_from_slice(layout.slice(sendbuf, m));
        }
        let mut gc = group.bind(ep).with_epoch(epoch);
        let mut out = Vec::new();
        let outcome = alltoallv_into(&mut gc, &dense, &dense_layout, tuning, &mut out)
            .and_then(|recv| crate::api::confirm_completion(&mut gc).map(|()| recv));
        match outcome {
            Ok(recv) => {
                return Ok(ResilientAlltoallv {
                    data: out,
                    layout: recv,
                    survivors,
                    attempts: attempt + 1,
                })
            }
            Err(e) => {
                // Same exit discipline as the uniform resilient loop: a
                // killed rank must leave, programming errors are not
                // survivable, and stale epoch-tagged traffic needs no
                // purge (its tags can never match a later attempt).
                if matches!(e, NetError::Killed { rank, .. } if rank == me) || !e.is_rank_failure()
                {
                    return Err(e);
                }
                last_failure = Some(e);
            }
        }
    }
    Err(last_failure.expect("loop body ran at least once"))
}

/// Metadata + validation + plan + payload, shared by every `alltoallv`
/// entry point.
fn dispatch<C: Comm + ?Sized>(
    ep: &mut C,
    sendbuf: &[u8],
    layout: &VLayout,
    model: &dyn CostModel,
    forced: Option<VMethod>,
    out: &mut Vec<u8>,
) -> Result<(VLayout, PlanChoice<VIndexPlan>), NetError> {
    let n = ep.size();
    if layout.len() != n {
        return Err(NetError::App(format!(
            "alltoallv needs one block per rank: layout has {}, need {n}",
            layout.len()
        )));
    }
    if !layout.fits(sendbuf.len()) {
        return Err(NetError::App(format!(
            "alltoallv: layout needs {} bytes but sendbuf has {}",
            layout.total(),
            sendbuf.len()
        )));
    }
    let trivial = PlanChoice {
        plan: VIndexPlan::Direct,
        complexity: bruck_model::Complexity::ZERO,
        predicted_time: 0.0,
    };
    if n == 1 {
        // Single rank: the block comes straight back — no metadata, no
        // clone of the caller's buffer beyond the copy into `out`.
        let blk = layout.slice(sendbuf, 0);
        out.clear();
        out.extend_from_slice(blk);
        return Ok((VLayout::from_counts(&[blk.len()]), trivial));
    }
    let rank = ep.rank();
    let matrix = vbruck::exchange_size_matrix(ep, layout)?;
    let (sizes, recv) = vbruck::validate_matrix(n, rank, &matrix)?;
    let planner = Planner::new(model);
    let choice = match forced {
        None => planner.plan_vindex(n, ep.ports(), &matrix),
        Some(method) => {
            let plan = match method {
                VMethod::Direct => VIndexPlan::Direct,
                VMethod::Padded { radix } => VIndexPlan::Padded {
                    radix: radix.clamp(2, n),
                },
                VMethod::TwoPhase { radix, quota } => {
                    // The default quota is the planner's first candidate
                    // (mean travelling count) — computed from the shared
                    // matrix, hence identical on every rank.
                    let quota = quota.or_else(|| quota_candidates(n, &matrix).first().copied());
                    VIndexPlan::TwoPhase {
                        radix: radix.clamp(2, n),
                        quota: quota.unwrap_or(usize::MAX),
                    }
                }
            };
            let complexity = planner.vindex_complexity(&plan, n, ep.ports(), &matrix);
            PlanChoice {
                plan,
                complexity,
                predicted_time: model.estimate(complexity),
            }
        }
    };
    if out.len() != recv.total() {
        out.clear();
        out.resize(recv.total(), 0);
    }
    vbruck::run_plan(ep, sendbuf, layout, &sizes, &choice.plan, &recv, out)?;
    Ok((recv, choice))
}

/// All-gather with per-rank block sizes into a caller-owned output
/// buffer. `out` is resized to the cluster total and filled dense in
/// rank order; the returned [`VLayout`] addresses it (identical on
/// every rank).
///
/// Doubling-round bundles are gathered span-wise straight out of `out`
/// ([`GatherSendSpec`]) into the transport's pooled staging — one copy
/// per hop, no per-slot buffers.
///
/// # Errors
///
/// [`NetError::App`] if a peer's announced sizes cannot be laid out in
/// memory; network failures propagate.
pub fn allgatherv_into<C: Comm + ?Sized>(
    ep: &mut C,
    myblock: &[u8],
    out: &mut Vec<u8>,
) -> Result<VLayout, NetError> {
    let n = ep.size();
    if n == 1 {
        out.clear();
        out.extend_from_slice(myblock);
        return Ok(VLayout::from_counts(&[myblock.len()]));
    }
    let rank = ep.rank();
    let k = ep.ports();

    // Metadata: the uniform circulant concatenation on the size table
    // (pooled staging), validated before any payload round.
    let mut sizes_flat = ep.acquire(n * 8);
    ConcatAlgorithm::Bruck(Default::default()).run_into(
        ep,
        &(myblock.len() as u64).to_le_bytes(),
        &mut sizes_flat,
    )?;
    let mut counts = Vec::with_capacity(n);
    for src in 0..n {
        let s = u64::from_le_bytes(
            sizes_flat[src * 8..(src + 1) * 8]
                .try_into()
                .expect("8 bytes"),
        );
        counts.push(usize::try_from(s).map_err(|_| {
            NetError::App(format!(
                "allgatherv: rank {src} announced a {s}-byte block that cannot fit in usize"
            ))
        })?);
    }
    ep.recycle(sizes_flat);
    let layout = VLayout::try_from_counts(&counts)?;

    if out.len() != layout.total() {
        out.clear();
        out.resize(layout.total(), 0);
    }
    out[layout.range(rank)].copy_from_slice(myblock);

    // Distance-ordered holdings live directly in `out`: slot δ is the
    // block of rank (rank - δ) mod n at that rank's final offset, so
    // bundles gather from `out` and arrivals unpack into `out`.
    let owner_of = |v: usize, slot: usize| (v + n - slot % n) % n;

    let d = ceil_log(k + 1, n);
    if d <= 1 {
        // Trivial single round.
        let sends: Vec<SendSpec<'_>> = (1..n)
            .map(|dd| SendSpec {
                to: (rank + dd) % n,
                tag: 0,
                payload: myblock,
            })
            .collect();
        let recvs: Vec<RecvSpec> = (1..n)
            .map(|dd| RecvSpec {
                from: (rank + n - dd) % n,
                tag: 0,
            })
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        for (dd, msg) in (1..n).zip(msgs) {
            let owner = owner_of(rank, dd);
            if msg.payload.len() != layout.count(owner) {
                return Err(NetError::App(format!(
                    "allgatherv: rank {owner} announced {} bytes but sent {}",
                    layout.count(owner),
                    msg.payload.len()
                )));
            }
            out[layout.range(owner)].copy_from_slice(&msg.payload);
            ep.charge_copy(msg.payload.len() as u64);
            ep.recycle(msg.payload);
        }
        return Ok(layout);
    }

    // Doubling rounds with variable-size bundles gathered from `out`.
    for i in 0..d - 1 {
        let cur = pow(k + 1, i);
        let spans: Vec<(usize, usize)> = (0..cur)
            .map(|s| {
                let owner = owner_of(rank, s);
                (layout.displ(owner), layout.count(owner))
            })
            .collect();
        let msgs = {
            let sends: Vec<GatherSendSpec<'_>> = (1..=k)
                .map(|j| GatherSendSpec {
                    to: (rank + j * cur) % n,
                    tag: u64::from(i),
                    src: out,
                    spans: &spans,
                })
                .collect();
            let recvs: Vec<RecvSpec> = (1..=k)
                .map(|j| RecvSpec {
                    from: (rank + n - (j * cur) % n) % n,
                    tag: u64::from(i),
                })
                .collect();
            ep.round_gather(&sends, &recvs)?
        };
        for (j, msg) in (1..=k).zip(msgs) {
            // Sender (rank - j·cur) shipped its slots 0..cur; our slot
            // for its slot s is j·cur + s — same owner either way.
            let src = (rank + n - (j * cur) % n) % n;
            let mut at = 0usize;
            for s in 0..cur {
                let owner = owner_of(src, s);
                let len = layout.count(owner);
                if at + len > msg.payload.len() {
                    return Err(NetError::App("allgatherv bundle underrun".into()));
                }
                out[layout.range(owner)].copy_from_slice(&msg.payload[at..at + len]);
                at += len;
            }
            if at != msg.payload.len() {
                return Err(NetError::App("allgatherv bundle overrun".into()));
            }
            ep.charge_copy(at as u64);
            ep.recycle(msg.payload);
        }
    }

    // Last round: the n2 missing slots [n1, n) split column-aligned
    // over ≤ k offsets with sender-window span ≤ n1 each.
    let n1 = pow(k + 1, d - 1);
    let n2 = n - n1;
    if n2 > 0 {
        let areas = k.min(n2);
        let mut starts = Vec::with_capacity(areas + 1);
        let mut at = 0usize;
        for a in 0..areas {
            starts.push(at);
            at += n2 / areas + usize::from(a < n2 % areas);
        }
        starts.push(n2);
        let tag = u64::from(d - 1);
        // Area a covers missing indices [starts[a], starts[a+1]);
        // offset = n1 + starts[a] (span ≤ ⌈n2/k⌉ ≤ n1). We send to
        // rank+offset the bundle of its missing slots n1+m for m in the
        // area: its slot n1+m is our slot n1+m-offset.
        let span_lists: Vec<Vec<(usize, usize)>> = (0..areas)
            .map(|a| {
                let offset = n1 + starts[a];
                (starts[a]..starts[a + 1])
                    .map(|m| {
                        let owner = owner_of(rank, n1 + m - offset);
                        (layout.displ(owner), layout.count(owner))
                    })
                    .collect()
            })
            .collect();
        let msgs = {
            let sends: Vec<GatherSendSpec<'_>> = (0..areas)
                .map(|a| GatherSendSpec {
                    to: (rank + n1 + starts[a]) % n,
                    tag,
                    src: out,
                    spans: &span_lists[a],
                })
                .collect();
            let recvs: Vec<RecvSpec> = (0..areas)
                .map(|a| RecvSpec {
                    from: (rank + n - (n1 + starts[a]) % n) % n,
                    tag,
                })
                .collect();
            ep.round_gather(&sends, &recvs)?
        };
        for (a, msg) in (0..areas).zip(msgs) {
            let mut at = 0usize;
            for m in starts[a]..starts[a + 1] {
                let owner = owner_of(rank, n1 + m);
                let len = layout.count(owner);
                if at + len > msg.payload.len() {
                    return Err(NetError::App("allgatherv tail underrun".into()));
                }
                out[layout.range(owner)].copy_from_slice(&msg.payload[at..at + len]);
                at += len;
            }
            if at != msg.payload.len() {
                return Err(NetError::App("allgatherv tail overrun".into()));
            }
            ep.charge_copy(at as u64);
            ep.recycle(msg.payload);
        }
    }
    Ok(layout)
}

/// Personalized all-to-all with per-destination message sizes —
/// allocation-heavy legacy shim.
///
/// `sendbufs[j]` is this rank's message for rank `j`. Returns one
/// received buffer per source rank; the buffers come from the cluster
/// pool, so hand them back via [`Comm::recycle`] when done to keep the
/// steady state allocation-free.
///
/// # Errors
///
/// [`NetError::App`] if `sendbufs.len() != n`; network failures
/// propagate.
#[deprecated(
    since = "0.6.0",
    note = "use `VLayout` + `alltoallv_into`: one contiguous buffer, pooled scratch, \
            planner-dispatched padded/two-phase/direct payload"
)]
pub fn alltoallv<C: Comm + ?Sized>(
    ep: &mut C,
    sendbufs: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, NetError> {
    let n = ep.size();
    if sendbufs.len() != n {
        return Err(NetError::App(format!(
            "alltoallv needs one buffer per rank: got {}, need {n}",
            sendbufs.len()
        )));
    }
    let counts: Vec<usize> = sendbufs.iter().map(Vec::len).collect();
    let layout = VLayout::from_counts(&counts);
    let mut flat = ep.acquire(layout.total());
    for (j, buf) in sendbufs.iter().enumerate() {
        flat[layout.range(j)].copy_from_slice(buf);
    }
    let mut gathered = Vec::new();
    let result = alltoallv_into(ep, &flat, &layout, &Tuning::default(), &mut gathered);
    ep.recycle(flat);
    let recv = result?;
    let out = (0..n)
        .map(|src| {
            let mut buf = ep.acquire(recv.count(src));
            buf.copy_from_slice(recv.slice(&gathered, src));
            buf
        })
        .collect();
    Ok(out)
}

/// All-gather with per-rank block sizes — allocation-heavy legacy
/// shim. Returns one buffer per rank, identical on every rank; the
/// buffers come from the cluster pool ([`Comm::recycle`] them when
/// done).
///
/// # Errors
///
/// Network failures propagate.
#[deprecated(
    since = "0.6.0",
    note = "use `allgatherv_into`: one contiguous buffer addressed by the returned `VLayout`, \
            bundles gathered span-wise from it"
)]
pub fn allgatherv<C: Comm + ?Sized>(ep: &mut C, myblock: &[u8]) -> Result<Vec<Vec<u8>>, NetError> {
    let mut gathered = Vec::new();
    let layout = allgatherv_into(ep, myblock, &mut gathered)?;
    let out = (0..ep.size())
        .map(|src| {
            let mut buf = ep.acquire(layout.count(src));
            buf.copy_from_slice(layout.slice(&gathered, src));
            buf
        })
        .collect();
    Ok(out)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use bruck_model::cost::LinearModel;
    use bruck_net::{Cluster, ClusterConfig};

    /// Rank i's payload for rank j: (i + j + 1) % 13 bytes of content.
    fn v_payload(i: usize, j: usize) -> Vec<u8> {
        (0..(i + j + 1) % 13)
            .map(|t| crate::verify::content_byte(i, j, t))
            .collect()
    }

    /// Rank i's allgatherv block: (i * 7) % 19 bytes (some empty).
    fn g_payload(i: usize) -> Vec<u8> {
        (0..(i * 7) % 19)
            .map(|t| crate::verify::content_byte(i, 0, t))
            .collect()
    }

    fn flat_input(rank: usize, n: usize) -> (Vec<u8>, VLayout) {
        let bufs: Vec<Vec<u8>> = (0..n).map(|j| v_payload(rank, j)).collect();
        let layout = VLayout::from_counts(&bufs.iter().map(Vec::len).collect::<Vec<_>>());
        (bufs.concat(), layout)
    }

    #[test]
    fn alltoallv_shim_correct() {
        for &n in &[1usize, 2, 5, 8, 13] {
            for &k in &[1usize, 2, 3] {
                let cfg = ClusterConfig::new(n).with_ports(k);
                let out = Cluster::run(&cfg, |ep| {
                    let bufs: Vec<Vec<u8>> = (0..n).map(|j| v_payload(ep.rank(), j)).collect();
                    alltoallv(ep, &bufs)
                })
                .unwrap();
                for (rank, received) in out.results.iter().enumerate() {
                    for (src, buf) in received.iter().enumerate() {
                        assert_eq!(buf, &v_payload(src, rank), "n={n} k={k} {src}→{rank}");
                    }
                }
            }
        }
    }

    #[test]
    fn alltoallv_into_every_method_bit_exact() {
        let n = 8;
        let methods = [
            None,
            Some(VMethod::Direct),
            Some(VMethod::Padded { radix: 2 }),
            Some(VMethod::TwoPhase {
                radix: 3,
                quota: None,
            }),
            Some(VMethod::TwoPhase {
                radix: 2,
                quota: Some(4),
            }),
        ];
        for method in methods {
            let cfg = ClusterConfig::new(n).with_ports(2);
            let out = Cluster::run(&cfg, move |ep| {
                let (flat, layout) = flat_input(ep.rank(), n);
                let tuning = match method {
                    None => Tuning::default(),
                    Some(m) => Tuning::builder().vmethod(m).build(),
                };
                let mut got = Vec::new();
                let recv = alltoallv_into(ep, &flat, &layout, &tuning, &mut got)?;
                Ok((got, recv))
            })
            .unwrap();
            for (rank, (got, recv)) in out.results.iter().enumerate() {
                for src in 0..n {
                    assert_eq!(
                        recv.slice(got, src),
                        &v_payload(src, rank)[..],
                        "{method:?} {src}→{rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn alltoallv_auto_reports_member_and_matches() {
        let n = 5;
        let cfg = ClusterConfig::new(n).with_ports(2);
        let out = Cluster::run(&cfg, |ep| {
            let (flat, layout) = flat_input(ep.rank(), n);
            let model = LinearModel::sp1();
            alltoallv_auto(ep, &flat, &layout, &model)
        })
        .unwrap();
        let first_plan = &out.results[0].2.plan;
        for (rank, (got, recv, choice)) in out.results.iter().enumerate() {
            assert_eq!(&choice.plan, first_plan, "ranks disagreed on the plan");
            assert!(choice.predicted_time.is_finite());
            for src in 0..n {
                assert_eq!(recv.slice(got, src), &v_payload(src, rank)[..]);
            }
        }
    }

    #[test]
    fn alltoallv_with_empty_messages() {
        let n = 6;
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            // Only even→odd pairs carry data.
            let bufs: Vec<Vec<u8>> = (0..n)
                .map(|j| {
                    if ep.rank() % 2 == 0 && j % 2 == 1 {
                        vec![ep.rank() as u8; 4]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            alltoallv(ep, &bufs)
        })
        .unwrap();
        for (rank, received) in out.results.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                if src % 2 == 0 && rank % 2 == 1 {
                    assert_eq!(buf, &vec![src as u8; 4]);
                } else {
                    assert!(buf.is_empty());
                }
            }
        }
    }

    #[test]
    fn alltoallv_rejects_bad_arity() {
        let cfg = ClusterConfig::new(3);
        let err = Cluster::run(&cfg, |ep| alltoallv(ep, &[Vec::new()])).unwrap_err();
        assert!(matches!(err, NetError::App(_)));
        let cfg = ClusterConfig::new(3);
        let err = Cluster::run(&cfg, |ep| {
            let layout = VLayout::from_counts(&[4, 4, 4]);
            let mut out = Vec::new();
            alltoallv_into(ep, &[0u8; 4], &layout, &Tuning::default(), &mut out)
        })
        .unwrap_err();
        assert!(
            matches!(err, NetError::App(_)),
            "undersized sendbuf: {err:?}"
        );
    }

    #[test]
    fn alltoallv_single_rank_into() {
        let cfg = ClusterConfig::new(1);
        let out = Cluster::run(&cfg, |ep| {
            let layout = VLayout::from_counts(&[5]);
            let mut got = Vec::new();
            let recv = alltoallv_into(ep, b"hello", &layout, &Tuning::default(), &mut got)?;
            Ok((got, recv.counts().to_vec()))
        })
        .unwrap();
        assert_eq!(out.results[0].0, b"hello");
        assert_eq!(out.results[0].1, vec![5]);
    }

    #[test]
    fn allgatherv_correct() {
        for &n in &[1usize, 2, 5, 9, 10, 16, 21] {
            for &k in &[1usize, 2, 3, 4] {
                let cfg = ClusterConfig::new(n).with_ports(k);
                let out = Cluster::run(&cfg, |ep| {
                    let mine = g_payload(ep.rank());
                    allgatherv(ep, &mine)
                })
                .unwrap();
                for received in &out.results {
                    for (src, buf) in received.iter().enumerate() {
                        assert_eq!(buf, &g_payload(src), "n={n} k={k} src={src}");
                    }
                }
            }
        }
    }

    #[test]
    fn allgatherv_into_layout_addresses_out() {
        let n = 7;
        let cfg = ClusterConfig::new(n).with_ports(2);
        let out = Cluster::run(&cfg, |ep| {
            let mine = g_payload(ep.rank());
            let mut got = Vec::new();
            let layout = allgatherv_into(ep, &mine, &mut got)?;
            Ok((got, layout))
        })
        .unwrap();
        for (got, layout) in &out.results {
            assert_eq!(layout.total(), got.len());
            for src in 0..n {
                assert_eq!(layout.slice(got, src), &g_payload(src)[..], "src={src}");
            }
        }
    }

    #[test]
    fn allgatherv_round_count_stays_logarithmic() {
        // 1 metadata concat (d rounds) + d-1 doubling + 1 tail.
        let n = 16;
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let mine = g_payload(ep.rank());
            allgatherv(ep, &mine)
        })
        .unwrap();
        let c = out.metrics.global_complexity().unwrap();
        assert_eq!(c.c1, 4 + 4); // metadata d=4 + payload d=4
    }

    #[test]
    fn allgatherv_uniform_degenerates_to_same_totals() {
        // With equal sizes, the payload phase moves the same volume as the
        // uniform circulant algorithm.
        let n = 9;
        let b = 8;
        let cfg = ClusterConfig::new(n).with_ports(2);
        let out = Cluster::run(&cfg, |ep| {
            let mine = vec![ep.rank() as u8; b];
            allgatherv(ep, &mine)
        })
        .unwrap();
        let c = out.metrics.global_complexity().unwrap();
        let uniform = bruck_sched::ScheduleStats::of(
            &ConcatAlgorithm::Bruck(Default::default()).plan(n, b, 2),
        )
        .complexity;
        let metadata = bruck_sched::ScheduleStats::of(
            &ConcatAlgorithm::Bruck(Default::default()).plan(n, 8, 2),
        )
        .complexity;
        assert_eq!(c.c1, uniform.c1 + metadata.c1);
        // Payload volume matches the uniform algorithm exactly (the tail
        // is column-aligned; with b=8=block it coincides with greedy).
        assert_eq!(c.c2, uniform.c2 + metadata.c2);
    }

    #[test]
    fn forced_direct_round_count_matches_plan() {
        // Metadata ⌈log₃ 8⌉ = 2 concat rounds + ⌈7/2⌉ = 4 direct rounds.
        let n = 8;
        let cfg = ClusterConfig::new(n).with_ports(2);
        let out = Cluster::run(&cfg, |ep| {
            let flat = vec![ep.rank() as u8; n * 16];
            let layout = VLayout::from_counts(&[16; 8]);
            let tuning = Tuning::builder().vmethod(VMethod::Direct).build();
            let mut got = Vec::new();
            alltoallv_into(ep, &flat, &layout, &tuning, &mut got)?;
            Ok(())
        })
        .unwrap();
        let c = out.metrics.global_complexity().unwrap();
        assert_eq!(c.c1, 2 + 4);
    }
}

//! Supporting collective primitives: broadcast, gather, and scatter along
//! `(k+1)`-ary spanning trees.
//!
//! These are the building blocks the paper's CCL library context assumes
//! (its §1 lists broadcast/scatter/gather alongside index and
//! concatenation); the folklore concatenation baseline composes two of
//! them. All three run in the k-port model in `⌈log_{k+1} n⌉` rounds.

use bruck_model::spanning_tree::SpanningTree;
use bruck_net::{Comm, NetError, RecvSpec, SendSpec};

/// The sorted members of the subtree rooted at `node`.
fn subtree(tree: &SpanningTree, node: usize) -> Vec<usize> {
    let mut children: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for e in tree.edges() {
        children.entry(e.from).or_default().push(e.to);
    }
    let mut members = Vec::new();
    let mut stack = vec![node];
    while let Some(v) = stack.pop() {
        members.push(v);
        if let Some(cs) = children.get(&v) {
            stack.extend(cs.iter().copied());
        }
    }
    members.sort_unstable();
    members
}

/// Broadcast `data` (significant only at `root`) to every rank; every
/// rank returns the broadcast bytes.
///
/// # Errors
///
/// Network failures propagate.
pub fn broadcast<C: Comm + ?Sized>(
    ep: &mut C,
    root: usize,
    data: &[u8],
) -> Result<Vec<u8>, NetError> {
    let n = ep.size();
    let rank = ep.rank();
    if n == 1 {
        return Ok(data.to_vec());
    }
    let tree = SpanningTree::build(n, ep.ports(), root);
    let mut buf: Option<Vec<u8>> = (rank == root).then(|| data.to_vec());
    for g in 0..tree.num_rounds() {
        let edges = tree.edges_in_round(g);
        let outgoing: Vec<usize> = edges
            .iter()
            .filter(|e| e.from == rank)
            .map(|e| e.to)
            .collect();
        let incoming: Option<usize> = edges.iter().find(|e| e.to == rank).map(|e| e.from);
        let payload = buf.clone().unwrap_or_default();
        let sends: Vec<SendSpec<'_>> = outgoing
            .iter()
            .map(|&to| SendSpec {
                to,
                tag: u64::from(g),
                payload: &payload,
            })
            .collect();
        let recvs: Vec<RecvSpec> = incoming
            .map(|from| RecvSpec {
                from,
                tag: u64::from(g),
            })
            .into_iter()
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        if incoming.is_some() {
            buf = Some(msgs.into_iter().next().expect("one recv requested").payload);
        }
    }
    Ok(buf.expect("spanning tree reaches every rank"))
}

/// Gather every rank's `b`-byte block to `root`; `root` returns the
/// `n·b`-byte concatenation (block `i` at offset `i·b`), others `None`.
///
/// # Errors
///
/// Network failures propagate; [`NetError::App`] on inconsistent sizes.
pub fn gather<C: Comm + ?Sized>(
    ep: &mut C,
    root: usize,
    myblock: &[u8],
) -> Result<Option<Vec<u8>>, NetError> {
    let n = ep.size();
    let b = myblock.len();
    let rank = ep.rank();
    if n == 1 {
        return Ok(Some(myblock.to_vec()));
    }
    let tree = SpanningTree::build(n, ep.ports(), root);
    let mut buf = vec![0u8; n * b];
    buf[rank * b..(rank + 1) * b].copy_from_slice(myblock);
    for g in (0..tree.num_rounds()).rev() {
        let edges = tree.edges_in_round(g);
        let parent: Option<usize> = edges.iter().find(|e| e.to == rank).map(|e| e.from);
        let children: Vec<usize> = edges
            .iter()
            .filter(|e| e.from == rank)
            .map(|e| e.to)
            .collect();
        let own = subtree(&tree, rank);
        let payload: Vec<u8> = parent
            .map(|_| {
                own.iter()
                    .flat_map(|&i| buf[i * b..(i + 1) * b].iter().copied())
                    .collect()
            })
            .unwrap_or_default();
        let sends: Vec<SendSpec<'_>> = parent
            .map(|p| SendSpec {
                to: p,
                tag: u64::from(g),
                payload: &payload,
            })
            .into_iter()
            .collect();
        let recvs: Vec<RecvSpec> = children
            .iter()
            .map(|&c| RecvSpec {
                from: c,
                tag: u64::from(g),
            })
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        for (&c, msg) in children.iter().zip(&msgs) {
            let blocks = subtree(&tree, c);
            if msg.payload.len() != blocks.len() * b {
                return Err(NetError::App("gather bundle size mismatch".into()));
            }
            for (slot, &i) in blocks.iter().enumerate() {
                buf[i * b..(i + 1) * b].copy_from_slice(&msg.payload[slot * b..(slot + 1) * b]);
            }
        }
    }
    Ok((rank == root).then_some(buf))
}

/// Scatter: `root` holds `n` blocks of `b` bytes (block `i` destined for
/// rank `i`); every rank returns its own block. `data` is significant
/// only at `root`; `block` is the per-rank block size.
///
/// # Errors
///
/// Network failures propagate; [`NetError::App`] on size mismatches.
pub fn scatter<C: Comm + ?Sized>(
    ep: &mut C,
    root: usize,
    data: &[u8],
    block: usize,
) -> Result<Vec<u8>, NetError> {
    let n = ep.size();
    let rank = ep.rank();
    if rank == root && data.len() != n * block {
        return Err(NetError::App(
            "scatter buffer must be n·b bytes at root".into(),
        ));
    }
    if n == 1 {
        return Ok(data.to_vec());
    }
    let tree = SpanningTree::build(n, ep.ports(), root);
    // Every rank stores the bundle for its own subtree once received.
    let mut bundle: Option<Vec<u8>> = (rank == root).then(|| data.to_vec());
    for g in 0..tree.num_rounds() {
        let edges = tree.edges_in_round(g);
        let outgoing: Vec<usize> = edges
            .iter()
            .filter(|e| e.from == rank)
            .map(|e| e.to)
            .collect();
        let incoming: Option<usize> = edges.iter().find(|e| e.to == rank).map(|e| e.from);
        // Build per-child bundles from our own bundle.
        let own = if rank == root {
            (0..n).collect::<Vec<_>>()
        } else {
            subtree(&tree, rank)
        };
        let staged: Vec<(usize, Vec<u8>)> = outgoing
            .iter()
            .map(|&c| {
                let blocks = subtree(&tree, c);
                let held = bundle.as_deref().expect("must hold bundle before sending");
                let mut payload = Vec::with_capacity(blocks.len() * block);
                for &i in &blocks {
                    let slot = own
                        .iter()
                        .position(|&x| x == i)
                        .expect("child ⊆ own subtree");
                    payload.extend_from_slice(&held[slot * block..(slot + 1) * block]);
                }
                (c, payload)
            })
            .collect();
        let sends: Vec<SendSpec<'_>> = staged
            .iter()
            .map(|(c, payload)| SendSpec {
                to: *c,
                tag: u64::from(g),
                payload,
            })
            .collect();
        let recvs: Vec<RecvSpec> = incoming
            .map(|from| RecvSpec {
                from,
                tag: u64::from(g),
            })
            .into_iter()
            .collect();
        let msgs = ep.round(&sends, &recvs)?;
        if incoming.is_some() {
            bundle = Some(msgs.into_iter().next().expect("one recv requested").payload);
        }
    }
    let own = if rank == root {
        (0..n).collect::<Vec<_>>()
    } else {
        subtree(&tree, rank)
    };
    let held = bundle.expect("scatter reaches every rank");
    let slot = own
        .iter()
        .position(|&x| x == rank)
        .expect("own subtree contains self");
    Ok(held[slot * block..(slot + 1) * block].to_vec())
}

/// Dissemination barrier: no rank returns until every rank has entered.
///
/// This is exactly the circulant concatenation's communication pattern
/// with empty payloads — round `i` exchanges zero-byte tokens at the
/// offsets `S_i = {j·(k+1)^i}` — so it completes in the round-optimal
/// `⌈log_{k+1} n⌉` rounds. (Unlike [`bruck_net::Endpoint::barrier`],
/// which synchronizes out-of-band, this one costs real rounds and counts
/// toward `C1`.)
///
/// # Errors
///
/// Network failures propagate.
pub fn barrier_dissemination<C: Comm + ?Sized>(ep: &mut C) -> Result<(), NetError> {
    let n = ep.size();
    if n == 1 {
        return Ok(());
    }
    let k = ep.ports();
    let rank = ep.rank();
    let d = bruck_model::radix::ceil_log(k + 1, n);
    for i in 0..d {
        let base = bruck_model::radix::pow(k + 1, i);
        let offsets: Vec<usize> = (1..=k).map(|j| j * base).filter(|&o| o < n).collect();
        let sends: Vec<SendSpec<'_>> = offsets
            .iter()
            .map(|&o| SendSpec {
                to: (rank + o) % n,
                tag: u64::from(i),
                payload: &[],
            })
            .collect();
        let recvs: Vec<RecvSpec> = offsets
            .iter()
            .map(|&o| RecvSpec {
                from: (rank + n - o) % n,
                tag: u64::from(i),
            })
            .collect();
        ep.round(&sends, &recvs)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_net::{Cluster, ClusterConfig};

    #[test]
    fn broadcast_reaches_all() {
        for (n, k, root) in [(1usize, 1usize, 0usize), (5, 1, 0), (9, 2, 4), (12, 3, 11)] {
            let cfg = ClusterConfig::new(n).with_ports(k);
            let out = Cluster::run(&cfg, |ep| {
                let data: Vec<u8> = if ep.rank() == root {
                    vec![7, 8, 9]
                } else {
                    Vec::new()
                };
                broadcast(ep, root, &data)
            })
            .unwrap();
            for r in &out.results {
                assert_eq!(r, &vec![7, 8, 9], "n={n} k={k} root={root}");
            }
        }
    }

    #[test]
    fn broadcast_round_optimal() {
        let cfg = ClusterConfig::new(9).with_ports(2);
        let out = Cluster::run(&cfg, |ep| broadcast(ep, 0, &[1])).unwrap();
        // ⌈log3 9⌉ = 2 rounds.
        assert_eq!(out.metrics.global_complexity().unwrap().c1, 2);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        for (n, k, root) in [(6usize, 1usize, 0usize), (9, 2, 3), (10, 3, 9)] {
            let cfg = ClusterConfig::new(n).with_ports(k);
            let out = Cluster::run(&cfg, |ep| {
                let block = crate::verify::concat_input(ep.rank(), 2);
                gather(ep, root, &block)
            })
            .unwrap();
            for (rank, r) in out.results.iter().enumerate() {
                if rank == root {
                    assert_eq!(r.as_ref().unwrap(), &crate::verify::concat_expected(n, 2));
                } else {
                    assert!(r.is_none());
                }
            }
        }
    }

    #[test]
    fn scatter_delivers_own_block() {
        for (n, k, root) in [(6usize, 1usize, 0usize), (9, 2, 3), (13, 3, 5)] {
            let cfg = ClusterConfig::new(n).with_ports(k);
            let out = Cluster::run(&cfg, |ep| {
                let data: Vec<u8> = if ep.rank() == root {
                    crate::verify::concat_expected(n, 3)
                } else {
                    Vec::new()
                };
                scatter(ep, root, &data, 3)
            })
            .unwrap();
            for (rank, r) in out.results.iter().enumerate() {
                assert_eq!(
                    r,
                    &crate::verify::concat_input(rank, 3),
                    "n={n} rank={rank}"
                );
            }
        }
    }

    #[test]
    fn dissemination_barrier_round_count() {
        for (n, k, want) in [(8usize, 1usize, 3u64), (9, 2, 2), (10, 3, 2), (5, 4, 1)] {
            let cfg = ClusterConfig::new(n).with_ports(k);
            let out = Cluster::run(&cfg, barrier_dissemination).unwrap();
            let c = out.metrics.global_complexity().unwrap();
            assert_eq!(c.c1, want, "n={n} k={k}");
            assert_eq!(c.c2, 0, "barrier moves no payload");
        }
    }

    #[test]
    fn dissemination_barrier_waits_for_slowest() {
        // Rank 3 enters 5 ms (virtual) late; everyone must leave at or
        // after that entry.
        let cfg = ClusterConfig::new(6);
        let out = Cluster::run(&cfg, |ep| {
            if ep.rank() == 3 {
                ep.advance_compute(5e-3);
            }
            barrier_dissemination(ep)?;
            Ok(ep.virtual_time())
        })
        .unwrap();
        for (rank, &t) in out.results.iter().enumerate() {
            assert!(t >= 5e-3, "rank {rank} left the barrier at {t}");
        }
    }

    #[test]
    fn scatter_then_gather_round_trips() {
        let n = 8;
        let cfg = ClusterConfig::new(n);
        let out = Cluster::run(&cfg, |ep| {
            let data: Vec<u8> = if ep.rank() == 0 {
                crate::verify::concat_expected(n, 4)
            } else {
                Vec::new()
            };
            let mine = scatter(ep, 0, &data, 4)?;
            gather(ep, 0, &mine)
        })
        .unwrap();
        assert_eq!(
            out.results[0].as_ref().unwrap(),
            &crate::verify::concat_expected(n, 4)
        );
    }
}

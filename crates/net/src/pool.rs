//! A cluster-shared buffer pool: the zero-copy data plane's allocator.
//!
//! Every message payload and every executor scratch buffer is acquired
//! from one [`BufferPool`] shared by all ranks of a cluster. Buffers are
//! size-classed by power-of-two capacity; recycling a buffer shelves it
//! for the next acquire of the same class, so after a warmup pass a
//! steady-state collective performs **zero fresh heap allocations** per
//! round — the benches then measure the algorithm, not the allocator.
//!
//! The pool is metrics-instrumented: [`PoolStats`] counts fresh
//! allocations, shelf hits, and recycles, and is folded into
//! [`crate::RunMetrics`] after each run. The allocation-regression tests
//! assert on exactly these counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Smallest size class in bytes; sub-64-byte requests share one class.
const MIN_CLASS: usize = 64;

/// Maximum shelved buffers per size class (bounds idle memory).
const MAX_SHELF: usize = 256;

/// A snapshot of pool activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers created fresh from the heap.
    pub allocated: u64,
    /// Acquires served from a shelf (no heap allocation).
    pub reused: u64,
    /// Buffers returned to a shelf.
    pub recycled: u64,
}

/// A thread-safe, size-classed pool of reusable byte buffers.
#[derive(Debug, Default)]
pub struct BufferPool {
    shelves: Mutex<HashMap<usize, Vec<Vec<u8>>>>,
    prewarm: AtomicBool,
    allocated: AtomicU64,
    reused: AtomicU64,
    recycled: AtomicU64,
}

/// The power-of-two size class that can hold `len` bytes.
fn class_for(len: usize) -> usize {
    len.next_power_of_two().max(MIN_CLASS)
}

impl BufferPool {
    /// A fresh empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire a zeroed buffer of exactly `len` bytes, reusing a shelved
    /// buffer of the right size class when one is available.
    #[must_use]
    pub fn acquire(&self, len: usize) -> Vec<u8> {
        let class = class_for(len);
        let shelved = if self.prewarm.load(Ordering::Relaxed) {
            None
        } else {
            self.shelves
                .lock()
                .expect("pool mutex poisoned")
                .get_mut(&class)
                .and_then(Vec::pop)
        };
        match shelved {
            Some(mut buf) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                let mut buf = Vec::with_capacity(class);
                buf.resize(len, 0);
                buf
            }
        }
    }

    /// Return a buffer to the pool for reuse. Buffers too small for the
    /// minimum class, or landing on a full shelf, are dropped.
    pub fn recycle(&self, buf: Vec<u8>) {
        let cap = buf.capacity();
        if cap < MIN_CLASS {
            return;
        }
        // Shelve under the largest class the capacity fully covers, so an
        // acquire from that shelf always has room without reallocating.
        let class = if cap.is_power_of_two() {
            cap
        } else {
            cap.next_power_of_two() / 2
        };
        let mut shelves = self.shelves.lock().expect("pool mutex poisoned");
        let shelf = shelves.entry(class).or_default();
        if shelf.len() < MAX_SHELF {
            shelf.push(buf);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Toggle prewarm mode. While on, every [`acquire`](Self::acquire)
    /// takes the fresh-allocation path even when a shelved buffer would
    /// fit; recycling still shelves normally.
    ///
    /// Rationale: with many ranks sharing one pool, a shelf can be
    /// momentarily empty just because a peer holds (or has in flight) all
    /// the buffers of that class, so steady-state allocation counts
    /// depend on thread timing. Running one barrier-delimited pass of a
    /// collective under prewarm stocks each shelf to the pass's **total**
    /// demand — one buffer per acquire event — after which a steady pass
    /// can never miss: its instantaneous live demand is bounded by its
    /// per-pass acquire count. This is the same discipline RDMA stacks
    /// use for registered-buffer pools.
    pub fn set_prewarm(&self, on: bool) {
        self.prewarm.store(on, Ordering::Relaxed);
    }

    /// Current activity counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            allocated: self.allocated.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_allocates_then_reuses() {
        let pool = BufferPool::new();
        let a = pool.acquire(100);
        assert_eq!(a.len(), 100);
        assert_eq!(
            pool.stats(),
            PoolStats {
                allocated: 1,
                reused: 0,
                recycled: 0
            }
        );
        pool.recycle(a);
        let b = pool.acquire(90); // same 128-byte class
        assert_eq!(b.len(), 90);
        assert_eq!(
            pool.stats(),
            PoolStats {
                allocated: 1,
                reused: 1,
                recycled: 1
            }
        );
    }

    #[test]
    fn reused_buffers_are_zeroed() {
        let pool = BufferPool::new();
        let mut a = pool.acquire(64);
        a.iter_mut().for_each(|b| *b = 0xFF);
        pool.recycle(a);
        let b = pool.acquire(64);
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn size_classes_are_separate() {
        let pool = BufferPool::new();
        pool.recycle(pool.acquire(64));
        // 4096-byte request cannot be served by the 64-byte shelf.
        let big = pool.acquire(4096);
        assert_eq!(big.capacity(), 4096);
        assert_eq!(pool.stats().allocated, 2);
    }

    #[test]
    fn foreign_buffers_shelve_under_covered_class() {
        let pool = BufferPool::new();
        // Capacity 100 covers the 64-byte class but not 128.
        let mut v = Vec::with_capacity(100);
        v.resize(100, 7u8);
        pool.recycle(v);
        let got = pool.acquire(60);
        assert_eq!(pool.stats().reused, 1);
        assert!(got.capacity() >= 60);
    }

    #[test]
    fn tiny_buffers_are_dropped() {
        let pool = BufferPool::new();
        pool.recycle(Vec::new());
        pool.recycle(vec![1, 2, 3]);
        assert_eq!(pool.stats().recycled, 0);
    }

    #[test]
    fn prewarm_forces_fresh_allocations() {
        let pool = BufferPool::new();
        pool.set_prewarm(true);
        // Both acquires allocate fresh even though the first is shelved
        // in between — that is the point: stock equals total demand.
        pool.recycle(pool.acquire(200));
        pool.recycle(pool.acquire(200));
        assert_eq!(
            pool.stats(),
            PoolStats {
                allocated: 2,
                reused: 0,
                recycled: 2
            }
        );
        pool.set_prewarm(false);
        // Two simultaneously-live buffers are now served without a miss.
        let a = pool.acquire(200);
        let b = pool.acquire(200);
        assert_eq!(pool.stats().allocated, 2);
        assert_eq!(pool.stats().reused, 2);
        pool.recycle(a);
        pool.recycle(b);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let pool = BufferPool::new();
        // Warmup: populate the shelves.
        let bufs: Vec<_> = (0..8).map(|_| pool.acquire(1000)).collect();
        bufs.into_iter().for_each(|b| pool.recycle(b));
        let baseline = pool.stats().allocated;
        for _ in 0..100 {
            let b = pool.acquire(900);
            pool.recycle(b);
        }
        assert_eq!(pool.stats().allocated, baseline, "steady state allocated");
        assert_eq!(pool.stats().reused, 100);
    }
}

//! Reliable delivery over a lossy wire: ack + retransmit.
//!
//! [`ReliableTransport`] wraps any [`Transport`] (in practice a
//! [`crate::fault::FaultyTransport`] injecting seeded loss, duplication
//! and corruption) and restores exactly-once, uncorrupted delivery below
//! the collective layer:
//!
//! * every data message carries a per-link **sequence number** and a
//!   payload checksum;
//! * the receiver **acks** the highest in-order sequence it has
//!   delivered; duplicates are discarded (and re-acked, in case the
//!   first ack was itself lost); checksum-failing frames are discarded
//!   *without* an ack so the sender's retransmission heals them;
//! * the sender blocks until its message is acked, **retransmitting**
//!   with exponential backoff (`rto`, doubling up to `max_rto`); after
//!   `max_retries` unanswered transmissions it declares the peer dead in
//!   the cluster's [`FailureDetector`] and fails with
//!   [`NetError::RanksFailed`].
//!
//! The protocol is stop-and-wait per destination, which is deadlock-free
//! in the SPMD setting because a blocked sender keeps polling its own
//! inbox (`recv_any`) and acking peers' data while it waits — two ranks
//! sending to each other simultaneously both make progress.
//!
//! Acks travel on the reserved [`ACK_TAG`] and are themselves subject to
//! wire faults; a lost ack simply costs one retransmission and one
//! discarded duplicate.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::NetError;
use crate::failure::FailureDetector;
use crate::message::{Message, Tag};
use crate::metrics::LinkStats;
use crate::transport::Transport;

/// Tag reserved for reliability-layer acknowledgements. Application and
/// collective tags must stay below this value (collective tags are small
/// round numbers plus epoch offsets, so this never collides in practice).
pub const ACK_TAG: Tag = u64::MAX;

/// How long a blocked sender waits on `recv_any` per poll — short enough
/// to notice failure-detector updates promptly.
const POLL_SLICE: Duration = Duration::from_millis(2);

/// Tuning knobs for the ack/retransmit protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reliability {
    /// Initial retransmission timeout (doubles on each retry).
    pub rto: Duration,
    /// Ceiling for the backed-off retransmission timeout.
    pub max_rto: Duration,
    /// Retransmissions attempted before the peer is declared dead.
    pub max_retries: u32,
}

impl Default for Reliability {
    fn default() -> Self {
        Self {
            rto: Duration::from_millis(10),
            max_rto: Duration::from_millis(160),
            max_retries: 10,
        }
    }
}

/// A [`Transport`] wrapper providing acked, deduplicated, checksummed
/// delivery. One per rank, installed by the cluster runner above the
/// fault-injection layer when reliability is enabled.
pub struct ReliableTransport {
    inner: Box<dyn Transport>,
    rank: usize,
    cfg: Reliability,
    detector: Arc<FailureDetector>,
    /// Last sequence number assigned per destination (sequences start
    /// at 1; 0 marks unsequenced traffic).
    next_seq: Vec<u64>,
    /// Highest sequence each destination has acknowledged.
    acked_upto: Vec<u64>,
    /// Highest in-order sequence delivered from each source.
    expected: Vec<u64>,
    /// Out-of-order stash per source, keyed by sequence.
    ooo: Vec<BTreeMap<u64, Message>>,
    /// In-order messages ready for the matching layer.
    pending: VecDeque<Message>,
    stats: LinkStats,
}

impl ReliableTransport {
    /// Wrap `inner` for rank `rank` in an `n`-rank cluster.
    #[must_use]
    pub fn new(
        inner: Box<dyn Transport>,
        rank: usize,
        n: usize,
        cfg: Reliability,
        detector: Arc<FailureDetector>,
    ) -> Self {
        Self {
            inner,
            rank,
            cfg,
            detector,
            next_seq: vec![0; n],
            acked_upto: vec![0; n],
            expected: vec![0; n],
            ooo: (0..n).map(|_| BTreeMap::new()).collect(),
            pending: VecDeque::new(),
            stats: LinkStats::default(),
        }
    }

    fn ranks_failed(&self) -> NetError {
        NetError::RanksFailed {
            ranks: self.detector.snapshot(),
        }
    }

    /// Acknowledge everything delivered in order from `src` so far.
    fn send_ack(&mut self, src: usize) -> Result<(), NetError> {
        let ack = Message {
            src: self.rank,
            dst: src,
            tag: ACK_TAG,
            payload: Vec::new(),
            arrival: 0.0,
            seq: self.expected[src],
            checksum: None,
        };
        self.stats.acks_sent += 1;
        self.inner.send(ack)
    }

    /// Classify one raw message off the wire: record acks, discard
    /// corruption and duplicates, deliver in-order data (plus any
    /// now-contiguous stashed messages), park out-of-order data.
    fn process(&mut self, m: Message) -> Result<(), NetError> {
        if m.tag == ACK_TAG {
            let src = m.src;
            self.acked_upto[src] = self.acked_upto[src].max(m.seq);
            return Ok(());
        }
        if !m.checksum_ok() {
            // Damaged in flight. No ack: the sender's retransmission is
            // the repair.
            self.stats.corrupt_dropped += 1;
            return Ok(());
        }
        if m.seq == 0 {
            // Unsequenced traffic (no reliability on the sending side):
            // pass through untouched.
            self.pending.push_back(m);
            return Ok(());
        }
        let src = m.src;
        if m.seq <= self.expected[src] {
            // Duplicate (wire duplication, or a retransmission whose
            // original made it). Re-ack in case the ack was lost.
            self.stats.dups_dropped += 1;
            return self.send_ack(src);
        }
        if m.seq == self.expected[src] + 1 {
            self.expected[src] = m.seq;
            self.pending.push_back(m);
            // Drain any stashed messages that are now contiguous.
            while let Some(next) = self.ooo[src].remove(&(self.expected[src] + 1)) {
                self.expected[src] = next.seq;
                self.pending.push_back(next);
            }
            return self.send_ack(src);
        }
        // A gap: stash until the missing messages arrive.
        self.ooo[src].insert(m.seq, m);
        Ok(())
    }

    /// Poll the wire once (bounded by `slice`) and classify whatever
    /// arrived.
    fn poll(&mut self, slice: Duration) -> Result<(), NetError> {
        if let Some(m) = self.inner.recv_any(slice)? {
            self.process(m)?;
            // Opportunistically drain anything else already queued.
            while let Some(m) = self.inner.recv_any(Duration::ZERO)? {
                self.process(m)?;
            }
        }
        Ok(())
    }

    fn take_pending(&mut self, from: usize, tag: Tag) -> Option<Message> {
        let pos = self
            .pending
            .iter()
            .position(|m| m.src == from && m.tag == tag)?;
        self.pending.remove(pos)
    }
}

impl Transport for ReliableTransport {
    /// Blocking send: returns once the destination acked, after
    /// retransmitting as needed.
    fn send(&mut self, mut msg: Message) -> Result<(), NetError> {
        let dst = msg.dst;
        if self.detector.is_dead(dst) {
            return Err(self.ranks_failed());
        }
        self.next_seq[dst] += 1;
        let seq = self.next_seq[dst];
        msg.seq = seq;
        self.inner.send(msg.clone())?;

        let mut rto = self.cfg.rto;
        let mut retries = 0u32;
        let mut deadline = Instant::now() + rto;
        while self.acked_upto[dst] < seq {
            if self.detector.is_dead(dst) {
                return Err(self.ranks_failed());
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                if retries >= self.cfg.max_retries {
                    // The peer has ignored every transmission: declare it
                    // dead, cluster-wide.
                    self.detector.mark_dead(dst);
                    return Err(self.ranks_failed());
                }
                retries += 1;
                self.stats.retransmits += 1;
                self.inner.send(msg.clone())?;
                rto = (rto * 2).min(self.cfg.max_rto);
                deadline = Instant::now() + rto;
                continue;
            }
            self.poll(remaining.min(POLL_SLICE))?;
        }
        Ok(())
    }

    fn recv_match(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(m) = self.take_pending(from, tag) {
                return Ok(m);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(NetError::Timeout {
                    rank: self.rank,
                    from,
                    tag,
                    waited: timeout,
                });
            }
            self.poll(remaining.min(POLL_SLICE))?;
        }
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(m) = self.pending.pop_front() {
                return Ok(Some(m));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.poll(remaining.min(POLL_SLICE))?;
        }
    }

    /// Discard delivered-but-unconsumed and out-of-order messages. The
    /// per-link sequence state is deliberately kept: surviving links stay
    /// consistent across a shrink-and-retry attempt.
    fn purge(&mut self) -> usize {
        let mut n = self.inner.purge();
        n += self.pending.len();
        self.pending.clear();
        for stash in &mut self.ooo {
            n += stash.len();
            stash.clear();
        }
        n
    }

    fn link_stats(&self) -> LinkStats {
        self.stats.merged(&self.inner.link_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyTransport};
    use crate::mailbox::Mailbox;
    use crate::message::payload_checksum;
    use crate::transport::ChannelTransport;

    fn pair() -> (ReliableTransport, ReliableTransport, Arc<FailureDetector>) {
        let (tx0, mb0) = Mailbox::new(0);
        let (tx1, mb1) = Mailbox::new(1);
        let senders = vec![tx0, tx1];
        let det = Arc::new(FailureDetector::new(2));
        let mk = |rank: usize, mb: Mailbox| {
            ReliableTransport::new(
                Box::new(ChannelTransport::new(senders.clone(), mb)),
                rank,
                2,
                Reliability::default(),
                Arc::clone(&det),
            )
        };
        (mk(0, mb0), mk(1, mb1), Arc::clone(&det))
    }

    fn data(src: usize, dst: usize, tag: Tag, payload: Vec<u8>) -> Message {
        let checksum = Some(payload_checksum(&payload));
        Message {
            src,
            dst,
            tag,
            payload,
            arrival: 0.0,
            seq: 0,
            checksum,
        }
    }

    #[test]
    fn clean_wire_round_trip() {
        // `send` blocks on the ack, so sender and receiver need their own
        // threads (as they have in a real cluster run).
        let (mut a, mut b, _det) = pair();
        std::thread::scope(|s| {
            let ha = s.spawn(move || {
                a.send(data(0, 1, 7, vec![1, 2, 3])).unwrap();
                a
            });
            let m = b.recv_match(0, 7, Duration::from_secs(5)).unwrap();
            assert_eq!(m.payload, vec![1, 2, 3]);
            assert_eq!(m.seq, 1);
            assert!(b.link_stats().acks_sent >= 1);
            ha.join().unwrap();
        });
    }

    #[test]
    fn duplicate_is_dropped_once() {
        let (mut a, mut b, _det) = pair();
        // Duplicate every transmission out of rank 0.
        let plan = Arc::new(FaultPlan::new().with_seed(1).with_duplication(1.0));
        a.inner = Box::new(FaultyTransport::new(a.inner, plan));
        std::thread::scope(|s| {
            let ha = s.spawn(move || {
                a.send(data(0, 1, 7, vec![9])).unwrap();
                a
            });
            let m = b.recv_match(0, 7, Duration::from_secs(5)).unwrap();
            assert_eq!(m.payload, vec![9]);
            ha.join().unwrap();
            // The duplicate must not be delivered again.
            assert_eq!(b.recv_any(Duration::from_millis(30)).unwrap(), None);
            assert!(b.link_stats().dups_dropped >= 1);
        });
    }

    #[test]
    fn send_to_known_dead_rank_fails_fast() {
        let (mut a, _b, det) = pair();
        det.mark_dead(1);
        let err = a.send(data(0, 1, 7, vec![1])).unwrap_err();
        assert_eq!(err, NetError::RanksFailed { ranks: vec![1] });
    }

    #[test]
    fn unresponsive_peer_exhausts_retries_and_is_marked_dead() {
        let (tx0, mb0) = Mailbox::new(0);
        let (tx1, _mb1_unpolled) = Mailbox::new(1); // rank 1 never polls
        let det = Arc::new(FailureDetector::new(2));
        let mut a = ReliableTransport::new(
            Box::new(ChannelTransport::new(vec![tx0, tx1], mb0)),
            0,
            2,
            Reliability {
                rto: Duration::from_millis(1),
                max_rto: Duration::from_millis(2),
                max_retries: 3,
            },
            Arc::clone(&det),
        );
        let err = a.send(data(0, 1, 7, vec![1])).unwrap_err();
        assert_eq!(err, NetError::RanksFailed { ranks: vec![1] });
        assert!(det.is_dead(1));
        assert_eq!(a.link_stats().retransmits, 3);
    }

    #[test]
    fn corrupt_frame_is_discarded_and_healed_by_retransmit() {
        let (_a, mut b, _det) = pair();
        // Corrupt only the first transmission out of rank 0; the seeded
        // plan below corrupts transmission 0 with certainty and later
        // ones with probability 0 via a link override trick: easier to
        // just feed b a corrupted frame directly, then the good one.
        let mut bad = data(0, 1, 7, vec![1, 2, 3]);
        bad.seq = 1;
        bad.payload[0] ^= 0xFF; // checksum now wrong
        b.process(bad).unwrap();
        assert_eq!(b.link_stats().corrupt_dropped, 1);
        assert!(b.pending.is_empty());
        // The retransmission (same seq) arrives intact and is delivered.
        let mut good = data(0, 1, 7, vec![1, 2, 3]);
        good.seq = 1;
        b.process(good).unwrap();
        let m = b.take_pending(0, 7).unwrap();
        assert_eq!(m.payload, vec![1, 2, 3]);
    }

    #[test]
    fn out_of_order_sequences_are_reordered() {
        let (_a, mut b, _det) = pair();
        let mut m2 = data(0, 1, 7, vec![2]);
        m2.seq = 2;
        let mut m1 = data(0, 1, 7, vec![1]);
        m1.seq = 1;
        b.process(m2).unwrap();
        assert!(b.pending.is_empty(), "gap: nothing deliverable yet");
        b.process(m1).unwrap();
        let first = b.pending.pop_front().unwrap();
        let second = b.pending.pop_front().unwrap();
        assert_eq!((first.payload[0], second.payload[0]), (1, 2));
        assert_eq!(b.expected[0], 2);
    }

    #[test]
    fn purge_keeps_sequence_state() {
        let (_a, mut b, _det) = pair();
        let mut m1 = data(0, 1, 7, vec![1]);
        m1.seq = 1;
        b.process(m1).unwrap();
        assert_eq!(b.purge(), 1);
        assert_eq!(b.expected[0], 1, "sequence state survives purge");
        // A retransmitted seq 1 after the purge is recognized as a dup.
        let mut dup = data(0, 1, 7, vec![1]);
        dup.seq = 1;
        b.process(dup).unwrap();
        assert!(b.pending.is_empty());
        assert_eq!(b.link_stats().dups_dropped, 1);
    }
}

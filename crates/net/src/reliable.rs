//! Reliable delivery over a lossy wire: sliding-window ARQ.
//!
//! [`ReliableTransport`] wraps any [`Transport`] (in practice a
//! [`crate::fault::FaultyTransport`] injecting seeded loss, duplication
//! and corruption) and restores exactly-once, uncorrupted delivery below
//! the collective layer:
//!
//! * every data message carries a per-link **sequence number** and a
//!   payload checksum;
//! * the sender keeps up to [`WireTuning::window`] unacknowledged frames
//!   **in flight per destination** — a send returns as soon as the frame
//!   is injected (blocking only when the window is full), so the
//!   per-frame round-trip is paid once per window instead of once per
//!   frame. `window = 1` reproduces the old stop-and-wait discipline;
//! * the receiver acknowledges **cumulatively** (the highest in-order
//!   sequence delivered), and when a gap opens it advertises its
//!   out-of-order stash as **selective acks** so the sender retransmits
//!   only the truly missing frames; duplicates are discarded and
//!   re-acked (in case the first ack was itself lost); checksum-failing
//!   frames — data *and* ack alike — are discarded without an ack so the
//!   sender's retransmission heals them;
//! * acknowledgements **piggyback** on reverse-path data frames
//!   ([`Message::ack`]): a bidirectional exchange keeps both windows
//!   open without dedicated ack frames. Dedicated acks are slightly
//!   delayed to give a reverse-path frame the chance to carry them;
//! * an expired retransmission timer resends the link's unacked,
//!   un-sacked suffix with exponential backoff (`rto`, doubling up to
//!   `max_rto`, reset on cumulative progress); after `max_retries`
//!   consecutive no-progress timeouts the destination is declared dead
//!   in the cluster's [`FailureDetector`] and the caller gets
//!   [`NetError::RanksFailed`].
//!
//! The protocol is deadlock-free in the SPMD setting because every
//! blocked party keeps pumping: a sender waiting for window space and a
//! receiver waiting for a match both poll the wire (`recv_any`), ack
//! peers' data, and retransmit their own expired frames.
//!
//! Dedicated acks travel on the reserved [`ACK_TAG`], are checksummed
//! (their selective-ack payload is as corruptible as any data), and are
//! themselves subject to wire faults; a lost ack costs at most one
//! retransmission and one discarded duplicate. A *corrupted* selective
//! ack cannot wedge the window: sack marks are cleared on every
//! retransmission event, so a frame wrongly marked as held is resent one
//! timeout later.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bruck_model::tuning::WireTuning;

use crate::deadline::Deadline;
use crate::error::NetError;
use crate::failure::FailureDetector;
use crate::message::{payload_checksum, Message, Tag};
use crate::metrics::LinkStats;
use crate::transport::Transport;

/// Tag reserved for reliability-layer acknowledgements. Application and
/// collective tags must stay below this value (collective tags are small
/// round numbers plus epoch offsets, so this never collides in practice).
pub const ACK_TAG: Tag = u64::MAX;

/// Tag reserved for watchdog probe frames — unsequenced "are you alive?"
/// queries sent when a watched link idles.
pub const PROBE_TAG: Tag = u64::MAX - 1;

/// Tag reserved for watchdog probe replies. Any intact frame proves
/// liveness; this one exists purely to provoke such a frame.
pub const PROBE_ACK_TAG: Tag = u64::MAX - 2;

/// How long a blocked caller waits on `recv_any` per poll — short enough
/// to notice failure-detector updates and expired retransmission timers
/// promptly.
const POLL_SLICE: Duration = Duration::from_millis(2);

/// How recently a caller must have polled for a peer's traffic for the
/// watchdog to consider the link *watched*. Receive loops re-poll every
/// [`POLL_SLICE`], so an actively awaited peer stays fresh by orders of
/// magnitude; a peer nobody waits on goes stale and is never probed or
/// escalated.
const WATCH_FRESH: Duration = Duration::from_millis(50);

/// Tuning knobs for the ack/retransmit protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reliability {
    /// Initial retransmission timeout (doubles on each timeout event,
    /// resets on cumulative progress).
    pub rto: Duration,
    /// Ceiling for the backed-off retransmission timeout.
    pub max_rto: Duration,
    /// Consecutive no-progress timeout events before the peer is
    /// declared dead.
    pub max_retries: u32,
    /// Sliding-window pipelining knobs (window size, selective-ack
    /// budget, piggybacking).
    pub wire: WireTuning,
    /// Watchdog: how long a *watched* link may stay silent before an
    /// explicit probe is sent. The effective interval per link is the
    /// larger of this floor and the link's adaptive RTO estimate, so
    /// probing patience scales with measured latency.
    pub probe_interval: Duration,
    /// Consecutive unanswered probes before the watched peer is reported
    /// unreachable to the failure detector (probe spacing doubles per
    /// strike). `0` disables the watchdog.
    pub probe_retries: u32,
}

impl Default for Reliability {
    fn default() -> Self {
        Self {
            rto: Duration::from_millis(10),
            max_rto: Duration::from_millis(160),
            max_retries: 10,
            wire: WireTuning::default(),
            probe_interval: Duration::from_millis(25),
            probe_retries: 5,
        }
    }
}

impl Reliability {
    /// Replace the wire-pipelining knobs.
    #[must_use]
    pub fn with_wire(mut self, wire: WireTuning) -> Self {
        self.wire = wire;
        self
    }

    /// Set the watchdog's probe interval floor and retry budget
    /// (`retries = 0` disables probing entirely).
    #[must_use]
    pub fn with_probing(mut self, interval: Duration, retries: u32) -> Self {
        self.probe_interval = interval;
        self.probe_retries = retries;
        self
    }
}

/// One unacknowledged data frame queued on a link.
struct InFlight {
    msg: Message,
    /// The receiver advertised holding this frame out of order
    /// (selective ack): skip it on the next retransmission sweep.
    sacked: bool,
    /// When the frame was first put on the wire (for RTT sampling).
    sent_at: Instant,
    /// The frame has been retransmitted at least once, so its ack is
    /// ambiguous — Karn's algorithm: never sample RTT from it.
    retransmitted: bool,
}

/// Per-destination sender-side link state.
struct TxLink {
    /// Unacknowledged frames, oldest first (ascending `seq`).
    inflight: VecDeque<InFlight>,
    /// Last sequence number assigned (sequences start at 1; 0 marks
    /// unsequenced traffic).
    next_seq: u64,
    /// Retransmission timer: armed whenever the link has in-flight
    /// frames.
    timer: Option<Instant>,
    /// Current retransmission timeout: the adaptive estimate
    /// ([`base_rto`](Self::base_rto)) while acks make progress, doubled
    /// on each timeout up to the configured ceiling.
    rto: Duration,
    /// Consecutive timeout events without cumulative progress.
    strikes: u32,
    /// Smoothed round-trip estimate (RFC 6298 shape): `None` until the
    /// first unambiguous sample.
    srtt: Option<Duration>,
    /// Round-trip variance estimate.
    rttvar: Duration,
}

impl TxLink {
    fn new(floor: Duration, ceil: Duration) -> Self {
        Self {
            inflight: VecDeque::new(),
            next_seq: 0,
            timer: None,
            // Until the first RTT sample the timeout is deliberately
            // conservative (RFC 6298 spirit): a virgin link has no idea
            // how loaded the host is, and a spurious retransmission of
            // a large first message costs far more than a late first
            // recovery. The first unambiguous ack replaces this with
            // the measured estimate.
            rto: (floor * 4).min(ceil),
            strikes: 0,
            srtt: None,
            rttvar: Duration::ZERO,
        }
    }

    /// Fold one unambiguous RTT sample into the smoothed estimators:
    /// `srtt ← 7/8·srtt + 1/8·rtt`, `rttvar ← 3/4·rttvar + 1/4·|srtt − rtt|`.
    fn sample_rtt(&mut self, rtt: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let dev = srtt.abs_diff(rtt);
                self.rttvar = (self.rttvar * 3 + dev) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
    }

    /// The un-backed-off timeout for this link: `srtt + 4·rttvar`,
    /// clamped to the configured floor and ceiling. The configured value
    /// alone is tuned for an unloaded wire; when ranks time-share cores,
    /// real round trips stretch with the run queue and a static timeout
    /// retransmits frames whose acks are merely late.
    fn base_rto(&self, floor: Duration, ceil: Duration) -> Duration {
        match self.srtt {
            Some(srtt) => (srtt + 4 * self.rttvar).clamp(floor, ceil),
            None => floor,
        }
    }
}

/// A [`Transport`] wrapper providing acked, deduplicated, checksummed,
/// windowed delivery. One per rank, installed by the cluster runner
/// above the fault-injection layer when reliability is enabled.
pub struct ReliableTransport {
    inner: Box<dyn Transport>,
    rank: usize,
    cfg: Reliability,
    detector: Arc<FailureDetector>,
    /// Sender-side state per destination.
    tx: Vec<TxLink>,
    /// Highest in-order sequence delivered from each source.
    expected: Vec<u64>,
    /// A cumulative ack is owed to this source (set on in-order
    /// delivery; cleared by piggybacking or a dedicated ack). The
    /// instant records when it became owed, so dedicated acks can be
    /// briefly deferred in favor of a piggyback opportunity.
    ack_owed: Vec<Option<Instant>>,
    /// Out-of-order stash per source, keyed by sequence.
    ooo: Vec<BTreeMap<u64, Message>>,
    /// In-order messages ready for the matching layer.
    pending: VecDeque<Message>,
    /// Last instant an intact frame (data, ack, or probe) arrived from
    /// each peer — the piggyback heartbeat the watchdog consults before
    /// spending an explicit probe.
    last_heard: Vec<Instant>,
    /// Freshness stamp of the caller's interest in each peer: refreshed
    /// by every `recv_match`/`try_match` for that source, consulted by
    /// the watchdog so only links someone is actually blocked on are
    /// probed (and can be escalated).
    watch: Vec<Option<Instant>>,
    /// Outstanding probe per peer: `(reply deadline, current spacing)`.
    probe: Vec<Option<(Instant, Duration)>>,
    /// Consecutive unanswered probes per peer.
    probe_strikes: Vec<u32>,
    /// Shared completion budget — checked in every blocking loop.
    deadline: Deadline,
    stats: LinkStats,
}

impl ReliableTransport {
    /// Wrap `inner` for rank `rank` in an `n`-rank cluster.
    #[must_use]
    pub fn new(
        inner: Box<dyn Transport>,
        rank: usize,
        n: usize,
        cfg: Reliability,
        detector: Arc<FailureDetector>,
    ) -> Self {
        Self {
            inner,
            rank,
            cfg,
            detector,
            tx: (0..n).map(|_| TxLink::new(cfg.rto, cfg.max_rto)).collect(),
            expected: vec![0; n],
            ack_owed: vec![None; n],
            ooo: (0..n).map(|_| BTreeMap::new()).collect(),
            pending: VecDeque::new(),
            last_heard: vec![Instant::now(); n],
            watch: vec![None; n],
            probe: vec![None; n],
            probe_strikes: vec![0; n],
            deadline: Deadline::new(),
            stats: LinkStats::default(),
        }
    }

    /// Share a completion budget: every blocking loop (window
    /// backpressure, matching waits) checks it, so an armed deadline
    /// aborts an in-flight wait within one poll slice.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    fn ranks_failed(&self) -> NetError {
        NetError::RanksFailed {
            ranks: self.detector.snapshot(),
        }
    }

    /// How long a dedicated ack may wait for a reverse-path data frame
    /// to piggyback it. Zero when piggybacking is off — then there is
    /// nothing to wait for.
    fn ack_delay(&self) -> Duration {
        if self.cfg.wire.piggyback {
            self.cfg.rto / 8
        } else {
            Duration::ZERO
        }
    }

    /// Send a dedicated ack frame to `src`: cumulative in `seq`, the
    /// out-of-order stash as selective-ack entries in the payload
    /// (little-endian u64s, capped at the configured budget). The
    /// payload is checksummed so a corrupted sack list is discarded
    /// whole instead of poisoning the sender's window.
    fn send_dedicated_ack(&mut self, src: usize) -> Result<(), NetError> {
        self.ack_owed[src] = None;
        let mut payload = Vec::new();
        for &seq in self.ooo[src].keys().take(self.cfg.wire.sack_limit) {
            payload.extend_from_slice(&seq.to_le_bytes());
            self.stats.sack_entries_sent += 1;
        }
        let ack = Message {
            src: self.rank,
            dst: src,
            tag: ACK_TAG,
            checksum: Some(payload_checksum(&payload)),
            payload,
            arrival: 0.0,
            seq: self.expected[src],
            ack: 0,
        };
        self.stats.acks_sent += 1;
        self.inner.send(ack)
    }

    /// Apply a cumulative ack from `peer`: retire every in-flight frame
    /// with `seq ≤ upto`, sampling RTT from never-retransmitted frames
    /// (Karn's algorithm); progress resets the link's backoff and strike
    /// count and re-arms (or disarms) the retransmission timer at the
    /// adaptive estimate.
    fn apply_cumulative_ack(&mut self, peer: usize, upto: u64) {
        let (floor, ceil) = (self.cfg.rto, self.cfg.max_rto);
        let now = Instant::now();
        let link = &mut self.tx[peer];
        let mut progressed = false;
        let mut sampled = false;
        while link.inflight.front().is_some_and(|f| f.msg.seq <= upto) {
            let f = link.inflight.pop_front().expect("front checked above");
            if !f.retransmitted {
                link.sample_rtt(now.saturating_duration_since(f.sent_at));
                sampled = true;
            }
            progressed = true;
        }
        if progressed {
            if sampled {
                link.rto = link.base_rto(floor, ceil);
            }
            // No fresh sample (every retired frame had been
            // retransmitted, so its ack is ambiguous — Karn): keep the
            // backed-off rto rather than snapping back to an estimate
            // the timeout just proved too optimistic.
            link.strikes = 0;
            link.timer = (!link.inflight.is_empty()).then(|| now + link.rto);
        }
    }

    /// Apply a selective-ack payload from `peer`: each valid entry marks
    /// the matching in-flight frame as held by the receiver, exempting
    /// it from the next retransmission sweep. Entries outside
    /// `(cumulative, next_seq]` (corruption survivors, stale traffic)
    /// are ignored.
    fn apply_sacks(&mut self, peer: usize, cumulative: u64, payload: &[u8]) {
        if payload.is_empty() || !payload.len().is_multiple_of(8) {
            return;
        }
        let link = &mut self.tx[peer];
        for entry in payload.chunks_exact(8) {
            let seq = u64::from_le_bytes(entry.try_into().expect("8-byte chunk"));
            if seq <= cumulative || seq > link.next_seq {
                continue;
            }
            if let Some(f) = link.inflight.iter_mut().find(|f| f.msg.seq == seq) {
                f.sacked = true;
            }
        }
    }

    /// Classify one raw message off the wire: discard corruption, record
    /// acks (dedicated and piggybacked), discard duplicates, deliver
    /// in-order data (plus any now-contiguous stashed messages), park
    /// out-of-order data.
    fn process(&mut self, m: Message) -> Result<(), NetError> {
        if !m.checksum_ok() {
            // Damaged in flight — data or sack payload alike. No ack:
            // the sender's retransmission is the repair.
            self.stats.corrupt_dropped += 1;
            return Ok(());
        }
        // Any intact frame is a heartbeat: the peer is alive, whatever
        // the frame carries. Stand the watchdog down for this link.
        if m.src < self.last_heard.len() && m.src != self.rank {
            self.last_heard[m.src] = Instant::now();
            self.probe[m.src] = None;
            self.probe_strikes[m.src] = 0;
        }
        if m.tag == PROBE_TAG {
            // Answer immediately — the prober is blocked on us.
            self.stats.probe_replies += 1;
            let reply = Message {
                src: self.rank,
                dst: m.src,
                tag: PROBE_ACK_TAG,
                checksum: Some(payload_checksum(&[])),
                payload: Vec::new(),
                arrival: 0.0,
                seq: 0,
                ack: 0,
            };
            return self.inner.send(reply);
        }
        if m.tag == PROBE_ACK_TAG {
            // The heartbeat bookkeeping above was the whole point.
            return Ok(());
        }
        if m.tag == ACK_TAG {
            let src = m.src;
            self.apply_cumulative_ack(src, m.seq);
            self.apply_sacks(src, m.seq, &m.payload);
            return Ok(());
        }
        if m.ack > 0 {
            // Piggybacked cumulative ack on a reverse-path data frame.
            self.apply_cumulative_ack(m.src, m.ack);
        }
        if m.seq == 0 {
            // Unsequenced traffic (no reliability on the sending side):
            // pass through untouched.
            self.pending.push_back(m);
            return Ok(());
        }
        let src = m.src;
        if m.seq <= self.expected[src] {
            // Duplicate (wire duplication, or a retransmission whose
            // original made it). Re-ack immediately in case the ack was
            // lost — the sender is already waiting.
            self.stats.dups_dropped += 1;
            return self.send_dedicated_ack(src);
        }
        if m.seq == self.expected[src] + 1 {
            self.expected[src] = m.seq;
            self.pending.push_back(m);
            // Drain any stashed messages that are now contiguous.
            while let Some(next) = self.ooo[src].remove(&(self.expected[src] + 1)) {
                self.expected[src] = next.seq;
                self.pending.push_back(next);
            }
            // Owe a cumulative ack; pump flushes it after a short grace
            // period unless a reverse-path data frame piggybacks it
            // first.
            if self.ack_owed[src].is_none() {
                self.ack_owed[src] = Some(Instant::now());
            }
            return Ok(());
        }
        // A gap: stash, and tell the sender immediately what we hold
        // (cumulative + selective) so it retransmits only the missing
        // frames.
        self.ooo[src].insert(m.seq, m);
        self.send_dedicated_ack(src)
    }

    /// Drive the sender half: flush owed acks past their piggyback grace
    /// period, and sweep every link whose retransmission timer expired —
    /// resending the unacked, un-sacked suffix with backoff, and
    /// declaring destinations dead after `max_retries` consecutive
    /// no-progress timeouts.
    fn pump(&mut self) -> Result<(), NetError> {
        let now = Instant::now();
        let delay = self.ack_delay();
        for src in 0..self.ack_owed.len() {
            if self.ack_owed[src].is_some_and(|owed| now >= owed + delay) {
                self.send_dedicated_ack(src)?;
            }
        }
        let mut died = false;
        for dst in 0..self.tx.len() {
            if self.tx[dst].inflight.is_empty() {
                continue;
            }
            if self.detector.is_dead(dst) {
                // Never acknowledgeable: drop the frames so flush and
                // backpressure don't wait on a corpse.
                self.tx[dst].inflight.clear();
                self.tx[dst].timer = None;
                continue;
            }
            let expired = self.tx[dst].timer.is_some_and(|t| now >= t);
            if !expired {
                continue;
            }
            if self.tx[dst].strikes >= self.cfg.max_retries {
                // The peer has ignored every retransmission: accuse it
                // cluster-wide. Arbitrated, not authoritative — under an
                // asymmetric partition both ends accuse each other and
                // the detector honours exactly one accusation.
                if self.detector.report_unreachable(self.rank, dst) {
                    self.stats.stall_escalations += 1;
                }
                self.tx[dst].inflight.clear();
                self.tx[dst].timer = None;
                died = true;
                continue;
            }
            self.tx[dst].strikes += 1;
            // Resend the un-sacked suffix; clear sack marks so a bogus
            // (corrupted) sack can delay a frame by at most one timeout.
            let mut resend = Vec::new();
            for f in &mut self.tx[dst].inflight {
                if f.sacked {
                    f.sacked = false;
                } else {
                    f.retransmitted = true;
                    resend.push(f.msg.clone());
                }
            }
            for msg in resend {
                self.stats.retransmits += 1;
                self.inner.send(msg)?;
            }
            let link = &mut self.tx[dst];
            link.rto = (link.rto * 2).min(self.cfg.max_rto);
            link.timer = Some(now + link.rto);
        }
        died |= self.watchdog(now)?;
        if died {
            return Err(self.ranks_failed());
        }
        Ok(())
    }

    /// The per-link probe spacing: the configured floor stretched by the
    /// link's adaptive RTO estimate, so a calibrated slow link is probed
    /// with matching patience.
    fn probe_interval_for(&self, peer: usize) -> Duration {
        self.cfg
            .probe_interval
            .max(self.tx[peer].base_rto(self.cfg.rto, self.cfg.max_rto))
    }

    fn send_probe(&mut self, peer: usize) -> Result<(), NetError> {
        self.stats.probes_sent += 1;
        let probe = Message {
            src: self.rank,
            dst: peer,
            tag: PROBE_TAG,
            checksum: Some(payload_checksum(&[])),
            payload: Vec::new(),
            arrival: 0.0,
            seq: 0,
            ack: 0,
        };
        self.inner.send(probe)
    }

    /// The straggler watchdog: for every *watched* link (a peer some
    /// caller is actively blocked on) that has gone silent past its
    /// probe interval, send explicit probes with doubling spacing; after
    /// `probe_retries` unanswered probes, accuse the peer of being
    /// unreachable. Distinguishes slow from dead: any intact frame —
    /// including a probe reply after a stall ends — resets the strikes,
    /// so a pause shorter than the probe budget costs nothing, while a
    /// partitioned or SIGSTOP-paused peer exhausts it and gets the same
    /// cluster-consistent verdict as a crashed one. Returns whether an
    /// escalation fired.
    fn watchdog(&mut self, now: Instant) -> Result<bool, NetError> {
        if self.cfg.probe_retries == 0 {
            return Ok(false);
        }
        let mut died = false;
        for peer in 0..self.watch.len() {
            if peer == self.rank {
                continue;
            }
            if self.detector.is_dead(peer) {
                self.probe[peer] = None;
                continue;
            }
            let fresh =
                self.watch[peer].is_some_and(|w| now.saturating_duration_since(w) < WATCH_FRESH);
            if !fresh {
                // Nobody is waiting on this peer: an idle link is not a
                // straggler, stand down.
                self.probe[peer] = None;
                self.probe_strikes[peer] = 0;
                continue;
            }
            match self.probe[peer] {
                Some((reply_by, spacing)) if now >= reply_by => {
                    self.probe_strikes[peer] += 1;
                    if self.probe_strikes[peer] >= self.cfg.probe_retries {
                        if self.detector.report_unreachable(self.rank, peer) {
                            self.stats.stall_escalations += 1;
                        }
                        self.probe[peer] = None;
                        died = true;
                    } else {
                        let next = (spacing * 2).min(self.cfg.max_rto.max(self.cfg.probe_interval));
                        self.send_probe(peer)?;
                        self.probe[peer] = Some((now + next, next));
                    }
                }
                Some(_) => {}
                None => {
                    let interval = self.probe_interval_for(peer);
                    if now.saturating_duration_since(self.last_heard[peer]) >= interval {
                        self.send_probe(peer)?;
                        self.probe[peer] = Some((now + interval, interval));
                    }
                }
            }
        }
        Ok(died)
    }

    /// Release every owed ack immediately, aged or not. Called when the
    /// protocol is about to park on the wire: no outbound data frame can
    /// materialize until we wake again, so the piggyback opportunity is
    /// gone — and on a crowded host (ranks time-sharing a core), holding
    /// an ack across a blocking wait can push it past the peer's rto and
    /// trigger a spurious retransmission of the whole suffix.
    fn flush_owed_acks(&mut self) -> Result<(), NetError> {
        for src in 0..self.ack_owed.len() {
            if self.ack_owed[src].is_some() {
                self.send_dedicated_ack(src)?;
            }
        }
        Ok(())
    }

    /// Poll the wire once (bounded by `slice`), classify whatever
    /// arrived, then pump acks and retransmissions.
    fn poll(&mut self, slice: Duration) -> Result<(), NetError> {
        self.flush_owed_acks()?;
        if let Some(m) = self.inner.recv_any(slice)? {
            self.process(m)?;
            // Opportunistically drain anything else already queued.
            while let Some(m) = self.inner.recv_any(Duration::ZERO)? {
                self.process(m)?;
            }
        }
        self.pump()
    }

    /// Record that a caller is actively waiting on `from` — the
    /// watchdog's licence to probe (and escalate) that link.
    fn note_watch(&mut self, from: usize) {
        if from != self.rank {
            if let Some(w) = self.watch.get_mut(from) {
                *w = Some(Instant::now());
            }
        }
    }

    fn take_pending(&mut self, from: usize, tag: Tag) -> Option<Message> {
        let pos = self
            .pending
            .iter()
            .position(|m| m.src == from && m.tag == tag)?;
        self.pending.remove(pos)
    }
}

impl Transport for ReliableTransport {
    /// Windowed send: returns as soon as the frame is injected and
    /// queued for acknowledgement tracking, blocking only while the
    /// destination's window is full (and pumping the protocol while it
    /// waits, so peers keep progressing).
    fn send(&mut self, mut msg: Message) -> Result<(), NetError> {
        let dst = msg.dst;
        loop {
            if self.detector.is_dead(dst) {
                return Err(self.ranks_failed());
            }
            self.deadline.check(self.rank)?;
            if self.tx[dst].inflight.len() < self.cfg.wire.window {
                break;
            }
            // Backpressure is a wait on the destination's acks: watch
            // the link so a stalled receiver is probed and escalated
            // instead of wedging the window forever.
            self.note_watch(dst);
            self.poll(self.deadline.clamp(POLL_SLICE))?;
        }
        self.tx[dst].next_seq += 1;
        msg.seq = self.tx[dst].next_seq;
        if self.cfg.wire.piggyback {
            msg.ack = self.expected[dst];
            if self.ack_owed[dst].take().is_some() {
                // This data frame carries the ack a dedicated frame
                // would otherwise have had to.
                self.stats.piggyback_acks += 1;
            }
        }
        let now = Instant::now();
        let link = &mut self.tx[dst];
        if link.inflight.is_empty() {
            link.timer = Some(now + link.rto);
        }
        link.inflight.push_back(InFlight {
            msg: msg.clone(),
            sacked: false,
            sent_at: now,
            retransmitted: false,
        });
        self.stats.window_occupancy_sum += link.inflight.len() as u64;
        self.stats.window_samples += 1;
        self.inner.send(msg)?;
        if self.cfg.wire.window == 1 {
            // Faithful stop-and-wait: the pre-window discipline returned
            // from send() only once this frame was acknowledged, so the
            // compat mode must not even overlap the ack wait with the
            // caller's other ports. (For window ≥ 2 the wait happens
            // lazily, at the top of this function, only when full.)
            while !self.tx[dst].inflight.is_empty() {
                if self.detector.is_dead(dst) {
                    return Err(self.ranks_failed());
                }
                self.deadline.check(self.rank)?;
                self.note_watch(dst);
                self.poll(self.deadline.clamp(POLL_SLICE))?;
            }
        }
        Ok(())
    }

    fn recv_match(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(m) = self.take_pending(from, tag) {
                return Ok(m);
            }
            self.deadline.check(self.rank)?;
            self.note_watch(from);
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(NetError::Timeout {
                    rank: self.rank,
                    from,
                    tag,
                    waited: timeout,
                });
            }
            self.poll(self.deadline.clamp(remaining.min(POLL_SLICE)))?;
        }
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(m) = self.pending.pop_front() {
                return Ok(Some(m));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.poll(remaining.min(POLL_SLICE))?;
        }
    }

    fn try_match(&mut self, from: usize, tag: Tag) -> Result<Option<Message>, NetError> {
        if let Some(m) = self.take_pending(from, tag) {
            return Ok(Some(m));
        }
        self.note_watch(from);
        // Drain whatever is already queued (no blocking), then pump.
        while let Some(m) = self.inner.recv_any(Duration::ZERO)? {
            self.process(m)?;
        }
        self.pump()?;
        Ok(self.take_pending(from, tag))
    }

    fn wait_any(&mut self, timeout: Duration) -> Result<(), NetError> {
        self.poll(timeout.min(POLL_SLICE))
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn rto_hint(&self) -> Option<Duration> {
        // The worst link's adaptive estimate — warmed by any traffic,
        // calibration ladders included.
        self.tx
            .iter()
            .map(|l| l.base_rto(self.cfg.rto, self.cfg.max_rto))
            .max()
    }

    fn linger_hint(&self) -> Option<Duration> {
        // Long enough for a peer to notice a lost final ack (one RTO),
        // retransmit, and be answered — with slack for a few rounds of
        // backoff on the slowest measured link.
        self.rto_hint().map(|rto| rto * 8)
    }

    /// Drain the unacked tail: retransmit and wait until every in-flight
    /// frame is acknowledged or its destination is declared dead, giving
    /// up (best effort) at `deadline`. Peer deaths discovered while
    /// flushing do not fail the flush — their frames are dropped, which
    /// is exactly the state a shutdown needs.
    fn flush(&mut self, deadline: Instant) -> Result<(), NetError> {
        loop {
            let outstanding = (0..self.tx.len())
                .any(|dst| !self.tx[dst].inflight.is_empty() && !self.detector.is_dead(dst));
            if !outstanding {
                // Settle any owed acks so peers' flushes converge too.
                for src in 0..self.ack_owed.len() {
                    if self.ack_owed[src].is_some() {
                        self.send_dedicated_ack(src)?;
                    }
                }
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Ok(());
            }
            match self.poll(POLL_SLICE) {
                Ok(()) | Err(NetError::RanksFailed { .. }) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Discard delivered-but-unconsumed and out-of-order messages. The
    /// per-link sequence state — including still-unacked in-flight
    /// frames toward live peers — is deliberately kept: surviving links
    /// stay seq-consistent across a shrink-and-retry attempt (dropping
    /// an unacked frame would leave the receiver waiting for a sequence
    /// number that never comes).
    fn purge(&mut self) -> usize {
        let mut n = self.inner.purge();
        n += self.pending.len();
        self.pending.clear();
        for stash in &mut self.ooo {
            n += stash.len();
            stash.clear();
        }
        for dst in 0..self.tx.len() {
            if self.detector.is_dead(dst) {
                n += self.tx[dst].inflight.len();
                self.tx[dst].inflight.clear();
                self.tx[dst].timer = None;
            }
        }
        n
    }

    fn link_stats(&self) -> LinkStats {
        self.stats.merged(&self.inner.link_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyTransport, RoundClock};
    use crate::mailbox::Mailbox;
    use crate::transport::ChannelTransport;

    fn pair() -> (ReliableTransport, ReliableTransport, Arc<FailureDetector>) {
        pair_with(Reliability::default())
    }

    fn pair_with(cfg: Reliability) -> (ReliableTransport, ReliableTransport, Arc<FailureDetector>) {
        let (tx0, mb0) = Mailbox::new(0);
        let (tx1, mb1) = Mailbox::new(1);
        let senders = vec![tx0, tx1];
        let det = Arc::new(FailureDetector::new(2));
        let mk = |rank: usize, mb: Mailbox| {
            ReliableTransport::new(
                Box::new(ChannelTransport::new(senders.clone(), mb)),
                rank,
                2,
                cfg,
                Arc::clone(&det),
            )
        };
        (mk(0, mb0), mk(1, mb1), Arc::clone(&det))
    }

    fn data(src: usize, dst: usize, tag: Tag, payload: Vec<u8>) -> Message {
        let checksum = Some(payload_checksum(&payload));
        Message {
            src,
            dst,
            tag,
            payload,
            arrival: 0.0,
            seq: 0,
            ack: 0,
            checksum,
        }
    }

    #[test]
    fn clean_wire_round_trip() {
        let (mut a, mut b, _det) = pair();
        a.send(data(0, 1, 7, vec![1, 2, 3])).unwrap();
        let m = b.recv_match(0, 7, Duration::from_secs(5)).unwrap();
        assert_eq!(m.payload, vec![1, 2, 3]);
        assert_eq!(m.seq, 1);
        // The frame is still in a's window until b's (delayed) ack
        // arrives; settling both sides drains it.
        b.flush(Instant::now() + Duration::from_secs(5)).unwrap();
        a.flush(Instant::now() + Duration::from_secs(5)).unwrap();
        assert!(a.tx[1].inflight.is_empty());
        assert!(b.link_stats().acks_sent >= 1);
    }

    #[test]
    fn windowed_sends_do_not_block_for_acks() {
        // Eight sends complete immediately even though the receiver has
        // not acked anything yet — the pipelining the old stop-and-wait
        // protocol could not do.
        let (mut a, mut b, _det) = pair();
        for i in 0..8u8 {
            a.send(data(0, 1, 7, vec![i])).unwrap();
        }
        assert_eq!(a.tx[1].inflight.len(), 8);
        assert!(a.link_stats().avg_window_occupancy() > 1.0);
        for i in 0..8u8 {
            let m = b.recv_match(0, 7, Duration::from_secs(5)).unwrap();
            assert_eq!(m.payload, vec![i]);
        }
        b.flush(Instant::now() + Duration::from_secs(5)).unwrap();
        a.flush(Instant::now() + Duration::from_secs(5)).unwrap();
        assert!(a.tx[1].inflight.is_empty());
    }

    #[test]
    fn full_window_blocks_until_acked() {
        let cfg = Reliability {
            wire: WireTuning::default().with_window(2),
            ..Reliability::default()
        };
        let (mut a, mut b, _det) = pair_with(cfg);
        std::thread::scope(|s| {
            let ha = s.spawn(move || {
                for i in 0..6u8 {
                    a.send(data(0, 1, 7, vec![i])).unwrap();
                }
                a
            });
            for i in 0..6u8 {
                let m = b.recv_match(0, 7, Duration::from_secs(5)).unwrap();
                assert_eq!(m.payload, vec![i]);
            }
            let mut a = ha.join().unwrap();
            b.flush(Instant::now() + Duration::from_secs(5)).unwrap();
            a.flush(Instant::now() + Duration::from_secs(5)).unwrap();
            // Occupancy never exceeded the configured window.
            let stats = a.link_stats();
            assert_eq!(stats.window_samples, 6);
            assert!(stats.window_occupancy_sum <= 2 * 6);
        });
    }

    #[test]
    fn duplicate_is_dropped_once() {
        let (mut a, mut b, _det) = pair();
        // Duplicate every transmission out of rank 0.
        let plan = Arc::new(FaultPlan::new().with_seed(1).with_duplication(1.0));
        let clock = Arc::new(RoundClock::new(2));
        a.inner = Box::new(FaultyTransport::new(a.inner, plan, clock));
        a.send(data(0, 1, 7, vec![9])).unwrap();
        let m = b.recv_match(0, 7, Duration::from_secs(5)).unwrap();
        assert_eq!(m.payload, vec![9]);
        // The duplicate must not be delivered again.
        assert_eq!(b.recv_any(Duration::from_millis(30)).unwrap(), None);
        assert!(b.link_stats().dups_dropped >= 1);
        a.flush(Instant::now() + Duration::from_secs(5)).unwrap();
    }

    #[test]
    fn send_to_known_dead_rank_fails_fast() {
        let (mut a, _b, det) = pair();
        det.mark_dead(1);
        let err = a.send(data(0, 1, 7, vec![1])).unwrap_err();
        assert_eq!(err, NetError::RanksFailed { ranks: vec![1] });
    }

    #[test]
    fn unresponsive_peer_exhausts_retries_and_is_marked_dead() {
        let (tx0, mb0) = Mailbox::new(0);
        let (tx1, _mb1_unpolled) = Mailbox::new(1); // rank 1 never polls
        let det = Arc::new(FailureDetector::new(2));
        let mut a = ReliableTransport::new(
            Box::new(ChannelTransport::new(vec![tx0, tx1], mb0)),
            0,
            2,
            Reliability {
                rto: Duration::from_millis(1),
                max_rto: Duration::from_millis(2),
                max_retries: 3,
                ..Reliability::default()
            },
            Arc::clone(&det),
        );
        // The windowed send itself succeeds — the frame is in flight.
        a.send(data(0, 1, 7, vec![1])).unwrap();
        // Draining the tail exhausts the retry budget and marks the
        // peer dead (best-effort flush reports success regardless).
        a.flush(Instant::now() + Duration::from_secs(2)).unwrap();
        assert!(det.is_dead(1));
        assert_eq!(a.link_stats().retransmits, 3);
        assert!(a.tx[1].inflight.is_empty());
        // Follow-up sends fail fast with the cluster-wide verdict.
        let err = a.send(data(0, 1, 7, vec![2])).unwrap_err();
        assert_eq!(err, NetError::RanksFailed { ranks: vec![1] });
    }

    #[test]
    fn idle_link_never_retransmits() {
        // Pumping an endpoint with nothing in flight must not burn retry
        // budget or send anything (the no-busy-poll regression guard).
        let (mut a, _b, det) = pair();
        for _ in 0..50 {
            a.poll(Duration::ZERO).unwrap();
        }
        let stats = a.link_stats();
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.acks_sent, 0);
        assert_eq!(a.tx[1].strikes, 0);
        assert!(det.snapshot().is_empty());
    }

    #[test]
    fn corrupt_frame_is_discarded_and_healed_by_retransmit() {
        let (_a, mut b, _det) = pair();
        let mut bad = data(0, 1, 7, vec![1, 2, 3]);
        bad.seq = 1;
        bad.payload[0] ^= 0xFF; // checksum now wrong
        b.process(bad).unwrap();
        assert_eq!(b.link_stats().corrupt_dropped, 1);
        assert!(b.pending.is_empty());
        // The retransmission (same seq) arrives intact and is delivered.
        let mut good = data(0, 1, 7, vec![1, 2, 3]);
        good.seq = 1;
        b.process(good).unwrap();
        let m = b.take_pending(0, 7).unwrap();
        assert_eq!(m.payload, vec![1, 2, 3]);
    }

    #[test]
    fn out_of_order_sequences_are_reordered() {
        let (_a, mut b, _det) = pair();
        let mut m2 = data(0, 1, 7, vec![2]);
        m2.seq = 2;
        let mut m1 = data(0, 1, 7, vec![1]);
        m1.seq = 1;
        b.process(m2).unwrap();
        assert!(b.pending.is_empty(), "gap: nothing deliverable yet");
        // The gap triggered an immediate dedicated ack advertising the
        // stashed frame as a selective ack.
        assert!(b.link_stats().acks_sent >= 1);
        assert!(b.link_stats().sack_entries_sent >= 1);
        b.process(m1).unwrap();
        let first = b.pending.pop_front().unwrap();
        let second = b.pending.pop_front().unwrap();
        assert_eq!((first.payload[0], second.payload[0]), (1, 2));
        assert_eq!(b.expected[0], 2);
    }

    #[test]
    fn sacked_frames_skip_one_retransmission_sweep() {
        let (mut a, _b, _det) = pair();
        a.send(data(0, 1, 7, vec![1])).unwrap();
        a.send(data(0, 1, 7, vec![2])).unwrap();
        a.send(data(0, 1, 7, vec![3])).unwrap();
        // The receiver holds seqs 2 and 3 but is missing 1.
        let sack_payload: Vec<u8> = [2u64, 3u64].iter().flat_map(|s| s.to_le_bytes()).collect();
        let ack = Message {
            src: 1,
            dst: 0,
            tag: ACK_TAG,
            checksum: Some(payload_checksum(&sack_payload)),
            payload: sack_payload,
            arrival: 0.0,
            seq: 0, // nothing delivered in order yet
            ack: 0,
        };
        a.process(ack).unwrap();
        assert!(!a.tx[1].inflight[0].sacked);
        assert!(a.tx[1].inflight[1].sacked);
        assert!(a.tx[1].inflight[2].sacked);
        // Force a timeout sweep: only the missing head is resent, and
        // the sack marks are cleared (corruption insurance).
        a.tx[1].timer = Some(Instant::now() - Duration::from_millis(1));
        a.pump().unwrap();
        assert_eq!(a.link_stats().retransmits, 1);
        assert!(a.tx[1].inflight.iter().all(|f| !f.sacked));
    }

    #[test]
    fn bogus_sack_entries_are_ignored() {
        let (mut a, _b, _det) = pair();
        a.send(data(0, 1, 7, vec![1])).unwrap();
        // Entries out of range (0, beyond next_seq) and a ragged payload
        // must all be ignored.
        for payload in [
            99u64.to_le_bytes().to_vec(),
            0u64.to_le_bytes().to_vec(),
            vec![1, 2, 3], // not a multiple of 8
        ] {
            let ack = Message {
                src: 1,
                dst: 0,
                tag: ACK_TAG,
                checksum: Some(payload_checksum(&payload)),
                payload,
                arrival: 0.0,
                seq: 0,
                ack: 0,
            };
            a.process(ack).unwrap();
        }
        assert!(!a.tx[1].inflight[0].sacked);
    }

    #[test]
    fn piggybacked_ack_retires_inflight_frames() {
        let (mut a, _b, _det) = pair();
        a.send(data(0, 1, 7, vec![1])).unwrap();
        a.send(data(0, 1, 7, vec![2])).unwrap();
        assert_eq!(a.tx[1].inflight.len(), 2);
        // A reverse-path data frame from rank 1 carrying ack = 2.
        let mut rev = data(1, 0, 9, vec![42]);
        rev.seq = 1;
        rev.ack = 2;
        a.process(rev).unwrap();
        assert!(a.tx[1].inflight.is_empty(), "piggybacked ack retired both");
        // And the data itself was delivered.
        assert_eq!(a.take_pending(1, 9).unwrap().payload, vec![42]);
    }

    #[test]
    fn reverse_data_piggybacks_owed_ack() {
        let (mut a, _b, _det) = pair();
        // A frame from rank 1 is delivered: a now owes an ack.
        let mut m = data(1, 0, 9, vec![5]);
        m.seq = 1;
        a.process(m).unwrap();
        assert!(a.ack_owed[1].is_some());
        // Sending data back to rank 1 piggybacks the cumulative ack.
        a.send(data(0, 1, 7, vec![6])).unwrap();
        assert!(a.ack_owed[1].is_none());
        assert_eq!(a.stats.piggyback_acks, 1);
        assert_eq!(a.tx[1].inflight[0].msg.ack, 1);
    }

    #[test]
    fn purge_keeps_sequence_state() {
        let (_a, mut b, _det) = pair();
        let mut m1 = data(0, 1, 7, vec![1]);
        m1.seq = 1;
        b.process(m1).unwrap();
        assert_eq!(b.purge(), 1);
        assert_eq!(b.expected[0], 1, "sequence state survives purge");
        // A retransmitted seq 1 after the purge is recognized as a dup.
        let mut dup = data(0, 1, 7, vec![1]);
        dup.seq = 1;
        b.process(dup).unwrap();
        assert!(b.pending.is_empty());
        assert_eq!(b.link_stats().dups_dropped, 1);
    }

    #[test]
    fn stop_and_wait_mode_allows_one_frame_in_flight() {
        let cfg = Reliability {
            rto: Duration::from_millis(5),
            max_rto: Duration::from_millis(10),
            max_retries: 50,
            wire: WireTuning::stop_and_wait(),
            ..Reliability::default()
        };
        let (mut a, mut b, _det) = pair_with(cfg);
        std::thread::scope(|s| {
            let ha = s.spawn(move || {
                // The second send must block until the first is acked.
                a.send(data(0, 1, 7, vec![1])).unwrap();
                a.send(data(0, 1, 7, vec![2])).unwrap();
                a.flush(Instant::now() + Duration::from_secs(5)).unwrap();
                a
            });
            let m1 = b.recv_match(0, 7, Duration::from_secs(5)).unwrap();
            let m2 = b.recv_match(0, 7, Duration::from_secs(5)).unwrap();
            assert_eq!((m1.payload[0], m2.payload[0]), (1, 2));
            let a = ha.join().unwrap();
            let stats = a.link_stats();
            // Window never held more than one frame.
            assert_eq!(stats.window_occupancy_sum, stats.window_samples);
            assert_eq!(stats.piggyback_acks, 0);
        });
    }

    /// Rewind a link's last-heard stamp so the watchdog sees silence.
    fn silence(t: &mut ReliableTransport, peer: usize, for_: Duration) {
        t.last_heard[peer] = Instant::now().checked_sub(for_).expect("short rewind");
    }

    #[test]
    fn probe_answered_proves_liveness() {
        let cfg = Reliability::default().with_probing(Duration::from_millis(1), 3);
        let (mut a, mut b, det) = pair_with(cfg);
        // A caller is blocked on peer 1, which has been silent well past
        // the probe interval: the watchdog must probe.
        a.note_watch(1);
        silence(&mut a, 1, Duration::from_secs(1));
        a.pump().unwrap();
        assert_eq!(a.link_stats().probes_sent, 1);
        assert!(a.probe[1].is_some());
        // The peer answers the probe; the reply stands the watchdog down.
        b.poll(Duration::from_millis(20)).unwrap();
        assert_eq!(b.link_stats().probe_replies, 1);
        a.poll(Duration::from_millis(20)).unwrap();
        assert!(a.probe[1].is_none(), "probe reply is a heartbeat");
        assert_eq!(a.probe_strikes[1], 0);
        assert!(det.snapshot().is_empty(), "a slow peer is not a dead peer");
    }

    #[test]
    fn silent_watched_peer_escalates_to_the_detector() {
        let (tx0, mb0) = Mailbox::new(0);
        let (tx1, _mb1_unpolled) = Mailbox::new(1); // SIGSTOP-style: never answers
        let det = Arc::new(FailureDetector::new(2));
        let mut a = ReliableTransport::new(
            Box::new(ChannelTransport::new(vec![tx0, tx1], mb0)),
            0,
            2,
            Reliability::default().with_probing(Duration::from_millis(1), 2),
            Arc::clone(&det),
        );
        silence(&mut a, 1, Duration::from_secs(1));
        let mut escalated = false;
        for _ in 0..200 {
            a.note_watch(1);
            match a.poll(Duration::from_millis(2)) {
                Ok(()) => {}
                Err(NetError::RanksFailed { ranks }) => {
                    assert_eq!(ranks, vec![1]);
                    escalated = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(escalated, "unanswered probes must escalate");
        assert!(det.is_dead(1));
        assert_eq!(a.link_stats().stall_escalations, 1);
        assert!(a.link_stats().probes_sent >= 1);
    }

    #[test]
    fn unwatched_silence_is_never_probed() {
        // An idle link is not a straggler: without a blocked caller the
        // watchdog must not probe, however long the silence.
        let (mut a, _b, det) = pair();
        silence(&mut a, 1, Duration::from_secs(5));
        for _ in 0..50 {
            a.poll(Duration::ZERO).unwrap();
        }
        assert_eq!(a.link_stats().probes_sent, 0);
        assert!(det.snapshot().is_empty());
    }

    #[test]
    fn deadline_aborts_a_blocked_recv_within_a_slice() {
        let (mut a, _b, _det) = pair();
        a.deadline.arm(Duration::from_millis(5));
        let start = Instant::now();
        // The per-call timeout is far longer than the budget: the armed
        // deadline must win.
        let err = a.recv_match(1, 7, Duration::from_secs(30)).unwrap_err();
        assert!(matches!(err, NetError::DeadlineExceeded { rank: 0, .. }));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline must abort the wait, not the caller's timeout"
        );
    }

    #[test]
    fn cancelled_deadline_aborts_send_backpressure() {
        let cfg = Reliability {
            wire: WireTuning::default().with_window(1),
            rto: Duration::from_millis(1),
            max_rto: Duration::from_millis(2),
            max_retries: u32::MAX,
            ..Reliability::default()
        };
        let (tx0, mb0) = Mailbox::new(0);
        let (tx1, _mb1_unpolled) = Mailbox::new(1);
        let det = Arc::new(FailureDetector::new(2));
        let mut a = ReliableTransport::new(
            Box::new(ChannelTransport::new(vec![tx0, tx1], mb0)),
            0,
            2,
            cfg,
            Arc::clone(&det),
        )
        .with_deadline(Deadline::new());
        let cancel = a.deadline.clone();
        a.deadline.arm(Duration::from_secs(60));
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                cancel.cancel();
            });
            // Stop-and-wait against a peer that never acks: without the
            // cancellation this would spin until the 60 s budget.
            let start = Instant::now();
            let err = a.send(data(0, 1, 7, vec![1])).unwrap_err();
            assert!(matches!(err, NetError::DeadlineExceeded { rank: 0, .. }));
            assert!(start.elapsed() < Duration::from_secs(5));
        });
    }
}

//! Per-rank inbox with selective receive.
//!
//! Each rank owns one unbounded channel that all peers send into. A
//! receive names `(src, tag)`; messages that arrive out of order are
//! parked in a pending buffer until asked for — the standard MPI-style
//! matching discipline.

use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use crate::error::NetError;
use crate::message::{Message, Tag};

/// Sending half of a mailbox (cloneable, one per peer).
pub type MailSender = Sender<Message>;

/// The receiving side owned by a single rank.
#[derive(Debug)]
pub struct Mailbox {
    rank: usize,
    rx: Receiver<Message>,
    pending: VecDeque<Message>,
}

impl Mailbox {
    /// Create a mailbox pair for `rank`.
    #[must_use]
    pub fn new(rank: usize) -> (MailSender, Self) {
        let (tx, rx) = std::sync::mpsc::channel();
        (
            tx,
            Self {
                rank,
                rx,
                pending: VecDeque::new(),
            },
        )
    }

    /// Number of parked (unmatched) messages.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Receive the next message from *any* source, waiting at most
    /// `timeout`. Parked messages are served first (FIFO); `None` on
    /// timeout or when every sender hung up. Used by the reliability
    /// layer, which must see acks and data from all peers while it
    /// waits.
    pub fn recv_any(&mut self, timeout: Duration) -> Option<Message> {
        if let Some(m) = self.pending.pop_front() {
            return Some(m);
        }
        self.rx.recv_timeout(timeout).ok()
    }

    /// Block until at least one message is parked or queued, or `timeout`
    /// elapses, *without* consuming anything from the matching discipline:
    /// a message pulled off the channel is parked, not returned. Returns
    /// `true` if something is now available. This is the idle edge of the
    /// event-driven round executor — a blocking channel wait instead of a
    /// sleep-poll loop, so an idle endpoint burns no CPU and no retry
    /// budget.
    pub fn wait_any(&mut self, timeout: Duration) -> bool {
        if !self.pending.is_empty() {
            return true;
        }
        match self.rx.recv_timeout(timeout) {
            Ok(m) => {
                self.pending.push_back(m);
                true
            }
            Err(_) => false,
        }
    }

    /// Discard every queued and parked message (stale traffic from an
    /// aborted collective attempt). Returns how many were discarded.
    pub fn purge(&mut self) -> usize {
        let mut n = self.pending.len();
        self.pending.clear();
        while self.rx.try_recv().is_ok() {
            n += 1;
        }
        n
    }

    /// Receive the next message from `from` with tag `tag`, waiting at
    /// most `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if nothing matches within the deadline;
    /// [`NetError::Disconnected`] if all senders hung up.
    pub fn recv_match(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        // Check the parked messages first (FIFO per (src, tag) pair).
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == from && m.tag == tag)
        {
            return Ok(self.pending.remove(pos).expect("position just found"));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(m) if m.src == from && m.tag == tag => return Ok(m),
                Ok(m) => self.pending.push_back(m),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(NetError::Timeout {
                        rank: self.rank,
                        from,
                        tag,
                        waited: timeout,
                    })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Disconnected { peer: from })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, tag: Tag, byte: u8) -> Message {
        Message {
            src,
            dst: 0,
            tag,
            payload: vec![byte],
            arrival: 0.0,
            seq: 0,
            ack: 0,
            checksum: None,
        }
    }

    #[test]
    fn in_order_delivery() {
        let (tx, mut mb) = Mailbox::new(0);
        tx.send(msg(1, 5, 0xAA)).unwrap();
        let m = mb.recv_match(1, 5, Duration::from_millis(100)).unwrap();
        assert_eq!(m.payload, vec![0xAA]);
    }

    #[test]
    fn out_of_order_messages_are_parked() {
        let (tx, mut mb) = Mailbox::new(0);
        tx.send(msg(2, 9, 1)).unwrap(); // not what we ask for first
        tx.send(msg(1, 5, 2)).unwrap();
        let m = mb.recv_match(1, 5, Duration::from_millis(100)).unwrap();
        assert_eq!(m.payload, vec![2]);
        assert_eq!(mb.pending_len(), 1);
        let m = mb.recv_match(2, 9, Duration::from_millis(100)).unwrap();
        assert_eq!(m.payload, vec![1]);
        assert_eq!(mb.pending_len(), 0);
    }

    #[test]
    fn fifo_within_same_src_tag() {
        let (tx, mut mb) = Mailbox::new(0);
        tx.send(msg(1, 5, 1)).unwrap();
        tx.send(msg(1, 5, 2)).unwrap();
        // Park both by first asking for a different match that arrives later.
        tx.send(msg(3, 3, 9)).unwrap();
        let _ = mb.recv_match(3, 3, Duration::from_millis(100)).unwrap();
        let a = mb.recv_match(1, 5, Duration::from_millis(100)).unwrap();
        let b = mb.recv_match(1, 5, Duration::from_millis(100)).unwrap();
        assert_eq!((a.payload[0], b.payload[0]), (1, 2));
    }

    #[test]
    fn timeout_on_missing_message() {
        let (_tx, mut mb) = Mailbox::new(4);
        let err = mb.recv_match(1, 5, Duration::from_millis(20)).unwrap_err();
        assert!(matches!(
            err,
            NetError::Timeout {
                rank: 4,
                from: 1,
                tag: 5,
                ..
            }
        ));
    }

    #[test]
    fn disconnected_when_all_senders_dropped() {
        let (tx, mut mb) = Mailbox::new(0);
        drop(tx);
        let err = mb.recv_match(1, 5, Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, NetError::Disconnected { peer: 1 });
    }

    #[test]
    fn wait_any_parks_without_consuming() {
        let (tx, mut mb) = Mailbox::new(0);
        assert!(!mb.wait_any(Duration::from_millis(10)));
        tx.send(msg(1, 5, 3)).unwrap();
        assert!(mb.wait_any(Duration::from_millis(100)));
        assert_eq!(mb.pending_len(), 1);
        // The parked message is still matchable.
        let m = mb.recv_match(1, 5, Duration::from_millis(10)).unwrap();
        assert_eq!(m.payload, vec![3]);
        // With something already parked, wait_any returns immediately.
        tx.send(msg(2, 7, 4)).unwrap();
        assert!(mb.wait_any(Duration::from_millis(100)));
        assert!(mb.wait_any(Duration::ZERO));
    }

    #[test]
    fn tag_mismatch_is_parked_not_returned() {
        let (tx, mut mb) = Mailbox::new(0);
        tx.send(msg(1, 6, 7)).unwrap();
        let err = mb.recv_match(1, 5, Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, NetError::Timeout { .. }));
        assert_eq!(mb.pending_len(), 1);
    }
}

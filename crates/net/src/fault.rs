//! Fault injection.
//!
//! The paper motivates the fully connected model partly by fault
//! tolerance: algorithms "can operate in the presence of faults (assuming
//! connectivity is maintained)". This module provides two kinds of
//! injected faults:
//!
//! * **Deterministic plans** — kill a rank after a round, or drop one
//!   exact `(src, dst, round)` message. These model application-level
//!   omission failures and are applied by the
//!   [`Endpoint`](crate::Endpoint), which knows round numbers.
//! * **Probabilistic wire faults** — seeded per-link loss, duplication,
//!   corruption, and delay rates, applied below the round layer by
//!   [`FaultyTransport`] to every physical transmission (including
//!   reliability-layer acks and retransmissions). The RNG is a keyed
//!   splitmix64 hash of `(seed, src, dst, transmission#)` — fully
//!   deterministic given the transmission sequence, no ambient entropy.
//!
//! Wire faults pair with the [`crate::reliable`] sublayer: loss and
//! corruption are healed by ack/retransmit, duplication by sequence
//! numbers. Without the reliability layer, loss surfaces as a receiver
//! timeout and corruption as [`crate::NetError::Corrupt`]; enabling
//! duplication without reliability may deliver stale messages and is
//! only meaningful for testing the reliability layer itself.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use crate::error::NetError;
use crate::message::{Message, Tag};
use crate::metrics::LinkStats;
use crate::transport::Transport;

/// Per-link probabilistic fault rates (each in `[0, 1]`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkRates {
    /// Probability a transmission is silently discarded.
    pub loss: f64,
    /// Probability a transmission is delivered twice.
    pub duplicate: f64,
    /// Probability one payload byte is flipped in flight.
    pub corrupt: f64,
    /// Probability the message's virtual arrival is delayed.
    pub delay: f64,
    /// Virtual-time penalty (seconds) added when a delay fires.
    pub delay_secs: f64,
}

impl LinkRates {
    /// Whether every rate is zero (the link is fault-free).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.loss <= 0.0 && self.duplicate <= 0.0 && self.corrupt <= 0.0 && self.delay <= 0.0
    }
}

/// The per-transmission decision drawn from the seeded RNG.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireVerdict {
    /// Discard the transmission.
    pub drop: bool,
    /// Deliver it twice.
    pub duplicate: bool,
    /// Flip one payload byte.
    pub corrupt: bool,
    /// Add the link's virtual delay penalty.
    pub delay: bool,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` keyed by `(key, salt)`.
fn unit_draw(key: u64, salt: u64) -> f64 {
    let bits = splitmix64(key ^ salt.wrapping_mul(0xa076_1d64_78bd_642f));
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// A declarative fault plan applied during a cluster run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Rank → round after which the rank's thread exits with
    /// [`crate::NetError::Killed`].
    kill_after: HashMap<usize, u64>,
    /// `(src, dst, round)` triples whose message is silently dropped.
    drops: HashSet<(usize, usize, u64)>,
    /// Seed for the probabilistic wire faults.
    seed: u64,
    /// Default rates applied to every link.
    rates: LinkRates,
    /// Per-link overrides keyed by `(src, dst)`.
    link_rates: HashMap<(usize, usize), LinkRates>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kill_after.is_empty() && self.drops.is_empty() && !self.has_wire_faults()
    }

    /// Kill `rank` once it has completed `round` rounds.
    #[must_use]
    pub fn kill_rank_after(mut self, rank: usize, round: u64) -> Self {
        self.kill_after.insert(rank, round);
        self
    }

    /// Drop the message `src → dst` sent in the sender's round `round`.
    #[must_use]
    pub fn drop_message(mut self, src: usize, dst: usize, round: u64) -> Self {
        self.drops.insert((src, dst, round));
        self
    }

    /// Seed the probabilistic wire-fault RNG (deterministic; no ambient
    /// entropy is ever consulted).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Lose each transmission on every link with probability `rate`.
    #[must_use]
    pub fn with_loss(mut self, rate: f64) -> Self {
        self.rates.loss = rate;
        self
    }

    /// Duplicate each transmission on every link with probability `rate`.
    #[must_use]
    pub fn with_duplication(mut self, rate: f64) -> Self {
        self.rates.duplicate = rate;
        self
    }

    /// Flip one payload byte on every link with probability `rate`.
    #[must_use]
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.rates.corrupt = rate;
        self
    }

    /// Delay each transmission's virtual arrival by `secs` with
    /// probability `rate`.
    #[must_use]
    pub fn with_delay(mut self, rate: f64, secs: f64) -> Self {
        self.rates.delay = rate;
        self.rates.delay_secs = secs;
        self
    }

    /// Override the rates of the single link `src → dst`.
    #[must_use]
    pub fn with_link_rates(mut self, src: usize, dst: usize, rates: LinkRates) -> Self {
        self.link_rates.insert((src, dst), rates);
        self
    }

    /// Whether any probabilistic wire fault is configured (this is what
    /// switches payload checksumming on).
    #[must_use]
    pub fn has_wire_faults(&self) -> bool {
        !self.rates.is_quiet() || self.link_rates.values().any(|r| !r.is_quiet())
    }

    /// The rates in force on the link `src → dst`.
    #[must_use]
    pub fn rates_for(&self, src: usize, dst: usize) -> LinkRates {
        self.link_rates
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.rates)
    }

    fn wire_key(&self, src: usize, dst: usize, xmit: u64) -> u64 {
        self.seed
            ^ (src as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (dst as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
            ^ xmit.wrapping_mul(0x1656_67b1_9e37_79f9)
    }

    /// The seeded verdict for the `xmit`-th transmission out of `src`
    /// toward `dst`.
    #[must_use]
    pub fn wire_verdict(&self, src: usize, dst: usize, xmit: u64) -> WireVerdict {
        let r = self.rates_for(src, dst);
        if r.is_quiet() {
            return WireVerdict::default();
        }
        let key = self.wire_key(src, dst, xmit);
        WireVerdict {
            drop: unit_draw(key, 1) < r.loss,
            duplicate: unit_draw(key, 2) < r.duplicate,
            corrupt: unit_draw(key, 3) < r.corrupt,
            delay: unit_draw(key, 4) < r.delay,
        }
    }

    /// The seeded payload byte index a corruption verdict flips.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` (empty payloads are never corrupted).
    #[must_use]
    pub fn corrupt_site(&self, src: usize, dst: usize, xmit: u64, len: usize) -> usize {
        assert!(len > 0, "cannot corrupt an empty payload");
        (splitmix64(self.wire_key(src, dst, xmit) ^ 0x5eed) % len as u64) as usize
    }

    /// Should `rank` die before starting its next round (having completed
    /// `completed_rounds`)?
    #[must_use]
    pub fn should_kill(&self, rank: usize, completed_rounds: u64) -> Option<u64> {
        match self.kill_after.get(&rank) {
            Some(&after) if completed_rounds >= after => Some(after),
            _ => None,
        }
    }

    /// Should this message be dropped?
    #[must_use]
    pub fn should_drop(&self, src: usize, dst: usize, round: u64) -> bool {
        self.drops.contains(&(src, dst, round))
    }

    /// The plan a shrink-and-retry attempt runs under: deterministic
    /// kills/drops were consumed by (and are only meaningful for) the
    /// original membership, so they are cleared, while the seed and the
    /// cluster-wide probabilistic rates — which are topology-agnostic —
    /// carry over. Per-link overrides are keyed by original ranks and
    /// are cleared too.
    #[must_use]
    pub fn survivor_plan(&self) -> Self {
        Self {
            kill_after: HashMap::new(),
            drops: HashSet::new(),
            seed: self.seed,
            rates: self.rates,
            link_rates: HashMap::new(),
        }
    }
}

/// A [`Transport`] wrapper injecting the plan's probabilistic wire
/// faults into every outbound transmission. Installed automatically by
/// the cluster runner (below the reliability layer, if any) whenever the
/// plan has wire faults — for both the channel and the socket transport.
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    plan: Arc<FaultPlan>,
    /// Per-sender transmission counter driving the seeded RNG.
    xmit: u64,
    stats: LinkStats,
}

impl FaultyTransport {
    /// Wrap `inner`, injecting faults from `plan`.
    #[must_use]
    pub fn new(inner: Box<dyn Transport>, plan: Arc<FaultPlan>) -> Self {
        Self {
            inner,
            plan,
            xmit: 0,
            stats: LinkStats::default(),
        }
    }
}

impl Transport for FaultyTransport {
    fn send(&mut self, mut msg: Message) -> Result<(), NetError> {
        let xmit = self.xmit;
        self.xmit += 1;
        let verdict = self.plan.wire_verdict(msg.src, msg.dst, xmit);
        if verdict.drop {
            self.stats.injected_losses += 1;
            return Ok(());
        }
        if verdict.delay {
            self.stats.injected_delays += 1;
            msg.arrival += self.plan.rates_for(msg.src, msg.dst).delay_secs;
        }
        if verdict.corrupt && !msg.payload.is_empty() {
            self.stats.injected_corruptions += 1;
            let site = self
                .plan
                .corrupt_site(msg.src, msg.dst, xmit, msg.payload.len());
            // The checksum is deliberately NOT recomputed: the receiver
            // must notice.
            msg.payload[site] ^= 0xa5;
        }
        if verdict.duplicate {
            self.stats.injected_dups += 1;
            if verdict.corrupt && !msg.payload.is_empty() {
                // The duplicate carries the same damaged bytes, so one
                // corruption verdict puts two corrupt frames on the
                // wire — count both, keeping the invariant that every
                // corrupt frame on the wire is accounted here exactly
                // once (receivers drop each on its own checksum).
                self.stats.injected_corruptions += 1;
            }
            self.inner.send(msg.clone())?;
        }
        self.inner.send(msg)
    }

    fn recv_match(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        self.inner.recv_match(from, tag, timeout)
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        self.inner.recv_any(timeout)
    }

    fn try_match(&mut self, from: usize, tag: Tag) -> Result<Option<Message>, NetError> {
        self.inner.try_match(from, tag)
    }

    fn wait_any(&mut self, timeout: Duration) -> Result<(), NetError> {
        self.inner.wait_any(timeout)
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn flush(&mut self, deadline: std::time::Instant) -> Result<(), NetError> {
        self.inner.flush(deadline)
    }

    fn purge(&mut self) -> usize {
        self.inner.purge()
    }

    fn link_stats(&self) -> LinkStats {
        self.stats.merged(&self.inner.link_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_does_nothing() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.should_kill(0, 100), None);
        assert!(!p.should_drop(0, 1, 0));
        assert!(!p.has_wire_faults());
        assert_eq!(p.wire_verdict(0, 1, 7), WireVerdict::default());
    }

    #[test]
    fn kill_threshold() {
        let p = FaultPlan::new().kill_rank_after(3, 2);
        assert_eq!(p.should_kill(3, 1), None);
        assert_eq!(p.should_kill(3, 2), Some(2));
        assert_eq!(p.should_kill(3, 5), Some(2));
        assert_eq!(p.should_kill(2, 5), None);
    }

    #[test]
    fn drop_is_exact() {
        let p = FaultPlan::new().drop_message(0, 1, 4);
        assert!(p.should_drop(0, 1, 4));
        assert!(!p.should_drop(1, 0, 4));
        assert!(!p.should_drop(0, 1, 3));
    }

    #[test]
    fn wire_verdicts_are_deterministic_and_seeded() {
        let p = FaultPlan::new().with_seed(42).with_loss(0.5);
        let q = FaultPlan::new().with_seed(42).with_loss(0.5);
        for x in 0..64 {
            assert_eq!(p.wire_verdict(0, 1, x), q.wire_verdict(0, 1, x));
        }
        // A different seed gives a different pattern somewhere.
        let r = FaultPlan::new().with_seed(43).with_loss(0.5);
        assert!((0..64).any(|x| p.wire_verdict(0, 1, x) != r.wire_verdict(0, 1, x)));
    }

    #[test]
    fn wire_loss_rate_is_roughly_honored() {
        let p = FaultPlan::new().with_seed(7).with_loss(0.25);
        let losses = (0..10_000)
            .filter(|&x| p.wire_verdict(2, 3, x).drop)
            .count();
        assert!(
            (2_000..3_000).contains(&losses),
            "25% loss drew {losses}/10000"
        );
    }

    #[test]
    fn link_override_beats_default() {
        let p = FaultPlan::new().with_loss(0.0).with_link_rates(
            1,
            2,
            LinkRates {
                loss: 1.0,
                ..LinkRates::default()
            },
        );
        assert!(p.has_wire_faults());
        assert!(p.wire_verdict(1, 2, 0).drop);
        assert!(!p.wire_verdict(2, 1, 0).drop);
    }

    #[test]
    fn survivor_plan_keeps_rates_drops_deterministic_faults() {
        let p = FaultPlan::new()
            .kill_rank_after(1, 0)
            .drop_message(0, 1, 0)
            .with_seed(9)
            .with_loss(0.1);
        let s = p.survivor_plan();
        assert_eq!(s.should_kill(1, 10), None);
        assert!(!s.should_drop(0, 1, 0));
        assert!(s.has_wire_faults());
        assert_eq!(s.rates_for(0, 1).loss, 0.1);
    }
}

//! Fault injection.
//!
//! The paper motivates the fully connected model partly by fault
//! tolerance: algorithms "can operate in the presence of faults (assuming
//! connectivity is maintained)". This module provides two kinds of
//! injected faults:
//!
//! * **Deterministic plans** — kill a rank after a round, or drop one
//!   exact `(src, dst, round)` message. These model application-level
//!   omission failures and are applied by the
//!   [`Endpoint`](crate::Endpoint), which knows round numbers.
//! * **Probabilistic wire faults** — seeded per-link loss, duplication,
//!   corruption, and delay rates, applied below the round layer by
//!   [`FaultyTransport`] to every physical transmission (including
//!   reliability-layer acks and retransmissions). The RNG is a keyed
//!   splitmix64 hash of `(seed, src, dst, transmission#)` — fully
//!   deterministic given the transmission sequence, no ambient entropy.
//!
//! Wire faults pair with the [`crate::reliable`] sublayer: loss and
//! corruption are healed by ack/retransmit, duplication by sequence
//! numbers. Without the reliability layer, loss surfaces as a receiver
//! timeout and corruption as [`crate::NetError::Corrupt`]; enabling
//! duplication without reliability may deliver stale messages and is
//! only meaningful for testing the reliability layer itself.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::error::NetError;
use crate::message::{Message, Tag};
use crate::metrics::LinkStats;
use crate::transport::Transport;

/// Cluster-shared progress clock: each rank's count of *completed*
/// rounds, published by its endpoint and read by every
/// [`FaultyTransport`] so round-keyed link cuts apply below the round
/// layer — severing retransmissions and acks, not just the round's data
/// frames. Lock-free; one relaxed load per transmission.
#[derive(Debug)]
pub struct RoundClock {
    completed: Vec<AtomicU64>,
}

impl RoundClock {
    /// A clock for `n` ranks, all at round 0.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            completed: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record that `rank` completed another round.
    pub fn advance(&self, rank: usize) {
        self.completed[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// How many rounds `rank` has completed. Ranks beyond the clock's
    /// size (never the case inside a cluster run) read as round 0.
    #[must_use]
    pub fn completed(&self, rank: usize) -> u64 {
        self.completed
            .get(rank)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Per-link probabilistic fault rates (each in `[0, 1]`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkRates {
    /// Probability a transmission is silently discarded.
    pub loss: f64,
    /// Probability a transmission is delivered twice.
    pub duplicate: f64,
    /// Probability one payload byte is flipped in flight.
    pub corrupt: f64,
    /// Probability the message's virtual arrival is delayed.
    pub delay: f64,
    /// Virtual-time penalty (seconds) added when a delay fires.
    pub delay_secs: f64,
}

impl LinkRates {
    /// Whether every rate is zero (the link is fault-free).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.loss <= 0.0 && self.duplicate <= 0.0 && self.corrupt <= 0.0 && self.delay <= 0.0
    }
}

/// The per-transmission decision drawn from the seeded RNG.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireVerdict {
    /// Discard the transmission.
    pub drop: bool,
    /// Deliver it twice.
    pub duplicate: bool,
    /// Flip one payload byte.
    pub corrupt: bool,
    /// Add the link's virtual delay penalty.
    pub delay: bool,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` keyed by `(key, salt)`.
fn unit_draw(key: u64, salt: u64) -> f64 {
    let bits = splitmix64(key ^ salt.wrapping_mul(0xa076_1d64_78bd_642f));
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// A connection-level fault injected inside the TCP fabric, keyed by a
/// rank pair: the fabric maps the ranks to their simulated nodes and
/// arms the event on the stream carrying that node pair's traffic
/// (intra-node pairs have no stream, so the event is a no-op there).
/// Rounds are measured on the cluster's *slowest* rank — the event
/// fires once every rank has completed `round` rounds — so an armed
/// event can never race ahead of the traffic it is meant to disturb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFault {
    /// Abruptly close both stream ends (TCP RST analogue): the reactor
    /// must detect the dead link, back off, and re-handshake.
    Reset {
        /// A rank on one of the two nodes.
        src: usize,
        /// A rank on the other node.
        dst: usize,
        /// Slowest-rank completed-round count at which the reset fires.
        round: u64,
    },
    /// Freeze the stream (no reads, no writes) for `millis` — the
    /// half-open analogue where the peer goes silent but the socket
    /// never errors, so only timeouts and retransmissions notice.
    HalfOpen {
        /// A rank on one of the two nodes.
        src: usize,
        /// A rank on the other node.
        dst: usize,
        /// Slowest-rank completed-round count at which the stall starts.
        round: u64,
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// Fail the pair's next `drops` reconnect handshakes, burning
    /// reconnect budget (SYN-blackhole analogue). Enough drops exhaust
    /// the budget and force a node-level eviction.
    HandshakeDrop {
        /// A rank on one of the two nodes.
        src: usize,
        /// A rank on the other node.
        dst: usize,
        /// Number of consecutive handshakes to fail.
        drops: u32,
    },
    /// Reset the link at `round` and then again after each of the next
    /// `flaps` successful heals — the flapping-connection generator.
    Flap {
        /// A rank on one of the two nodes.
        src: usize,
        /// A rank on the other node.
        dst: usize,
        /// Slowest-rank completed-round count of the first reset.
        round: u64,
        /// Additional resets fired right after each heal.
        flaps: u32,
    },
}

/// A declarative fault plan applied during a cluster run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Rank → round after which the rank's thread exits with
    /// [`crate::NetError::Killed`].
    kill_after: HashMap<usize, u64>,
    /// *Original* rank → round: a kill that re-fires on every
    /// shrink-and-retry attempt whose membership still (or again)
    /// includes the victim — the flapping-rank generator. Bound to an
    /// attempt's dense numbering by [`bind_recurring`](Self::bind_recurring).
    recurring_kills: HashMap<usize, u64>,
    /// `(src, dst, round)` triples whose message is silently dropped.
    drops: HashSet<(usize, usize, u64)>,
    /// Seed for the probabilistic wire faults.
    seed: u64,
    /// Default rates applied to every link.
    rates: LinkRates,
    /// Per-link overrides keyed by `(src, dst)`.
    link_rates: HashMap<(usize, usize), LinkRates>,
    /// Directed link cuts: `(src, dst)` → the sender round from which
    /// every `src → dst` transmission is severed.
    cut_links: HashMap<(usize, usize), u64>,
    /// Bipartitions: `(side, round)` — once the sender has completed
    /// `round` rounds, traffic crossing the `side` / complement boundary
    /// (either direction) is severed. Membership is evaluated per
    /// message, so the plan needs no knowledge of `n`.
    partitions: Vec<(Vec<usize>, u64)>,
    /// Stall events: `(rank, round, pause)` — the rank sleeps for
    /// `pause` before starting the round after completing `round` rounds
    /// (SIGSTOP-style: while asleep it pumps no acks and answers no
    /// probes).
    stalls: Vec<(usize, u64, Duration)>,
    /// Probability a dedicated ack frame is silently discarded —
    /// ack-path fault injection beyond the symmetric `rates` (which hit
    /// acks and data alike).
    ack_loss: f64,
    /// Connection-level events injected inside the TCP fabric (resets,
    /// half-open stalls, handshake drops, reconnect flaps). Ignored by
    /// transports without a shared stream data plane.
    socket: Vec<SocketFault>,
    /// Whether this plan came out of [`survivor_plan`](Self::survivor_plan)
    /// and therefore addresses an attempt's *dense* numbering. Recurring
    /// kills are keyed by original rank, so [`should_kill`](Self::should_kill)
    /// must not fall back to them on a shrunk plan until
    /// [`bind_recurring`](Self::bind_recurring) has translated the ids.
    shrunk: bool,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kill_after.is_empty()
            && self.recurring_kills.is_empty()
            && self.drops.is_empty()
            && self.stalls.is_empty()
            && self.socket.is_empty()
            && !self.has_wire_faults()
            && !self.needs_wire_layer()
    }

    /// Kill `rank` once it has completed `round` rounds.
    #[must_use]
    pub fn kill_rank_after(mut self, rank: usize, round: u64) -> Self {
        self.kill_after.insert(rank, round);
        self
    }

    /// Kill *original* rank `rank` after `round` rounds on **every**
    /// attempt whose membership includes it — unlike
    /// [`kill_rank_after`](Self::kill_rank_after), the kill is not
    /// consumed by the first attempt, so a rank that rejoins dies
    /// again: the flapping-rank generator for recovery tests. The
    /// resilient driver maps it to the attempt's dense numbering via
    /// [`bind_recurring`](Self::bind_recurring); under a plain
    /// [`Cluster::run`](crate::cluster::Cluster::run) (original
    /// numbering) it behaves like a one-shot kill.
    #[must_use]
    pub fn kill_rank_recurring(mut self, rank: usize, round: u64) -> Self {
        self.recurring_kills.insert(rank, round);
        self
    }

    /// Drop the message `src → dst` sent in the sender's round `round`.
    #[must_use]
    pub fn drop_message(mut self, src: usize, dst: usize, round: u64) -> Self {
        self.drops.insert((src, dst, round));
        self
    }

    /// Seed the probabilistic wire-fault RNG (deterministic; no ambient
    /// entropy is ever consulted).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Lose each transmission on every link with probability `rate`.
    #[must_use]
    pub fn with_loss(mut self, rate: f64) -> Self {
        self.rates.loss = rate;
        self
    }

    /// Duplicate each transmission on every link with probability `rate`.
    #[must_use]
    pub fn with_duplication(mut self, rate: f64) -> Self {
        self.rates.duplicate = rate;
        self
    }

    /// Flip one payload byte on every link with probability `rate`.
    #[must_use]
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.rates.corrupt = rate;
        self
    }

    /// Delay each transmission's virtual arrival by `secs` with
    /// probability `rate`.
    #[must_use]
    pub fn with_delay(mut self, rate: f64, secs: f64) -> Self {
        self.rates.delay = rate;
        self.rates.delay_secs = secs;
        self
    }

    /// Override the rates of the single link `src → dst`.
    #[must_use]
    pub fn with_link_rates(mut self, src: usize, dst: usize, rates: LinkRates) -> Self {
        self.link_rates.insert((src, dst), rates);
        self
    }

    /// Sever the directed link `src → dst` from the sender's round
    /// `round` onward (data, acks, and retransmissions alike). The
    /// reverse link stays up — this is how asymmetric partitions are
    /// built.
    #[must_use]
    pub fn cut_link(mut self, src: usize, dst: usize, round: u64) -> Self {
        self.cut_links.insert((src, dst), round);
        self
    }

    /// Partition the cluster into `side` and its complement from round
    /// `round` onward: every transmission crossing the boundary (either
    /// direction) is severed once its sender has completed `round`
    /// rounds.
    #[must_use]
    pub fn with_partition(mut self, side: Vec<usize>, round: u64) -> Self {
        self.partitions.push((side, round));
        self
    }

    /// Stall `rank` for `pause` before it starts the round after
    /// completing `round` rounds. While stalled the rank is fully
    /// unresponsive (no ack pumping, no probe replies) — the in-process
    /// analogue of a SIGSTOP/SIGCONT pair.
    #[must_use]
    pub fn stall_rank(mut self, rank: usize, round: u64, pause: Duration) -> Self {
        self.stalls.push((rank, round, pause));
        self
    }

    /// Lose each dedicated ack frame with probability `rate` (on top of
    /// any symmetric per-link rates).
    #[must_use]
    pub fn with_ack_loss(mut self, rate: f64) -> Self {
        self.ack_loss = rate;
        self
    }

    /// Reset the TCP stream carrying `src ↔ dst` traffic once every
    /// rank has completed `round` rounds (see [`SocketFault::Reset`]).
    #[must_use]
    pub fn with_conn_reset(mut self, src: usize, dst: usize, round: u64) -> Self {
        self.socket.push(SocketFault::Reset { src, dst, round });
        self
    }

    /// Freeze the `src ↔ dst` stream for `stall` starting at `round`
    /// (see [`SocketFault::HalfOpen`]).
    #[must_use]
    pub fn with_half_open(mut self, src: usize, dst: usize, round: u64, stall: Duration) -> Self {
        self.socket.push(SocketFault::HalfOpen {
            src,
            dst,
            round,
            millis: stall.as_millis() as u64,
        });
        self
    }

    /// Fail the `src ↔ dst` pair's next `drops` reconnect handshakes
    /// (see [`SocketFault::HandshakeDrop`]).
    #[must_use]
    pub fn with_handshake_drops(mut self, src: usize, dst: usize, drops: u32) -> Self {
        self.socket
            .push(SocketFault::HandshakeDrop { src, dst, drops });
        self
    }

    /// Flap the `src ↔ dst` stream: reset at `round`, then `flaps` more
    /// resets, one after each heal (see [`SocketFault::Flap`]).
    #[must_use]
    pub fn with_reconnect_flap(mut self, src: usize, dst: usize, round: u64, flaps: u32) -> Self {
        self.socket.push(SocketFault::Flap {
            src,
            dst,
            round,
            flaps,
        });
        self
    }

    /// The connection-level events the TCP fabric must arm.
    #[must_use]
    pub fn socket_faults(&self) -> &[SocketFault] {
        &self.socket
    }

    /// Whether any connection-level (fabric-injected) event is present.
    #[must_use]
    pub fn has_socket_faults(&self) -> bool {
        !self.socket.is_empty()
    }

    /// Whether any probabilistic wire fault is configured (this is what
    /// switches payload checksumming on).
    #[must_use]
    pub fn has_wire_faults(&self) -> bool {
        !self.rates.is_quiet() || self.link_rates.values().any(|r| !r.is_quiet())
    }

    /// Whether the plan needs the [`FaultyTransport`] wrapper installed
    /// at all: probabilistic rates, link cuts/partitions, or ack-path
    /// loss (cuts and ack loss do not corrupt payloads, so they need the
    /// wire layer but not checksumming).
    #[must_use]
    pub fn needs_wire_layer(&self) -> bool {
        self.has_wire_faults()
            || !self.cut_links.is_empty()
            || !self.partitions.is_empty()
            || self.ack_loss > 0.0
    }

    /// Whether `src → dst` is severed once the sender has completed
    /// `completed` rounds — by a directed cut or by any active
    /// bipartition the two ranks straddle.
    #[must_use]
    pub fn is_cut(&self, src: usize, dst: usize, completed: u64) -> bool {
        if let Some(&round) = self.cut_links.get(&(src, dst)) {
            if completed >= round {
                return true;
            }
        }
        self.partitions
            .iter()
            .any(|(side, round)| completed >= *round && side.contains(&src) != side.contains(&dst))
    }

    /// Total stall this rank owes before starting the round after
    /// completing `completed` rounds.
    #[must_use]
    pub fn stall_for(&self, rank: usize, completed: u64) -> Option<Duration> {
        let total: Duration = self
            .stalls
            .iter()
            .filter(|&&(r, at, _)| r == rank && at == completed)
            .map(|&(_, _, pause)| pause)
            .sum();
        (total > Duration::ZERO).then_some(total)
    }

    /// The seeded verdict for dropping the `xmit`-th transmission as an
    /// ack-path loss (only consulted for dedicated ack frames).
    #[must_use]
    pub fn ack_loss_verdict(&self, src: usize, dst: usize, xmit: u64) -> bool {
        self.ack_loss > 0.0 && unit_draw(self.wire_key(src, dst, xmit), 5) < self.ack_loss
    }

    /// The rates in force on the link `src → dst`.
    #[must_use]
    pub fn rates_for(&self, src: usize, dst: usize) -> LinkRates {
        self.link_rates
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.rates)
    }

    fn wire_key(&self, src: usize, dst: usize, xmit: u64) -> u64 {
        self.seed
            ^ (src as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (dst as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
            ^ xmit.wrapping_mul(0x1656_67b1_9e37_79f9)
    }

    /// The seeded verdict for the `xmit`-th transmission out of `src`
    /// toward `dst`.
    #[must_use]
    pub fn wire_verdict(&self, src: usize, dst: usize, xmit: u64) -> WireVerdict {
        let r = self.rates_for(src, dst);
        if r.is_quiet() {
            return WireVerdict::default();
        }
        let key = self.wire_key(src, dst, xmit);
        WireVerdict {
            drop: unit_draw(key, 1) < r.loss,
            duplicate: unit_draw(key, 2) < r.duplicate,
            corrupt: unit_draw(key, 3) < r.corrupt,
            delay: unit_draw(key, 4) < r.delay,
        }
    }

    /// The seeded payload byte index a corruption verdict flips.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` (empty payloads are never corrupted).
    #[must_use]
    pub fn corrupt_site(&self, src: usize, dst: usize, xmit: u64, len: usize) -> usize {
        assert!(len > 0, "cannot corrupt an empty payload");
        (splitmix64(self.wire_key(src, dst, xmit) ^ 0x5eed) % len as u64) as usize
    }

    /// Should `rank` die before starting its next round (having completed
    /// `completed_rounds`)?
    #[must_use]
    pub fn should_kill(&self, rank: usize, completed_rounds: u64) -> Option<u64> {
        // On a fresh plan dense and original numbering coincide, so an
        // unbound recurring kill may fire directly; on a shrunk plan it
        // must wait for `bind_recurring` to translate its original id.
        let recurring = (!self.shrunk)
            .then(|| self.recurring_kills.get(&rank))
            .flatten();
        match self.kill_after.get(&rank).or(recurring) {
            Some(&after) if completed_rounds >= after => Some(after),
            _ => None,
        }
    }

    /// Rebind the plan to one attempt's dense numbering: every
    /// recurring kill whose *original* victim appears in `original_of`
    /// (the attempt's dense→original map) becomes a one-shot
    /// [`kill_rank_after`](Self::kill_rank_after) on the victim's dense
    /// id; victims outside the membership are skipped for this attempt
    /// but stay armed in the source plan. Called by the resilient
    /// driver on every attempt.
    #[must_use]
    pub fn bind_recurring(&self, original_of: &[usize]) -> Self {
        let mut bound = self.clone();
        for (dense, orig) in original_of.iter().enumerate() {
            if let Some(&round) = self.recurring_kills.get(orig) {
                bound.kill_after.insert(dense, round);
            }
        }
        bound.recurring_kills.clear();
        bound
    }

    /// Should this message be dropped?
    #[must_use]
    pub fn should_drop(&self, src: usize, dst: usize, round: u64) -> bool {
        self.drops.contains(&(src, dst, round))
    }

    /// The plan a shrink-and-retry attempt runs under: deterministic
    /// kills/drops were consumed by (and are only meaningful for) the
    /// original membership, so they are cleared, while the seed and the
    /// cluster-wide probabilistic rates — which are topology-agnostic —
    /// carry over. Per-link overrides are keyed by original ranks and
    /// are cleared too.
    #[must_use]
    pub fn survivor_plan(&self) -> Self {
        Self {
            kill_after: HashMap::new(),
            // Recurring kills are the exception: they exist to re-fire
            // on later attempts, keyed by original rank until bound.
            recurring_kills: self.recurring_kills.clone(),
            drops: HashSet::new(),
            seed: self.seed,
            rates: self.rates,
            link_rates: HashMap::new(),
            // Cuts, partitions, and stalls are keyed by original ranks
            // and round numbers already consumed — cleared like kills.
            cut_links: HashMap::new(),
            partitions: Vec::new(),
            stalls: Vec::new(),
            // Ack-path loss is a topology-agnostic rate like `rates`.
            ack_loss: self.ack_loss,
            // Socket events are keyed by original ranks and were
            // consumed by the attempt that armed them — cleared like
            // kills, so a healed retry runs on a quiet fabric.
            socket: Vec::new(),
            shrunk: true,
        }
    }
}

/// A [`Transport`] wrapper injecting the plan's probabilistic wire
/// faults into every outbound transmission. Installed automatically by
/// the cluster runner (below the reliability layer, if any) whenever the
/// plan has wire faults — for both the channel and the socket transport.
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    plan: Arc<FaultPlan>,
    /// Cluster-shared round progress, for round-keyed link cuts.
    clock: Arc<RoundClock>,
    /// Per-sender transmission counter driving the seeded RNG.
    xmit: u64,
    stats: LinkStats,
}

impl FaultyTransport {
    /// Wrap `inner`, injecting faults from `plan`. Link cuts and
    /// partitions activate against `clock`, the cluster-shared count of
    /// completed rounds per rank.
    #[must_use]
    pub fn new(inner: Box<dyn Transport>, plan: Arc<FaultPlan>, clock: Arc<RoundClock>) -> Self {
        Self {
            inner,
            plan,
            clock,
            xmit: 0,
            stats: LinkStats::default(),
        }
    }
}

impl Transport for FaultyTransport {
    fn send(&mut self, mut msg: Message) -> Result<(), NetError> {
        let xmit = self.xmit;
        self.xmit += 1;
        // Link cuts fire below everything else: a severed link carries
        // no data, no retransmissions, no acks, and no probes.
        if self
            .plan
            .is_cut(msg.src, msg.dst, self.clock.completed(msg.src))
        {
            self.stats.partition_cuts += 1;
            return Ok(());
        }
        if msg.tag == crate::reliable::ACK_TAG && self.plan.ack_loss_verdict(msg.src, msg.dst, xmit)
        {
            self.stats.injected_ack_losses += 1;
            return Ok(());
        }
        let verdict = self.plan.wire_verdict(msg.src, msg.dst, xmit);
        if verdict.drop {
            self.stats.injected_losses += 1;
            return Ok(());
        }
        if verdict.delay {
            self.stats.injected_delays += 1;
            msg.arrival += self.plan.rates_for(msg.src, msg.dst).delay_secs;
        }
        if verdict.corrupt && !msg.payload.is_empty() {
            self.stats.injected_corruptions += 1;
            let site = self
                .plan
                .corrupt_site(msg.src, msg.dst, xmit, msg.payload.len());
            // The checksum is deliberately NOT recomputed: the receiver
            // must notice.
            msg.payload[site] ^= 0xa5;
        }
        if verdict.duplicate {
            self.stats.injected_dups += 1;
            if verdict.corrupt && !msg.payload.is_empty() {
                // The duplicate carries the same damaged bytes, so one
                // corruption verdict puts two corrupt frames on the
                // wire — count both, keeping the invariant that every
                // corrupt frame on the wire is accounted here exactly
                // once (receivers drop each on its own checksum).
                self.stats.injected_corruptions += 1;
            }
            self.inner.send(msg.clone())?;
        }
        self.inner.send(msg)
    }

    fn recv_match(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        self.inner.recv_match(from, tag, timeout)
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        self.inner.recv_any(timeout)
    }

    fn try_match(&mut self, from: usize, tag: Tag) -> Result<Option<Message>, NetError> {
        self.inner.try_match(from, tag)
    }

    fn wait_any(&mut self, timeout: Duration) -> Result<(), NetError> {
        self.inner.wait_any(timeout)
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn flush(&mut self, deadline: std::time::Instant) -> Result<(), NetError> {
        self.inner.flush(deadline)
    }

    fn purge(&mut self) -> usize {
        self.inner.purge()
    }

    fn link_stats(&self) -> LinkStats {
        self.stats.merged(&self.inner.link_stats())
    }
}

/// One injectable fault in a [`ChaosSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosEvent {
    /// Per-link loss rate.
    Loss(f64),
    /// Per-link duplication rate.
    Duplication(f64),
    /// Per-link corruption rate.
    Corruption(f64),
    /// Per-link virtual-delay rate and penalty.
    Delay {
        /// Probability a transmission is delayed.
        rate: f64,
        /// Virtual-time penalty in seconds.
        secs: f64,
    },
    /// Dedicated-ack loss rate.
    AckLoss(f64),
    /// Bipartition cut at the given sender round.
    Partition {
        /// One side of the bipartition.
        side: Vec<usize>,
        /// Sender round from which cross traffic is severed.
        round: u64,
    },
    /// Directed link cut (the asymmetric-partition primitive).
    Cut {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Sender round from which `src → dst` is severed.
        round: u64,
    },
    /// SIGSTOP-style pause: the rank sleeps before one of its rounds.
    Stall {
        /// Paused rank.
        rank: usize,
        /// Completed-round count at which the pause fires.
        round: u64,
        /// Pause length in milliseconds.
        millis: u64,
    },
    /// Crash the rank after a round.
    Kill {
        /// Killed rank.
        rank: usize,
        /// Completed-round count after which it dies.
        round: u64,
    },
    /// The killed rank restarts and is eligible to rejoin once its
    /// flap-damped quarantine elapses. No wire effect —
    /// [`plan`](ChaosSchedule::plan) ignores it; the recovery layer
    /// (a rejoin-capable [`RecoveryPolicy`](crate::membership::RecoveryPolicy)
    /// driving [`Cluster::run_resilient`](crate::cluster::Cluster::run_resilient))
    /// consumes it via [`ChaosSchedule::rejoinable_ranks`].
    Rejoin {
        /// The restarting rank.
        rank: usize,
    },
    /// Abrupt stream reset between two ranks' nodes (TCP fabric only).
    ConnReset {
        /// A rank on one node of the pair.
        src: usize,
        /// A rank on the other node.
        dst: usize,
        /// Slowest-rank completed-round count at which the reset fires.
        round: u64,
    },
    /// Half-open stall: the stream goes silent without erroring.
    HalfOpenStall {
        /// A rank on one node of the pair.
        src: usize,
        /// A rank on the other node.
        dst: usize,
        /// Slowest-rank completed-round count at which the stall starts.
        round: u64,
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// Reconnect handshakes fail `drops` times, burning backoff budget.
    HandshakeDrop {
        /// A rank on one node of the pair.
        src: usize,
        /// A rank on the other node.
        dst: usize,
        /// Number of consecutive handshakes to fail.
        drops: u32,
    },
    /// Flapping link: reset at `round`, then again after each heal.
    ReconnectFlap {
        /// A rank on one node of the pair.
        src: usize,
        /// A rank on the other node.
        dst: usize,
        /// Slowest-rank completed-round count of the first reset.
        round: u64,
        /// Additional resets fired right after each heal.
        flaps: u32,
    },
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Loss(r) => write!(f, "loss {:.1}%", r * 100.0),
            Self::Duplication(r) => write!(f, "dup {:.1}%", r * 100.0),
            Self::Corruption(r) => write!(f, "corrupt {:.1}%", r * 100.0),
            Self::Delay { rate, secs } => write!(f, "delay {:.1}% (+{secs}s)", rate * 100.0),
            Self::AckLoss(r) => write!(f, "ack-loss {:.1}%", r * 100.0),
            Self::Partition { side, round } => write!(f, "partition {side:?} @ round {round}"),
            Self::Cut { src, dst, round } => write!(f, "cut {src}→{dst} @ round {round}"),
            Self::Stall {
                rank,
                round,
                millis,
            } => {
                write!(f, "stall rank {rank} @ round {round} for {millis}ms")
            }
            Self::Kill { rank, round } => write!(f, "kill rank {rank} after round {round}"),
            Self::Rejoin { rank } => write!(f, "rejoin rank {rank} after quarantine"),
            Self::ConnReset { src, dst, round } => {
                write!(f, "conn-reset {src}↔{dst} @ round {round}")
            }
            Self::HalfOpenStall {
                src,
                dst,
                round,
                millis,
            } => write!(f, "half-open {src}↔{dst} @ round {round} for {millis}ms"),
            Self::HandshakeDrop { src, dst, drops } => {
                write!(f, "handshake-drop {src}↔{dst} ×{drops}")
            }
            Self::ReconnectFlap {
                src,
                dst,
                round,
                flaps,
            } => write!(f, "reconnect-flap {src}↔{dst} @ round {round} ×{flaps}"),
        }
    }
}

/// Two distinct ranks in `[0, n)` drawn from the schedule RNG (two
/// draws, same idiom as the Cut event's endpoints).
fn distinct_pair(rate: &mut impl FnMut(f64) -> f64, n: usize) -> (usize, usize) {
    let src = (rate(1.0) * n as f64) as usize % n;
    let dst = (src + 1 + (rate(1.0) * (n - 1) as f64) as usize % (n - 1)) % n;
    (src, dst)
}

/// A seeded, reproducible chaos schedule: a bag of [`ChaosEvent`]s plus
/// the wire-RNG seed, generated deterministically from `(seed, n)` by
/// [`generate`](Self::generate) and foldable into a [`FaultPlan`] via
/// [`plan`](Self::plan). The schedule-enumeration harness in
/// `tests/liveness.rs` runs hundreds of these per cluster shape; on an
/// invariant violation it greedily shrinks the schedule with
/// [`minimized`](Self::minimized) and prints the survivor for replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// Seed for the probabilistic wire-fault RNG.
    pub seed: u64,
    /// Cluster size the schedule targets.
    pub n: usize,
    /// The injected faults.
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// Generate the schedule for `(seed, n)` — pure function of its
    /// arguments, no ambient entropy. Rates are kept mild (healable by
    /// the reliability layer); partitions, cuts, stalls, and kills are
    /// the hard liveness events.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn generate(seed: u64, n: usize) -> Self {
        assert!(n >= 2, "a chaos schedule needs at least two ranks");
        let mut state = splitmix64(seed ^ (n as u64).wrapping_mul(0xa076_1d64_78bd_642f));
        let mut next = move || {
            state = splitmix64(state);
            state
        };
        let mut rate = |max: f64| (next() >> 11) as f64 / (1u64 << 53) as f64 * max;
        let mut events = Vec::new();
        if rate(1.0) < 0.5 {
            events.push(ChaosEvent::Loss(rate(0.05)));
        }
        if rate(1.0) < 0.5 {
            events.push(ChaosEvent::Duplication(rate(0.05)));
        }
        if rate(1.0) < 0.5 {
            events.push(ChaosEvent::Corruption(rate(0.05)));
        }
        if rate(1.0) < 0.33 {
            events.push(ChaosEvent::Delay {
                rate: rate(0.1),
                secs: 1e-5,
            });
        }
        if rate(1.0) < 0.33 {
            events.push(ChaosEvent::AckLoss(rate(0.15)));
        }
        if rate(1.0) < 0.5 {
            events.push(ChaosEvent::Stall {
                rank: (rate(1.0) * n as f64) as usize % n,
                round: (rate(1.0) * 3.0) as u64,
                millis: 1 + (rate(1.0) * 25.0) as u64,
            });
        }
        if rate(1.0) < 0.25 {
            // A random nonempty proper subset as one partition side.
            let mut side: Vec<usize> = (0..n).filter(|_| rate(1.0) < 0.5).collect();
            if side.is_empty() || side.len() == n {
                side = vec![(rate(1.0) * n as f64) as usize % n];
            }
            events.push(ChaosEvent::Partition {
                side,
                round: (rate(1.0) * 3.0) as u64,
            });
        }
        if rate(1.0) < 0.25 {
            let src = (rate(1.0) * n as f64) as usize % n;
            let dst = (src + 1 + (rate(1.0) * (n - 1) as f64) as usize % (n - 1)) % n;
            events.push(ChaosEvent::Cut {
                src,
                dst,
                round: (rate(1.0) * 3.0) as u64,
            });
        }
        if rate(1.0) < 0.16 {
            let rank = (rate(1.0) * n as f64) as usize % n;
            events.push(ChaosEvent::Kill {
                rank,
                round: (rate(1.0) * 3.0) as u64,
            });
            // Half of killed ranks come back: the restart/rejoin path
            // gets soaked alongside plain crashes. Drawn *after* every
            // other event so pre-rejoin seeds generate byte-identical
            // schedules up to this suffix.
            if rate(1.0) < 0.5 {
                events.push(ChaosEvent::Rejoin { rank });
            }
        }
        // Socket-level (fabric) events — again drawn after everything
        // above, so pre-existing seeds keep their exact schedules as a
        // prefix. They only bite on the TCP fabric; other transports
        // ignore them.
        if rate(1.0) < 0.25 {
            let (src, dst) = distinct_pair(&mut rate, n);
            let round = (rate(1.0) * 3.0) as u64;
            if rate(1.0) < 0.35 {
                events.push(ChaosEvent::ReconnectFlap {
                    src,
                    dst,
                    round,
                    flaps: 1 + (rate(1.0) * 2.0) as u32,
                });
            } else {
                events.push(ChaosEvent::ConnReset { src, dst, round });
            }
        }
        if rate(1.0) < 0.2 {
            let (src, dst) = distinct_pair(&mut rate, n);
            events.push(ChaosEvent::HalfOpenStall {
                src,
                dst,
                round: (rate(1.0) * 3.0) as u64,
                millis: 1 + (rate(1.0) * 20.0) as u64,
            });
        }
        if rate(1.0) < 0.15 {
            let (src, dst) = distinct_pair(&mut rate, n);
            events.push(ChaosEvent::HandshakeDrop {
                src,
                dst,
                drops: 1 + (rate(1.0) * 3.0) as u32,
            });
        }
        Self { seed, n, events }
    }

    /// A connection-chaos schedule for the TCP fabric: mild wire loss
    /// plus one to a few socket-level events (resets, flaps, half-open
    /// stalls, handshake drops — occasionally enough drops to exhaust
    /// the reconnect budget and force an eviction). Pure function of
    /// `(seed, n)` like [`generate`](Self::generate), but every drawn
    /// event targets the stream layer, so TCP recovery soaks spend
    /// their seeds on connection healing instead of rank kills.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn generate_socket_chaos(seed: u64, n: usize) -> Self {
        assert!(n >= 2, "a chaos schedule needs at least two ranks");
        let mut state = splitmix64(seed ^ 0x50c7_e7fa ^ (n as u64).wrapping_mul(0x9e37_79b9));
        let mut next = move || {
            state = splitmix64(state);
            state
        };
        let mut rate = |max: f64| (next() >> 11) as f64 / (1u64 << 53) as f64 * max;
        let mut events = Vec::new();
        if rate(1.0) < 0.4 {
            events.push(ChaosEvent::Loss(rate(0.03)));
        }
        // Always at least one reset or flap: a connection-chaos soak
        // with no connection event would test nothing.
        {
            let (src, dst) = distinct_pair(&mut rate, n);
            let round = (rate(1.0) * 3.0) as u64;
            if rate(1.0) < 0.4 {
                events.push(ChaosEvent::ReconnectFlap {
                    src,
                    dst,
                    round,
                    flaps: 1 + (rate(1.0) * 2.0) as u32,
                });
            } else {
                events.push(ChaosEvent::ConnReset { src, dst, round });
            }
        }
        if rate(1.0) < 0.35 {
            let (src, dst) = distinct_pair(&mut rate, n);
            events.push(ChaosEvent::HalfOpenStall {
                src,
                dst,
                round: (rate(1.0) * 3.0) as u64,
                millis: 1 + (rate(1.0) * 15.0) as u64,
            });
        }
        if rate(1.0) < 0.3 {
            let (src, dst) = distinct_pair(&mut rate, n);
            // Usually a budget-sized burst (forces an eviction and a
            // shrink-or-rejoin attempt); sometimes a small burst that
            // only burns backoff.
            let drops = if rate(1.0) < 0.5 {
                64
            } else {
                1 + (rate(1.0) * 3.0) as u32
            };
            events.push(ChaosEvent::HandshakeDrop { src, dst, drops });
        }
        Self { seed, n, events }
    }

    /// Fold the schedule into an executable [`FaultPlan`].
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        let mut p = FaultPlan::new().with_seed(self.seed);
        for ev in &self.events {
            p = match ev {
                ChaosEvent::Loss(r) => p.with_loss(*r),
                ChaosEvent::Duplication(r) => p.with_duplication(*r),
                ChaosEvent::Corruption(r) => p.with_corruption(*r),
                ChaosEvent::Delay { rate, secs } => p.with_delay(*rate, *secs),
                ChaosEvent::AckLoss(r) => p.with_ack_loss(*r),
                ChaosEvent::Partition { side, round } => p.with_partition(side.clone(), *round),
                ChaosEvent::Cut { src, dst, round } => p.cut_link(*src, *dst, *round),
                ChaosEvent::Stall {
                    rank,
                    round,
                    millis,
                } => p.stall_rank(*rank, *round, Duration::from_millis(*millis)),
                ChaosEvent::Kill { rank, round } => p.kill_rank_after(*rank, *round),
                // Rejoin has no wire effect: it marks the kill above as
                // restartable for the recovery layer (see
                // `rejoinable_ranks`).
                ChaosEvent::Rejoin { .. } => p,
                ChaosEvent::ConnReset { src, dst, round } => p.with_conn_reset(*src, *dst, *round),
                ChaosEvent::HalfOpenStall {
                    src,
                    dst,
                    round,
                    millis,
                } => p.with_half_open(*src, *dst, *round, Duration::from_millis(*millis)),
                ChaosEvent::HandshakeDrop { src, dst, drops } => {
                    p.with_handshake_drops(*src, *dst, *drops)
                }
                ChaosEvent::ReconnectFlap {
                    src,
                    dst,
                    round,
                    flaps,
                } => p.with_reconnect_flap(*src, *dst, *round, *flaps),
            };
        }
        p
    }

    /// Whether the schedule carries any rejoin events.
    #[must_use]
    pub fn has_rejoin(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, ChaosEvent::Rejoin { .. }))
    }

    /// Ranks marked as restarting after their kill, ascending and
    /// deduplicated — the set a rejoin-capable recovery policy expects
    /// back within quarantine.
    #[must_use]
    pub fn rejoinable_ranks(&self) -> Vec<usize> {
        let mut ranks: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match e {
                ChaosEvent::Rejoin { rank } => Some(*rank),
                _ => None,
            })
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Greedily shrink the schedule while `fails` keeps returning `true`
    /// (ddmin-style, one event at a time): the result is 1-minimal — no
    /// single event can be removed without losing the failure. `fails`
    /// must be a deterministic replay of the original violation.
    #[must_use]
    pub fn minimized(&self, mut fails: impl FnMut(&Self) -> bool) -> Self {
        let mut best = self.clone();
        loop {
            let shrunk = (0..best.events.len()).find_map(|i| {
                let mut candidate = best.clone();
                candidate.events.remove(i);
                fails(&candidate).then_some(candidate)
            });
            match shrunk {
                Some(candidate) => best = candidate,
                None => return best,
            }
        }
    }
}

impl fmt::Display for ChaosSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos schedule: seed={:#x} n={} ({} events)",
            self.seed,
            self.n,
            self.events.len()
        )?;
        for ev in &self.events {
            writeln!(f, "  - {ev}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_does_nothing() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.should_kill(0, 100), None);
        assert!(!p.should_drop(0, 1, 0));
        assert!(!p.has_wire_faults());
        assert_eq!(p.wire_verdict(0, 1, 7), WireVerdict::default());
    }

    #[test]
    fn kill_threshold() {
        let p = FaultPlan::new().kill_rank_after(3, 2);
        assert_eq!(p.should_kill(3, 1), None);
        assert_eq!(p.should_kill(3, 2), Some(2));
        assert_eq!(p.should_kill(3, 5), Some(2));
        assert_eq!(p.should_kill(2, 5), None);
    }

    #[test]
    fn drop_is_exact() {
        let p = FaultPlan::new().drop_message(0, 1, 4);
        assert!(p.should_drop(0, 1, 4));
        assert!(!p.should_drop(1, 0, 4));
        assert!(!p.should_drop(0, 1, 3));
    }

    #[test]
    fn wire_verdicts_are_deterministic_and_seeded() {
        let p = FaultPlan::new().with_seed(42).with_loss(0.5);
        let q = FaultPlan::new().with_seed(42).with_loss(0.5);
        for x in 0..64 {
            assert_eq!(p.wire_verdict(0, 1, x), q.wire_verdict(0, 1, x));
        }
        // A different seed gives a different pattern somewhere.
        let r = FaultPlan::new().with_seed(43).with_loss(0.5);
        assert!((0..64).any(|x| p.wire_verdict(0, 1, x) != r.wire_verdict(0, 1, x)));
    }

    #[test]
    fn wire_loss_rate_is_roughly_honored() {
        let p = FaultPlan::new().with_seed(7).with_loss(0.25);
        let losses = (0..10_000)
            .filter(|&x| p.wire_verdict(2, 3, x).drop)
            .count();
        assert!(
            (2_000..3_000).contains(&losses),
            "25% loss drew {losses}/10000"
        );
    }

    #[test]
    fn link_override_beats_default() {
        let p = FaultPlan::new().with_loss(0.0).with_link_rates(
            1,
            2,
            LinkRates {
                loss: 1.0,
                ..LinkRates::default()
            },
        );
        assert!(p.has_wire_faults());
        assert!(p.wire_verdict(1, 2, 0).drop);
        assert!(!p.wire_verdict(2, 1, 0).drop);
    }

    #[test]
    fn survivor_plan_keeps_rates_drops_deterministic_faults() {
        let p = FaultPlan::new()
            .kill_rank_after(1, 0)
            .drop_message(0, 1, 0)
            .with_seed(9)
            .with_loss(0.1);
        let s = p.survivor_plan();
        assert_eq!(s.should_kill(1, 10), None);
        assert!(!s.should_drop(0, 1, 0));
        assert!(s.has_wire_faults());
        assert_eq!(s.rates_for(0, 1).loss, 0.1);
    }

    #[test]
    fn directed_cut_is_one_way_and_round_keyed() {
        let p = FaultPlan::new().cut_link(1, 2, 3);
        assert!(!p.is_cut(1, 2, 2), "not yet active");
        assert!(p.is_cut(1, 2, 3));
        assert!(p.is_cut(1, 2, 9));
        assert!(!p.is_cut(2, 1, 9), "reverse link stays up");
        assert!(p.needs_wire_layer());
        assert!(!p.has_wire_faults(), "cuts do not need checksumming");
    }

    #[test]
    fn partition_cuts_cross_traffic_both_ways() {
        let p = FaultPlan::new().with_partition(vec![0, 2], 1);
        assert!(!p.is_cut(0, 1, 0), "before the round the wire is whole");
        assert!(p.is_cut(0, 1, 1));
        assert!(p.is_cut(1, 0, 1));
        assert!(p.is_cut(3, 2, 5));
        assert!(!p.is_cut(0, 2, 5), "same side stays connected");
        assert!(!p.is_cut(1, 3, 5), "same side stays connected");
    }

    #[test]
    fn stalls_accumulate_per_round() {
        let p = FaultPlan::new()
            .stall_rank(2, 1, Duration::from_millis(10))
            .stall_rank(2, 1, Duration::from_millis(5))
            .stall_rank(2, 3, Duration::from_millis(7));
        assert_eq!(p.stall_for(2, 0), None);
        assert_eq!(p.stall_for(2, 1), Some(Duration::from_millis(15)));
        assert_eq!(p.stall_for(2, 3), Some(Duration::from_millis(7)));
        assert_eq!(p.stall_for(1, 1), None);
        assert!(!p.is_empty());
    }

    #[test]
    fn ack_loss_rate_is_roughly_honored() {
        let p = FaultPlan::new().with_seed(11).with_ack_loss(0.25);
        let losses = (0..10_000).filter(|&x| p.ack_loss_verdict(0, 1, x)).count();
        assert!(
            (2_000..3_000).contains(&losses),
            "25% ack loss drew {losses}/10000"
        );
        assert!(p.needs_wire_layer());
    }

    #[test]
    fn survivor_plan_clears_cuts_and_stalls() {
        let p = FaultPlan::new()
            .cut_link(0, 1, 0)
            .with_partition(vec![0], 0)
            .stall_rank(1, 0, Duration::from_millis(5))
            .with_ack_loss(0.1);
        let s = p.survivor_plan();
        assert!(!s.is_cut(0, 1, 10));
        assert_eq!(s.stall_for(1, 0), None);
        assert!(s.needs_wire_layer(), "ack loss carries over like rates");
    }

    #[test]
    fn recurring_kill_survives_shrink_and_binds_dense() {
        let p = FaultPlan::new().kill_rank_recurring(3, 1);
        assert!(!p.is_empty());
        // Unbound (plain run): fires on the original id.
        assert_eq!(p.should_kill(3, 1), Some(1));
        assert_eq!(p.should_kill(3, 0), None);
        // Survives the survivor plan (unlike one-shot kills)...
        let s = p.survivor_plan();
        assert_eq!(s.should_kill(3, 5), None, "unbound dense id must not fire");
        // ...and rebinds: in a membership [0, 2, 3, 5], original 3 is
        // dense 2.
        let bound = s.bind_recurring(&[0, 2, 3, 5]);
        assert_eq!(bound.should_kill(2, 1), Some(1));
        assert_eq!(bound.should_kill(3, 9), None, "dense 3 is original 5");
        // A membership without the victim arms nothing.
        let without = s.bind_recurring(&[0, 1, 2]);
        assert_eq!(without.should_kill(0, 9), None);
        assert_eq!(without.should_kill(2, 9), None);
    }

    #[test]
    fn rejoin_events_pair_with_kills_and_fold_to_no_wire_effect() {
        let all: Vec<ChaosSchedule> = (0..512).map(|s| ChaosSchedule::generate(s, 8)).collect();
        let mut saw_rejoin = false;
        for s in &all {
            for e in &s.events {
                if let ChaosEvent::Rejoin { rank } = e {
                    saw_rejoin = true;
                    // Every rejoin refers to a rank the schedule kills.
                    assert!(
                        s.events
                            .iter()
                            .any(|k| matches!(k, ChaosEvent::Kill { rank: kr, .. } if kr == rank)),
                        "dangling rejoin in seed {:#x}: {s}",
                        s.seed
                    );
                    assert_eq!(s.rejoinable_ranks(), vec![*rank]);
                    assert!(s.has_rejoin());
                }
            }
            // The folded plan is identical with rejoins stripped: no
            // wire effect.
            let mut stripped = s.clone();
            stripped
                .events
                .retain(|e| !matches!(e, ChaosEvent::Rejoin { .. }));
            assert_eq!(format!("{:?}", s.plan()), format!("{:?}", stripped.plan()));
        }
        assert!(saw_rejoin, "512 seeds must generate at least one rejoin");
        let shown = ChaosEvent::Rejoin { rank: 4 }.to_string();
        assert!(shown.contains("rejoin rank 4"), "{shown}");
    }

    #[test]
    fn round_clock_counts_per_rank() {
        let c = RoundClock::new(3);
        c.advance(1);
        c.advance(1);
        c.advance(2);
        assert_eq!(c.completed(0), 0);
        assert_eq!(c.completed(1), 2);
        assert_eq!(c.completed(2), 1);
        assert_eq!(c.completed(99), 0);
    }

    #[test]
    fn chaos_schedules_are_deterministic_and_varied() {
        for seed in 0..64u64 {
            assert_eq!(
                ChaosSchedule::generate(seed, 8),
                ChaosSchedule::generate(seed, 8)
            );
        }
        // Across seeds the generator must actually exercise the hard
        // event kinds.
        let all: Vec<ChaosSchedule> = (0..64).map(|s| ChaosSchedule::generate(s, 8)).collect();
        let has = |f: fn(&ChaosEvent) -> bool| all.iter().any(|s| s.events.iter().any(f));
        assert!(has(|e| matches!(e, ChaosEvent::Partition { .. })));
        assert!(has(|e| matches!(e, ChaosEvent::Cut { .. })));
        assert!(has(|e| matches!(e, ChaosEvent::Stall { .. })));
        assert!(has(|e| matches!(e, ChaosEvent::Kill { .. })));
        // Every event folds into a plan whose ranks are in range.
        for s in &all {
            let _ = s.plan();
            for e in &s.events {
                match e {
                    ChaosEvent::Partition { side, .. } => {
                        assert!(!side.is_empty() && side.len() < 8);
                        assert!(side.iter().all(|&r| r < 8));
                    }
                    ChaosEvent::Cut { src, dst, .. } => {
                        assert!(*src < 8 && *dst < 8 && src != dst);
                    }
                    ChaosEvent::Stall { rank, .. } | ChaosEvent::Kill { rank, .. } => {
                        assert!(*rank < 8);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn socket_fault_builders_round_trip_through_the_plan() {
        let p = FaultPlan::new()
            .with_conn_reset(0, 5, 2)
            .with_half_open(1, 6, 0, Duration::from_millis(12))
            .with_handshake_drops(2, 7, 4)
            .with_reconnect_flap(3, 4, 1, 2);
        assert!(p.has_socket_faults());
        assert!(!p.is_empty());
        assert_eq!(p.socket_faults().len(), 4);
        assert_eq!(
            p.socket_faults()[0],
            SocketFault::Reset {
                src: 0,
                dst: 5,
                round: 2
            }
        );
        assert_eq!(
            p.socket_faults()[1],
            SocketFault::HalfOpen {
                src: 1,
                dst: 6,
                round: 0,
                millis: 12
            }
        );
        // Socket events alone do not demand the FaultyTransport wrapper:
        // they live inside the fabric.
        assert!(!p.needs_wire_layer());
        // Consumed by the attempt that armed them: survivors run quiet.
        let s = p.survivor_plan();
        assert!(!s.has_socket_faults());
        assert!(s.socket_faults().is_empty());
    }

    #[test]
    fn socket_chaos_schedules_are_deterministic_and_connection_focused() {
        for seed in 0..64u64 {
            assert_eq!(
                ChaosSchedule::generate_socket_chaos(seed, 16),
                ChaosSchedule::generate_socket_chaos(seed, 16)
            );
        }
        let all: Vec<ChaosSchedule> = (0..128)
            .map(|s| ChaosSchedule::generate_socket_chaos(s, 16))
            .collect();
        for s in &all {
            // Every schedule carries at least one connection event.
            assert!(
                s.events.iter().any(|e| matches!(
                    e,
                    ChaosEvent::ConnReset { .. } | ChaosEvent::ReconnectFlap { .. }
                )),
                "seed {:#x} drew no connection event: {s}",
                s.seed
            );
            let plan = s.plan();
            assert!(plan.has_socket_faults(), "seed {:#x}", s.seed);
            for e in &s.events {
                match e {
                    ChaosEvent::ConnReset { src, dst, .. }
                    | ChaosEvent::HalfOpenStall { src, dst, .. }
                    | ChaosEvent::HandshakeDrop { src, dst, .. }
                    | ChaosEvent::ReconnectFlap { src, dst, .. } => {
                        assert!(*src < 16 && *dst < 16 && src != dst, "{e}");
                    }
                    ChaosEvent::Loss(r) => assert!(*r < 0.05),
                    other => panic!("socket chaos drew a non-socket event: {other}"),
                }
            }
        }
        // The full generator also reaches the socket suffix somewhere.
        let full: Vec<ChaosSchedule> = (0..256).map(|s| ChaosSchedule::generate(s, 8)).collect();
        assert!(full.iter().any(|s| s.events.iter().any(|e| matches!(
            e,
            ChaosEvent::ConnReset { .. }
                | ChaosEvent::HalfOpenStall { .. }
                | ChaosEvent::HandshakeDrop { .. }
                | ChaosEvent::ReconnectFlap { .. }
        ))));
    }

    #[test]
    fn minimizer_finds_the_single_culprit() {
        let full = ChaosSchedule {
            seed: 7,
            n: 4,
            events: vec![
                ChaosEvent::Loss(0.05),
                ChaosEvent::Kill { rank: 2, round: 1 },
                ChaosEvent::Duplication(0.03),
                ChaosEvent::Stall {
                    rank: 0,
                    round: 0,
                    millis: 5,
                },
            ],
        };
        // "Fails" iff the schedule still contains the kill.
        let min = full.minimized(|s| {
            s.events
                .iter()
                .any(|e| matches!(e, ChaosEvent::Kill { .. }))
        });
        assert_eq!(min.events, vec![ChaosEvent::Kill { rank: 2, round: 1 }]);
        let shown = min.to_string();
        assert!(shown.contains("kill rank 2"), "{shown}");
    }
}

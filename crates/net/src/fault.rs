//! Fault injection.
//!
//! The paper motivates the fully connected model partly by fault
//! tolerance: algorithms "can operate in the presence of faults (assuming
//! connectivity is maintained)". This module lets tests kill ranks and
//! drop individual messages to verify that failures surface as clean
//! errors rather than hangs.

use std::collections::{HashMap, HashSet};

/// A declarative fault plan applied during a cluster run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Rank → round after which the rank's thread exits with
    /// [`crate::NetError::Killed`].
    kill_after: HashMap<usize, u64>,
    /// `(src, dst, round)` triples whose message is silently dropped.
    drops: HashSet<(usize, usize, u64)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kill_after.is_empty() && self.drops.is_empty()
    }

    /// Kill `rank` once it has completed `round` rounds.
    #[must_use]
    pub fn kill_rank_after(mut self, rank: usize, round: u64) -> Self {
        self.kill_after.insert(rank, round);
        self
    }

    /// Drop the message `src → dst` sent in the sender's round `round`.
    #[must_use]
    pub fn drop_message(mut self, src: usize, dst: usize, round: u64) -> Self {
        self.drops.insert((src, dst, round));
        self
    }

    /// Should `rank` die before starting its next round (having completed
    /// `completed_rounds`)?
    #[must_use]
    pub fn should_kill(&self, rank: usize, completed_rounds: u64) -> Option<u64> {
        match self.kill_after.get(&rank) {
            Some(&after) if completed_rounds >= after => Some(after),
            _ => None,
        }
    }

    /// Should this message be dropped?
    #[must_use]
    pub fn should_drop(&self, src: usize, dst: usize, round: u64) -> bool {
        self.drops.contains(&(src, dst, round))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_does_nothing() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.should_kill(0, 100), None);
        assert!(!p.should_drop(0, 1, 0));
    }

    #[test]
    fn kill_threshold() {
        let p = FaultPlan::new().kill_rank_after(3, 2);
        assert_eq!(p.should_kill(3, 1), None);
        assert_eq!(p.should_kill(3, 2), Some(2));
        assert_eq!(p.should_kill(3, 5), Some(2));
        assert_eq!(p.should_kill(2, 5), None);
    }

    #[test]
    fn drop_is_exact() {
        let p = FaultPlan::new().drop_message(0, 1, 4);
        assert!(p.should_drop(0, 1, 4));
        assert!(!p.should_drop(1, 0, 4));
        assert!(!p.should_drop(0, 1, 3));
    }
}

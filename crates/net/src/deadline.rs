//! Caller-set completion budgets for collective calls.
//!
//! The Bruck algorithms are round-synchronous: one stalled link in any
//! of the `(r-1)(w-1)` subphases blocks every downstream rank. A
//! [`Deadline`] bounds that exposure — it is armed once per collective
//! call with a wall-clock budget, shared (via `Arc`) between a rank's
//! endpoint and its reliability layer, and polled from every blocking
//! wait loop. All blocking waits slice their sleeps to at most
//! [`Deadline::clamp`], so an expiry (or an explicit
//! [`cancel`](Deadline::cancel)) aborts an in-flight `wait_any` within
//! one poll slice rather than after the full per-round timeout.
//!
//! The unarmed fast path is a single relaxed atomic load, so collectives
//! that never set a budget pay (nearly) nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::NetError;

#[derive(Debug, Default)]
struct DeadlineInner {
    /// Fast-path gate: when false, [`Deadline::check`] is one load.
    armed: AtomicBool,
    /// Explicit cancellation token: aborts waiters even before expiry.
    cancelled: AtomicBool,
    /// `(expiry instant, original budget)` — the budget is kept only
    /// for error reporting.
    state: Mutex<Option<(Instant, Duration)>>,
}

/// A shared, re-armable completion budget.
///
/// Cloning shares the underlying state: the cluster engine hands one
/// clone to each rank's endpoint and another to its reliability layer,
/// so arming at the API layer reaches the deepest ARQ wait loops.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    inner: Arc<DeadlineInner>,
}

impl Deadline {
    /// An unarmed deadline (checks always pass).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm with a budget starting now. Returns the expiry instant so
    /// callers coordinating several ranks can share one absolute time.
    pub fn arm(&self, budget: Duration) -> Instant {
        let expires = Instant::now() + budget;
        self.arm_at(expires, budget);
        expires
    }

    /// Arm against a pre-computed expiry instant: every rank of a
    /// cluster run arms against the *same* instant, so all survivors
    /// observe expiry within one poll slice of each other.
    pub fn arm_at(&self, expires: Instant, budget: Duration) {
        *self.inner.state.lock().unwrap() = Some((expires, budget));
        self.inner.cancelled.store(false, Ordering::SeqCst);
        self.inner.armed.store(true, Ordering::SeqCst);
    }

    /// Disarm: subsequent checks pass. The collective call that armed
    /// the budget disarms it on the way out, success or failure.
    pub fn disarm(&self) {
        self.inner.armed.store(false, Ordering::SeqCst);
        self.inner.cancelled.store(false, Ordering::SeqCst);
        *self.inner.state.lock().unwrap() = None;
    }

    /// Cancel outright: every waiter sharing this deadline fails its
    /// next check with `DeadlineExceeded`, regardless of remaining
    /// budget. Idempotent; a later [`arm`](Self::arm) re-arms cleanly.
    pub fn cancel(&self) {
        self.inner.armed.store(true, Ordering::SeqCst);
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether a budget is currently armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.inner.armed.load(Ordering::Relaxed)
    }

    /// Time left before expiry, `None` when unarmed. Returns
    /// `Duration::ZERO` once expired or cancelled.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        if !self.is_armed() {
            return None;
        }
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return Some(Duration::ZERO);
        }
        let state = self.inner.state.lock().unwrap();
        state.map(|(expires, _)| expires.saturating_duration_since(Instant::now()))
    }

    /// Clamp a wait slice so a blocking read wakes no later than the
    /// expiry. Unarmed deadlines leave the slice untouched.
    #[must_use]
    pub fn clamp(&self, slice: Duration) -> Duration {
        match self.remaining() {
            Some(left) => slice.min(left),
            None => slice,
        }
    }

    /// Fail with [`NetError::DeadlineExceeded`] if the budget is spent
    /// or cancelled. The unarmed fast path is one atomic load.
    pub fn check(&self, rank: usize) -> Result<(), NetError> {
        if !self.is_armed() {
            return Ok(());
        }
        let (expired, budget) = {
            let state = self.inner.state.lock().unwrap();
            let budget = state.map_or(Duration::ZERO, |(_, b)| b);
            let expired = self.inner.cancelled.load(Ordering::SeqCst)
                || state.is_some_and(|(expires, _)| Instant::now() >= expires);
            (expired, budget)
        };
        if expired {
            Err(NetError::DeadlineExceeded { rank, budget })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_always_passes() {
        let d = Deadline::new();
        assert!(!d.is_armed());
        assert!(d.check(0).is_ok());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.clamp(Duration::from_millis(5)), Duration::from_millis(5));
    }

    #[test]
    fn armed_passes_until_expiry() {
        let d = Deadline::new();
        d.arm(Duration::from_secs(60));
        assert!(d.check(1).is_ok());
        assert!(d.clamp(Duration::from_secs(120)) <= Duration::from_secs(60));
        d.disarm();
        assert!(d.check(1).is_ok());
    }

    #[test]
    fn expiry_is_a_structured_error() {
        let d = Deadline::new();
        d.arm(Duration::ZERO);
        let err = d.check(3).unwrap_err();
        assert_eq!(
            err,
            NetError::DeadlineExceeded {
                rank: 3,
                budget: Duration::ZERO
            }
        );
    }

    #[test]
    fn cancel_aborts_before_expiry() {
        let d = Deadline::new();
        d.arm(Duration::from_secs(60));
        let clone = d.clone();
        clone.cancel();
        assert!(matches!(
            d.check(0),
            Err(NetError::DeadlineExceeded { rank: 0, .. })
        ));
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        // Re-arming clears the cancellation.
        d.arm(Duration::from_secs(60));
        assert!(d.check(0).is_ok());
    }

    #[test]
    fn clones_share_state() {
        let d = Deadline::new();
        let clone = d.clone();
        d.arm(Duration::ZERO);
        assert!(clone.check(2).is_err());
    }
}

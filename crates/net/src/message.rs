//! Message envelope and tags.

/// Message tag — disambiguates concurrent traffic between the same pair
/// (e.g. collective round numbers vs. application point-to-point traffic).
pub type Tag = u64;

/// A message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Tag chosen by the sender.
    pub tag: Tag,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Virtual time at which the message becomes available to the
    /// receiver (`departure + latency` under the cluster's cost model).
    pub arrival: f64,
}

impl Message {
    /// Payload length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_reports_payload() {
        let m = Message {
            src: 0,
            dst: 1,
            tag: 0,
            payload: vec![1, 2, 3],
            arrival: 0.0,
        };
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }
}

//! Message envelope, tags, and payload checksums.

/// Message tag — disambiguates concurrent traffic between the same pair
/// (e.g. collective round numbers vs. application point-to-point traffic).
pub type Tag = u64;

/// FNV-1a 32-bit checksum of a payload.
///
/// Every step `h' = (h ^ byte) · prime` multiplies by an odd constant,
/// which is a bijection on `u32`; a change to any single input byte
/// therefore always changes the final hash, so single-byte wire
/// corruption is detected with certainty (multi-byte corruption with
/// probability `1 − 2⁻³²`).
#[must_use]
pub fn payload_checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Tag chosen by the sender.
    pub tag: Tag,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Virtual time at which the message becomes available to the
    /// receiver (`departure + latency` under the cluster's cost model).
    pub arrival: f64,
    /// Reliability-layer sequence number on the `(src, dst)` link;
    /// `0` for unsequenced traffic (no reliability layer in the stack).
    pub seq: u64,
    /// Piggybacked cumulative acknowledgement for the *reverse* direction
    /// of the link: the sender has delivered, in order, every sequence
    /// `≤ ack` it received from `dst`. `0` carries no information (acks
    /// start at 1), so unsequenced traffic and dedicated-ack-only stacks
    /// leave it untouched. Stamped by the sliding-window reliability
    /// layer on every outbound data frame so reverse-path data keeps the
    /// sender's window open without waiting for a dedicated ack frame.
    pub ack: u64,
    /// [`payload_checksum`] computed when the payload was staged, or
    /// `None` for unchecked traffic. Verified on receive so wire
    /// corruption surfaces as [`crate::NetError::Corrupt`] instead of
    /// silently bad bytes.
    pub checksum: Option<u32>,
}

impl Message {
    /// Payload length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Whether the payload matches its checksum (vacuously true for
    /// unchecked messages).
    #[must_use]
    pub fn checksum_ok(&self) -> bool {
        self.checksum
            .is_none_or(|c| payload_checksum(&self.payload) == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_reports_payload() {
        let m = Message {
            src: 0,
            dst: 1,
            tag: 0,
            payload: vec![1, 2, 3],
            arrival: 0.0,
            seq: 0,
            ack: 0,
            checksum: None,
        };
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn checksum_detects_any_single_byte_flip() {
        let payload: Vec<u8> = (0..64).collect();
        let c = payload_checksum(&payload);
        for i in 0..payload.len() {
            let mut bad = payload.clone();
            bad[i] ^= 0xA5;
            assert_ne!(payload_checksum(&bad), c, "flip at {i} undetected");
        }
    }

    #[test]
    fn checksum_verification() {
        let mut m = Message {
            src: 0,
            dst: 1,
            tag: 0,
            payload: vec![9, 9, 9],
            arrival: 0.0,
            seq: 0,
            ack: 0,
            checksum: None,
        };
        assert!(m.checksum_ok(), "unchecked messages always pass");
        m.checksum = Some(payload_checksum(&m.payload));
        assert!(m.checksum_ok());
        m.payload[1] ^= 1;
        assert!(!m.checksum_ok());
    }
}

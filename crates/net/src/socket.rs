//! Real-I/O transport: Unix datagram sockets (Unix only).
//!
//! Each rank binds one `SOCK_DGRAM` Unix socket in a per-run temporary
//! directory; messages travel as framed datagrams (header + payload),
//! fragmented at [`FRAG_PAYLOAD`] bytes so arbitrarily large blocks fit
//! under the kernel's datagram ceiling. Sends run nonblocking and
//! interleave with draining the own socket, so two ranks exchanging
//! large messages never deadlock on full kernel buffers.
//!
//! The point of this transport is *calibration realism*: wall-clock
//! measurements cross the kernel (syscalls, copies, scheduler) instead of
//! a user-space channel, which is the closest laptop-scale stand-in for
//! the paper's EUI message layer. Algorithms are oblivious — the same
//! [`Endpoint`] drives either transport.

#![cfg(unix)]

use std::os::unix::net::UnixDatagram;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::cluster::{Cluster, ClusterConfig, RunOutput};
use crate::endpoint::Endpoint;
use crate::error::NetError;
use crate::frame::{decode_frame, encode_frame_into, Assembler, HEADER};
use crate::message::{Message, Tag};
use crate::transport::Transport;

/// Max payload bytes per datagram fragment (see
/// [`crate::frame::FRAG_PAYLOAD`] — the framing layer is shared with the
/// TCP stream transport, re-exported here for source compatibility).
pub use crate::frame::FRAG_PAYLOAD;

/// The fragment size the data plane used before pipelining — kept for
/// the wire benchmark's baseline (see [`SocketCluster::run_legacy`]).
pub const LEGACY_FRAG_PAYLOAD: usize = 16 * 1024;

/// splitmix64 finalizer — the keyed-hash RNG idiom used across the
/// fault layer. Here it seeds backoff jitter without ambient entropy.
fn splitmix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A rank's Unix-datagram connection to its peers.
pub struct UdsTransport {
    rank: usize,
    sock: UnixDatagram,
    /// The filesystem path this rank's socket is bound to. Unlinked on
    /// drop so a crashed-and-restarted rank never inherits a stale file.
    own_path: PathBuf,
    peer_paths: Vec<PathBuf>,
    asm: Assembler,
    next_msg_id: u64,
    recv_buf: Vec<u8>,
    /// Reusable outbound frame buffer: one allocation serves every send.
    send_buf: Vec<u8>,
    /// `Some(nap)` reverts waits to the pre-pipelining sleep-poll loop.
    poll_sleep: Option<Duration>,
    /// Max payload bytes per outbound fragment (`≤ FRAG_PAYLOAD`, which
    /// sizes every receive buffer).
    frag: usize,
}

impl UdsTransport {
    /// Bind rank `rank`'s socket in `dir` and record the peers' paths.
    ///
    /// Equivalent to [`bind_incarnation`](Self::bind_incarnation) at
    /// incarnation 0 — the path layout matches what every pre-rejoin
    /// run used.
    ///
    /// # Errors
    ///
    /// Bind failures surface as [`NetError::App`].
    pub fn bind(dir: &Path, rank: usize, n: usize) -> Result<Self, NetError> {
        Self::bind_incarnation(dir, rank, n, 0)
    }

    /// Bind rank `rank`'s socket in `dir` for a given `incarnation` and
    /// record the peers' paths (peers are assumed to bind at the *same*
    /// incarnation — the cluster bumps it once per attempt, so a
    /// restarted rank and its sponsors always agree on the layout).
    ///
    /// Two defenses make re-binding after a crash reliable:
    ///
    /// * **Stale-file reclamation.** A Unix datagram socket file is not
    ///   removed when its socket is dropped, so a crashed rank leaves a
    ///   dead `rank-N.sock` behind and a naive rebind fails with
    ///   `AddrInUse`. If the path already exists we unlink it first —
    ///   within one cluster directory a name maps to exactly one live
    ///   rank, so an existing file is by construction stale.
    /// * **Jittered exponential backoff.** If the bind still races (the
    ///   old incarnation's `Drop` unlinking concurrently), we retry a few
    ///   times with exponentially growing, deterministically jittered
    ///   naps rather than failing the whole rejoin on a transient.
    ///
    /// Incarnation 0 uses the classic `rank-N.sock` name; later
    /// incarnations append `.iK` so each restart binds a fresh, unique
    /// path even if the previous file somehow survives.
    ///
    /// # Errors
    ///
    /// Bind failures that persist through the retry budget surface as
    /// [`NetError::App`].
    pub fn bind_incarnation(
        dir: &Path,
        rank: usize,
        n: usize,
        incarnation: u64,
    ) -> Result<Self, NetError> {
        let path = Self::sock_path_inc(dir, rank, incarnation);
        let sock = Self::bind_with_retry(&path, rank)?;
        sock.set_nonblocking(true)
            .map_err(|e| NetError::App(format!("set_nonblocking: {e}")))?;
        Ok(Self {
            rank,
            sock,
            own_path: path,
            peer_paths: (0..n)
                .map(|r| Self::sock_path_inc(dir, r, incarnation))
                .collect(),
            asm: Assembler::new(rank),
            next_msg_id: 0,
            recv_buf: vec![0u8; HEADER + FRAG_PAYLOAD],
            send_buf: Vec::with_capacity(HEADER + FRAG_PAYLOAD),
            poll_sleep: None,
            frag: FRAG_PAYLOAD,
        })
    }

    /// Bind `path`, reclaiming a stale file and retrying transient
    /// `AddrInUse` races with jittered exponential backoff.
    fn bind_with_retry(path: &Path, rank: usize) -> Result<UnixDatagram, NetError> {
        const ATTEMPTS: u32 = 6;
        const BASE_NAP: Duration = Duration::from_micros(200);
        if path.exists() {
            // One live rank per name per directory: an existing file is
            // a previous incarnation's corpse, never a live peer.
            let _ = std::fs::remove_file(path);
        }
        let mut last = None;
        for attempt in 0..ATTEMPTS {
            match UnixDatagram::bind(path) {
                Ok(sock) => return Ok(sock),
                Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                    let _ = std::fs::remove_file(path);
                    last = Some(e);
                    // Deterministic jitter (keyed splitmix64, same idiom
                    // as the fault layer): decorrelates ranks retrying in
                    // lockstep without ambient entropy.
                    let nap = BASE_NAP * (1 << attempt.min(4));
                    let jitter_ns = splitmix64((rank as u64) << 32 | u64::from(attempt))
                        % (nap.as_nanos() as u64 / 2 + 1);
                    std::thread::sleep(nap + Duration::from_nanos(jitter_ns));
                }
                Err(e) => {
                    return Err(NetError::App(format!("bind {}: {e}", path.display())));
                }
            }
        }
        Err(NetError::App(format!(
            "bind {}: still AddrInUse after {ATTEMPTS} attempts: {}",
            path.display(),
            last.expect("loop recorded an error")
        )))
    }

    /// Compatibility mode: wait for frames by draining nonblocking and
    /// napping `nap` between polls — the discipline this transport used
    /// before blocking reads. Kept so the benchmark can A/B the old
    /// data plane against the pipelined one; not for production use.
    #[must_use]
    pub fn with_poll_sleep(mut self, nap: Duration) -> Self {
        self.poll_sleep = Some(nap);
        self
    }

    /// Cap outbound fragments at `frag` payload bytes (clamped to
    /// `[1, FRAG_PAYLOAD]` — receive buffers are sized for
    /// [`FRAG_PAYLOAD`], so larger fragments would truncate on arrival).
    #[must_use]
    pub fn with_frag_payload(mut self, frag: usize) -> Self {
        self.frag = frag.clamp(1, FRAG_PAYLOAD);
        self
    }

    #[cfg(test)]
    fn sock_path(dir: &Path, rank: usize) -> PathBuf {
        Self::sock_path_inc(dir, rank, 0)
    }

    /// Socket path for `rank` at `incarnation`. Incarnation 0 keeps the
    /// historical `rank-N.sock` name; restarts get a unique suffix.
    fn sock_path_inc(dir: &Path, rank: usize, incarnation: u64) -> PathBuf {
        if incarnation == 0 {
            dir.join(format!("rank-{rank}.sock"))
        } else {
            dir.join(format!("rank-{rank}.i{incarnation}.sock"))
        }
    }

    /// Pull every datagram currently queued on the socket into the
    /// pending/partial stores. Returns how many frames were consumed.
    fn drain(&mut self) -> Result<usize, NetError> {
        let mut consumed = 0;
        loop {
            match self.sock.recv(&mut self.recv_buf) {
                Ok(len) => {
                    consumed += 1;
                    let frame = decode_frame(&self.recv_buf[..len])?;
                    self.asm.accept(frame);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(consumed),
                Err(e) => return Err(NetError::App(format!("recv: {e}"))),
            }
        }
    }

    /// Block on the socket until at least one datagram arrives or
    /// `timeout` elapses, then drain everything queued. A kernel
    /// blocking read replaces the old sleep-poll loop: an idle endpoint
    /// parks in `recvfrom` and burns neither CPU nor (above this layer)
    /// retransmission budget. Returns how many frames were consumed.
    fn block_for_frames(&mut self, timeout: Duration) -> Result<usize, NetError> {
        if timeout.is_zero() {
            return self.drain();
        }
        if let Some(nap) = self.poll_sleep {
            // Seed-faithful sleep-poll loop (see `with_poll_sleep`).
            let deadline = Instant::now() + timeout;
            loop {
                let consumed = self.drain()?;
                if consumed > 0 {
                    return Ok(consumed);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Ok(0);
                }
                std::thread::sleep(nap.min(remaining));
            }
        }
        self.sock
            .set_read_timeout(Some(timeout))
            .map_err(|e| NetError::App(format!("set_read_timeout: {e}")))?;
        self.sock
            .set_nonblocking(false)
            .map_err(|e| NetError::App(format!("set_nonblocking: {e}")))?;
        let got = match self.sock.recv(&mut self.recv_buf) {
            Ok(len) => {
                let frame = decode_frame(&self.recv_buf[..len])?;
                self.asm.accept(frame);
                1
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                0
            }
            Err(e) => {
                let _ = self.sock.set_nonblocking(true);
                return Err(NetError::App(format!("recv: {e}")));
            }
        };
        self.sock
            .set_nonblocking(true)
            .map_err(|e| NetError::App(format!("set_nonblocking: {e}")))?;
        // Grab whatever else arrived while we were parked.
        Ok(got + self.drain()?)
    }
}

impl Drop for UdsTransport {
    fn drop(&mut self) {
        // `UnixDatagram` does not unlink its path on drop; do it here so
        // a rank that dies (panics, is killed by fault injection) leaves
        // no corpse for its next incarnation to trip over.
        let _ = std::fs::remove_file(&self.own_path);
    }
}

impl Transport for UdsTransport {
    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        let peer = self.peer_paths[msg.dst].clone();
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        let count = if msg.payload.is_empty() {
            1
        } else {
            msg.payload.len().div_ceil(self.frag)
        } as u32;
        for idx in 0..count {
            let chunk = if msg.payload.is_empty() {
                &[][..]
            } else {
                let at = idx as usize * self.frag;
                &msg.payload[at..msg.payload.len().min(at + self.frag)]
            };
            let mut frame = std::mem::take(&mut self.send_buf);
            encode_frame_into(
                &mut frame,
                msg.src,
                msg.tag,
                msg_id,
                idx,
                count,
                msg.arrival,
                msg.seq,
                msg.ack,
                msg.checksum,
                chunk,
            );
            let sent = loop {
                match self.sock.send_to(&frame, &peer) {
                    Ok(_) => break Ok(()),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // The peer's queue is full: make progress on our
                        // own queue so the system drains, and otherwise
                        // park briefly on the socket (a blocking read,
                        // not a sleep) until something moves.
                        if self.drain()? == 0 {
                            self.block_for_frames(Duration::from_micros(500))?;
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::NotFound | std::io::ErrorKind::ConnectionRefused
                        ) =>
                    {
                        // Peer already exited: same fire-and-forget
                        // semantics as the channel transport.
                        break Ok(());
                    }
                    Err(e) => break Err(NetError::App(format!("send_to rank {}: {e}", msg.dst))),
                }
            };
            self.send_buf = frame;
            sent?;
        }
        Ok(())
    }

    fn recv_match(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(m) = self.asm.take_match(from, tag) {
                return Ok(m);
            }
            if self.drain()? == 0 {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(NetError::Timeout {
                        rank: self.rank,
                        from,
                        tag,
                        waited: timeout,
                    });
                }
                self.block_for_frames(remaining)?;
            }
        }
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(m) = self.asm.pending.pop_front() {
                return Ok(Some(m));
            }
            if self.drain()? == 0 {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Ok(None);
                }
                if self.block_for_frames(remaining)? == 0 {
                    return Ok(None);
                }
            }
        }
    }

    fn wait_any(&mut self, timeout: Duration) -> Result<(), NetError> {
        if !self.asm.pending.is_empty() || self.drain()? > 0 {
            return Ok(());
        }
        self.block_for_frames(timeout)?;
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "uds"
    }

    fn purge(&mut self) -> usize {
        // Best-effort: pull whatever is already queued on the socket, then
        // discard every complete and partial message.
        let _ = self.drain();
        self.asm.clear()
    }
}

/// A cluster whose ranks talk over Unix datagram sockets.
#[derive(Debug)]
pub struct SocketCluster;

impl SocketCluster {
    /// Run `body` as an SPMD program with socket transports. Sockets live
    /// in a fresh temporary directory, removed afterwards.
    ///
    /// # Errors
    ///
    /// Socket setup failures and the first rank error.
    pub fn run<T, F>(config: &ClusterConfig, body: F) -> Result<RunOutput<T>, NetError>
    where
        T: Send,
        F: Fn(&mut Endpoint) -> Result<T, NetError> + Sync,
    {
        Self::run_inner(config, false, body)
    }

    /// [`run`](Self::run), but on the pre-pipelining transport
    /// discipline: waits sleep-poll every 50µs instead of blocking in
    /// the kernel, and fragments are capped at the old 16 KiB. Combined
    /// with [`WireTuning::stop_and_wait`] and
    /// [`ClusterConfig::with_serial_rounds`] this reproduces the data
    /// plane as it was before the sliding-window rework — the wire
    /// benchmark's baseline. Not for production use.
    ///
    /// [`WireTuning::stop_and_wait`]: bruck_model::tuning::WireTuning::stop_and_wait
    ///
    /// # Errors
    ///
    /// Socket setup failures and the first rank error.
    pub fn run_legacy<T, F>(config: &ClusterConfig, body: F) -> Result<RunOutput<T>, NetError>
    where
        T: Send,
        F: Fn(&mut Endpoint) -> Result<T, NetError> + Sync,
    {
        Self::run_inner(config, true, body)
    }

    /// [`Cluster::run_resilient`] over Unix datagram sockets: shrink on
    /// failure, optionally re-admit healed ranks per
    /// [`ClusterConfig::recovery`](crate::cluster::ClusterConfig), with
    /// each attempt's sockets bound at a fresh *incarnation* (see
    /// [`UdsTransport::bind_incarnation`]) inside one shared temporary
    /// directory. Unique per-incarnation paths plus unlink-on-drop mean
    /// a killed rank's stale socket file can never block its rejoin —
    /// the restarted rank binds `rank-N.iA.sock` for attempt `A` while
    /// the corpse (if any) is reclaimed.
    ///
    /// # Errors
    ///
    /// Socket setup failures, non-rank-failure errors, and rank
    /// failures that survive `max_attempts` (see
    /// [`Cluster::run_resilient`] for the policy semantics).
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0` or a rank's thread panics.
    pub fn run_resilient<T, F>(
        config: &ClusterConfig,
        max_attempts: usize,
        body: F,
    ) -> Result<crate::cluster::ResilientOutput<T>, NetError>
    where
        T: Send,
        F: Fn(&mut Endpoint, &crate::cluster::SurvivorView) -> Result<T, NetError> + Sync,
    {
        let dir = std::env::temp_dir().join(format!(
            "bruck-uds-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&dir)
            .map_err(|e| NetError::App(format!("mkdir {}: {e}", dir.display())))?;
        let result = Cluster::run_resilient_with(
            config,
            max_attempts,
            &mut |n, attempt| {
                (0..n)
                    .map(|rank| {
                        UdsTransport::bind_incarnation(&dir, rank, n, attempt as u64)
                            .map(|t| Box::new(t) as Box<dyn Transport>)
                    })
                    .collect()
            },
            body,
        );
        let _ = std::fs::remove_dir_all(&dir);
        result
    }

    fn run_inner<T, F>(
        config: &ClusterConfig,
        legacy: bool,
        body: F,
    ) -> Result<RunOutput<T>, NetError>
    where
        T: Send,
        F: Fn(&mut Endpoint) -> Result<T, NetError> + Sync,
    {
        /// How often the legacy discipline napped between receive polls.
        const LEGACY_POLL_NAP: Duration = Duration::from_micros(50);
        let dir = std::env::temp_dir().join(format!(
            "bruck-uds-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&dir)
            .map_err(|e| NetError::App(format!("mkdir {}: {e}", dir.display())))?;
        let transports: Result<Vec<Box<dyn Transport>>, NetError> = (0..config.n)
            .map(|rank| {
                UdsTransport::bind(&dir, rank, config.n).map(|t| {
                    let t = if legacy {
                        t.with_poll_sleep(LEGACY_POLL_NAP)
                            .with_frag_payload(LEGACY_FRAG_PAYLOAD)
                    } else {
                        t
                    };
                    Box::new(t) as Box<dyn Transport>
                })
            })
            .collect();
        let result = match transports {
            Ok(t) => Cluster::run_with_transports(config, t, body),
            Err(e) => Err(e),
        };
        let _ = std::fs::remove_dir_all(&dir);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_model::complexity::Complexity;

    #[test]
    fn socket_ring_rotation() {
        let cfg = ClusterConfig::new(5);
        let out = SocketCluster::run(&cfg, |ep| {
            let n = ep.size();
            let right = (ep.rank() + 1) % n;
            let left = (ep.rank() + n - 1) % n;
            let got = ep.send_and_recv(right, &[ep.rank() as u8], left, 0)?;
            Ok(got[0])
        })
        .unwrap();
        assert_eq!(out.results, vec![4, 0, 1, 2, 3]);
        assert_eq!(out.metrics.global_complexity(), Some(Complexity::new(1, 1)));
    }

    #[test]
    fn socket_large_messages_fragment_and_reassemble() {
        // 100 KiB payloads: 7 fragments each, exchanged simultaneously in
        // both directions — exercises the anti-deadlock drain loop.
        let cfg = ClusterConfig::new(2).with_timeout(Duration::from_secs(20));
        let bytes = 100 * 1024;
        let out = SocketCluster::run(&cfg, |ep| {
            let peer = 1 - ep.rank();
            let payload: Vec<u8> = (0..bytes)
                .map(|i| (i as u8).wrapping_add(ep.rank() as u8))
                .collect();
            let got = ep.send_and_recv(peer, &payload, peer, 3)?;
            Ok(got)
        })
        .unwrap();
        for (rank, got) in out.results.iter().enumerate() {
            let expected: Vec<u8> = (0..bytes)
                .map(|i| (i as u8).wrapping_add(1 - rank as u8))
                .collect();
            assert_eq!(got, &expected, "rank {rank}");
        }
    }

    #[test]
    fn socket_empty_payload() {
        let cfg = ClusterConfig::new(2);
        let out = SocketCluster::run(&cfg, |ep| {
            let peer = 1 - ep.rank();
            let got = ep.send_and_recv(peer, &[], peer, 1)?;
            Ok(got.len())
        })
        .unwrap();
        assert_eq!(out.results, vec![0, 0]);
    }

    #[test]
    fn socket_timeout_detected() {
        let cfg = ClusterConfig::new(2).with_timeout(Duration::from_millis(80));
        let err = SocketCluster::run(&cfg, |ep| {
            if ep.rank() == 0 {
                ep.round(&[], &[crate::endpoint::RecvSpec { from: 1, tag: 5 }])?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(
            err,
            NetError::Timeout {
                rank: 0,
                from: 1,
                tag: 5,
                ..
            }
        ));
    }

    #[test]
    fn stale_socket_file_is_reclaimed_on_rebind() {
        // Simulate a crashed rank: bind a raw datagram socket, drop the
        // socket but deliberately leave the file behind (UnixDatagram's
        // Drop does not unlink). A fresh bind on the same path must
        // reclaim it instead of failing AddrInUse.
        let dir = std::env::temp_dir().join(format!(
            "bruck-uds-stale-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = UdsTransport::sock_path(&dir, 0);
        let corpse = UnixDatagram::bind(&path).unwrap();
        drop(corpse);
        assert!(path.exists(), "UnixDatagram drop must leave the file");
        let t = UdsTransport::bind(&dir, 0, 2).expect("rebind reclaims the stale file");
        drop(t);
        assert!(!path.exists(), "UdsTransport drop unlinks its own path");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incarnation_paths_are_unique_per_restart() {
        let dir = Path::new("/tmp/whatever");
        let first = UdsTransport::sock_path_inc(dir, 3, 0);
        let second = UdsTransport::sock_path_inc(dir, 3, 1);
        let third = UdsTransport::sock_path_inc(dir, 3, 2);
        assert_eq!(first, UdsTransport::sock_path(dir, 3));
        assert_ne!(first, second);
        assert_ne!(second, third);
        assert!(second.to_string_lossy().contains("i1"));
    }

    #[test]
    fn socket_cluster_rejoins_after_kill() {
        use crate::fault::FaultPlan;
        use crate::membership::RecoveryPolicy;
        let cfg = ClusterConfig::new(4)
            .with_timeout(Duration::from_secs(5))
            .with_faults(FaultPlan::new().kill_rank_after(2, 0))
            .with_quarantine(Duration::from_millis(2))
            .with_recovery(RecoveryPolicy::WaitForRejoin {
                budget: Duration::from_secs(2),
            });
        let out = SocketCluster::run_resilient(&cfg, 3, |ep, view| {
            let n = ep.size();
            let right = (ep.rank() + 1) % n;
            let left = (ep.rank() + n - 1) % n;
            let got = ep.send_and_recv(right, &[ep.rank() as u8], left, 0)?;
            Ok((got[0], view.view_id))
        })
        .unwrap();
        // The killed rank rejoined: the final attempt ran full-width.
        assert_eq!(out.survivors, vec![0, 1, 2, 3]);
        assert_eq!(out.rejoined, vec![2]);
        assert!(out.attempts >= 2);
        assert_eq!(out.output.metrics.membership.rejoins, 1);
        let view_ids: Vec<u64> = out.output.results.iter().map(|&(_, v)| v).collect();
        assert!(view_ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn socket_virtual_time_matches_channels() {
        // The cost model is transport independent: virtual times agree.
        let cfg = ClusterConfig::new(4);
        let body = |ep: &mut Endpoint| {
            let n = ep.size();
            let right = (ep.rank() + 1) % n;
            let left = (ep.rank() + n - 1) % n;
            for i in 0..3u64 {
                ep.send_and_recv(right, &[0u8; 64], left, i)?;
            }
            Ok(ep.virtual_time())
        };
        let sock = SocketCluster::run(&cfg, body).unwrap();
        let chan = Cluster::run(&cfg, body).unwrap();
        for (a, b) in sock.results.iter().zip(&chan.results) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

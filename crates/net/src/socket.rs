//! Real-I/O transport: Unix datagram sockets (Unix only).
//!
//! Each rank binds one `SOCK_DGRAM` Unix socket in a per-run temporary
//! directory; messages travel as framed datagrams (header + payload),
//! fragmented at [`FRAG_PAYLOAD`] bytes so arbitrarily large blocks fit
//! under the kernel's datagram ceiling. Sends run nonblocking and
//! interleave with draining the own socket, so two ranks exchanging
//! large messages never deadlock on full kernel buffers.
//!
//! The point of this transport is *calibration realism*: wall-clock
//! measurements cross the kernel (syscalls, copies, scheduler) instead of
//! a user-space channel, which is the closest laptop-scale stand-in for
//! the paper's EUI message layer. Algorithms are oblivious — the same
//! [`Endpoint`] drives either transport.

#![cfg(unix)]

use std::collections::{HashMap, VecDeque};
use std::os::unix::net::UnixDatagram;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::cluster::{Cluster, ClusterConfig, RunOutput};
use crate::endpoint::Endpoint;
use crate::error::NetError;
use crate::message::{Message, Tag};
use crate::transport::Transport;

/// Max payload bytes per datagram fragment — comfortably under the
/// default `SO_SNDBUF`.
pub const FRAG_PAYLOAD: usize = 16 * 1024;

// src, tag, msg id, frag idx, frag count, arrival, seq, checksum flag + value
const HEADER: usize = 4 + 8 + 8 + 4 + 4 + 8 + 8 + 1 + 4;

#[allow(clippy::too_many_arguments)] // mirrors the frame header, field for field
fn encode_frame(
    src: usize,
    tag: Tag,
    msg_id: u64,
    frag_idx: u32,
    frag_count: u32,
    arrival: f64,
    seq: u64,
    checksum: Option<u32>,
    chunk: &[u8],
) -> Vec<u8> {
    let mut f = Vec::with_capacity(HEADER + chunk.len());
    f.extend_from_slice(&(src as u32).to_le_bytes());
    f.extend_from_slice(&tag.to_le_bytes());
    f.extend_from_slice(&msg_id.to_le_bytes());
    f.extend_from_slice(&frag_idx.to_le_bytes());
    f.extend_from_slice(&frag_count.to_le_bytes());
    f.extend_from_slice(&arrival.to_bits().to_le_bytes());
    f.extend_from_slice(&seq.to_le_bytes());
    f.push(u8::from(checksum.is_some()));
    f.extend_from_slice(&checksum.unwrap_or(0).to_le_bytes());
    f.extend_from_slice(chunk);
    f
}

struct Frame {
    src: usize,
    tag: Tag,
    msg_id: u64,
    frag_idx: u32,
    frag_count: u32,
    arrival: f64,
    seq: u64,
    checksum: Option<u32>,
    chunk: Vec<u8>,
}

fn decode_frame(buf: &[u8]) -> Result<Frame, NetError> {
    if buf.len() < HEADER {
        return Err(NetError::App(format!(
            "runt datagram of {} bytes",
            buf.len()
        )));
    }
    let get = |at: usize, len: usize| &buf[at..at + len];
    Ok(Frame {
        src: u32::from_le_bytes(get(0, 4).try_into().expect("4 bytes")) as usize,
        tag: Tag::from_le_bytes(get(4, 8).try_into().expect("8 bytes")),
        msg_id: u64::from_le_bytes(get(12, 8).try_into().expect("8 bytes")),
        frag_idx: u32::from_le_bytes(get(20, 4).try_into().expect("4 bytes")),
        frag_count: u32::from_le_bytes(get(24, 4).try_into().expect("4 bytes")),
        arrival: f64::from_bits(u64::from_le_bytes(get(28, 8).try_into().expect("8 bytes"))),
        seq: u64::from_le_bytes(get(36, 8).try_into().expect("8 bytes")),
        checksum: (buf[44] != 0)
            .then(|| u32::from_le_bytes(get(45, 4).try_into().expect("4 bytes"))),
        chunk: buf[HEADER..].to_vec(),
    })
}

struct Reassembly {
    tag: Tag,
    arrival: f64,
    seq: u64,
    checksum: Option<u32>,
    frag_count: u32,
    received: u32,
    chunks: Vec<Option<Vec<u8>>>,
}

/// A rank's Unix-datagram connection to its peers.
pub struct UdsTransport {
    rank: usize,
    sock: UnixDatagram,
    peer_paths: Vec<PathBuf>,
    pending: VecDeque<Message>,
    partial: HashMap<(usize, u64), Reassembly>,
    next_msg_id: u64,
    recv_buf: Vec<u8>,
}

impl UdsTransport {
    /// Bind rank `rank`'s socket in `dir` and record the peers' paths.
    ///
    /// # Errors
    ///
    /// Bind failures surface as [`NetError::App`].
    pub fn bind(dir: &Path, rank: usize, n: usize) -> Result<Self, NetError> {
        let path = Self::sock_path(dir, rank);
        let sock = UnixDatagram::bind(&path)
            .map_err(|e| NetError::App(format!("bind {}: {e}", path.display())))?;
        sock.set_nonblocking(true)
            .map_err(|e| NetError::App(format!("set_nonblocking: {e}")))?;
        Ok(Self {
            rank,
            sock,
            peer_paths: (0..n).map(|r| Self::sock_path(dir, r)).collect(),
            pending: VecDeque::new(),
            partial: HashMap::new(),
            next_msg_id: 0,
            recv_buf: vec![0u8; HEADER + FRAG_PAYLOAD],
        })
    }

    fn sock_path(dir: &Path, rank: usize) -> PathBuf {
        dir.join(format!("rank-{rank}.sock"))
    }

    /// Pull every datagram currently queued on the socket into the
    /// pending/partial stores. Returns how many frames were consumed.
    fn drain(&mut self) -> Result<usize, NetError> {
        let mut consumed = 0;
        loop {
            match self.sock.recv(&mut self.recv_buf) {
                Ok(len) => {
                    consumed += 1;
                    let frame = decode_frame(&self.recv_buf[..len])?;
                    self.accept(frame);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(consumed),
                Err(e) => return Err(NetError::App(format!("recv: {e}"))),
            }
        }
    }

    fn accept(&mut self, frame: Frame) {
        if frame.frag_count == 1 {
            self.pending.push_back(Message {
                src: frame.src,
                dst: self.rank,
                tag: frame.tag,
                payload: frame.chunk,
                arrival: frame.arrival,
                seq: frame.seq,
                checksum: frame.checksum,
            });
            return;
        }
        let key = (frame.src, frame.msg_id);
        let entry = self.partial.entry(key).or_insert_with(|| Reassembly {
            tag: frame.tag,
            arrival: frame.arrival,
            seq: frame.seq,
            checksum: frame.checksum,
            frag_count: frame.frag_count,
            received: 0,
            chunks: vec![None; frame.frag_count as usize],
        });
        let idx = frame.frag_idx as usize;
        if idx < entry.chunks.len() && entry.chunks[idx].is_none() {
            entry.chunks[idx] = Some(frame.chunk);
            entry.received += 1;
        }
        if entry.received == entry.frag_count {
            let done = self.partial.remove(&key).expect("entry just updated");
            let payload: Vec<u8> = done
                .chunks
                .into_iter()
                .flat_map(|c| c.expect("all fragments present"))
                .collect();
            self.pending.push_back(Message {
                src: frame.src,
                dst: self.rank,
                tag: done.tag,
                payload,
                arrival: done.arrival,
                seq: done.seq,
                checksum: done.checksum,
            });
        }
    }

    fn take_pending(&mut self, from: usize, tag: Tag) -> Option<Message> {
        let pos = self
            .pending
            .iter()
            .position(|m| m.src == from && m.tag == tag)?;
        self.pending.remove(pos)
    }
}

impl Transport for UdsTransport {
    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        let peer = self.peer_paths[msg.dst].clone();
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        let chunks: Vec<&[u8]> = if msg.payload.is_empty() {
            vec![&[]]
        } else {
            msg.payload.chunks(FRAG_PAYLOAD).collect()
        };
        let count = chunks.len() as u32;
        for (idx, chunk) in chunks.into_iter().enumerate() {
            let frame = encode_frame(
                msg.src,
                msg.tag,
                msg_id,
                idx as u32,
                count,
                msg.arrival,
                msg.seq,
                msg.checksum,
                chunk,
            );
            loop {
                match self.sock.send_to(&frame, &peer) {
                    Ok(_) => break,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // The peer's queue is full: make progress on our
                        // own queue so the system drains, then retry.
                        if self.drain()? == 0 {
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::NotFound | std::io::ErrorKind::ConnectionRefused
                        ) =>
                    {
                        // Peer already exited: same fire-and-forget
                        // semantics as the channel transport.
                        return Ok(());
                    }
                    Err(e) => return Err(NetError::App(format!("send_to rank {}: {e}", msg.dst))),
                }
            }
        }
        Ok(())
    }

    fn recv_match(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(m) = self.take_pending(from, tag) {
                return Ok(m);
            }
            if self.drain()? == 0 {
                if Instant::now() >= deadline {
                    return Err(NetError::Timeout {
                        rank: self.rank,
                        from,
                        tag,
                        waited: timeout,
                    });
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(m) = self.pending.pop_front() {
                return Ok(Some(m));
            }
            if self.drain()? == 0 {
                if Instant::now() >= deadline {
                    return Ok(None);
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }

    fn purge(&mut self) -> usize {
        // Best-effort: pull whatever is already queued on the socket, then
        // discard every complete and partial message.
        let _ = self.drain();
        let n = self.pending.len() + self.partial.len();
        self.pending.clear();
        self.partial.clear();
        n
    }
}

/// A cluster whose ranks talk over Unix datagram sockets.
#[derive(Debug)]
pub struct SocketCluster;

impl SocketCluster {
    /// Run `body` as an SPMD program with socket transports. Sockets live
    /// in a fresh temporary directory, removed afterwards.
    ///
    /// # Errors
    ///
    /// Socket setup failures and the first rank error.
    pub fn run<T, F>(config: &ClusterConfig, body: F) -> Result<RunOutput<T>, NetError>
    where
        T: Send,
        F: Fn(&mut Endpoint) -> Result<T, NetError> + Sync,
    {
        let dir = std::env::temp_dir().join(format!(
            "bruck-uds-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&dir)
            .map_err(|e| NetError::App(format!("mkdir {}: {e}", dir.display())))?;
        let transports: Result<Vec<Box<dyn Transport>>, NetError> = (0..config.n)
            .map(|rank| {
                UdsTransport::bind(&dir, rank, config.n).map(|t| Box::new(t) as Box<dyn Transport>)
            })
            .collect();
        let result = match transports {
            Ok(t) => Cluster::run_with_transports(config, t, body),
            Err(e) => Err(e),
        };
        let _ = std::fs::remove_dir_all(&dir);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_model::complexity::Complexity;

    #[test]
    fn frame_round_trip() {
        let f = encode_frame(7, 42, 9, 2, 5, 1.25, 11, Some(0xDEAD), &[1, 2, 3]);
        let d = decode_frame(&f).unwrap();
        assert_eq!(
            (d.src, d.tag, d.msg_id, d.frag_idx, d.frag_count, d.arrival),
            (7, 42, 9, 2, 5, 1.25)
        );
        assert_eq!((d.seq, d.checksum), (11, Some(0xDEAD)));
        assert_eq!(d.chunk, vec![1, 2, 3]);
    }

    #[test]
    fn frame_round_trip_no_checksum() {
        let f = encode_frame(1, 2, 3, 0, 1, 0.0, 0, None, &[]);
        let d = decode_frame(&f).unwrap();
        assert_eq!((d.seq, d.checksum), (0, None));
        assert!(d.chunk.is_empty());
    }

    #[test]
    fn runt_frame_rejected() {
        assert!(decode_frame(&[0u8; 10]).is_err());
    }

    #[test]
    fn socket_ring_rotation() {
        let cfg = ClusterConfig::new(5);
        let out = SocketCluster::run(&cfg, |ep| {
            let n = ep.size();
            let right = (ep.rank() + 1) % n;
            let left = (ep.rank() + n - 1) % n;
            let got = ep.send_and_recv(right, &[ep.rank() as u8], left, 0)?;
            Ok(got[0])
        })
        .unwrap();
        assert_eq!(out.results, vec![4, 0, 1, 2, 3]);
        assert_eq!(out.metrics.global_complexity(), Some(Complexity::new(1, 1)));
    }

    #[test]
    fn socket_large_messages_fragment_and_reassemble() {
        // 100 KiB payloads: 7 fragments each, exchanged simultaneously in
        // both directions — exercises the anti-deadlock drain loop.
        let cfg = ClusterConfig::new(2).with_timeout(Duration::from_secs(20));
        let bytes = 100 * 1024;
        let out = SocketCluster::run(&cfg, |ep| {
            let peer = 1 - ep.rank();
            let payload: Vec<u8> = (0..bytes)
                .map(|i| (i as u8).wrapping_add(ep.rank() as u8))
                .collect();
            let got = ep.send_and_recv(peer, &payload, peer, 3)?;
            Ok(got)
        })
        .unwrap();
        for (rank, got) in out.results.iter().enumerate() {
            let expected: Vec<u8> = (0..bytes)
                .map(|i| (i as u8).wrapping_add(1 - rank as u8))
                .collect();
            assert_eq!(got, &expected, "rank {rank}");
        }
    }

    #[test]
    fn socket_empty_payload() {
        let cfg = ClusterConfig::new(2);
        let out = SocketCluster::run(&cfg, |ep| {
            let peer = 1 - ep.rank();
            let got = ep.send_and_recv(peer, &[], peer, 1)?;
            Ok(got.len())
        })
        .unwrap();
        assert_eq!(out.results, vec![0, 0]);
    }

    #[test]
    fn socket_timeout_detected() {
        let cfg = ClusterConfig::new(2).with_timeout(Duration::from_millis(80));
        let err = SocketCluster::run(&cfg, |ep| {
            if ep.rank() == 0 {
                ep.round(&[], &[crate::endpoint::RecvSpec { from: 1, tag: 5 }])?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(
            err,
            NetError::Timeout {
                rank: 0,
                from: 1,
                tag: 5,
                ..
            }
        ));
    }

    #[test]
    fn socket_virtual_time_matches_channels() {
        // The cost model is transport independent: virtual times agree.
        let cfg = ClusterConfig::new(4);
        let body = |ep: &mut Endpoint| {
            let n = ep.size();
            let right = (ep.rank() + 1) % n;
            let left = (ep.rank() + n - 1) % n;
            for i in 0..3u64 {
                ep.send_and_recv(right, &[0u8; 64], left, i)?;
            }
            Ok(ep.virtual_time())
        };
        let sock = SocketCluster::run(&cfg, body).unwrap();
        let chan = Cluster::run(&cfg, body).unwrap();
        for (a, b) in sock.results.iter().zip(&chan.results) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

//! Event-driven TCP transport: hundreds of ranks multiplexed per
//! process.
//!
//! The thread-per-rank substrates ([`Cluster`](crate::Cluster),
//! [`SocketCluster`](crate::socket::SocketCluster)) stop scaling near
//! `n ≈ 64` on small hosts: every simulated processor costs an OS
//! thread, and the scheduler thrashes long before the algorithms get
//! interesting. This module rebuilds the data plane around *readiness*
//! instead of threads:
//!
//! * **Topology.** Ranks are grouped into simulated *nodes* of
//!   [`ClusterConfig::node_size`] ranks each. Intra-node traffic rides
//!   the in-process channel path (one [`Mailbox`] per rank, zero
//!   syscalls); inter-node traffic crosses one loopback **TCP stream
//!   per node pair**, shared by every rank on the two nodes.
//! * **Framing.** Messages fragment at
//!   [`FRAG_PAYLOAD`](crate::frame::FRAG_PAYLOAD) into the same frame
//!   header the datagram transport uses (see [`crate::frame`]), wrapped
//!   in an 8-byte `[len, dst]` prefix so the stream demultiplexes by
//!   destination rank.
//! * **Reactor.** All streams run nonblocking and are driven by a
//!   single reactor thread sweeping a readiness loop — the portable
//!   stand-in for `poll(2)`, which `std` does not expose — flushing
//!   per-link outboxes and decoding inbound frames into per-rank
//!   mailboxes. Idle sweeps back off exponentially, so a quiet fabric
//!   costs (almost) no CPU.
//! * **Execution.** [`TcpScaleCluster`] interprets lowered
//!   [`RankProgram`]s — the same programs `bruck-collectives` executes
//!   on the threaded substrate — with a small worker pool: each worker
//!   owns a contiguous slice of ranks and drives their endpoint state
//!   machines from message readiness. OS threads per process are
//!   `O(workers)`, not `O(n)`, so `n = 1024` runs where 1024 threads
//!   would not.
//!
//! The reliability stack is unchanged: sliding-window ARQ, adaptive
//! RTO, the heartbeat watchdog, and deadline clamps
//! ([`crate::reliable`], [`crate::deadline`]) wrap the TCP transport
//! exactly as they wrap channels and datagram sockets, and fault
//! injection ([`crate::fault`]) applies to every transmission.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bruck_model::planner::IndexPlan;
use bruck_model::program::{ProgramOp, RankProgram};

use crate::cluster::ClusterConfig;
use crate::deadline::Deadline;
use crate::error::NetError;
use crate::failure::FailureDetector;
use crate::fault::{FaultyTransport, RoundClock};
use crate::frame::{decode_frame, encode_frame_into, Assembler, FRAG_PAYLOAD, HEADER};
use crate::mailbox::{MailSender, Mailbox};
use crate::message::{payload_checksum, Message, Tag};
use crate::metrics::{RankMetrics, RunMetrics};
use crate::reliable::ReliableTransport;
use crate::transport::Transport;

/// Stream prefix ahead of every frame: `u32` frame length + `u32`
/// destination rank (both little-endian).
const STREAM_PREFIX: usize = 8;

/// Reactor read chunk: one full frame's worth per `read` call.
const READ_CHUNK: usize = HEADER + FRAG_PAYLOAD;

/// Ceiling for the reactor's idle-sweep nap.
const IDLE_NAP_MAX: Duration = Duration::from_micros(500);

/// How long the reactor keeps sweeping after shutdown is requested,
/// waiting for outboxes to drain (hang backstop only — drained fabrics
/// exit immediately).
const SHUTDOWN_GRACE: Duration = Duration::from_secs(1);

/// Index of the unordered node pair `(a, b)`, `a < b`, among the
/// `nodes·(nodes−1)/2` pairs.
fn pair_index(nodes: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < b && b < nodes);
    a * (2 * nodes - a - 1) / 2 + (b - a - 1)
}

/// State shared between the rank transports (producers) and the reactor
/// (consumer): one byte outbox per stream *end*, plus the first fabric
/// error.
struct FabricShared {
    node_size: usize,
    /// `2` outboxes per node pair: `[2p]` is written by the lower node
    /// of pair `p` (the connecting end), `[2p+1]` by the higher (the
    /// accepting end).
    outboxes: Vec<Mutex<Vec<u8>>>,
    /// Cheap has-data flags so the reactor skips locking idle outboxes.
    dirty: Vec<AtomicBool>,
    /// First wire error observed by the reactor (or a sender); fails
    /// every subsequent send so the run aborts instead of hanging.
    error: Mutex<Option<String>>,
    nodes: usize,
}

impl FabricShared {
    /// The outbox a message from `src_node` to `dst_node` is staged in.
    fn outbox_for(&self, src_node: usize, dst_node: usize) -> usize {
        if src_node < dst_node {
            2 * pair_index(self.nodes, src_node, dst_node)
        } else {
            2 * pair_index(self.nodes, dst_node, src_node) + 1
        }
    }

    fn fail(&self, msg: String) {
        let mut slot = self.error.lock().expect("fabric error lock");
        if slot.is_none() {
            *slot = Some(msg);
        }
    }

    fn check(&self) -> Result<(), NetError> {
        match self.error.lock().expect("fabric error lock").as_ref() {
            Some(e) => Err(NetError::App(format!("tcp fabric: {e}"))),
            None => Ok(()),
        }
    }
}

/// One stream end owned by the reactor.
struct Link {
    stream: TcpStream,
    /// The outbox this end transmits.
    idx: usize,
    /// Bytes being written (drained from the outbox), and the write
    /// offset into them.
    out: Vec<u8>,
    out_at: usize,
    /// Inbound bytes not yet parsed into whole frames.
    rbuf: Vec<u8>,
}

/// The readiness sweep: flush every dirty outbox, drain every readable
/// stream, decode frames, reassemble, deliver to per-rank mailboxes.
fn reactor_loop(
    shared: &FabricShared,
    mut links: Vec<Link>,
    senders: &[MailSender],
    shutdown: &AtomicBool,
) {
    let n = senders.len();
    let mut asms: Vec<Assembler> = (0..n).map(Assembler::new).collect();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut idle: u32 = 0;
    let mut shutdown_seen: Option<Instant> = None;
    loop {
        let mut moved = false;
        let mut drained = true;
        for link in &mut links {
            // Refill the write cursor from the outbox (allocation swap:
            // the drained buffer goes back as the senders' next arena).
            if link.out_at == link.out.len() && shared.dirty[link.idx].swap(false, Ordering::AcqRel)
            {
                link.out.clear();
                link.out_at = 0;
                let mut outbox = shared.outboxes[link.idx].lock().expect("outbox lock");
                std::mem::swap(&mut *outbox, &mut link.out);
            }
            while link.out_at < link.out.len() {
                match link.stream.write(&link.out[link.out_at..]) {
                    Ok(0) => {
                        shared.fail("stream closed mid-write".into());
                        return;
                    }
                    Ok(k) => {
                        link.out_at += k;
                        moved = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        shared.fail(format!("write: {e}"));
                        return;
                    }
                }
            }
            if link.out_at < link.out.len() || shared.dirty[link.idx].load(Ordering::Acquire) {
                drained = false;
            }
            loop {
                match link.stream.read(&mut chunk) {
                    Ok(0) => break, // peer end torn down; nothing more will come
                    Ok(k) => {
                        link.rbuf.extend_from_slice(&chunk[..k]);
                        moved = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        shared.fail(format!("read: {e}"));
                        return;
                    }
                }
            }
            // Parse whole frames off the front of the read buffer.
            let mut at = 0usize;
            while link.rbuf.len().saturating_sub(at) >= STREAM_PREFIX {
                let flen =
                    u32::from_le_bytes(link.rbuf[at..at + 4].try_into().expect("4 bytes")) as usize;
                if link.rbuf.len() - at < STREAM_PREFIX + flen {
                    break;
                }
                let dst = u32::from_le_bytes(link.rbuf[at + 4..at + 8].try_into().expect("4 bytes"))
                    as usize;
                let body = &link.rbuf[at + STREAM_PREFIX..at + STREAM_PREFIX + flen];
                match decode_frame(body) {
                    Ok(frame) if dst < n => {
                        asms[dst].accept(frame);
                        while let Some(m) = asms[dst].pending.pop_front() {
                            // A dropped receiver (aborted run) is not an
                            // error: same fire-and-forget semantics as
                            // the channel transport.
                            let _ = senders[dst].send(m);
                        }
                    }
                    Ok(_) => {
                        shared.fail(format!("frame addressed to unknown rank {dst}"));
                        return;
                    }
                    Err(e) => {
                        shared.fail(format!("decode: {e}"));
                        return;
                    }
                }
                at += STREAM_PREFIX + flen;
            }
            if at > 0 {
                link.rbuf.copy_within(at.., 0);
                link.rbuf.truncate(link.rbuf.len() - at);
            }
            if !link.rbuf.is_empty() {
                drained = false; // mid-frame: the rest is still in flight
            }
        }
        if shutdown.load(Ordering::Acquire) {
            let seen = *shutdown_seen.get_or_insert_with(Instant::now);
            if drained || seen.elapsed() > SHUTDOWN_GRACE {
                return;
            }
        }
        if moved {
            idle = 0;
        } else {
            // Nothing was ready anywhere: back off so a quiet fabric
            // does not spin a core, but stay well under the reliability
            // layer's RTO so a wakeup never looks like loss.
            idle = idle.saturating_add(1);
            if idle < 8 {
                std::thread::yield_now();
            } else {
                let nap = Duration::from_micros(50 << (idle - 8).min(4));
                std::thread::sleep(nap.min(IDLE_NAP_MAX));
            }
        }
    }
}

/// The shared TCP data plane: node-pair loopback streams, per-rank
/// mailboxes, and the reactor thread driving them.
///
/// Dropping the fabric (or calling [`TcpFabric::shutdown`]) flushes
/// outstanding outboxes and joins the reactor.
pub struct TcpFabric {
    shared: Arc<FabricShared>,
    stop: Arc<AtomicBool>,
    reactor: Option<std::thread::JoinHandle<()>>,
}

impl TcpFabric {
    /// Build the fabric for `n` ranks grouped into nodes of `node_size`
    /// and return one [`TcpRankTransport`] per rank.
    ///
    /// # Errors
    ///
    /// [`NetError::App`] when `node_size` does not evenly partition the
    /// ranks, and on socket setup failures.
    pub fn new(n: usize, node_size: usize) -> Result<(Self, Vec<TcpRankTransport>), NetError> {
        if n == 0 || node_size == 0 || !n.is_multiple_of(node_size) {
            return Err(NetError::App(format!(
                "node_size {node_size} must evenly partition {n} ranks"
            )));
        }
        let nodes = n / node_size;
        let pairs = nodes * (nodes - 1) / 2;
        fn app(stage: &'static str) -> impl Fn(std::io::Error) -> NetError {
            move |e| NetError::App(format!("{stage}: {e}"))
        }

        let mut senders = Vec::with_capacity(n);
        let mut mailboxes = Vec::with_capacity(n);
        for rank in 0..n {
            let (tx, mb) = Mailbox::new(rank);
            senders.push(tx);
            mailboxes.push(mb);
        }

        // One loopback stream per node pair. Setup is sequential —
        // connect, then accept — with a pair-id handshake so an
        // accepted stream is never mismatched.
        let mut links = Vec::with_capacity(2 * pairs);
        if pairs > 0 {
            let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(app("tcp bind"))?;
            let addr = listener.local_addr().map_err(app("tcp local_addr"))?;
            for p in 0..pairs {
                let mut lo = TcpStream::connect(addr).map_err(app("tcp connect"))?;
                lo.write_all(&(p as u32).to_le_bytes())
                    .map_err(app("tcp handshake send"))?;
                let (mut hi, _) = listener.accept().map_err(app("tcp accept"))?;
                let mut hs = [0u8; 4];
                hi.read_exact(&mut hs).map_err(app("tcp handshake recv"))?;
                if u32::from_le_bytes(hs) as usize != p {
                    return Err(NetError::App("tcp handshake pair mismatch".into()));
                }
                for s in [&lo, &hi] {
                    s.set_nodelay(true).map_err(app("tcp set_nodelay"))?;
                    s.set_nonblocking(true)
                        .map_err(app("tcp set_nonblocking"))?;
                }
                links.push(Link {
                    stream: lo,
                    idx: 2 * p,
                    out: Vec::new(),
                    out_at: 0,
                    rbuf: Vec::new(),
                });
                links.push(Link {
                    stream: hi,
                    idx: 2 * p + 1,
                    out: Vec::new(),
                    out_at: 0,
                    rbuf: Vec::new(),
                });
            }
        }

        let shared = Arc::new(FabricShared {
            node_size,
            outboxes: (0..2 * pairs).map(|_| Mutex::new(Vec::new())).collect(),
            dirty: (0..2 * pairs).map(|_| AtomicBool::new(false)).collect(),
            error: Mutex::new(None),
            nodes,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let reactor = if pairs > 0 {
            let shared2 = Arc::clone(&shared);
            let stop2 = Arc::clone(&stop);
            let senders2 = senders.clone();
            Some(
                std::thread::Builder::new()
                    .name("bruck-tcp-reactor".into())
                    .spawn(move || reactor_loop(&shared2, links, &senders2, &stop2))
                    .map_err(|e| NetError::App(format!("spawn reactor: {e}")))?,
            )
        } else {
            None
        };

        let transports = mailboxes
            .into_iter()
            .enumerate()
            .map(|(rank, mailbox)| TcpRankTransport {
                rank,
                node: rank / node_size,
                peers: senders.clone(),
                mailbox,
                shared: Arc::clone(&shared),
                next_msg_id: 0,
                send_buf: Vec::new(),
            })
            .collect();
        Ok((
            Self {
                shared,
                stop,
                reactor,
            },
            transports,
        ))
    }

    /// OS threads the fabric itself owns (the reactor; `0` for a
    /// single-node fabric with no TCP streams).
    #[must_use]
    pub fn threads(&self) -> usize {
        usize::from(self.reactor.is_some())
    }

    /// First wire error, if the reactor or a sender hit one.
    #[must_use]
    pub fn error(&self) -> Option<String> {
        self.shared.error.lock().expect("fabric error lock").clone()
    }

    /// Flush outstanding traffic (bounded by a short grace period) and
    /// join the reactor. Called by `Drop`; explicit form for callers
    /// that want the error.
    pub fn shutdown(mut self) -> Option<String> {
        self.stop_and_join();
        self.error()
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A rank's connection to the TCP fabric: intra-node sends go straight
/// to the destination mailbox, inter-node sends are framed into the
/// node-pair stream's outbox for the reactor to flush.
pub struct TcpRankTransport {
    rank: usize,
    node: usize,
    peers: Vec<MailSender>,
    mailbox: Mailbox,
    shared: Arc<FabricShared>,
    next_msg_id: u64,
    /// Reusable outbound frame buffer: one allocation serves every send.
    send_buf: Vec<u8>,
}

impl TcpRankTransport {
    /// The rank this transport serves.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// This rank's simulated node id.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }
}

impl Transport for TcpRankTransport {
    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        self.shared.check()?;
        let dst_node = msg.dst / self.shared.node_size;
        if dst_node == self.node {
            // Intra-node fast path: no serialization, no syscalls.
            let _ = self.peers[msg.dst].send(msg);
            return Ok(());
        }
        let outbox_idx = self.shared.outbox_for(self.node, dst_node);
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        let count = if msg.payload.is_empty() {
            1
        } else {
            msg.payload.len().div_ceil(FRAG_PAYLOAD)
        } as u32;
        let mut outbox = self.shared.outboxes[outbox_idx]
            .lock()
            .expect("outbox lock");
        for idx in 0..count {
            let chunk = if msg.payload.is_empty() {
                &[][..]
            } else {
                let at = idx as usize * FRAG_PAYLOAD;
                &msg.payload[at..msg.payload.len().min(at + FRAG_PAYLOAD)]
            };
            let mut frame = std::mem::take(&mut self.send_buf);
            encode_frame_into(
                &mut frame,
                msg.src,
                msg.tag,
                msg_id,
                idx,
                count,
                msg.arrival,
                msg.seq,
                msg.ack,
                msg.checksum,
                chunk,
            );
            outbox.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            outbox.extend_from_slice(&(msg.dst as u32).to_le_bytes());
            outbox.extend_from_slice(&frame);
            self.send_buf = frame;
        }
        drop(outbox);
        self.shared.dirty[outbox_idx].store(true, Ordering::Release);
        Ok(())
    }

    fn recv_match(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        self.mailbox.recv_match(from, tag, timeout)
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        Ok(self.mailbox.recv_any(timeout))
    }

    fn wait_any(&mut self, timeout: Duration) -> Result<(), NetError> {
        self.mailbox.wait_any(timeout);
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn purge(&mut self) -> usize {
        self.mailbox.purge()
    }
}

/// What a [`TcpScaleCluster`] run produces.
#[derive(Debug)]
pub struct ScaleOutput {
    /// Per-rank output buffers, indexed by rank.
    pub results: Vec<Vec<u8>>,
    /// Folded communication metrics (per-rank counters + wire stats).
    pub metrics: RunMetrics,
    /// Worker threads the executor used.
    pub workers: usize,
    /// Total OS threads the run held (workers + reactor) — the scaling
    /// claim: `O(workers)`, not `O(n)`.
    pub threads: usize,
    /// Communication rounds each rank executed.
    pub rounds: usize,
}

/// Per-rank execution state owned by exactly one worker.
struct RankCtx {
    rank: usize,
    program: RankProgram,
    transport: Box<dyn Transport>,
    work: Vec<u8>,
    scratch: Vec<u8>,
    metrics: RankMetrics,
}

/// Cross-worker coordination for one scale run.
struct ScaleShared {
    abort: AtomicBool,
    error: Mutex<Option<NetError>>,
    finished: AtomicUsize,
}

impl ScaleShared {
    fn fail(&self, e: NetError) {
        let mut slot = self.error.lock().expect("scale error lock");
        if slot.is_none() {
            *slot = Some(e);
        }
        self.abort.store(true, Ordering::SeqCst);
    }
}

/// The event-driven executor: interprets lowered [`RankProgram`]s over
/// the TCP fabric with a bounded worker pool instead of a thread per
/// rank.
#[derive(Debug)]
pub struct TcpScaleCluster;

impl TcpScaleCluster {
    /// Run the index plan as an all-to-all over `cfg.n` ranks grouped
    /// by [`ClusterConfig::node_size`], with `inputs[rank]` the `n·b`
    /// send buffer of each rank. Honors `cfg.ports` (lowering width),
    /// `cfg.timeout` (per-round patience), `cfg.deadline` (whole-run
    /// budget), `cfg.reliability` (ARQ + watchdog; the window is
    /// clamped up to the round count so the lockstep executor can never
    /// wedge on its own backpressure), and `cfg.faults` (wire fault
    /// injection).
    ///
    /// # Errors
    ///
    /// [`NetError::App`] on shape mismatches or unlowerable plans;
    /// transport, timeout, deadline, and failure-detector verdicts
    /// propagate.
    pub fn run(
        cfg: &ClusterConfig,
        plan: &IndexPlan,
        block: usize,
        inputs: &[Vec<u8>],
    ) -> Result<ScaleOutput, NetError> {
        Self::run_with_workers(cfg, plan, block, inputs, None)
    }

    /// [`run`](Self::run) with an explicit worker count (defaults to
    /// the host's available parallelism, capped at 8).
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Propagates worker-thread panics.
    pub fn run_with_workers(
        cfg: &ClusterConfig,
        plan: &IndexPlan,
        block: usize,
        inputs: &[Vec<u8>],
        workers: Option<usize>,
    ) -> Result<ScaleOutput, NetError> {
        let n = cfg.n;
        if inputs.len() != n {
            return Err(NetError::App(format!(
                "{} input buffers for {n} ranks",
                inputs.len()
            )));
        }
        for (rank, input) in inputs.iter().enumerate() {
            if input.len() != n * block {
                return Err(NetError::App(format!(
                    "rank {rank}: input is {} bytes, want n·b = {}",
                    input.len(),
                    n * block
                )));
            }
        }
        if n == 1 {
            return Ok(ScaleOutput {
                results: vec![inputs[0].clone()],
                metrics: RunMetrics {
                    per_rank: vec![RankMetrics::default()],
                    ..RunMetrics::default()
                },
                workers: 0,
                threads: 0,
                rounds: 0,
            });
        }

        let programs: Vec<RankProgram> = (0..n)
            .map(|rank| RankProgram::lower(plan, n, rank, block, cfg.ports).map_err(NetError::App))
            .collect::<Result<_, _>>()?;
        // The lowering is SPMD: every rank must agree on the op
        // schedule's shape, or the lockstep interpretation is undefined.
        let ops_len = programs[0].ops.len();
        for p in &programs[1..] {
            let aligned = p.ops.len() == ops_len
                && p.ops.iter().zip(&programs[0].ops).all(|(a, b)| {
                    matches!(
                        (a, b),
                        (ProgramOp::Permute(_), ProgramOp::Permute(_))
                            | (ProgramOp::Round(_), ProgramOp::Round(_))
                    )
                });
            if !aligned {
                return Err(NetError::App(format!(
                    "plan {} lowered to misaligned per-rank programs",
                    plan.label()
                )));
            }
        }
        let rounds = programs[0].rounds();

        let node_size = cfg.node_size.unwrap_or(n);
        let (fabric, raw_transports) = TcpFabric::new(n, node_size)?;
        let detector = Arc::new(FailureDetector::new(n));
        let round_clock = Arc::new(RoundClock::new(n));
        let wire_layer = cfg.faults.needs_wire_layer();
        let shared_expiry = cfg.deadline.map(|budget| (Instant::now() + budget, budget));
        let transports: Vec<Box<dyn Transport>> = raw_transports
            .into_iter()
            .enumerate()
            .map(|(rank, t)| {
                let mut t: Box<dyn Transport> = Box::new(t);
                if wire_layer {
                    t = Box::new(FaultyTransport::new(
                        t,
                        Arc::clone(&cfg.faults),
                        Arc::clone(&round_clock),
                    ));
                }
                if let Some(rel) = cfg.reliability {
                    let mut rel = rel;
                    // The executor posts at most one frame per (src,
                    // dst) link per round and pumps acks while it waits,
                    // but a window smaller than the lag between workers
                    // could fill and block a send against a receiver the
                    // same worker owns — a self-deadlock. One frame per
                    // round bounds in-flight by the round count, so this
                    // clamp makes backpressure unreachable without
                    // changing the protocol.
                    rel.wire = rel.wire.with_window(rel.wire.window.max(rounds + 2));
                    let deadline = Deadline::new();
                    if let Some((at, budget)) = shared_expiry {
                        deadline.arm_at(at, budget);
                    }
                    t = Box::new(
                        ReliableTransport::new(t, rank, n, rel, Arc::clone(&detector))
                            .with_deadline(deadline),
                    );
                }
                t
            })
            .collect();

        let mut ctxs: Vec<RankCtx> = programs
            .into_iter()
            .zip(transports)
            .enumerate()
            .map(|(rank, (program, transport))| RankCtx {
                rank,
                program,
                transport,
                work: inputs[rank].clone(),
                scratch: vec![0u8; n * block],
                metrics: RankMetrics::default(),
            })
            .collect();

        let want = workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map_or(1, |p| p.get())
                    .min(8)
            })
            .clamp(1, n);
        let per = n.div_ceil(want);
        let mut chunks: Vec<Vec<RankCtx>> = Vec::new();
        while !ctxs.is_empty() {
            let rest = ctxs.split_off(per.min(ctxs.len()));
            chunks.push(std::mem::replace(&mut ctxs, rest));
        }
        let w = chunks.len();

        let shared = ScaleShared {
            abort: AtomicBool::new(false),
            error: Mutex::new(None),
            finished: AtomicUsize::new(0),
        };
        let shared_ref = &shared;
        let round_clock_ref = &round_clock;
        let collected: Vec<Vec<(usize, Vec<u8>, RankMetrics)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        run_chunk(
                            chunk,
                            block,
                            cfg.timeout,
                            shared_expiry,
                            wire_layer,
                            shared_ref,
                            w,
                            round_clock_ref,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scale worker panicked"))
                .collect()
        });

        let reactor_threads = fabric.threads();
        if let Some(wire) = fabric.shutdown() {
            if let Ok(mut slot) = shared.error.lock() {
                if slot.is_none() {
                    *slot = Some(NetError::App(format!("tcp fabric: {wire}")));
                }
            }
        }
        if let Some(e) = shared.error.into_inner().expect("scale error lock") {
            return Err(e);
        }

        let mut results = vec![Vec::new(); n];
        let mut per_rank = vec![RankMetrics::default(); n];
        for (rank, out, metrics) in collected.into_iter().flatten() {
            results[rank] = out;
            per_rank[rank] = metrics;
        }
        Ok(ScaleOutput {
            results,
            metrics: RunMetrics {
                per_rank,
                ..RunMetrics::default()
            },
            workers: w,
            threads: w + reactor_threads,
            rounds,
        })
    }
}

/// One worker's lockstep interpretation of its rank slice. Ranks whose
/// round receives are complete keep pumping their protocol (acks,
/// retransmissions, probes) until the whole slice finishes the round,
/// so a straggling peer is never starved of the frames it needs.
#[allow(clippy::too_many_arguments)] // internal; mirrors the run state
fn run_chunk(
    mut ctxs: Vec<RankCtx>,
    block: usize,
    timeout: Duration,
    expiry: Option<(Instant, Duration)>,
    checksums: bool,
    shared: &ScaleShared,
    workers: usize,
    round_clock: &RoundClock,
) -> Vec<(usize, Vec<u8>, RankMetrics)> {
    let ops_len = ctxs.first().map_or(0, |c| c.program.ops.len());
    let n = ctxs.first().map_or(0, |c| c.program.n);
    'ops: for op_idx in 0..ops_len {
        if shared.abort.load(Ordering::SeqCst) {
            break;
        }
        let is_permute = matches!(ctxs[0].program.ops[op_idx], ProgramOp::Permute(_));
        if is_permute {
            for ctx in &mut ctxs {
                let RankCtx {
                    program,
                    work,
                    scratch,
                    metrics,
                    ..
                } = ctx;
                let ProgramOp::Permute(perm) = &program.ops[op_idx] else {
                    unreachable!("op shape validated before spawn");
                };
                for (i, &src) in perm.iter().enumerate() {
                    scratch[i * block..(i + 1) * block]
                        .copy_from_slice(&work[src * block..(src + 1) * block]);
                }
                std::mem::swap(work, scratch);
                metrics.bytes_copied += (n * block) as u64;
            }
            continue;
        }
        // Round: post every rank's sends, then complete receives by
        // readiness — polling, never blocking, so every endpoint state
        // machine this worker owns keeps making progress.
        let mut sent_sizes: Vec<Vec<u64>> = Vec::with_capacity(ctxs.len());
        for ctx in &mut ctxs {
            let t0 = Instant::now();
            let RankCtx {
                rank,
                program,
                transport,
                work,
                metrics,
                ..
            } = ctx;
            let ProgramOp::Round(round) = &program.ops[op_idx] else {
                unreachable!("op shape validated before spawn");
            };
            let mut sizes = Vec::with_capacity(round.sends.len());
            for s in &round.sends {
                let mut payload = Vec::with_capacity(s.slots.len() * block);
                for &slot in &s.slots {
                    payload.extend_from_slice(&work[slot * block..(slot + 1) * block]);
                }
                sizes.push(payload.len() as u64);
                let msg = Message {
                    src: *rank,
                    dst: s.peer,
                    tag: s.tag,
                    checksum: checksums.then(|| payload_checksum(&payload)),
                    payload,
                    arrival: 0.0,
                    seq: 0,
                    ack: 0,
                };
                if let Err(e) = transport.send(msg) {
                    shared.fail(e);
                    break 'ops;
                }
            }
            metrics.wall_send_ns += t0.elapsed().as_nanos() as u64;
            sent_sizes.push(sizes);
        }
        let recv_started = Instant::now();
        let op_deadline = recv_started + timeout;
        let mut pending: Vec<Vec<usize>> = ctxs
            .iter()
            .map(|ctx| {
                let ProgramOp::Round(round) = &ctx.program.ops[op_idx] else {
                    unreachable!("op shape validated before spawn");
                };
                (0..round.recvs.len()).collect()
            })
            .collect();
        let mut left: usize = pending.iter().map(Vec::len).sum();
        let mut idle: u32 = 0;
        while left > 0 {
            if shared.abort.load(Ordering::SeqCst) {
                break 'ops;
            }
            let mut progressed = false;
            for (ci, ctx) in ctxs.iter_mut().enumerate() {
                let RankCtx {
                    program,
                    transport,
                    work,
                    metrics,
                    ..
                } = ctx;
                let ProgramOp::Round(round) = &program.ops[op_idx] else {
                    unreachable!("op shape validated before spawn");
                };
                if pending[ci].is_empty() {
                    // Done rank: one zero-timeout pump keeps acks,
                    // retransmissions, and probe replies flowing.
                    if let Err(e) = transport.wait_any(Duration::ZERO) {
                        shared.fail(e);
                        break 'ops;
                    }
                    continue;
                }
                let mut i = 0;
                while i < pending[ci].len() {
                    let r = &round.recvs[pending[ci][i]];
                    match transport.try_match(r.peer, r.tag) {
                        Ok(Some(msg)) => {
                            if msg.payload.len() != r.slots.len() * block {
                                shared.fail(NetError::App(format!(
                                    "rank {} tag {}: {} payload bytes for {} slots",
                                    program.rank,
                                    r.tag,
                                    msg.payload.len(),
                                    r.slots.len()
                                )));
                                break 'ops;
                            }
                            for (j, &slot) in r.slots.iter().enumerate() {
                                work[slot * block..(slot + 1) * block]
                                    .copy_from_slice(&msg.payload[j * block..(j + 1) * block]);
                            }
                            metrics.bytes_copied += msg.payload.len() as u64;
                            pending[ci].swap_remove(i);
                            left -= 1;
                            progressed = true;
                        }
                        Ok(None) => i += 1,
                        Err(e) => {
                            shared.fail(e);
                            break 'ops;
                        }
                    }
                }
            }
            if left == 0 {
                break;
            }
            if progressed {
                idle = 0;
                continue;
            }
            idle = idle.saturating_add(1);
            let now = Instant::now();
            if let Some((at, budget)) = expiry {
                if now >= at {
                    let rank = first_pending_rank(&ctxs, &pending);
                    shared.fail(NetError::DeadlineExceeded { rank, budget });
                    break 'ops;
                }
            }
            if now >= op_deadline {
                let (ci, ri) = pending
                    .iter()
                    .enumerate()
                    .find_map(|(ci, p)| p.first().map(|&ri| (ci, ri)))
                    .expect("left > 0 implies a pending receive");
                let ProgramOp::Round(round) = &ctxs[ci].program.ops[op_idx] else {
                    unreachable!("op shape validated before spawn");
                };
                shared.fail(NetError::Timeout {
                    rank: ctxs[ci].rank,
                    from: round.recvs[ri].peer,
                    tag: round.recvs[ri].tag,
                    waited: timeout,
                });
                break 'ops;
            }
            // Nothing arrived for anyone: let the reactor (and on a
            // shared core, the other workers) run.
            if idle < 16 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        let recv_wall = recv_started.elapsed().as_nanos() as u64;
        for (ci, ctx) in ctxs.iter_mut().enumerate() {
            let ProgramOp::Round(round) = &ctx.program.ops[op_idx] else {
                unreachable!("op shape validated before spawn");
            };
            ctx.metrics.wall_recv_ns += recv_wall;
            ctx.metrics.record_round(&sent_sizes[ci], round.recvs.len());
            round_clock.advance(ctx.rank);
        }
    }

    if !shared.abort.load(Ordering::SeqCst) {
        // Ack drain: interleave short flushes so ranks in this slice
        // answer each other's unacked tails, then linger pumping until
        // every worker is done (a peer elsewhere may still need acks).
        for _ in 0..4 {
            for ctx in &mut ctxs {
                let _ = ctx
                    .transport
                    .flush(Instant::now() + Duration::from_millis(2));
            }
        }
        shared.finished.fetch_add(1, Ordering::SeqCst);
        let linger_deadline = Instant::now() + timeout.min(Duration::from_secs(1));
        while shared.finished.load(Ordering::SeqCst) < workers
            && !shared.abort.load(Ordering::SeqCst)
            && Instant::now() < linger_deadline
        {
            for ctx in &mut ctxs {
                let _ = ctx.transport.wait_any(Duration::ZERO);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    ctxs.into_iter()
        .map(|mut ctx| {
            ctx.metrics.link = ctx.transport.link_stats();
            (ctx.rank, ctx.work, ctx.metrics)
        })
        .collect()
}

/// The lowest rank in this chunk that still has an unmatched receive.
fn first_pending_rank(ctxs: &[RankCtx], pending: &[Vec<usize>]) -> usize {
    pending
        .iter()
        .position(|p| !p.is_empty())
        .map_or(0, |ci| ctxs[ci].rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical per-rank all-to-all input: block `j` of rank `i`
    /// is a deterministic function of `(i, j)`.
    fn index_input(rank: usize, n: usize, block: usize) -> Vec<u8> {
        (0..n * block)
            .map(|at| {
                let (j, i) = (at / block, at % block);
                (rank.wrapping_mul(31) ^ j.wrapping_mul(7) ^ i) as u8
            })
            .collect()
    }

    /// After the index operation rank `r` holds block `B[j, r]` at slot
    /// `j` for every `j`.
    fn index_expected(rank: usize, n: usize, block: usize) -> Vec<u8> {
        (0..n * block)
            .map(|at| {
                let (j, i) = (at / block, at % block);
                (j.wrapping_mul(31) ^ rank.wrapping_mul(7) ^ i) as u8
            })
            .collect()
    }

    #[test]
    fn pair_index_is_a_dense_enumeration() {
        let nodes = 5;
        let mut seen = vec![false; nodes * (nodes - 1) / 2];
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                let p = pair_index(nodes, a, b);
                assert!(!seen[p], "pair ({a},{b}) collided at {p}");
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fabric_routes_intra_and_inter_node() {
        let (fabric, mut ts) = TcpFabric::new(4, 2).unwrap();
        let msg = |src: usize, dst: usize, tag: Tag, payload: Vec<u8>| Message {
            src,
            dst,
            tag,
            payload,
            arrival: 0.0,
            seq: 0,
            ack: 0,
            checksum: None,
        };
        // Intra-node (0 → 1): channel path.
        ts[0].send(msg(0, 1, 7, vec![1, 2, 3])).unwrap();
        let m = ts[1].recv_match(0, 7, Duration::from_secs(2)).unwrap();
        assert_eq!(m.payload, vec![1, 2, 3]);
        // Inter-node (0 → 2 and 3 → 1): both stream directions.
        ts[0].send(msg(0, 2, 9, vec![4; 10])).unwrap();
        ts[3].send(msg(3, 1, 11, vec![5; 10])).unwrap();
        let m = ts[2].recv_match(0, 9, Duration::from_secs(2)).unwrap();
        assert_eq!(m.payload, vec![4; 10]);
        let m = ts[1].recv_match(3, 11, Duration::from_secs(2)).unwrap();
        assert_eq!(m.payload, vec![5; 10]);
        drop(ts);
        assert_eq!(fabric.shutdown(), None);
    }

    #[test]
    fn fabric_fragments_and_reassembles_large_inter_node_messages() {
        let (fabric, mut ts) = TcpFabric::new(2, 1).unwrap();
        let bytes = 3 * FRAG_PAYLOAD + 123;
        let payload: Vec<u8> = (0..bytes).map(|i| (i * 13) as u8).collect();
        ts[0]
            .send(Message {
                src: 0,
                dst: 1,
                tag: 5,
                payload: payload.clone(),
                arrival: 0.25,
                seq: 3,
                ack: 1,
                checksum: None,
            })
            .unwrap();
        let m = ts[1].recv_match(0, 5, Duration::from_secs(5)).unwrap();
        assert_eq!(m.payload, payload);
        assert_eq!((m.arrival, m.seq, m.ack), (0.25, 3, 1));
        drop(ts);
        assert_eq!(fabric.shutdown(), None);
    }

    #[test]
    fn fabric_rejects_non_dividing_node_size() {
        assert!(TcpFabric::new(6, 4).is_err());
    }

    #[test]
    fn scale_cluster_matches_the_oracle_across_plans() {
        let block = 3;
        let n = 16;
        let cfg = ClusterConfig::new(n)
            .with_node_size(4)
            .with_reliability(crate::reliable::Reliability::default())
            .with_timeout(Duration::from_secs(20));
        let inputs: Vec<Vec<u8>> = (0..n).map(|r| index_input(r, n, block)).collect();
        for plan in [
            IndexPlan::Radix(2),
            IndexPlan::Radix(4),
            IndexPlan::Direct,
            IndexPlan::Hierarchical {
                node_size: 4,
                radix_local: 2,
                radix_remote: 2,
            },
        ] {
            let out = TcpScaleCluster::run_with_workers(&cfg, &plan, block, &inputs, Some(3))
                .unwrap_or_else(|e| panic!("{}: {e}", plan.label()));
            for (rank, got) in out.results.iter().enumerate() {
                assert_eq!(
                    got,
                    &index_expected(rank, n, block),
                    "{} rank {rank}",
                    plan.label()
                );
            }
            assert_eq!(out.workers, 3);
            assert!(out.threads <= 4, "O(workers) threads, got {}", out.threads);
            assert_eq!(out.metrics.per_rank.len(), n);
            assert!(out.rounds > 0);
            assert_eq!(
                out.metrics.global_complexity().map(|c| c.c1),
                Some(out.rounds as u64),
                "{}: per-rank round accounting must agree",
                plan.label()
            );
        }
    }

    #[test]
    fn scale_cluster_without_reliability_is_still_bit_correct() {
        let block = 2;
        let n = 12;
        let cfg = ClusterConfig::new(n).with_node_size(3);
        let inputs: Vec<Vec<u8>> = (0..n).map(|r| index_input(r, n, block)).collect();
        let out = TcpScaleCluster::run(&cfg, &IndexPlan::Radix(3), block, &inputs).unwrap();
        for (rank, got) in out.results.iter().enumerate() {
            assert_eq!(got, &index_expected(rank, n, block), "rank {rank}");
        }
    }

    #[test]
    fn scale_cluster_rejects_shape_mismatches() {
        let cfg = ClusterConfig::new(4);
        let err = TcpScaleCluster::run(&cfg, &IndexPlan::Radix(2), 2, &[vec![0u8; 8]]).unwrap_err();
        assert!(matches!(err, NetError::App(_)), "{err}");
        let bad = vec![vec![0u8; 7]; 4];
        let err = TcpScaleCluster::run(&cfg, &IndexPlan::Radix(2), 2, &bad).unwrap_err();
        assert!(matches!(err, NetError::App(_)), "{err}");
    }

    #[test]
    fn unlowerable_plan_is_a_clean_error() {
        let cfg = ClusterConfig::new(4);
        let inputs = vec![vec![0u8; 8]; 4];
        let err =
            TcpScaleCluster::run(&cfg, &IndexPlan::Mixed(vec![2, 2]), 2, &inputs).unwrap_err();
        assert!(matches!(err, NetError::App(_)), "{err}");
    }

    #[test]
    fn single_rank_short_circuits() {
        let cfg = ClusterConfig::new(1);
        let out = TcpScaleCluster::run(&cfg, &IndexPlan::Direct, 4, &[vec![9u8; 4]]).unwrap();
        assert_eq!(out.results, vec![vec![9u8; 4]]);
        assert_eq!(out.threads, 0);
    }
}
